// §6.2 "Defragmentation": I/O saved when the defragmentation task runs with
// each workload on a ~10% fragmented file system. Savings are smaller than
// for scrubbing/backup: on read-heavy workloads only the read half of the
// 2x-pages defrag cost can be saved (~50% cap); append-heavy workloads also
// save dirty-page writes.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Defragmentation I/O saved (10% fragmented file system)",
      "similar but smaller savings than Figs. 2-3; read-heavy workloads cap "
      "near 50% (writes still needed); skew costs 15-30%",
      stack);

  constexpr double kFrag = 0.1;
  RateTable rates(BenchRateCachePath());
  std::vector<std::pair<Personality, bool>> series{
      {Personality::kWebserver, false},
      {Personality::kWebserver, true},
      {Personality::kWebproxy, false},
      {Personality::kFileserver, false}};
  std::vector<std::string> headers{"util", "webserver", "webserver (MS)",
                                   "webproxy", "fileserver"};
  if (SmokeMode()) {
    series = {{Personality::kWebserver, false}};
    headers = {"util", "webserver"};
  }
  TextTable table(std::move(headers));
  for (int util_pct : UtilSweepPct(20)) {
    double util = util_pct / 100.0;
    std::vector<std::string> row{Pct(util)};
    for (auto [p, skew] : series) {
      MaintenanceRunResult result = RunAtUtil(rates, stack, p, 1.0, skew, util,
                                              {MaintKind::kDefrag},
                                              /*use_duet=*/true, kFrag);
      row.push_back(Pct(result.IoSavedFraction()));
    }
    table.AddRow(std::move(row));
    fflush(stdout);
  }
  table.Print();
  return 0;
}
