// §6.2 "Defragmentation": I/O saved when the defragmentation task runs with
// each workload on a ~10% fragmented file system. Savings are smaller than
// for scrubbing/backup: on read-heavy workloads only the read half of the
// 2x-pages defrag cost can be saved (~50% cap); append-heavy workloads also
// save dirty-page writes.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Defragmentation I/O saved (10% fragmented file system)",
      "similar but smaller savings than Figs. 2-3; read-heavy workloads cap "
      "near 50% (writes still needed); skew costs 15-30%",
      stack);

  constexpr double kFrag = 0.1;
  RateTable rates(".duet_rate_cache");
  TextTable table({"util", "webserver", "webserver (MS)", "webproxy", "fileserver"});
  for (int util_pct = 0; util_pct <= 100; util_pct += 20) {
    double util = util_pct / 100.0;
    std::vector<std::string> row{Pct(util)};
    for (auto [p, skew] : {std::pair{Personality::kWebserver, false},
                           std::pair{Personality::kWebserver, true},
                           std::pair{Personality::kWebproxy, false},
                           std::pair{Personality::kFileserver, false}}) {
      MaintenanceRunResult result = RunAtUtil(rates, stack, p, 1.0, skew, util,
                                              {MaintKind::kDefrag},
                                              /*use_duet=*/true, kFrag);
      row.push_back(Pct(result.IoSavedFraction()));
    }
    table.AddRow(std::move(row));
    fflush(stdout);
  }
  table.Print();
  return 0;
}
