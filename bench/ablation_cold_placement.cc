// §6.5 "Cold data placement": whether the data *not* accessed by the
// workload is clustered in its own region or interleaved with hot data has
// little effect — maintenance I/O runs in idle periods, so extra seeks occur
// only when switching between maintenance and workload anyway.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Ablation: cold data placement (scrub + webserver, 50% overlap)",
      "physical placement of cold data does not affect the results",
      stack);

  RateTable rates(BenchRateCachePath());
  TextTable table({"util", "placement", "I/O saved", "scrub finished",
                   "workload ops"});
  std::vector<double> utils{0.3, 0.5, 0.7};
  if (SmokeMode()) {
    utils = {0.5};
  }
  for (double util : utils) {
    for (bool clustered : {false, true}) {
      WorkloadConfig base =
          MakeWorkloadConfig(stack, Personality::kWebserver, 0.5, false, 0, 42);
      base.cluster_covered = clustered;
      const CalibratedRate& rate = rates.Get(stack, base, util);
      MaintenanceRunConfig config;
      config.stack = stack;
      config.personality = Personality::kWebserver;
      config.coverage = 0.5;
      config.target_util = util;
      config.ops_per_sec = rate.unthrottled ? 0 : rate.ops_per_sec;
      config.unthrottled = rate.unthrottled;
      config.tasks = {MaintKind::kScrub};
      config.use_duet = true;
      // RunMaintenance builds its own workload config; clustering is set via
      // the coverage/cluster knob below.
      WorkloadConfig workload = base;
      workload.ops_per_sec = config.unthrottled ? 0 : config.ops_per_sec;
      CowRig rig(stack, workload);
      ScrubberConfig sc;
      sc.use_duet = true;
      Scrubber scrub(&rig.fs(), &rig.duet(), sc);
      scrub.Start();
      rig.workload().Start();
      rig.loop().RunUntil(stack.window);
      rig.workload().Stop();
      const TaskStats& stats = scrub.stats();
      double saved = stats.work_total > 0
                         ? static_cast<double>(stats.saved_read_pages) /
                               static_cast<double>(stats.work_total)
                         : 0;
      table.AddRow({Pct(util), clustered ? "clustered" : "interleaved", Pct(saved),
                    stats.finished ? "yes" : "no",
                    Num(static_cast<double>(rig.workload().stats().ops_completed), 0)});
      scrub.Stop();
      fflush(stdout);
    }
  }
  table.Print();
  return 0;
}
