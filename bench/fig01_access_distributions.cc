// Figure 1: file access distributions — cumulative fraction of accesses
// absorbed by the most-accessed files, for the three skewed MS-trace-like
// devices versus Filebench's uniform default.
//
// The paper extracted per-file access counts from the Microsoft Production
// Build Server trace's three busiest devices and found them highly skewed,
// while Filebench picks files uniformly. We model the three devices with
// Zipf exponents fitted to reproduce that spread.

#include "bench/bench_common.h"
#include "src/util/zipf.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader("Figure 1: file access distributions",
                   "MS-trace devices are highly skewed (top few % of files take "
                   "most accesses); Filebench's default is uniform",
                   stack);

  const uint64_t files = 10'000;
  ZipfSampler ms_dev0(files, 1.25);
  ZipfSampler ms_dev1(files, 1.10);
  ZipfSampler ms_dev2(files, 0.95);

  TextTable table({"top files (%)", "ms-device-0", "ms-device-1", "ms-device-2",
                   "filebench uniform"});
  for (double top_pct : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    auto top = static_cast<uint64_t>(top_pct / 100.0 * static_cast<double>(files));
    top = top == 0 ? 1 : top;
    table.AddRow({Num(top_pct, 1), Pct(ms_dev0.CumulativeProbability(top)),
                  Pct(ms_dev1.CumulativeProbability(top)),
                  Pct(ms_dev2.CumulativeProbability(top)),
                  Pct(static_cast<double>(top) / static_cast<double>(files))});
  }
  table.Print();

  // Empirical check: sample each distribution and report the access share of
  // the top 1% of files.
  printf("\nsampled access share of top 1%% of files (100k samples):\n");
  for (auto* sampler : {&ms_dev0, &ms_dev1, &ms_dev2}) {
    Rng rng(1);
    uint64_t hits = 0;
    for (int i = 0; i < 100'000; ++i) {
      if (sampler->Sample(rng) < files / 100) {
        ++hits;
      }
    }
    printf("  zipf s=%.2f: %.1f%%\n", sampler->s(), hits / 1000.0);
  }
  return 0;
}
