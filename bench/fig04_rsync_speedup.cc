// Figure 4: rsync runtime speedup vs data overlap with the (unthrottled)
// webserver workload. Rsync runs at normal I/O priority; with Duet it
// prioritizes files with pages in memory, completing up to ~2x faster at
// 100% overlap (read I/O is saved; write I/O cannot be).

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 4: rsync speedup vs overlap (unthrottled webserver)",
      "speedup grows with overlap, reaching ~2x at 100% (only reads are "
      "saved: 50% of rsync's total I/O)",
      stack);

  TextTable table({"overlap", "baseline (s)", "duet (s)", "speedup",
                   "duet reads saved"});
  for (double overlap : OverlapSweep()) {
    RsyncRunResult baseline = RunRsync(stack, Personality::kWebserver, overlap,
                                       /*skewed=*/false, /*use_duet=*/false, 42);
    RsyncRunResult with_duet = RunRsync(stack, Personality::kWebserver, overlap,
                                        /*skewed=*/false, /*use_duet=*/true, 42);
    double speedup = with_duet.runtime > 0
                         ? static_cast<double>(baseline.runtime) /
                               static_cast<double>(with_duet.runtime)
                         : 0;
    double saved =
        with_duet.stats.work_total > 0
            ? static_cast<double>(with_duet.stats.saved_read_pages) /
                  static_cast<double>(with_duet.stats.work_total)
            : 0;
    table.AddRow({Pct(overlap), Num(ToSeconds(baseline.runtime), 1),
                  Num(ToSeconds(with_duet.runtime), 1), Num(speedup, 2), Pct(saved)});
    fflush(stdout);
  }
  table.Print();
  return 0;
}
