// Figure 5: I/O saved when scrubbing and backup run *together* with the
// webserver workload. The two tasks implicitly collaborate through the page
// cache: even with no foreground workload (0% utilization) the pair saves
// at least ~50% of the combined maintenance I/O, because one pass over the
// shared data serves both tasks.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 5: scrub + backup I/O saved (webserver workload)",
      ">=50% saved even at 0% utilization (tasks share one pass); higher "
      "utilization and overlap increase savings further",
      stack);

  RateTable rates(BenchRateCachePath());
  std::vector<std::string> headers{"util"};
  for (double overlap : OverlapSweep()) {
    headers.push_back(StrFormat("overlap %.0f%%", overlap * 100));
  }
  TextTable table(std::move(headers));
  for (int util_pct : UtilSweepPct()) {
    double util = util_pct / 100.0;
    std::vector<std::string> row{Pct(util)};
    for (double overlap : OverlapSweep()) {
      MaintenanceRunResult result = RunAtUtil(
          rates, stack, Personality::kWebserver, overlap, /*skewed=*/false, util,
          {MaintKind::kScrub, MaintKind::kBackup}, /*use_duet=*/true);
      row.push_back(Pct(result.IoSavedFraction()));
    }
    table.AddRow(std::move(row));
    fflush(stdout);
  }
  table.Print();
  return 0;
}
