// §3.3 ablation: Duet's page-level hints vs an Inotify-style file-level
// mechanism, head to head on the rsync experiment (Fig. 4's setup).
//
// Inotify tells a task *that* a file was touched, but not how many of its
// pages are in memory, nor when data is flushed or evicted — and it needs a
// watch per directory. Duet's page-granular Exists notifications let rsync
// rank files by actual cached pages and back out of stale hints via
// duet_get_path.

#include "bench/bench_common.h"
#include "src/tasks/rsync_task.h"

using namespace duet;

namespace {

struct Variant {
  RsyncHints hints;
  const char* name;
};

}  // namespace

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Ablation: rsync with no hints vs Inotify-style vs Duet",
      "page-level information (counts + eviction) should beat file-level "
      "recency hints; both beat no hints",
      stack);

  TextTable table({"overlap", "hints", "runtime (s)", "reads saved", "speedup",
                   "watches"});
  std::vector<double> overlaps{0.5, 1.0};
  if (SmokeMode()) {
    overlaps = {1.0};
  }
  for (double overlap : overlaps) {
    double baseline_runtime = 0;
    for (const Variant& variant :
         {Variant{RsyncHints::kNone, "none"}, Variant{RsyncHints::kInotify, "inotify"},
          Variant{RsyncHints::kDuet, "duet"}}) {
      WorkloadConfig workload = MakeWorkloadConfig(
          stack, Personality::kWebserver, overlap, /*skewed=*/false,
          /*ops_per_sec=*/0, 42);
      CowRig rig(stack, workload);
      BlockDevice dst_device(&rig.loop(), MakeDiskModel(stack), MakeScheduler(stack));
      CowFs dst_fs(&rig.loop(), &dst_device, stack.cache_pages);
      (void)dst_fs.Mkdir("/backup");

      RsyncConfig config;
      config.hints = variant.hints;
      config.source_dir = "/data";
      config.dest_dir = "/backup";
      RsyncTask task(&rig.fs(), &dst_fs, &rig.duet(), config);
      bool finished = false;
      task.Start([&] { finished = true; });
      rig.workload().Start();
      while (!finished && rig.loop().now() < 40 * stack.window) {
        rig.loop().RunUntil(rig.loop().now() + Seconds(1));
      }
      rig.workload().Stop();
      double runtime = ToSeconds(task.stats().Runtime());
      if (variant.hints == RsyncHints::kNone) {
        baseline_runtime = runtime;
      }
      double saved = task.stats().work_total > 0
                         ? static_cast<double>(task.stats().saved_read_pages) /
                               static_cast<double>(task.stats().work_total)
                         : 0;
      table.AddRow({Pct(overlap), variant.name, Num(runtime, 1), Pct(saved),
                    runtime > 0 ? Num(baseline_runtime / runtime, 2) : "n/a",
                    Num(static_cast<double>(task.watches_created()), 0)});
      task.Stop();
      fflush(stdout);
    }
  }
  table.Print();
  return 0;
}
