// Figure 7: I/O saved when scrubbing, backup, and defragmentation run
// together with the webserver workload (10% fragmented FS). With no
// foreground workload, ~45% is saved (one shared pass; defrag writes cannot
// be saved); with the read-mostly webserver the savings approach ~80%.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 7: scrub + backup + defrag I/O saved (webserver)",
      "~45% saved at 0% utilization, up to ~80% with the read-mostly "
      "workload; write-heavy workloads still save up to 60%",
      stack);

  constexpr double kFrag = 0.1;
  RateTable rates(BenchRateCachePath());
  // Smoke keeps one series; the full grid covers the paper's four.
  std::vector<std::pair<Personality, double>> series{
      {Personality::kWebserver, 0.5},
      {Personality::kWebserver, 1.0},
      {Personality::kWebproxy, 1.0},
      {Personality::kFileserver, 1.0}};
  std::vector<std::string> headers{"util", "webserver 50% ovl",
                                   "webserver 100% ovl", "webproxy 100%",
                                   "fileserver 100%"};
  if (SmokeMode()) {
    series = {{Personality::kWebserver, 1.0}};
    headers = {"util", "webserver 100% ovl"};
  }
  TextTable table(std::move(headers));
  for (int util_pct : UtilSweepPct()) {
    double util = util_pct / 100.0;
    std::vector<std::string> row{Pct(util)};
    for (auto [p, overlap] : series) {
      MaintenanceRunResult result = RunAtUtil(
          rates, stack, p, overlap, /*skewed=*/false, util,
          {MaintKind::kScrub, MaintKind::kBackup, MaintKind::kDefrag},
          /*use_duet=*/true, kFrag);
      row.push_back(Pct(result.IoSavedFraction()));
    }
    table.AddRow(std::move(row));
    fflush(stdout);
  }
  table.Print();
  return 0;
}
