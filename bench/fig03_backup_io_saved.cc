// Figure 3: I/O saved when the backup task runs together with the webserver
// workload. Backup takes ~2x as long as scrubbing (random-ish reads), so it
// interacts longer with the workload and its savings plateau at a lower
// device utilization than scrubbing (e.g. 25% overlap saturates near 20%
// utilization instead of 40%).

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 3: backup I/O saved (webserver workload)",
      "same shape as scrubbing but saturating at lower utilization; "
      "write-heavy workloads break snapshot sharing and save less",
      stack);

  RateTable rates(BenchRateCachePath());
  std::vector<std::string> headers{"util"};
  for (double overlap : OverlapSweep()) {
    headers.push_back(StrFormat("overlap %.0f%%", overlap * 100));
  }
  headers.push_back("100% (MS trace)");
  TextTable table(std::move(headers));
  for (int util_pct : UtilSweepPct()) {
    double util = util_pct / 100.0;
    std::vector<std::string> row{Pct(util)};
    for (double overlap : OverlapSweep()) {
      MaintenanceRunResult result =
          RunAtUtil(rates, stack, Personality::kWebserver, overlap,
                    /*skewed=*/false, util, {MaintKind::kBackup}, /*use_duet=*/true);
      row.push_back(Pct(result.IoSavedFraction()));
    }
    MaintenanceRunResult skewed =
        RunAtUtil(rates, stack, Personality::kWebserver, 1.0,
                  /*skewed=*/true, util, {MaintKind::kBackup}, /*use_duet=*/true);
    row.push_back(Pct(skewed.IoSavedFraction()));
    table.AddRow(std::move(row));
    fflush(stdout);
  }
  table.Print();

  if (SmokeMode()) {
    return 0;
  }
  printf("\nsnapshot-sharing breakage: personality effect at 50%% utilization:\n");
  TextTable ptable({"personality", "R:W", "I/O saved"});
  for (auto [p, name, ratio] :
       {std::tuple{Personality::kWebserver, "webserver", "10:1"},
        std::tuple{Personality::kWebproxy, "webproxy", "4:1"},
        std::tuple{Personality::kFileserver, "fileserver", "1:2"}}) {
    MaintenanceRunResult result = RunAtUtil(rates, stack, p, 1.0, false, 0.5,
                                            {MaintKind::kBackup}, /*use_duet=*/true);
    ptable.AddRow({name, ratio, Pct(result.IoSavedFraction())});
  }
  ptable.Print();
  return 0;
}
