// Figure 3: I/O saved when the backup task runs together with the webserver
// workload. Backup takes ~2x as long as scrubbing (random-ish reads), so it
// interacts longer with the workload and its savings plateau at a lower
// device utilization than scrubbing (e.g. 25% overlap saturates near 20%
// utilization instead of 40%).

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 3: backup I/O saved (webserver workload)",
      "same shape as scrubbing but saturating at lower utilization; "
      "write-heavy workloads break snapshot sharing and save less",
      stack);

  RateTable rates(".duet_rate_cache");
  TextTable table({"util", "overlap 25%", "overlap 50%", "overlap 75%",
                   "overlap 100%", "100% (MS trace)"});
  for (int util_pct = 0; util_pct <= 100; util_pct += 10) {
    double util = util_pct / 100.0;
    std::vector<std::string> row{Pct(util)};
    for (double overlap : {0.25, 0.50, 0.75, 1.00}) {
      MaintenanceRunResult result =
          RunAtUtil(rates, stack, Personality::kWebserver, overlap,
                    /*skewed=*/false, util, {MaintKind::kBackup}, /*use_duet=*/true);
      row.push_back(Pct(result.IoSavedFraction()));
    }
    MaintenanceRunResult skewed =
        RunAtUtil(rates, stack, Personality::kWebserver, 1.0,
                  /*skewed=*/true, util, {MaintKind::kBackup}, /*use_duet=*/true);
    row.push_back(Pct(skewed.IoSavedFraction()));
    table.AddRow(std::move(row));
    fflush(stdout);
  }
  table.Print();

  printf("\nsnapshot-sharing breakage: personality effect at 50%% utilization:\n");
  TextTable ptable({"personality", "R:W", "I/O saved"});
  for (auto [p, name, ratio] :
       {std::tuple{Personality::kWebserver, "webserver", "10:1"},
        std::tuple{Personality::kWebproxy, "webproxy", "4:1"},
        std::tuple{Personality::kFileserver, "fileserver", "1:2"}}) {
    MaintenanceRunResult result = RunAtUtil(rates, stack, p, 1.0, false, 0.5,
                                            {MaintKind::kBackup}, /*use_duet=*/true);
    ptable.AddRow({name, ratio, Pct(result.IoSavedFraction())});
  }
  ptable.Print();
  return 0;
}
