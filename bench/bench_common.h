// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick   1/100-scale stack (512 MiB data, 18 s window)  [default]
//   --std     1/50-scale stack  (1 GiB data, 36 s window)
//   --full    1/12.5-scale stack (4 GiB data, 144 s window)
//   --smoke   seconds-scale CI configuration: a tiny stack plus truncated
//             sweeps. Proves the binary runs end to end; the numbers it
//             prints are NOT a valid reproduction of the paper.
// All real scales preserve the paper's maintenance-work : window ratio,
// which is what the maximum-utilization and completion results depend on.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/harness/calibrate.h"
#include "src/harness/runner.h"
#include "src/harness/stack_config.h"
#include "src/harness/table.h"
#include "src/util/format.h"

namespace duet {

inline StackConfig StdStackConfig() {
  StackConfig config;
  config.capacity_blocks = 327'680;            // 1.25 GiB device
  config.data_bytes = 1ull * 1024 * 1024 * 1024;
  config.cache_pages = 5'243;                  // ~2%
  config.window = Seconds(36);
  return config;
}

inline StackConfig FullStackConfig() { return StackConfig(); }

inline StackConfig SmokeStackConfig() {
  StackConfig config = QuickStackConfig();
  config.data_bytes = 48ull * 1024 * 1024;
  config.capacity_blocks = (config.data_bytes / kPageSize) * 5 / 4;
  config.cache_pages =
      std::max<uint64_t>(256, config.data_bytes / kPageSize / 50);
  config.window = Seconds(2);
  return config;
}

// Set by ParseStackArgs when --smoke is given; sweeps consult it through the
// helpers below so every bench binary finishes in seconds under ctest.
inline bool g_smoke_mode = false;

inline bool SmokeMode() { return g_smoke_mode; }

inline StackConfig ParseStackArgs(int argc, char** argv) {
  StackConfig config = QuickStackConfig();
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--std") == 0) {
      config = StdStackConfig();
    } else if (strcmp(argv[i], "--full") == 0) {
      config = FullStackConfig();
    } else if (strcmp(argv[i], "--quick") == 0) {
      config = QuickStackConfig();
    } else if (strcmp(argv[i], "--smoke") == 0) {
      g_smoke_mode = true;
      config = SmokeStackConfig();
    }
  }
  return config;
}

// Rate cache: smoke runs stay in-memory so parallel ctest jobs never race on
// the shared cache file (an empty path disables persistence).
inline std::string BenchRateCachePath() {
  return SmokeMode() ? std::string() : std::string(".duet_rate_cache");
}

// Utilization sweep in percent. Smoke mode visits only an idle and a loaded
// point instead of the full axis.
inline std::vector<int> UtilSweepPct(int step = 10, int max = 100) {
  if (SmokeMode()) {
    return {0, std::min(60, max)};
  }
  std::vector<int> out;
  for (int util = 0; util <= max; util += step) {
    out.push_back(util);
  }
  return out;
}

// Data-overlap sweep; smoke keeps only the 100% point.
inline std::vector<double> OverlapSweep() {
  if (SmokeMode()) {
    return {1.00};
  }
  return {0.25, 0.50, 0.75, 1.00};
}

inline void PrintBenchHeader(const char* title, const char* paper_expectation,
                             const StackConfig& stack) {
  printf("== %s ==\n", title);
  printf("paper: %s\n", paper_expectation);
  printf("scale: %.1f GiB data, %.0f s window, %s\n\n",
         static_cast<double>(stack.data_bytes) / (1024.0 * 1024 * 1024),
         ToSeconds(stack.window),
         stack.device == DeviceKind::kSsd ? "ssd" : "hdd");
}

// Runs one maintenance configuration at a target utilization, reusing rates
// from `rates`.
inline MaintenanceRunResult RunAtUtil(RateTable& rates, const StackConfig& stack,
                                      Personality personality, double coverage,
                                      bool skewed, double util,
                                      std::vector<MaintKind> tasks, bool use_duet,
                                      double fragmented_fraction = 0,
                                      uint64_t seed = 42) {
  MaintenanceRunConfig config;
  config.stack = stack;
  config.personality = personality;
  config.coverage = coverage;
  config.skewed = skewed;
  config.target_util = util;
  config.tasks = std::move(tasks);
  config.use_duet = use_duet;
  config.fragmented_fraction = fragmented_fraction;
  config.seed = seed;
  if (util > 0) {
    WorkloadConfig base = MakeWorkloadConfig(stack, personality, coverage, skewed,
                                             /*ops_per_sec=*/0, seed);
    base.fragmented_fraction = fragmented_fraction;
    const CalibratedRate& rate = rates.Get(stack, base, util);
    config.ops_per_sec = rate.ops_per_sec;
    config.unthrottled = rate.unthrottled;
  } else {
    config.ops_per_sec = 0;
  }
  return RunMaintenance(config);
}

}  // namespace duet

#endif  // BENCH_BENCH_COMMON_H_
