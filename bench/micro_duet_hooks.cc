// Microbenchmarks (google-benchmark) for the Duet framework's hot paths:
// page-cache hook dispatch, fetch, done-bitmap operations, and the sparse
// bitmap underlying them. These complement Fig. 9's modeled CPU overhead
// with real measured costs of this implementation.

#include <benchmark/benchmark.h>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/util/range_bitmap.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

struct HookRig {
  HookRig() : rig(1'000'000, Micros(1)), fs(&rig.loop, &rig.device, 1 << 16), duet(&fs) {
    ino = *fs.PopulateFile("/f", (1 << 14) * kPageSize);
  }
  SimRig rig;
  CowFs fs;
  DuetCore duet;
  InodeNo ino;
};

void BM_HookDispatchNoSessions(benchmark::State& state) {
  HookRig rig;
  uint64_t i = 0;
  for (auto _ : state) {
    rig.fs.cache().Insert(rig.ino, i % (1 << 14), i, false);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HookDispatchNoSessions);

void BM_HookDispatchOneEventSession(benchmark::State& state) {
  HookRig rig;
  SessionId sid = *rig.duet.RegisterBlockTask(kDuetPageAdded | kDuetPageRemoved);
  uint64_t i = 0;
  for (auto _ : state) {
    PageIdx idx = i % (1 << 14);
    rig.fs.cache().Insert(rig.ino, idx, i, false);
    rig.fs.cache().Remove(rig.ino, idx);
    ++i;
    if (i % 4096 == 0) {
      (void)rig.duet.Fetch(sid, 1 << 14);  // drain so descriptors recycle
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_HookDispatchOneEventSession);

void BM_HookDispatchSixteenSessions(benchmark::State& state) {
  HookRig rig;
  std::vector<SessionId> sids;
  for (int s = 0; s < 16; ++s) {
    sids.push_back(*rig.duet.RegisterBlockTask(kDuetPageExists));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    rig.fs.cache().Insert(rig.ino, i % (1 << 14), i, false);
    ++i;
    if (i % 4096 == 0) {
      for (SessionId sid : sids) {
        (void)rig.duet.Fetch(sid, 1 << 14);
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HookDispatchSixteenSessions);

void BM_FetchBatch(benchmark::State& state) {
  HookRig rig;
  SessionId sid = *rig.duet.RegisterBlockTask(kDuetPageAdded);
  const auto batch = static_cast<uint64_t>(state.range(0));
  uint64_t produced = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (uint64_t k = 0; k < batch; ++k) {
      rig.fs.cache().Insert(rig.ino, (produced + k) % (1 << 14), k, false);
    }
    produced += batch;
    state.ResumeTiming();
    auto items = rig.duet.Fetch(sid, batch);
    benchmark::DoNotOptimize(items);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_FetchBatch)->Arg(64)->Arg(256)->Arg(1024);

void BM_DoneBitmapSetCheck(benchmark::State& state) {
  HookRig rig;
  SessionId sid = *rig.duet.RegisterBlockTask(kDuetPageAdded);
  uint64_t b = 0;
  for (auto _ : state) {
    (void)rig.duet.SetDone(sid, b % 1'000'000);
    benchmark::DoNotOptimize(rig.duet.CheckDone(sid, (b + 1) % 1'000'000));
    ++b;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DoneBitmapSetCheck);

void BM_RangeBitmapSparseSet(benchmark::State& state) {
  RangeBitmap bm(50ull * 1024 * 1024 * 1024 / 4096);  // 50 GB of blocks
  uint64_t b = 0;
  for (auto _ : state) {
    bm.Set((b * 977) % bm.size());
    ++b;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RangeBitmapSparseSet);

void BM_GetPath(benchmark::State& state) {
  HookRig rig;
  (void)rig.fs.Mkdir("/d");
  InodeNo ino = *rig.fs.PopulateFile("/d/file", 4 * kPageSize);
  rig.fs.cache().Insert(ino, 0, 1, false);
  SessionId sid = *rig.duet.RegisterFileTask("/d", kDuetPageExists);
  for (auto _ : state) {
    auto path = rig.duet.GetPath(sid, ino);
    benchmark::DoNotOptimize(path);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GetPath);

}  // namespace
}  // namespace duet

BENCHMARK_MAIN();
