// Figure 10: I/O saved on a solid-state drive (Intel 510-class). Scrubbing
// behaves like on the HDD (both the scrubber and the workload speed up, so
// savings are unchanged); backup saves *more* on the SSD because the
// workload's sequential reads are much faster, creating more overlap during
// the still-random-read-bound backup.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 10: I/O saved on SSD vs HDD (webserver, 100% overlap)",
      "scrubbing savings unchanged qualitatively; backup savings higher on "
      "the SSD",
      stack);

  StackConfig ssd = stack;
  ssd.device = DeviceKind::kSsd;

  RateTable rates(BenchRateCachePath());
  TextTable table({"util", "scrub hdd", "scrub ssd", "backup hdd", "backup ssd"});
  for (int util_pct : UtilSweepPct(20)) {
    double util = util_pct / 100.0;
    auto run = [&](const StackConfig& s, MaintKind task) {
      return RunAtUtil(rates, s, Personality::kWebserver, 1.0, false, util, {task},
                       /*use_duet=*/true)
          .IoSavedFraction();
    };
    table.AddRow({Pct(util), Pct(run(stack, MaintKind::kScrub)),
                  Pct(run(ssd, MaintKind::kScrub)),
                  Pct(run(stack, MaintKind::kBackup)),
                  Pct(run(ssd, MaintKind::kBackup))});
    fflush(stdout);
  }
  table.Print();

  // The paper's explanation: backup time is similar on both devices (64 KiB
  // random reads perform alike), while the workload runs much faster on the
  // SSD. Show the baseline backup runtimes.
  printf("\nbaseline backup runtime (0%% utilization):\n");
  for (auto [s, name] : {std::pair{&stack, "hdd"}, std::pair{&ssd, "ssd"}}) {
    MaintenanceRunResult r = RunAtUtil(rates, *s, Personality::kWebserver, 1.0, false,
                                       0, {MaintKind::kBackup}, /*use_duet=*/false);
    printf("  %s: %s in %.1f s\n", name,
           r.task_stats[0].finished ? "finished" : "not finished",
           ToSeconds(r.task_stats[0].Runtime()));
  }
  return 0;
}
