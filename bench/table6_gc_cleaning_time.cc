// Table 6: F2fs-style segment cleaning time with and without Duet, under the
// fileserver workload at 40-70% device utilization. Duet's cost function
// selects victims with cached blocks, so cleaning needs fewer synchronous
// reads and gets faster as utilization (and thus cache traffic) grows.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Table 6: segment cleaning time (fileserver on logfs)",
      "baseline ~17 ms flat; Duet drops from ~16 ms at 40% util to ~8 ms at "
      "70% as more victim blocks are cached",
      stack);

  RateTable rates(BenchRateCachePath());
  TextTable table({"utilization", "distribution", "baseline (ms)", "duet (ms)",
                   "base cached", "duet cached"});
  auto fmt = [](const GcRunResult& r) {
    if (r.cleaning_time_ms.count() == 0) {
      return std::string("n/a");
    }
    return StrFormat("%.1f +/- %.1f", r.cleaning_time_ms.mean(),
                     r.cleaning_time_ms.ConfidenceInterval95());
  };
  auto cached_share = [](const GcRunResult& r) {
    uint64_t total = r.blocks_read + r.blocks_cached;
    return total == 0 ? std::string("n/a")
                      : Pct(static_cast<double>(r.blocks_cached) /
                            static_cast<double>(total));
  };
  std::vector<bool> skew_axis{false, true};
  int util_step = 10;
  if (SmokeMode()) {
    skew_axis = {false};
    util_step = 30;
  }
  for (bool skewed : skew_axis) {
    for (int util_pct = 40; util_pct <= 70; util_pct += util_step) {
      double util = util_pct / 100.0;
      WorkloadConfig base = MakeWorkloadConfig(stack, Personality::kFileserver, 1.0,
                                               skewed, 0, 42);
      const CalibratedRate& rate = rates.Get(stack, base, util);
      GcRunResult baseline =
          RunGc(stack, util, /*use_duet=*/false, 42,
                rate.unthrottled ? 0 : rate.ops_per_sec, rate.unthrottled, skewed);
      GcRunResult with_duet =
          RunGc(stack, util, /*use_duet=*/true, 42,
                rate.unthrottled ? 0 : rate.ops_per_sec, rate.unthrottled, skewed);
      table.AddRow({Pct(util), skewed ? "MS trace" : "uniform", fmt(baseline),
                    fmt(with_duet), cached_share(baseline), cached_share(with_duet)});
      fflush(stdout);
    }
  }
  table.Print();
  printf("\nnote: the cleaning-time gap tracks how many victim blocks are cached,\n"
         "which depends on the workload's temporal locality; the skewed (MS-trace)\n"
         "rows show the stronger effect the paper reports.\n");
  return 0;
}
