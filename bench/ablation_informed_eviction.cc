// §2 extension ablation: informed cache replacement. The paper notes (in
// its PACMan discussion) that "informed cache replacement will provide us
// additional benefits". Here the page cache's eviction policy consults
// Duet's done bitmaps: pages every session has already processed are evicted
// first, keeping unprocessed data in memory longer so tasks get more chances
// to use it.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Ablation: informed cache replacement (scrub + backup, webserver)",
      "evicting already-processed pages first should add savings on top of "
      "plain Duet (the paper's PACMan remark)",
      stack);

  RateTable rates(BenchRateCachePath());
  TextTable table({"util", "plain duet saved", "informed saved", "plain done",
                   "informed done"});
  std::vector<double> utils{0.2, 0.4, 0.6, 0.8};
  if (SmokeMode()) {
    utils = {0.4};
  }
  for (double util : utils) {
    WorkloadConfig base =
        MakeWorkloadConfig(stack, Personality::kWebserver, 1.0, false, 0, 42);
    const CalibratedRate& rate = rates.Get(stack, base, util);
    MaintenanceRunConfig config;
    config.stack = stack;
    config.personality = Personality::kWebserver;
    config.target_util = util;
    config.ops_per_sec = rate.unthrottled ? 0 : rate.ops_per_sec;
    config.unthrottled = rate.unthrottled;
    config.tasks = {MaintKind::kScrub, MaintKind::kBackup};
    config.use_duet = true;

    config.informed_eviction = false;
    MaintenanceRunResult plain = RunMaintenance(config);
    config.informed_eviction = true;
    MaintenanceRunResult informed = RunMaintenance(config);

    table.AddRow({Pct(util), Pct(plain.IoSavedFraction()),
                  Pct(informed.IoSavedFraction()),
                  Pct(plain.WorkCompletedFraction()),
                  Pct(informed.WorkCompletedFraction())});
    fflush(stdout);
  }
  table.Print();
  printf("\nnote: tasks poll every ~20 ms and consume hints long before eviction,\n"
         "so keeping unprocessed pages longer adds little — matching the paper's\n"
         "own §6.5 observation that cache size (residency) has a marginal effect\n"
         "and out-of-order processing provides most of the benefit.\n");
  return 0;
}
