// §6.5 "I/O prioritization": Duet works best when maintenance runs at low
// priority. Under a Deadline-style scheduler (no priority classes),
// maintenance I/O competes head-on: it finishes faster, but the workload is
// slowed, issues fewer requests, and the I/O saved drops.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Ablation: CFQ idle class vs Deadline (scrub + webserver, 100% overlap)",
      "without prioritization the workload slows significantly and the I/O "
      "saved is reduced",
      stack);

  StackConfig deadline = stack;
  deadline.scheduler = SchedulerKind::kDeadline;

  RateTable rates(BenchRateCachePath());
  TextTable table({"util target", "sched", "I/O saved", "workload ops",
                   "workload latency (ms)", "scrub finished at (s)"});
  std::vector<double> utils{0.3, 0.5, 0.7};
  if (SmokeMode()) {
    utils = {0.5};
  }
  for (double util : utils) {
    for (auto [s, name] : {std::pair{&stack, "cfq"}, std::pair{&deadline, "deadline"}}) {
      // Calibrate rates on the CFQ stack so both rows issue the same offered
      // load; the deadline row then shows the interference.
      WorkloadConfig base = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                               false, 0, 42);
      const CalibratedRate& rate = rates.Get(stack, base, util);
      MaintenanceRunConfig config;
      config.stack = *s;
      config.personality = Personality::kWebserver;
      config.target_util = util;
      config.ops_per_sec = rate.unthrottled ? 0 : rate.ops_per_sec;
      config.unthrottled = rate.unthrottled;
      config.tasks = {MaintKind::kScrub};
      config.use_duet = true;
      MaintenanceRunResult result = RunMaintenance(config);
      const TaskStats& scrub = result.task_stats[0];
      table.AddRow({Pct(util), name, Pct(result.IoSavedFraction()),
                    Num(static_cast<double>(result.workload_ops), 0),
                    Num(result.workload_latency_ms, 2),
                    scrub.finished ? Num(ToSeconds(scrub.finished_at), 1)
                                   : std::string("DNF")});
      fflush(stdout);
    }
  }
  table.Print();
  return 0;
}
