// Figure 6: maintenance work completed when scrubbing and backup run
// together with the webserver workload, versus device utilization. Baseline
// tasks stop completing beyond ~30% utilization; Duet-enabled tasks complete
// at 70-90%.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 6: scrub + backup work completed vs utilization (webserver)",
      "baseline completes only below ~30% utilization; Duet completes at "
      "70-90% depending on overlap",
      stack);

  RateTable rates(BenchRateCachePath());
  TextTable table({"util", "baseline done", "duet done (50% ovl)",
                   "duet done (100% ovl)"});
  for (int util_pct : UtilSweepPct()) {
    double util = util_pct / 100.0;
    MaintenanceRunResult baseline = RunAtUtil(
        rates, stack, Personality::kWebserver, 1.0, false, util,
        {MaintKind::kScrub, MaintKind::kBackup}, /*use_duet=*/false);
    MaintenanceRunResult duet_half = RunAtUtil(
        rates, stack, Personality::kWebserver, 0.5, false, util,
        {MaintKind::kScrub, MaintKind::kBackup}, /*use_duet=*/true);
    MaintenanceRunResult duet_full = RunAtUtil(
        rates, stack, Personality::kWebserver, 1.0, false, util,
        {MaintKind::kScrub, MaintKind::kBackup}, /*use_duet=*/true);
    table.AddRow({Pct(util), Pct(baseline.WorkCompletedFraction()),
                  Pct(duet_half.WorkCompletedFraction()),
                  Pct(duet_full.WorkCompletedFraction())});
    fflush(stdout);
  }
  table.Print();
  return 0;
}
