// Perf-regression harness for the stack's hot paths.
//
// Runs a fixed set of seconds-scale measurements — hand-timed hook-dispatch
// loops (the micro_duet_hooks scenarios), a fig02-style scrub run, and a
// table6-style GC run — and writes the results as JSON:
//
//   perf_runner [--smoke] [--out PATH]
//
// Each measurement records operations executed, wall-clock milliseconds,
// derived ops/sec, and (where meaningful) the peak descriptor-arena bytes
// observed. tools/perf_compare.py diffs two such files and fails on
// regression; CI runs it against the checked-in bench/BENCH_hotpath.json
// baseline (refresh the baseline with --out bench/BENCH_hotpath.json after
// intentional perf changes).
//
// The simulated work is deterministic (fixed seeds); only the wall-clock
// numbers vary run to run, which is exactly what the harness is gating.
// --long runs the same op counts as --smoke but repeats each measurement
// and keeps the minimum wall-clock, so a baseline refreshed with --long is
// directly comparable to a single-shot --smoke run in CI.

#include <chrono>
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/util/crc32c.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  std::string name;
  uint64_t ops = 0;
  double wall_ms = 0;
  uint64_t peak_descriptor_bytes = 0;
};

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// The micro_duet_hooks HookRig, sized identically so numbers are comparable.
struct HookRig {
  HookRig() : rig(1'000'000, Micros(1)), fs(&rig.loop, &rig.device, 1 << 16), duet(&fs) {
    ino = *fs.PopulateFile("/f", (1 << 14) * kPageSize);
  }
  SimRig rig;
  CowFs fs;
  DuetCore duet;
  InodeNo ino;
};

Measurement MeasureHookDispatchNoSessions(uint64_t iters) {
  HookRig rig;
  auto start = Clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    rig.fs.cache().Insert(rig.ino, i % (1 << 14), i, false);
  }
  Measurement m{"hook_dispatch_no_sessions", iters, MsSince(start)};
  m.peak_descriptor_bytes = rig.duet.DescriptorMemoryBytes();
  return m;
}

Measurement MeasureHookDispatchOneEventSession(uint64_t iters) {
  HookRig rig;
  SessionId sid = *rig.duet.RegisterBlockTask(kDuetPageAdded | kDuetPageRemoved);
  uint64_t peak = 0;
  auto start = Clock::now();
  for (uint64_t i = 1; i <= iters; ++i) {
    PageIdx idx = i % (1 << 14);
    rig.fs.cache().Insert(rig.ino, idx, i, false);
    rig.fs.cache().Remove(rig.ino, idx);
    if (i % 4096 == 0) {
      peak = std::max(peak, rig.duet.DescriptorMemoryBytes());
      (void)rig.duet.Fetch(sid, 1 << 14);  // drain so descriptors recycle
    }
  }
  // 2 hook events per iteration (insert + remove).
  Measurement m{"hook_dispatch_one_event_session", iters * 2, MsSince(start)};
  m.peak_descriptor_bytes = peak;
  return m;
}

Measurement MeasureHookDispatchSixteenSessions(uint64_t iters) {
  HookRig rig;
  std::vector<SessionId> sids;
  for (int s = 0; s < 16; ++s) {
    sids.push_back(*rig.duet.RegisterBlockTask(kDuetPageExists));
  }
  uint64_t peak = 0;
  auto start = Clock::now();
  for (uint64_t i = 1; i <= iters; ++i) {
    rig.fs.cache().Insert(rig.ino, i % (1 << 14), i, false);
    if (i % 4096 == 0) {
      peak = std::max(peak, rig.duet.DescriptorMemoryBytes());
      for (SessionId sid : sids) {
        (void)rig.duet.Fetch(sid, 1 << 14);
      }
    }
  }
  Measurement m{"hook_dispatch_sixteen_sessions", iters, MsSince(start)};
  m.peak_descriptor_bytes = peak;
  return m;
}

Measurement MeasureFetchBatch(uint64_t batches, uint64_t batch) {
  HookRig rig;
  SessionId sid = *rig.duet.RegisterBlockTask(kDuetPageAdded);
  uint64_t produced = 0;
  double wall_ms = 0;
  for (uint64_t b = 0; b < batches; ++b) {
    for (uint64_t k = 0; k < batch; ++k) {
      rig.fs.cache().Insert(rig.ino, (produced + k) % (1 << 14), k, false);
    }
    produced += batch;
    auto start = Clock::now();
    auto items = rig.duet.Fetch(sid, batch);
    wall_ms += MsSince(start);
    if (!items.ok()) {
      break;
    }
  }
  return Measurement{"fetch_batch_256", batches * batch, wall_ms};
}

Measurement MeasureCrc32c(uint64_t iters) {
  std::vector<uint8_t> buf(1 << 16);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  uint32_t acc = 0;
  auto start = Clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    acc = Crc32c(buf.data(), buf.size(), acc);
  }
  Measurement m{std::string("crc32c_64k_") + Crc32cImplName(), iters,
                MsSince(start)};
  if (acc == 0xdeadbeef) {  // keep the checksum observable
    printf("(unlikely)\n");
  }
  return m;
}

Measurement MeasureScrubRun(const StackConfig& stack) {
  RateTable rates((std::string()));  // in-memory rate cache
  auto start = Clock::now();
  MaintenanceRunResult result =
      RunAtUtil(rates, stack, Personality::kWebserver, /*coverage=*/1.0,
                /*skewed=*/false, /*util=*/0.6, {MaintKind::kScrub},
                /*use_duet=*/true);
  Measurement m{"fig02_scrub_duet_smoke", result.workload_ops, MsSince(start)};
  return m;
}

Measurement MeasureGcRun(const StackConfig& stack) {
  auto start = Clock::now();
  GcRunResult result = RunGc(stack, /*target_util=*/0.6, /*use_duet=*/true,
                             /*seed=*/42, /*ops_per_sec=*/800,
                             /*unthrottled=*/false, /*skewed=*/false);
  Measurement m{"table6_gc_duet_smoke", result.segments_cleaned, MsSince(start)};
  return m;
}

void WriteJson(const std::vector<Measurement>& ms, const std::string& path) {
  FILE* out = path.empty() ? stdout : fopen(path.c_str(), "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot open %s\n", path.c_str());
    exit(1);
  }
  fprintf(out, "{\n  \"schema\": 1,\n  \"crc32c_impl\": \"%s\",\n",
          Crc32cImplName());
  fprintf(out, "  \"measurements\": [\n");
  for (size_t i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    double ops_per_sec = m.wall_ms > 0 ? m.ops / (m.wall_ms / 1000.0) : 0;
    fprintf(out,
            "    {\"name\": \"%s\", \"ops\": %llu, \"wall_ms\": %.3f, "
            "\"ops_per_sec\": %.1f, \"peak_descriptor_bytes\": %llu}%s\n",
            m.name.c_str(), static_cast<unsigned long long>(m.ops), m.wall_ms,
            ops_per_sec, static_cast<unsigned long long>(m.peak_descriptor_bytes),
            i + 1 < ms.size() ? "," : "");
  }
  fprintf(out, "  ]\n}\n");
  if (out != stdout) {
    fclose(out);
  }
}

}  // namespace
}  // namespace duet

int main(int argc, char** argv) {
  using namespace duet;
  StackConfig stack = SmokeStackConfig();
  std::string out_path;
  int reps = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--smoke") {
      // default; kept so the ctest harness can pass it uniformly
    } else if (arg == "--long") {
      // Baseline-refresh mode: identical op counts (so wall_ms stays
      // comparable with --smoke runs), but each measurement repeats and the
      // minimum wall-clock is kept — the least-perturbed run is the best
      // estimate of the true cost on a shared machine.
      reps = 5;
    } else if (arg == "--reps" && i + 1 < argc) {
      // Explicit repetition count; CI uses --smoke --reps 3 so the gated
      // side is also a minimum, not a single sample of scheduler jitter.
      reps = std::max(1, atoi(argv[++i]));
    }
  }

  // Runs fn() `reps` times and keeps the repetition with the lowest wall_ms.
  auto best = [reps](auto fn) {
    Measurement m = fn();
    for (int r = 1; r < reps; ++r) {
      Measurement again = fn();
      if (again.wall_ms < m.wall_ms) {
        m = again;
      }
    }
    return m;
  };

  std::vector<Measurement> ms;
  ms.push_back(best([] { return MeasureHookDispatchNoSessions(400'000); }));
  ms.push_back(best([] { return MeasureHookDispatchOneEventSession(200'000); }));
  ms.push_back(best([] { return MeasureHookDispatchSixteenSessions(200'000); }));
  // Enough batches that the timed Fetch region is tens of ms — sub-ms
  // measurements can't be gated at 25% on a shared host.
  ms.push_back(best([] { return MeasureFetchBatch(20'000, 256); }));
  ms.push_back(best([] { return MeasureCrc32c(2'000); }));
  ms.push_back(best([&stack] { return MeasureScrubRun(stack); }));
  ms.push_back(best([&stack] { return MeasureGcRun(stack); }));

  for (const Measurement& m : ms) {
    double ops_per_sec = m.wall_ms > 0 ? m.ops / (m.wall_ms / 1000.0) : 0;
    printf("%-36s %10llu ops  %9.2f ms  %12.0f ops/s  peak_desc %llu B\n",
           m.name.c_str(), static_cast<unsigned long long>(m.ops), m.wall_ms,
           ops_per_sec, static_cast<unsigned long long>(m.peak_descriptor_bytes));
  }
  if (!out_path.empty()) {
    WriteJson(ms, out_path);
    printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
