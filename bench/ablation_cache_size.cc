// §6.5 "Page cache size": varying the page-cache-to-data ratio has only a
// marginal effect on the savings — out-of-order processing, not cache
// residency time, provides most of the benefit (work is marked done when
// data is *accessed*, whether or not it stays cached).

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig base_stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Ablation: page cache size (scrub + webserver, 100% overlap, 50% util)",
      "changing the cache:data ratio has a marginal effect on I/O saved",
      base_stack);

  uint64_t data_pages = base_stack.data_bytes / kPageSize;
  TextTable table({"cache:data ratio", "cache pages", "I/O saved",
                   "scrub finished"});
  std::vector<double> ratios{0.005, 0.01, 0.02, 0.04, 0.08};
  if (SmokeMode()) {
    ratios = {0.01, 0.04};
  }
  for (double ratio : ratios) {
    StackConfig stack = base_stack;
    stack.cache_pages =
        std::max<uint64_t>(64, static_cast<uint64_t>(ratio * static_cast<double>(data_pages)));
    static RateTable rates(BenchRateCachePath());
    MaintenanceRunResult result =
        RunAtUtil(rates, stack, Personality::kWebserver, 1.0, false, 0.5,
                  {MaintKind::kScrub}, /*use_duet=*/true);
    table.AddRow({Pct(ratio), Num(static_cast<double>(stack.cache_pages), 0),
                  Pct(result.IoSavedFraction()),
                  result.all_finished ? "yes" : "no"});
    fflush(stdout);
  }
  table.Print();
  return 0;
}
