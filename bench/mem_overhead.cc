// §6.4 memory overhead: item descriptors and session bitmaps.
//
// Paper numbers (50 GB of data, N = 16 sessions): 32-byte merged
// descriptors; at most 2 x cached pages of descriptors alive for state
// sessions = 1.5% of cache memory; done bitmaps ~1.47 MB measured (1.56 MB
// worst case) for 50 GB of blocks.

#include "bench/bench_common.h"
#include "src/util/range_bitmap.h"

using namespace duet;

namespace {

struct StateSessionResult {
  uint64_t peak_descriptors = 0;
  uint64_t cache_capacity = 0;
  uint64_t descriptor_bytes = 0;
  uint64_t cache_bytes = 0;
};

// Runs the webserver over a state session; `poll` controls whether the
// session fetches (as real tasks do, many times a second) or never fetches.
StateSessionResult RunStateSession(const StackConfig& stack, bool poll) {
  WorkloadConfig workload = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                               false, /*ops_per_sec=*/0, 42);
  CowRig rig(stack, workload);
  Result<SessionId> sid = rig.duet().RegisterBlockTask(kDuetPageExists);
  assert(sid.ok());
  uint64_t peak_descriptors = 0;
  std::function<void()> tick = [&] {
    peak_descriptors = std::max(peak_descriptors, rig.duet().descriptor_count());
    if (poll) {
      while (true) {
        auto items = rig.duet().Fetch(*sid, 256);
        if (!items.ok() || items->empty()) {
          break;
        }
      }
    }
    rig.loop().ScheduleAfter(Millis(20), tick);
  };
  rig.loop().ScheduleAfter(Millis(20), tick);
  rig.workload().Start();
  rig.loop().RunUntil(SmokeMode() ? stack.window : Seconds(10));
  rig.workload().Stop();

  uint64_t cached = rig.fs().cache().PageCount();
  uint64_t descriptors = rig.duet().descriptor_count();
  printf("state session, webserver running, %s:\n",
         poll ? "fetching every 20 ms" : "never fetching");
  printf("  cached pages:        %llu\n", static_cast<unsigned long long>(cached));
  printf("  item descriptors:    %llu now, %llu peak  (bound: 2x cached = %llu)\n",
         static_cast<unsigned long long>(descriptors),
         static_cast<unsigned long long>(peak_descriptors),
         static_cast<unsigned long long>(2 * cached));
  printf("  descriptor memory:   %.1f KiB (arena + page table) = %.2f%% of "
         "cache memory (paper, descriptors alone: 1.5%%)\n\n",
         static_cast<double>(rig.duet().DescriptorMemoryBytes()) / 1024.0,
         100.0 * static_cast<double>(rig.duet().DescriptorMemoryBytes()) /
             (static_cast<double>(cached) * kPageSize));
  StateSessionResult out;
  out.peak_descriptors = peak_descriptors;
  out.cache_capacity = rig.fs().cache().capacity();
  out.descriptor_bytes = rig.duet().DescriptorMemoryBytes();
  out.cache_bytes = cached * kPageSize;
  return out;
}

// Envelope check: prints and returns false when a bound is violated, so the
// smoke run fails loudly if descriptor/bitmap memory drifts off the paper's
// envelope.
bool CheckEnvelope(const char* what, double value, double bound) {
  bool ok = value <= bound;
  printf("envelope: %-46s %10.3f <= %.3f  %s\n", what, value, bound,
         ok ? "ok" : "VIOLATED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Memory overhead: descriptors and bitmaps (§6.4)",
      "32 B/descriptor; <=2x cached pages alive for state sessions (1.5% of "
      "cache memory); ~1.5 MB of done bitmap per 50 GB scrubbed",
      stack);

  StateSessionResult polling = RunStateSession(stack, /*poll=*/true);
  RunStateSession(stack, /*poll=*/false);

  // Done-bitmap footprint at the paper's scale: one bit per 4 KiB block of a
  // 50 GB device, fully marked (the scrub-complete worst case).
  const uint64_t blocks_50gb = 50ull * 1024 * 1024 * 1024 / kPageSize;
  RangeBitmap done(blocks_50gb);
  done.SetRange(0, blocks_50gb);
  printf("done bitmap, 50 GB of data fully scrubbed:\n");
  printf("  %.2f MiB across %llu chunks (paper: 1.47 MiB measured, 1.56 MiB "
         "worst case)\n",
         static_cast<double>(done.MemoryBytes()) / (1024.0 * 1024.0),
         static_cast<unsigned long long>(done.chunk_count()));

  // Sparse usage: only 1% of the device marked, in scattered runs.
  RangeBitmap sparse(blocks_50gb);
  for (uint64_t i = 0; i < blocks_50gb / 100; i += 1000) {
    sparse.SetRange(i * 100, i * 100 + 1000);
  }
  printf("  sparse marking (1%% of blocks): %.3f MiB — chunks allocate on "
         "demand\n\n",
         static_cast<double>(sparse.MemoryBytes()) / (1024.0 * 1024.0));

  // Hard envelope checks (exit non-zero on violation so the bench_smoke
  // ctest entry gates them):
  //  * a polling state session's live descriptors stay within the paper's
  //    2 x cached-pages bound (§6.4);
  //  * the sizeof-accurate descriptor store (arena capacity + freelist +
  //    page table, i.e. more than the paper's bare 32 B/descriptor) stays a
  //    small fraction of cache memory;
  //  * a fully-set done bitmap for 50 GB of blocks stays within the paper's
  //    ~1.5 MiB / ~1 MB-per-task envelope (2 MiB with chunk headers).
  bool ok = true;
  ok &= CheckEnvelope("peak descriptors / cache capacity (poll)",
                      static_cast<double>(polling.peak_descriptors) /
                          static_cast<double>(polling.cache_capacity),
                      2.0);
  ok &= CheckEnvelope("descriptor memory % of cache memory",
                      100.0 * static_cast<double>(polling.descriptor_bytes) /
                          static_cast<double>(polling.cache_bytes),
                      8.0);
  ok &= CheckEnvelope("done bitmap MiB, 50 GB fully scrubbed",
                      static_cast<double>(done.MemoryBytes()) / (1024.0 * 1024.0),
                      2.0);
  if (!ok) {
    printf("memory envelope violated\n");
    return 1;
  }
  return 0;
}
