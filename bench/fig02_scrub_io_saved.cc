// Figure 2: I/O saved when the scrubbing task runs together with the
// webserver workload, as a function of device utilization (x-axis) for
// different data-overlap fractions (series), plus the skewed (MS-trace)
// access distribution at 100% overlap (§6.2 reports skew costs 15-30%).

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 2: scrubbing I/O saved (webserver workload)",
      "savings grow with utilization and overlap, plateau at the overlap "
      "fraction; skewed access reduces savings by 15-30%",
      stack);

  RateTable rates(BenchRateCachePath());
  std::vector<std::string> headers{"util"};
  for (double overlap : OverlapSweep()) {
    headers.push_back(StrFormat("overlap %.0f%%", overlap * 100));
  }
  headers.push_back("100% (MS trace)");
  TextTable table(std::move(headers));
  for (int util_pct : UtilSweepPct()) {
    double util = util_pct / 100.0;
    std::vector<std::string> row{Pct(util)};
    for (double overlap : OverlapSweep()) {
      MaintenanceRunResult result =
          RunAtUtil(rates, stack, Personality::kWebserver, overlap,
                    /*skewed=*/false, util, {MaintKind::kScrub}, /*use_duet=*/true);
      row.push_back(Pct(result.IoSavedFraction()));
    }
    MaintenanceRunResult skewed =
        RunAtUtil(rates, stack, Personality::kWebserver, 1.0,
                  /*skewed=*/true, util, {MaintKind::kScrub}, /*use_duet=*/true);
    row.push_back(Pct(skewed.IoSavedFraction()));
    table.AddRow(std::move(row));
    fflush(stdout);
  }
  table.Print();

  // §6.2 also reports write-heavier workloads saving less; show the
  // personality effect at one utilization.
  if (SmokeMode()) {
    return 0;
  }
  printf("\npersonality effect at 70%% utilization, 100%% overlap:\n");
  TextTable ptable({"personality", "R:W", "I/O saved"});
  ptable.AddRow({"webserver", "10:1",
                 Pct(RunAtUtil(rates, stack, Personality::kWebserver, 1.0, false, 0.7,
                               {MaintKind::kScrub}, true)
                         .IoSavedFraction())});
  ptable.AddRow({"webproxy", "4:1",
                 Pct(RunAtUtil(rates, stack, Personality::kWebproxy, 1.0, false, 0.7,
                               {MaintKind::kScrub}, true)
                         .IoSavedFraction())});
  ptable.AddRow({"fileserver", "1:2",
                 Pct(RunAtUtil(rates, stack, Personality::kFileserver, 1.0, false, 0.7,
                               {MaintKind::kScrub}, true)
                         .IoSavedFraction())});
  ptable.Print();
  return 0;
}
