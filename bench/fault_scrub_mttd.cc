// Fault detection latency: baseline vs Duet scrubbing under an identical
// injected-fault schedule, at equal foreground utilization.
//
// The scrubber loops continuous verification passes for the whole window.
// In Duet mode a pass skips blocks already verified by the workload's own
// reads, so each pass finishes sooner and the scan revisits every block more
// often — which is exactly what bounds the time from a fault's injection to
// its detection (MTTD). Both modes replay the same FaultPlan (the printed
// fingerprint is identical), so detected/repaired counts are comparable.

#include "bench/bench_common.h"
#include "src/fault/fault_injector.h"

using namespace duet;

namespace {

struct MttdRun {
  FaultStats faults;
  uint32_t fingerprint = 0;
  uint64_t passes = 0;       // completed scrub passes
  uint64_t scrub_io = 0;     // scrub device I/O (pages, reads + repairs)
  uint64_t repaired = 0;     // blocks the scrubber rewrote from a good copy
  uint64_t unrecoverable = 0;
  double measured_util = 0;
};

MttdRun RunMttd(StackConfig stack, bool use_duet, double ops_per_sec,
                bool unthrottled, uint64_t seed, uint64_t fault_seed,
                double fault_rate) {
  // Detection latency is governed by how often scrubbing re-covers the
  // device, so the run spans several scrub passes: faults arrive during the
  // first (calibrated) window, and the clock keeps going for three more so
  // every pass-period difference shows up in the MTTD.
  SimDuration fault_window = stack.window;
  stack.window = 4 * fault_window;
  // Half the files stay cold: the workload never re-reads them, so faults
  // landing there are detected only by the scan — their detection latency is
  // set by the pass period, which is exactly what Duet shortens. (Faults are
  // still injected uniformly over the whole device in both modes.)
  WorkloadConfig workload =
      MakeWorkloadConfig(stack, Personality::kWebserver, /*coverage=*/0.5,
                         /*skewed=*/false, /*ops_per_sec=*/0, seed);
  workload.ops_per_sec = unthrottled ? 0 : ops_per_sec;
  CowRig rig(stack, workload);

  FaultPlanConfig fc;
  fc.kinds = kFaultLatent | kFaultBitRot;
  fc.faults_per_second = fault_rate;
  fc.window = fault_window;
  FaultInjector injector(
      &rig.loop(),
      FaultPlan::Generate(fault_seed, fc, rig.fs().capacity_blocks()));
  rig.fs().AttachFaultInjector(&injector);
  injector.Start();

  ScrubberConfig sc;
  sc.use_duet = use_duet;
  Scrubber scrub(&rig.fs(), &rig.duet(), sc);

  MttdRun out;
  uint64_t completed_io = 0;
  // Continuous scrubbing: each finished pass immediately starts the next
  // (fresh Duet session, fresh done bitmap), until the window closes.
  std::function<void()> start_pass = [&] {
    scrub.Start([&] {
      ++out.passes;
      completed_io += scrub.stats().TotalIoPages();
      rig.loop().ScheduleAfter(Millis(10), [&] { start_pass(); });
    });
  };
  start_pass();
  rig.workload().Start();
  rig.loop().RunUntil(stack.window);
  rig.workload().Stop();
  uint64_t partial_io = scrub.stats().TotalIoPages();
  scrub.Stop();

  out.faults = injector.stats();
  out.fingerprint = injector.plan().Fingerprint();
  out.scrub_io = completed_io + partial_io;
  out.repaired = scrub.blocks_repaired();  // cumulative across passes
  out.unrecoverable = scrub.blocks_unrecoverable();
  out.measured_util = rig.UtilizationSince(0, 0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Fault scrubbing: mean time to detect (webserver workload)",
      "continuous Duet scrubbing re-covers the device more often than the "
      "baseline at the same foreground utilization, lowering MTTD",
      stack);

  const uint64_t kSeed = 42;
  const uint64_t kFaultSeed = 7;
  const double kFaultRate = 2.0;  // mean faults/second (latent + bit rot)

  RateTable rates(BenchRateCachePath());
  TextTable table({"util", "mode", "plan", "injected", "detected", "repaired",
                   "unrec", "MTTD (s)", "passes", "scrub I/O"});
  std::vector<double> utils{0.3, 0.5, 0.7};
  if (SmokeMode()) {
    utils = {0.5};
  }
  for (double util : utils) {
    WorkloadConfig base =
        MakeWorkloadConfig(stack, Personality::kWebserver, 0.5, false, 0, kSeed);
    const CalibratedRate& rate = rates.Get(stack, base, util);
    for (bool use_duet : {false, true}) {
      MttdRun r = RunMttd(stack, use_duet, rate.ops_per_sec, rate.unthrottled,
                          kSeed, kFaultSeed, kFaultRate);
      char plan[16];
      snprintf(plan, sizeof(plan), "%08x", r.fingerprint);
      char mttd[16];
      snprintf(mttd, sizeof(mttd), "%.2f", r.faults.MeanTimeToDetectSeconds());
      table.AddRow({Pct(util), use_duet ? "duet" : "baseline", plan,
                    std::to_string(r.faults.injected),
                    std::to_string(r.faults.detected),
                    std::to_string(r.faults.repaired),
                    std::to_string(r.faults.unrecoverable), mttd,
                    std::to_string(r.passes), std::to_string(r.scrub_io)});
      fflush(stdout);
    }
  }
  table.Print();
  printf("\nidentical plan fingerprints per column pair = identical injected "
         "fault schedule (replay guarantee)\n");
  return 0;
}
