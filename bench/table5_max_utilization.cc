// Table 5: maximum device utilization (10% steps) at which each maintenance
// task still completes within the experiment window, baseline vs Duet, for
// the paper's workload grid.

#include "bench/bench_common.h"

using namespace duet;

namespace {

struct Row {
  Personality personality;
  const char* workload_name;
  const char* rw;
  double overlap;
  bool skewed;
};

double MaxUtil(RateTable& rates, const StackConfig& stack, const Row& row,
               MaintKind task, bool use_duet, double frag) {
  double best = -1;
  int step = SmokeMode() ? 50 : 10;
  for (int util_pct = 0; util_pct <= 100; util_pct += step) {
    double util = util_pct / 100.0;
    MaintenanceRunResult result = RunAtUtil(rates, stack, row.personality,
                                            row.overlap, row.skewed, util, {task},
                                            use_duet, frag);
    // Only count levels the workload can actually sustain.
    bool reachable = util_pct == 0 || result.measured_util >= util - 0.08;
    if (result.all_finished && reachable) {
      best = util;
    } else if (util_pct > 0) {
      break;
    }
  }
  return best;
}

std::string FmtUtil(double util) {
  return util < 0 ? std::string("n/a") : Pct(util);
}

}  // namespace

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Table 5: maximum utilization with and without Duet",
      "baseline scrub caps at ~70% regardless of workload, backup at ~40%, "
      "defrag 40-60%; Duet raises each, up to 100% at full overlap",
      stack);

  std::vector<Row> rows{
      {Personality::kWebserver, "webserver", "10:1", 0.25, false},
      {Personality::kWebserver, "webserver", "10:1", 0.50, false},
      {Personality::kWebserver, "webserver", "10:1", 0.75, false},
      {Personality::kWebserver, "webserver", "10:1", 1.00, false},
      {Personality::kWebserver, "webserver", "10:1", 1.00, true},
      {Personality::kWebproxy, "webproxy", "4:1", 1.00, false},
      {Personality::kWebproxy, "webproxy", "4:1", 1.00, true},
      {Personality::kFileserver, "fileserver", "1:2", 1.00, false},
      {Personality::kFileserver, "fileserver", "1:2", 1.00, true},
  };
  std::vector<MaintKind> task_kinds{MaintKind::kScrub, MaintKind::kBackup,
                                    MaintKind::kDefrag};
  if (SmokeMode()) {
    rows = {{Personality::kWebserver, "webserver", "10:1", 1.00, false}};
    task_kinds = {MaintKind::kScrub};
  }

  RateTable rates(BenchRateCachePath());
  TextTable table({"workload", "overlap", "distribution", "scrub base", "scrub duet",
                   "backup base", "backup duet", "defrag base", "defrag duet"});
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.workload_name, Pct(row.overlap),
                                   row.skewed ? "MS trace" : "uniform"};
    for (MaintKind task : task_kinds) {
      double frag = task == MaintKind::kDefrag ? 0.1 : 0.0;
      cells.push_back(FmtUtil(MaxUtil(rates, stack, row, task, false, frag)));
      cells.push_back(FmtUtil(MaxUtil(rates, stack, row, task, true, frag)));
      fflush(stdout);
    }
    table.AddRow(std::move(cells));
  }
  table.Print();
  return 0;
}
