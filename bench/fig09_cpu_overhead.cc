// Figure 9: CPU overhead of Duet. A file task registers the file-system
// root and fetches events every 10/20/40 ms while the webserver workload
// runs unthrottled (the paper measures ~12 page events/ms and 0.5-1.5% CPU
// overhead, with state-based notifications slightly cheaper because events
// merge, and little sensitivity to the fetch interval).
//
// The simulator executes hooks in zero virtual time, so the overhead is
// reported through a cost model applied to the counted operations. The
// per-operation costs are calibrated to the paper's measurement (~1 us of
// kernel work per hooked event end-to-end).

#include "bench/bench_common.h"

using namespace duet;

namespace {

// Cost model (nanoseconds per operation), calibrated against §6.4.
constexpr double kHookCost = 350;        // page-cache hook dispatch
constexpr double kDescriptorCost = 450;  // session check + flag update
constexpr double kItemCopyCost = 180;    // copying one item to the task
constexpr double kFetchCallCost = 4000;  // per fetch syscall

struct OverheadResult {
  double events_per_ms = 0;
  double cpu_overhead_pct = 0;
  uint64_t items = 0;
};

OverheadResult Measure(const StackConfig& stack, uint8_t mask,
                       SimDuration fetch_interval) {
  // Fresh context per measurement: the cost model below reads the duet.*
  // registry counters, so each configuration must start from zero.
  obs::ObsContext obs_ctx;
  obs::ObsScope obs_scope(&obs_ctx);

  WorkloadConfig workload = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                               false, /*ops_per_sec=*/0, 42);
  CowRig rig(stack, workload);
  Result<SessionId> sid = rig.duet().RegisterFileTask("/", mask);
  assert(sid.ok());

  uint64_t items = 0;
  std::function<void()> poll = [&] {
    while (true) {
      Result<std::vector<DuetItem>> batch = rig.duet().Fetch(*sid, 256);
      if (!batch.ok() || batch->empty()) {
        break;
      }
      items += batch->size();
    }
    rig.loop().ScheduleAfter(fetch_interval, poll);
  };
  rig.loop().ScheduleAfter(fetch_interval, poll);
  rig.workload().Start();
  SimDuration window = SmokeMode() ? stack.window : Seconds(10);
  rig.loop().RunUntil(window);
  rig.workload().Stop();

  obs::MetricsSnapshot snap = obs_ctx.metrics.Snapshot();
  double hooks = static_cast<double>(snap.Value("duet.hooks"));
  double cost_ns =
      hooks * kHookCost +
      static_cast<double>(snap.Value("duet.events.delivered")) * kDescriptorCost +
      static_cast<double>(snap.Value("duet.items.fetched")) * kItemCopyCost +
      static_cast<double>(snap.Value("duet.fetch.calls")) * kFetchCallCost;
  OverheadResult out;
  out.events_per_ms = hooks / ToMillis(window);
  out.cpu_overhead_pct = cost_ns / static_cast<double>(window) * 100.0;
  out.items = items;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 9: CPU overhead of Duet (webserver unthrottled)",
      "~0.5-1.5% CPU overhead at ~12 page events/ms; state-based sessions "
      "slightly cheaper (events merge); insensitive to fetch frequency",
      stack);

  const uint8_t event_mask =
      kDuetPageAdded | kDuetPageRemoved | kDuetPageDirtied | kDuetPageFlushed;
  const uint8_t state_mask = kDuetPageExists | kDuetPageModified;

  TextTable table({"fetch interval", "mode", "events/ms", "items fetched",
                   "CPU overhead", "at paper's 12 ev/ms"});
  std::vector<uint64_t> intervals_ms{10, 20, 40};
  if (SmokeMode()) {
    intervals_ms = {10};
  }
  for (uint64_t interval_ms : intervals_ms) {
    for (auto [mask, name] :
         {std::pair{event_mask, "events"}, std::pair{state_mask, "state"}}) {
      OverheadResult r = Measure(stack, mask, Millis(interval_ms));
      // Overhead scales with the event rate; normalize to the paper's
      // measured ~12 events/ms for a like-for-like comparison.
      double normalized =
          r.events_per_ms > 0 ? r.cpu_overhead_pct * 12.0 / r.events_per_ms : 0;
      table.AddRow({StrFormat("%llu ms", static_cast<unsigned long long>(interval_ms)),
                    name, Num(r.events_per_ms, 1),
                    Num(static_cast<double>(r.items), 0),
                    StrFormat("%.2f%%", r.cpu_overhead_pct),
                    StrFormat("%.2f%%", normalized)});
      fflush(stdout);
    }
  }
  table.Print();
  printf("\ncost model: hook %.0f ns, descriptor update %.0f ns, item copy %.0f ns, "
         "fetch call %.0f ns (calibrated to the paper's ~1 us/event)\n",
         kHookCost, kDescriptorCost, kItemCopyCost, kFetchCallCost);
  return 0;
}
