// Figure 8: maintenance work completed when scrubbing, backup, and
// defragmentation run together with the webserver workload. Without Duet the
// three tasks cannot complete even on an idle device (the combined work
// exceeds the window); with Duet everything completes up to ~50% utilization.

#include "bench/bench_common.h"

using namespace duet;

int main(int argc, char** argv) {
  StackConfig stack = ParseStackArgs(argc, argv);
  PrintBenchHeader(
      "Figure 8: scrub + backup + defrag work completed vs utilization",
      "baseline completes ~25% of the work even when idle; Duet completes "
      "all work up to ~50% utilization",
      stack);

  constexpr double kFrag = 0.1;
  RateTable rates(BenchRateCachePath());
  TextTable table({"util", "baseline done", "duet done"});
  for (int util_pct : UtilSweepPct()) {
    double util = util_pct / 100.0;
    MaintenanceRunResult baseline = RunAtUtil(
        rates, stack, Personality::kWebserver, 1.0, false, util,
        {MaintKind::kScrub, MaintKind::kBackup, MaintKind::kDefrag},
        /*use_duet=*/false, kFrag);
    MaintenanceRunResult with_duet = RunAtUtil(
        rates, stack, Personality::kWebserver, 1.0, false, util,
        {MaintKind::kScrub, MaintKind::kBackup, MaintKind::kDefrag},
        /*use_duet=*/true, kFrag);
    table.AddRow({Pct(util), Pct(baseline.WorkCompletedFraction()),
                  Pct(with_duet.WorkCompletedFraction())});
    fflush(stdout);
  }
  table.Print();
  return 0;
}
