// Crash-recovery cost: how long a remount takes as the synced log tail grows,
// and how much maintenance work a crash destroys with and without the tasks'
// persisted cursors.
//
// Expectation: logfs recovery time scales with the replayed tail (roll-forward
// reads every record since the last checkpoint) while cowfs rollback stays
// flat (it restores the last committed superblock and discards the tail).
// With persisted cursors, the scrubber and backup resume mid-pass after the
// crash, so the maintenance work lost is bounded by one cursor-save interval —
// an opportunistic analogue of the paper's claim that maintenance should ride
// along with the system instead of restarting from scratch, which is exactly
// what a cursorless (inotify-style, soft-state-only) task has to do.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/crash_rig.h"

using namespace duet;

namespace {

CrashRunConfig BenchBase(bool smoke) {
  CrashRunConfig config;
  config.capacity_blocks = smoke ? 4096 : 16384;
  config.cache_pages = 128;
  config.files = smoke ? 8 : 32;
  config.file_pages = smoke ? 16 : 32;
  config.writes = smoke ? 256 : 1024;
  config.write_gap = Millis(2);
  config.sync_every = Millis(40);
  return config;
}

void RecoveryTimeVsTail(bool smoke) {
  printf("-- recovery time vs synced tail (no mid-run checkpoint) --\n");
  printf("%-6s %10s %10s %10s %12s %12s\n", "fs", "crash_ms", "restored",
         "replayed", "mount_ms", "rolled_back");
  const int points = smoke ? 3 : 8;
  for (CrashFsKind fs : {CrashFsKind::kLog, CrashFsKind::kCow}) {
    for (int i = 1; i <= points; ++i) {
      CrashRunConfig config = BenchBase(smoke);
      config.fs = fs;
      config.seed = 1000 + i;
      config.checkpoint_every = Seconds(100);  // the tail only ever grows
      const SimTime window = config.writes * config.write_gap;
      config.crash_at_time = (i * window) / points;
      CrashRunResult r = RunCrashRecovery(config);
      if (!r.ok()) {
        printf("%-6s %10.0f  INCONSISTENT (%llu lost)\n",
               fs == CrashFsKind::kLog ? "logfs" : "cowfs",
               static_cast<double>(config.crash_at_time) / kMillisecond,
               static_cast<unsigned long long>(r.lost_pages));
        continue;
      }
      printf("%-6s %10.0f %10llu %10llu %12.2f %12llu\n",
             fs == CrashFsKind::kLog ? "logfs" : "cowfs",
             static_cast<double>(config.crash_at_time) / kMillisecond,
             static_cast<unsigned long long>(r.mount.blocks_restored),
             static_cast<unsigned long long>(r.mount.blocks_replayed),
             static_cast<double>(r.mount.duration) / kMillisecond,
             static_cast<unsigned long long>(r.rolled_back_pages));
    }
  }
  printf("\n");
}

void MaintenanceWorkLost(bool smoke) {
  printf("-- maintenance work preserved across a crash (cowfs, scrub+backup) --\n");
  printf("%-10s %12s %14s %16s\n", "crash_ms", "scrub_resume",
         "backup_resumed", "pages_not_redone");
  const int points = smoke ? 3 : 8;
  uint64_t preserved_total = 0;
  for (int i = 0; i < points; ++i) {
    CrashRunConfig config = BenchBase(smoke);
    config.fs = CrashFsKind::kCow;
    config.run_tasks = true;
    config.seed = 2000 + i;
    config.checkpoint_every = Millis(60);
    // Spread points across the window where the tasks are actually running.
    config.crash_at_time = Millis(smoke ? 10 : 15) + i * Millis(smoke ? 10 : 12);
    CrashRunResult r = RunCrashRecovery(config);
    // Pages the restarted tasks did NOT have to redo. A cursorless task —
    // the inotify-style baseline, whose progress lives only in soft state —
    // restarts from zero, so this column would read 0 for every point.
    uint64_t preserved = r.scrub_resume_cursor + r.backup_resumed_pages;
    preserved_total += preserved;
    printf("%-10.0f %12llu %14s %16llu%s\n",
           static_cast<double>(config.crash_at_time) / kMillisecond,
           static_cast<unsigned long long>(r.scrub_resume_cursor),
           r.backup_resumed ? "yes" : "no",
           static_cast<unsigned long long>(preserved),
           r.ok() ? "" : "  INCONSISTENT");
  }
  printf("\ncursor-resume preserved %llu pages of maintenance work the "
         "soft-state baseline would redo\n\n",
         static_cast<unsigned long long>(preserved_total));
}

}  // namespace

int main(int argc, char** argv) {
  ParseStackArgs(argc, argv);
  const bool smoke = SmokeMode();
  printf("== crash recovery time and maintenance work lost ==\n");
  printf("scale: %s\n\n", smoke ? "smoke" : "quick");
  RecoveryTimeVsTail(smoke);
  MaintenanceWorkLost(smoke);
  return 0;
}
