#!/usr/bin/env python3
"""Compare two perf_runner JSON outputs and fail on wall-clock regression.

Usage: perf_compare.py BASELINE.json CURRENT.json [--tolerance 0.25]

For every measurement present in both files, the wall-clock time may grow by
at most `tolerance` (default 25%) relative to the baseline. Measurements that
got faster, or that exist on only one side, never fail the check (new
measurements start gating once they land in the refreshed baseline).

Wall-clock on shared CI runners is noisy; the default tolerance is chosen so
only a real hot-path regression (not scheduler jitter) trips it. Refresh the
baseline with `perf_runner --long --out bench/BENCH_hotpath.json` after an
intentional perf change.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m for m in doc.get("measurements", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional wall-clock growth (default 0.25)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    rows = []
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            rows.append((name, b["wall_ms"], None, None, "missing (skipped)"))
            continue
        ratio = c["wall_ms"] / b["wall_ms"] if b["wall_ms"] > 0 else 1.0
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(name)
        rows.append((name, b["wall_ms"], c["wall_ms"], ratio, verdict))
    for name in cur:
        if name not in base:
            rows.append((name, None, cur[name]["wall_ms"], None, "new (not gated)"))

    print(f"{'measurement':38} {'base ms':>10} {'cur ms':>10} {'ratio':>7}  verdict")
    for name, b_ms, c_ms, ratio, verdict in rows:
        b_s = f"{b_ms:.2f}" if b_ms is not None else "-"
        c_s = f"{c_ms:.2f}" if c_ms is not None else "-"
        r_s = f"{ratio:.3f}" if ratio is not None else "-"
        print(f"{name:38} {b_s:>10} {c_s:>10} {r_s:>7}  {verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} measurement(s) regressed more than "
              f"{args.tolerance * 100:.0f}%: {', '.join(failures)}")
        return 1
    print("\nOK: no wall-clock regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
