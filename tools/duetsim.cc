// duetsim: command-line front end for the simulation harness. Runs one
// maintenance experiment with the given workload and prints a run report.
//
// Examples:
//   duetsim --tasks=scrub --util=0.5
//   duetsim --tasks=scrub,backup,defrag --duet --util=0.7 --personality=webproxy
//   duetsim --tasks=backup --duet --ssd --coverage=0.5 --skew
//   duetsim --rsync --duet --coverage=0.75
//   duetsim --gc --duet --util=0.6
//
// Flags (defaults in brackets):
//   --personality=webserver|webproxy|fileserver   [webserver]
//   --tasks=scrub,backup,defrag                   [scrub]
//   --util=<0..1>            target device utilization       [0.5]
//   --coverage=<0..1>        data overlap with maintenance   [1.0]
//   --duet                   opportunistic mode              [off]
//   --skew                   MS-trace-like file picking      [off]
//   --ssd                    SSD device model                [hdd]
//   --deadline               Deadline scheduler (no idle class)
//   --informed-eviction      Duet-aware cache replacement
//   --frag=<0..1>            fraction of files aged/fragmented [0]
//   --data-mb=<n>            file-set size                   [512]
//   --window-s=<n>           experiment window               [18]
//   --seed=<n>                                               [42]
//   --rsync                  run the rsync experiment instead
//   --gc                     run the logfs GC experiment instead
//
// Observability:
//   --trace=FILE             write the structured event trace as JSONL
//   --metrics=FILE           write the end-of-run metrics registry dump
//   --trace-fingerprint      print the run's FNV-1a trace fingerprint;
//                            identical configs+seeds print identical values
//
// Fault injection (off unless --fault-rate > 0):
//   --fault-rate=<f>         mean faults/second (Poisson)    [0]
//   --fault-seed=<n>         fault schedule seed             [1]
//   --fault-kinds=latent,rot,torn,transient  kinds to inject [latent,rot]
//
// Crash recovery (runs the crash rig instead of a maintenance experiment):
//   --crash-at=<ms>|op:<n>   pull the plug at a sim-time (ms) or at the Nth
//                            device op, then remount, fsck, and verify that
//                            no acknowledged-durable data was lost
//   --crash-seed=<n>         crash workload seed             [1]
//   --crash-fs=cow|log       file system under test          [cow]
//   --crash-tasks            run scrubber+backup with persisted cursors and
//                            report whether they resumed after recovery

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/harness/calibrate.h"
#include "src/harness/crash_rig.h"
#include "src/harness/runner.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

using namespace duet;

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t len = strlen(name);
  if (strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

void Usage() {
  fprintf(stderr,
          "usage: duetsim [--tasks=scrub,backup,defrag] [--duet] [--util=0.5]\n"
          "               [--personality=webserver|webproxy|fileserver]\n"
          "               [--coverage=1.0] [--skew] [--ssd] [--deadline]\n"
          "               [--frag=0.1] [--informed-eviction] [--data-mb=512]\n"
          "               [--window-s=18] [--seed=42] [--rsync] [--gc]\n"
          "               [--fault-rate=0.5] [--fault-seed=1]\n"
          "               [--fault-kinds=latent,rot,torn,transient]\n"
          "               [--crash-at=<ms>|op:<n>] [--crash-seed=1]\n"
          "               [--crash-fs=cow|log] [--crash-tasks]\n"
          "               [--trace=FILE] [--metrics=FILE] [--trace-fingerprint]\n");
  exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  MaintenanceRunConfig config;
  config.stack = QuickStackConfig();
  config.tasks = {MaintKind::kScrub};
  bool run_rsync = false;
  bool run_gc = false;
  bool run_crash = false;
  CrashRunConfig crash_config;
  std::string trace_path;
  std::string metrics_path;
  bool print_fingerprint = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (strcmp(argv[i], "--duet") == 0) {
      config.use_duet = true;
    } else if (strcmp(argv[i], "--skew") == 0) {
      config.skewed = true;
    } else if (strcmp(argv[i], "--ssd") == 0) {
      config.stack.device = DeviceKind::kSsd;
    } else if (strcmp(argv[i], "--deadline") == 0) {
      config.stack.scheduler = SchedulerKind::kDeadline;
    } else if (strcmp(argv[i], "--informed-eviction") == 0) {
      config.informed_eviction = true;
    } else if (strcmp(argv[i], "--rsync") == 0) {
      run_rsync = true;
    } else if (strcmp(argv[i], "--gc") == 0) {
      run_gc = true;
    } else if (FlagValue(argv[i], "--personality", &value)) {
      if (value == "webserver") {
        config.personality = Personality::kWebserver;
      } else if (value == "webproxy") {
        config.personality = Personality::kWebproxy;
      } else if (value == "fileserver") {
        config.personality = Personality::kFileserver;
      } else {
        Usage();
      }
    } else if (FlagValue(argv[i], "--tasks", &value)) {
      config.tasks.clear();
      size_t start = 0;
      while (start < value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) {
          comma = value.size();
        }
        std::string task = value.substr(start, comma - start);
        if (task == "scrub") {
          config.tasks.push_back(MaintKind::kScrub);
        } else if (task == "backup") {
          config.tasks.push_back(MaintKind::kBackup);
        } else if (task == "defrag") {
          config.tasks.push_back(MaintKind::kDefrag);
        } else {
          Usage();
        }
        start = comma + 1;
      }
    } else if (FlagValue(argv[i], "--util", &value)) {
      config.target_util = atof(value.c_str());
    } else if (FlagValue(argv[i], "--coverage", &value)) {
      config.coverage = atof(value.c_str());
    } else if (FlagValue(argv[i], "--frag", &value)) {
      config.fragmented_fraction = atof(value.c_str());
    } else if (FlagValue(argv[i], "--data-mb", &value)) {
      uint64_t mb = strtoull(value.c_str(), nullptr, 10);
      config.stack.data_bytes = mb * 1024 * 1024;
      config.stack.capacity_blocks = (config.stack.data_bytes / kPageSize) * 5 / 4;
      config.stack.cache_pages =
          std::max<uint64_t>(256, config.stack.data_bytes / kPageSize / 50);
    } else if (FlagValue(argv[i], "--window-s", &value)) {
      config.stack.window = Seconds(strtoull(value.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "--seed", &value)) {
      config.seed = strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--crash-at", &value)) {
      run_crash = true;
      if (value.rfind("op:", 0) == 0) {
        crash_config.crash_at_op = strtoull(value.c_str() + 3, nullptr, 10);
        if (crash_config.crash_at_op == 0) {
          Usage();
        }
      } else {
        crash_config.crash_at_time = Millis(strtoull(value.c_str(), nullptr, 10));
        if (crash_config.crash_at_time == 0) {
          Usage();
        }
      }
    } else if (FlagValue(argv[i], "--crash-seed", &value)) {
      crash_config.seed = strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--crash-fs", &value)) {
      if (value == "cow") {
        crash_config.fs = CrashFsKind::kCow;
      } else if (value == "log") {
        crash_config.fs = CrashFsKind::kLog;
      } else {
        Usage();
      }
    } else if (strcmp(argv[i], "--crash-tasks") == 0) {
      crash_config.run_tasks = true;
    } else if (FlagValue(argv[i], "--fault-rate", &value)) {
      config.fault.faults_per_second = atof(value.c_str());
    } else if (FlagValue(argv[i], "--fault-seed", &value)) {
      config.fault_seed = strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--trace", &value)) {
      trace_path = value;
    } else if (FlagValue(argv[i], "--metrics", &value)) {
      metrics_path = value;
    } else if (strcmp(argv[i], "--trace-fingerprint") == 0) {
      print_fingerprint = true;
    } else if (FlagValue(argv[i], "--fault-kinds", &value)) {
      config.fault.kinds = 0;
      size_t start = 0;
      while (start < value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) {
          comma = value.size();
        }
        std::string kind = value.substr(start, comma - start);
        if (kind == "latent") {
          config.fault.kinds |= kFaultLatent;
        } else if (kind == "rot") {
          config.fault.kinds |= kFaultBitRot;
        } else if (kind == "torn") {
          config.fault.kinds |= kFaultTornWrite;
        } else if (kind == "transient") {
          config.fault.kinds |= kFaultTransient;
        } else {
          Usage();
        }
        start = comma + 1;
      }
      if (config.fault.kinds == 0) {
        Usage();
      }
    } else {
      Usage();
    }
  }
  // Fault schedules span the whole experiment window.
  config.fault.window = config.stack.window;

  // One observability context for the whole invocation; the runners install
  // it around their stacks.
  obs::ObsContext obs_ctx;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = obs::JsonlTraceSink::Open(trace_path);
    if (trace_sink == nullptr) {
      fprintf(stderr, "duetsim: cannot open trace file %s\n", trace_path.c_str());
      return 2;
    }
    obs_ctx.trace.AddSink(trace_sink.get());
  }
  config.obs = &obs_ctx;
  // Deferred reporting shared by every experiment mode.
  auto finish_obs = [&]() {
    if (!metrics_path.empty()) {
      FILE* f = fopen(metrics_path.c_str(), "w");
      if (f == nullptr) {
        fprintf(stderr, "duetsim: cannot open metrics file %s\n",
                metrics_path.c_str());
        return false;
      }
      std::string dump = obs_ctx.metrics.DumpText();
      fwrite(dump.data(), 1, dump.size(), f);
      fclose(f);
    }
    if (print_fingerprint) {
      printf("trace fingerprint: %016llx (%llu events)\n",
             static_cast<unsigned long long>(obs_ctx.trace.Fingerprint()),
             static_cast<unsigned long long>(obs_ctx.trace.events_emitted()));
    }
    return true;
  };

  if (run_crash) {
    // Crash-recovery mode: the rig builds its own tiny stacks, so it only
    // needs the observability context installed around it — the trace and
    // metrics cover the workload, the crash, the remount, and the replay.
    printf("duetsim: crash recovery on %s, seed %llu, crash at %s%llu%s\n\n",
           crash_config.fs == CrashFsKind::kCow ? "cowfs" : "logfs",
           static_cast<unsigned long long>(crash_config.seed),
           crash_config.crash_at_op != 0 ? "op " : "",
           crash_config.crash_at_op != 0
               ? static_cast<unsigned long long>(crash_config.crash_at_op)
               : static_cast<unsigned long long>(crash_config.crash_at_time /
                                                 kMillisecond),
           crash_config.crash_at_op != 0 ? "" : " ms");
    obs::ObsScope scope(&obs_ctx);
    CrashRunResult r = RunCrashRecovery(crash_config);
    printf("workload: %llu writes issued, %llu syncs, %llu checkpoints; %s "
           "after %llu device ops\n",
           static_cast<unsigned long long>(r.writes_issued),
           static_cast<unsigned long long>(r.syncs_completed),
           static_cast<unsigned long long>(r.checkpoints_completed),
           r.crashed ? "crashed" : "plug pulled at window end",
           static_cast<unsigned long long>(r.ops_before_crash));
    printf("mount: %s; generation %llu, %llu blocks restored, %llu replayed, "
           "%llu discarded, %.2f ms\n",
           r.mount.status.ok() ? "ok" : r.mount.status.message().c_str(),
           static_cast<unsigned long long>(r.mount.generation),
           static_cast<unsigned long long>(r.mount.blocks_restored),
           static_cast<unsigned long long>(r.mount.blocks_replayed),
           static_cast<unsigned long long>(r.mount.blocks_discarded),
           static_cast<double>(r.mount.duration) / kMillisecond);
    printf("fsck: %llu blocks checked, %llu structural errors, %llu checksum "
           "errors\n",
           static_cast<unsigned long long>(r.fsck.blocks_checked),
           static_cast<unsigned long long>(r.fsck.structural_errors),
           static_cast<unsigned long long>(r.fsck.checksum_errors));
    printf("durability: %llu/%llu acked pages verified, %llu rolled back "
           "(unacked), %llu LOST\n",
           static_cast<unsigned long long>(r.verified_pages),
           static_cast<unsigned long long>(r.acked_pages),
           static_cast<unsigned long long>(r.rolled_back_pages),
           static_cast<unsigned long long>(r.lost_pages));
    if (crash_config.run_tasks) {
      printf("tasks: scrub resumed at block %llu; backup %s, %llu pages not "
             "re-streamed\n",
             static_cast<unsigned long long>(r.scrub_resume_cursor),
             r.backup_resumed ? "resumed its snapshot" : "restarted afresh",
             static_cast<unsigned long long>(r.backup_resumed_pages));
    }
    printf("\nverdict: %s\n", r.ok() ? "CONSISTENT" : "INCONSISTENT");
    if (!finish_obs()) {
      return 2;
    }
    return r.ok() ? 0 : 1;
  }

  printf("duetsim: %s on %s, %.0f MiB data, %.0f s window, target util %.0f%%, "
         "coverage %.0f%%%s%s\n\n",
         config.use_duet ? "Duet" : "baseline",
         config.stack.device == DeviceKind::kSsd ? "ssd" : "hdd",
         static_cast<double>(config.stack.data_bytes) / (1024.0 * 1024),
         ToSeconds(config.stack.window), config.target_util * 100,
         config.coverage * 100, config.skewed ? ", skewed" : "",
         config.stack.scheduler == SchedulerKind::kDeadline ? ", deadline" : "");

  if (run_rsync) {
    RsyncRunResult r = RunRsync(config.stack, config.personality, config.coverage,
                                config.skewed, config.use_duet, config.seed,
                                &obs_ctx);
    printf("rsync: %s in %.1f s; %llu pages read from disk, %llu saved by cache\n",
           r.finished ? "finished" : "DID NOT FINISH", ToSeconds(r.runtime),
           static_cast<unsigned long long>(r.stats.io_read_pages),
           static_cast<unsigned long long>(r.stats.saved_read_pages));
    if (!finish_obs()) {
      return 2;
    }
    return r.finished ? 0 : 1;
  }
  if (run_gc) {
    GcRunResult r = RunGc(config.stack, config.target_util, config.use_duet,
                          config.seed, /*ops_per_sec=*/-1, false, config.skewed,
                          &obs_ctx);
    printf("gc: %llu segments cleaned, avg %.1f ms; reads %llu disk / %llu cache; "
           "util %.0f%%\n",
           static_cast<unsigned long long>(r.segments_cleaned),
           r.cleaning_time_ms.count() > 0 ? r.cleaning_time_ms.mean() : 0.0,
           static_cast<unsigned long long>(r.blocks_read),
           static_cast<unsigned long long>(r.blocks_cached),
           r.measured_util * 100);
    if (!finish_obs()) {
      return 2;
    }
    return 0;
  }

  MaintenanceRunResult result = RunMaintenance(config);
  printf("measured utilization: %.0f%%   workload ops: %llu (%.2f ms avg)\n",
         result.measured_util * 100,
         static_cast<unsigned long long>(result.workload_ops),
         result.workload_latency_ms);
  for (size_t i = 0; i < config.tasks.size(); ++i) {
    const TaskStats& s = result.task_stats[i];
    printf("%-7s %-12s %5.1f%% done | io %llu pages | saved %llu pages\n",
           MaintKindName(config.tasks[i]),
           s.finished ? "finished" : "UNFINISHED", 100 * s.CompletionFraction(),
           static_cast<unsigned long long>(s.TotalIoPages()),
           static_cast<unsigned long long>(s.saved_read_pages + s.saved_write_pages));
  }
  printf("\ncombined: %.0f%% of maintenance I/O saved, %.0f%% of work completed\n",
         100 * result.IoSavedFraction(), 100 * result.WorkCompletedFraction());
  printf("duet: %llu hook invocations, %llu items fetched, %llu descriptors "
         "dropped\n",
         static_cast<unsigned long long>(result.duet_stats.hook_invocations),
         static_cast<unsigned long long>(result.duet_stats.items_fetched),
         static_cast<unsigned long long>(result.duet_stats.events_dropped));
  if (config.fault.faults_per_second > 0) {
    const FaultStats& f = result.fault_stats;
    printf("\nfaults (plan %08x): %llu injected, %llu detected, %llu repaired, "
           "%llu masked, %llu unrecoverable, %llu undetected\n",
           result.fault_fingerprint,
           static_cast<unsigned long long>(f.injected),
           static_cast<unsigned long long>(f.detected),
           static_cast<unsigned long long>(f.repaired),
           static_cast<unsigned long long>(f.masked),
           static_cast<unsigned long long>(f.unrecoverable),
           static_cast<unsigned long long>(f.Undetected()));
    printf("       read errors %llu, transient failures %llu, MTTD %.2f s; "
           "scrub repaired %llu, unrecoverable %llu\n",
           static_cast<unsigned long long>(f.read_errors),
           static_cast<unsigned long long>(f.transient_failures),
           f.MeanTimeToDetectSeconds(),
           static_cast<unsigned long long>(result.scrub_repaired),
           static_cast<unsigned long long>(result.scrub_unrecoverable));
  }
  if (!finish_obs()) {
    return 2;
  }
  return result.all_finished ? 0 : 1;
}
