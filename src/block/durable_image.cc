#include "src/block/durable_image.h"

#include <cassert>

namespace duet {

uint64_t DurableImage::Commit(BlockNo block, uint64_t token, uint32_t csum,
                              InodeNo ino, PageIdx idx) {
  assert(block < records_.size());
  if (frozen_) {
    return commit_seq_;
  }
  Record& r = records_[block];
  r.token = token;
  r.csum = csum;
  r.ino = ino;
  r.idx = idx;
  r.seq = ++commit_seq_;
  r.present = true;
  return r.seq;
}

void DurableImage::Forget(BlockNo block) {
  assert(block < records_.size());
  if (frozen_) {
    return;
  }
  records_[block] = Record{};
}

void DurableImage::TearToken(BlockNo block) {
  assert(block < records_.size());
  if (records_[block].present) {
    records_[block].token ^= 0xdeadbeefcafef00dULL;
  }
}

void DurableImage::ForEachPresent(
    const std::function<void(BlockNo, const Record&)>& fn) const {
  for (BlockNo b = 0; b < records_.size(); ++b) {
    if (records_[b].present) {
      fn(b, records_[b]);
    }
  }
}

void DurableImage::PutMeta(const std::string& key, std::vector<uint8_t> blob) {
  if (frozen_) {
    return;
  }
  meta_[key] = std::move(blob);
}

const std::vector<uint8_t>* DurableImage::GetMeta(const std::string& key) const {
  auto it = meta_.find(key);
  return it == meta_.end() ? nullptr : &it->second;
}

void DurableImage::EraseMeta(const std::string& key) {
  if (frozen_) {
    return;
  }
  meta_.erase(key);
}

uint64_t DurableImage::MetaBytes() const {
  uint64_t total = 0;
  for (const auto& [key, blob] : meta_) {
    total += key.size() + blob.size();
  }
  return total;
}

uint64_t DurableImage::committed_blocks() const {
  uint64_t n = 0;
  for (const Record& r : records_) {
    n += r.present ? 1 : 0;
  }
  return n;
}

}  // namespace duet
