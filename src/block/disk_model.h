// Analytic device service-time models.
//
// The experiments depend on the *relative* costs the paper's hardware
// exhibits — random vs sequential, read vs write, HDD vs SSD — not on exact
// numbers. Both models share one structure: a positioning cost (distance-
// dependent seek + rotation for the HDD, a flat random-access penalty for the
// SSD) plus a bandwidth-limited transfer term.
#ifndef SRC_BLOCK_DISK_MODEL_H_
#define SRC_BLOCK_DISK_MODEL_H_

#include <cstdint>
#include <memory>

#include "src/block/io_request.h"
#include "src/sim/time.h"
#include "src/util/types.h"

namespace duet {

class DiskModel {
 public:
  virtual ~DiskModel() = default;

  // Service time for `count` blocks at `start`, given the head/last-access
  // position `head`. A request continuing exactly at `head` is sequential.
  virtual SimDuration ServiceTime(BlockNo start, uint32_t count, IoDir dir,
                                  BlockNo head) const = 0;

  virtual uint64_t capacity_blocks() const = 0;
  virtual const char* name() const = 0;
};

// 10K RPM SAS drive, calibrated to the paper's setup (§6.1.3): ~150 MB/s
// sequential and ~21 MB/s for 64 KiB random reads (≈2.7 ms effective
// positioning). The positioning parameters are *effective* values for a
// short-stroked 50 GB working area on a 300 GB drive with command queueing,
// not datasheet full-stroke numbers — we calibrate the model to reproduce the
// end-to-end rates the paper reports.
struct HddParams {
  uint64_t capacity_blocks = 12'800'000;     // ~50 GiB of 4 KiB blocks
  double seq_read_mbps = 150.0;
  double seq_write_mbps = 140.0;
  SimDuration track_seek = Micros(200);      // adjacent-cylinder seek
  SimDuration max_seek = Millis(2);          // short-stroked full sweep
  SimDuration avg_rotation = Micros(1500);   // effective rotational delay
};

class HddModel : public DiskModel {
 public:
  explicit HddModel(HddParams params = HddParams());

  SimDuration ServiceTime(BlockNo start, uint32_t count, IoDir dir,
                          BlockNo head) const override;
  uint64_t capacity_blocks() const override { return params_.capacity_blocks; }
  const char* name() const override { return "hdd"; }

  const HddParams& params() const { return params_; }

 private:
  HddParams params_;
};

// Consumer SSD modeled after the Intel 510 the paper uses (§6.5): high
// sequential bandwidth, but 64 KiB random reads land near the HDD's ~21 MB/s
// (the paper calls the two "roughly similar"), so the random-read penalty is
// substantial for this generation of drive.
struct SsdParams {
  uint64_t capacity_blocks = 12'800'000;
  double seq_read_mbps = 265.0;
  double seq_write_mbps = 205.0;
  SimDuration random_read_penalty = Millis(2'700) / 1000;  // 2.7 ms
  SimDuration random_write_penalty = Micros(120);
};

class SsdModel : public DiskModel {
 public:
  explicit SsdModel(SsdParams params = SsdParams());

  SimDuration ServiceTime(BlockNo start, uint32_t count, IoDir dir,
                          BlockNo head) const override;
  uint64_t capacity_blocks() const override { return params_.capacity_blocks; }
  const char* name() const override { return "ssd"; }

  const SsdParams& params() const { return params_; }

 private:
  SsdParams params_;
};

}  // namespace duet

#endif  // SRC_BLOCK_DISK_MODEL_H_
