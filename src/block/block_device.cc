#include "src/block/block_device.h"

#include <cassert>
#include <utility>

#include "src/fault/fault_injector.h"

namespace duet {

BlockDevice::BlockDevice(EventLoop* loop, std::unique_ptr<DiskModel> model,
                         std::unique_ptr<IoScheduler> scheduler)
    : loop_(loop),
      model_(std::move(model)),
      scheduler_(std::move(scheduler)),
      obs_(obs::CurrentObs()),
      ctr_submit_(obs_->metrics.GetCounter("block.submits")),
      ctr_complete_(obs_->metrics.GetCounter("block.completions")),
      ctr_failed_requests_(obs_->metrics.GetCounter("block.failed.requests")),
      ctr_failed_blocks_(obs_->metrics.GetCounter("block.failed.blocks")),
      hist_read_latency_us_(obs_->metrics.GetHistogram("block.read.latency_us")),
      hist_write_latency_us_(obs_->metrics.GetHistogram("block.write.latency_us")) {
  assert(loop_ != nullptr && model_ != nullptr && scheduler_ != nullptr);
}

void BlockDevice::Submit(IoRequest request) {
  assert(request.block + request.count <= model_->capacity_blocks());
  if (request.io_class == IoClass::kBestEffort) {
    last_best_effort_activity_ = loop_->now();
  }
  ctr_submit_->Add();
  obs_->trace.Emit(loop_->now(), obs::TraceLayer::kBlock,
                   obs::TraceKind::kIoSubmit, request.block, request.count,
                   (static_cast<uint64_t>(request.io_class) << 1) |
                       static_cast<uint64_t>(request.dir));
  scheduler_->Enqueue(std::move(request));
  TryDispatch();
}

uint64_t BlockDevice::InFlightOrQueued() const {
  return in_flight_ + scheduler_->QueuedCount(IoClass::kBestEffort) +
         scheduler_->QueuedCount(IoClass::kIdle);
}

void BlockDevice::TryDispatch() {
  if (busy_) {
    return;
  }
  DispatchDecision decision = scheduler_->Dispatch(loop_->now(), last_best_effort_activity_);
  if (decision.request.has_value()) {
    if (retry_event_ != kInvalidEvent) {
      loop_->Cancel(retry_event_);
      retry_event_ = kInvalidEvent;
    }
    busy_ = true;
    ++in_flight_;
    IoRequest req = std::move(*decision.request);
    SimDuration service = model_->ServiceTime(req.block, req.count, req.dir, head_);
    if (injector_ != nullptr) {
      service += injector_->ExtraLatency(req.block, req.count,
                                         req.dir == IoDir::kRead, loop_->now());
    }
    loop_->ScheduleAfter(service, [this, r = std::move(req), service]() mutable {
      Complete(std::move(r), service);
    });
    return;
  }
  if (decision.retry_at.has_value()) {
    // Replace any earlier retry alarm; the grace deadline may have moved.
    if (retry_event_ != kInvalidEvent) {
      loop_->Cancel(retry_event_);
    }
    retry_event_ = loop_->ScheduleAt(*decision.retry_at, [this]() {
      retry_event_ = kInvalidEvent;
      TryDispatch();
    });
  }
}

void BlockDevice::Complete(IoRequest request, SimDuration service_time) {
  int c = static_cast<int>(request.io_class);
  int d = static_cast<int>(request.dir);
  ++stats_.ops[c][d];
  stats_.blocks[c][d] += request.count;
  stats_.busy[static_cast<size_t>(c)] += service_time;
  head_ = request.block + request.count;
  if (request.io_class == IoClass::kBestEffort) {
    last_best_effort_activity_ = loop_->now();
  }
  busy_ = false;
  --in_flight_;
  ctr_complete_->Add();
  (request.dir == IoDir::kRead ? hist_read_latency_us_ : hist_write_latency_us_)
      ->Record(service_time / kMicrosecond);
  IoResult result;
  if (injector_ != nullptr && request.consult_faults && request.dir == IoDir::kRead) {
    result.status = injector_->OnRead(request.block, request.count, loop_->now(),
                                      &result.failed_blocks);
    if (!result.status.ok()) {
      ++stats_.failed_requests;
      stats_.failed_block_reads += result.failed_blocks.size();
      ctr_failed_requests_->Add();
      ctr_failed_blocks_->Add(result.failed_blocks.size());
    }
  }
  obs_->trace.Emit(loop_->now(), obs::TraceLayer::kBlock,
                   obs::TraceKind::kIoComplete, request.block, request.count,
                   static_cast<uint64_t>(result.status.code()));
  if (request.done) {
    request.done(result);
  }
  // After the client applied the write (checksums updated in `done`), let the
  // injector clear rewritten sectors' faults and apply armed torn writes.
  if (injector_ != nullptr && request.dir == IoDir::kWrite) {
    injector_->OnWriteApplied(request.block, request.count, loop_->now());
  }
  TryDispatch();
}

double BlockDevice::BestEffortUtilizationSince(SimTime since,
                                               SimDuration busy_at_since) const {
  SimTime now = loop_->now();
  if (now <= since) {
    return 0;
  }
  SimDuration busy = stats_.busy[static_cast<int>(IoClass::kBestEffort)] - busy_at_since;
  return static_cast<double>(busy) / static_cast<double>(now - since);
}

}  // namespace duet
