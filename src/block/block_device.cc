#include "src/block/block_device.h"

#include <cassert>
#include <utility>

#include "src/fault/fault_injector.h"

namespace duet {
namespace {

// Barrier service cost: a fixed firmware overhead plus per-dirty-block drive
// cache writeout time.
constexpr SimDuration kFlushBaseLatency = Micros(300);
constexpr SimDuration kFlushPerBlockLatency = Micros(2);

}  // namespace

BlockDevice::BlockDevice(EventLoop* loop, std::unique_ptr<DiskModel> model,
                         std::unique_ptr<IoScheduler> scheduler)
    : loop_(loop),
      model_(std::move(model)),
      scheduler_(std::move(scheduler)),
      obs_(obs::CurrentObs()),
      ctr_submit_(obs_->metrics.GetCounter("block.submits")),
      ctr_complete_(obs_->metrics.GetCounter("block.completions")),
      ctr_failed_requests_(obs_->metrics.GetCounter("block.failed.requests")),
      ctr_failed_blocks_(obs_->metrics.GetCounter("block.failed.blocks")),
      ctr_flushes_(obs_->metrics.GetCounter("block.flushes")),
      ctr_blocks_committed_(obs_->metrics.GetCounter("block.durable.committed")),
      hist_read_latency_us_(obs_->metrics.GetHistogram("block.read.latency_us")),
      hist_write_latency_us_(obs_->metrics.GetHistogram("block.write.latency_us")) {
  assert(loop_ != nullptr && model_ != nullptr && scheduler_ != nullptr);
}

void BlockDevice::Submit(IoRequest request) {
  assert(request.block + request.count <= model_->capacity_blocks());
  if (request.io_class == IoClass::kBestEffort) {
    last_best_effort_activity_ = loop_->now();
  }
  if (!request.is_flush && request.dir == IoDir::kWrite) {
    request.serial = ++write_serial_;
    ++outstanding_writes_;
  }
  ctr_submit_->Add();
  obs_->trace.Emit(loop_->now(), obs::TraceLayer::kBlock,
                   obs::TraceKind::kIoSubmit, request.block, request.count,
                   (static_cast<uint64_t>(request.io_class) << 1) |
                       static_cast<uint64_t>(request.dir));
  scheduler_->Enqueue(std::move(request));
  TryDispatch();
}

void BlockDevice::Flush(IoClass io_class, std::function<void(const IoResult&)> done) {
  PendingFlush flush;
  flush.barrier_serial = write_serial_;
  flush.writes_remaining = outstanding_writes_;
  flush.io_class = io_class;
  flush.done = std::move(done);
  if (flush.writes_remaining == 0) {
    EnqueueFlushRequest(std::move(flush));
    return;
  }
  waiting_flushes_.push_back(std::move(flush));
}

void BlockDevice::EnqueueFlushRequest(PendingFlush flush) {
  IoRequest req;
  req.block = 0;
  req.count = 0;
  req.dir = IoDir::kWrite;
  req.io_class = flush.io_class;
  req.is_flush = true;
  req.consult_faults = false;
  req.done = std::move(flush.done);
  Submit(std::move(req));
}

void BlockDevice::NoteVolatileWrite(BlockNo block) {
  if (image_ == nullptr || !provider_) {
    return;  // no durability boundary attached
  }
  // Capture now: the write cache holds the data this write carried. By the
  // time a barrier drains it, the host may have reallocated the block — the
  // platter must still get what was written.
  DurableContent c = provider_(block);
  if (!c.in_use) {
    // The host reallocated the block while the write was in flight. Whatever
    // barrier covers this write also covers the successor the rewrite
    // produced (the cache was still dirty), so the stale record must not
    // reach the image — it could resurrect freed data at recovery.
    return;
  }
  auto it = volatile_index_.find(block);
  if (it != volatile_index_.end()) {
    volatile_writes_[it->second].block = kInvalidBlock;  // superseded
  }
  volatile_index_[block] = volatile_writes_.size();
  volatile_writes_.push_back(VolatileWrite{block, c});
}

uint64_t BlockDevice::CommitVolatile() {
  uint64_t committed = 0;
  if (image_ != nullptr) {
    for (const VolatileWrite& w : volatile_writes_) {
      if (w.block == kInvalidBlock) {
        continue;  // superseded by a later rewrite of the same block
      }
      image_->Commit(w.block, w.content.token, w.content.csum, w.content.ino,
                     w.content.idx);
      ++committed;
    }
  }
  volatile_writes_.clear();
  volatile_index_.clear();
  return committed;
}

void BlockDevice::CrashFreeze() {
  if (image_ == nullptr) {
    return;
  }
  if (flush_in_service_) {
    // Power failed mid-barrier: a deterministic prefix of the write cache
    // reached the platter (in write order, as the cache drains), and the
    // final block of the prefix is torn. These are exactly the blocks
    // straddling the durability boundary — recovery must detect the tear via
    // the stored checksum and discard the record.
    size_t prefix = (volatile_index_.size() + 1) / 2;
    size_t done = 0;
    BlockNo last = kInvalidBlock;
    for (const VolatileWrite& w : volatile_writes_) {
      if (done >= prefix) {
        break;
      }
      if (w.block == kInvalidBlock) {
        continue;
      }
      image_->Commit(w.block, w.content.token, w.content.csum, w.content.ino,
                     w.content.idx);
      last = w.block;
      ++done;
    }
    if (last != kInvalidBlock) {
      image_->TearToken(last);
    }
  }
  image_->Freeze();
}

uint64_t BlockDevice::InFlightOrQueued() const {
  return in_flight_ + scheduler_->QueuedCount(IoClass::kBestEffort) +
         scheduler_->QueuedCount(IoClass::kIdle);
}

void BlockDevice::TryDispatch() {
  if (busy_) {
    return;
  }
  DispatchDecision decision = scheduler_->Dispatch(loop_->now(), last_best_effort_activity_);
  if (decision.request.has_value()) {
    if (retry_event_ != kInvalidEvent) {
      loop_->Cancel(retry_event_);
      retry_event_ = kInvalidEvent;
    }
    busy_ = true;
    ++in_flight_;
    IoRequest req = std::move(*decision.request);
    SimDuration service;
    if (req.is_flush) {
      // Barrier cost: drive-cache flush time scales with the dirty set.
      service = kFlushBaseLatency +
                kFlushPerBlockLatency * static_cast<SimDuration>(volatile_index_.size());
      flush_in_service_ = true;
    } else {
      service = model_->ServiceTime(req.block, req.count, req.dir, head_);
      if (injector_ != nullptr) {
        service += injector_->ExtraLatency(req.block, req.count,
                                           req.dir == IoDir::kRead, loop_->now());
      }
    }
    ++ops_dispatched_;
    if (injector_ != nullptr) {
      // Crash-at-op addressing: may freeze the image and halt the loop, in
      // which case the completion below never fires — as intended.
      injector_->OnDeviceOp(ops_dispatched_, loop_->now());
    }
    loop_->ScheduleAfter(service, [this, r = std::move(req), service]() mutable {
      Complete(std::move(r), service);
    });
    return;
  }
  if (decision.retry_at.has_value()) {
    // Replace any earlier retry alarm; the grace deadline may have moved.
    if (retry_event_ != kInvalidEvent) {
      loop_->Cancel(retry_event_);
    }
    retry_event_ = loop_->ScheduleAt(*decision.retry_at, [this]() {
      retry_event_ = kInvalidEvent;
      TryDispatch();
    });
  }
}

void BlockDevice::Complete(IoRequest request, SimDuration service_time) {
  int c = static_cast<int>(request.io_class);
  int d = static_cast<int>(request.dir);
  if (request.is_flush) {
    stats_.busy[static_cast<size_t>(c)] += service_time;
    if (request.io_class == IoClass::kBestEffort) {
      last_best_effort_activity_ = loop_->now();
    }
    busy_ = false;
    --in_flight_;
    flush_in_service_ = false;
    uint64_t committed = CommitVolatile();
    ++stats_.flushes;
    stats_.blocks_committed += committed;
    ctr_complete_->Add();
    ctr_flushes_->Add();
    ctr_blocks_committed_->Add(committed);
    obs_->trace.Emit(loop_->now(), obs::TraceLayer::kBlock,
                     obs::TraceKind::kDeviceFlush, committed,
                     image_ != nullptr ? image_->commit_seq() : 0);
    if (request.done) {
      request.done(IoResult{});
    }
    TryDispatch();
    return;
  }
  ++stats_.ops[c][d];
  stats_.blocks[c][d] += request.count;
  stats_.busy[static_cast<size_t>(c)] += service_time;
  head_ = request.block + request.count;
  if (request.io_class == IoClass::kBestEffort) {
    last_best_effort_activity_ = loop_->now();
  }
  busy_ = false;
  --in_flight_;
  ctr_complete_->Add();
  (request.dir == IoDir::kRead ? hist_read_latency_us_ : hist_write_latency_us_)
      ->Record(service_time / kMicrosecond);
  IoResult result;
  if (injector_ != nullptr && request.consult_faults && request.dir == IoDir::kRead) {
    result.status = injector_->OnRead(request.block, request.count, loop_->now(),
                                      &result.failed_blocks);
    if (!result.status.ok()) {
      ++stats_.failed_requests;
      stats_.failed_block_reads += result.failed_blocks.size();
      ctr_failed_requests_->Add();
      ctr_failed_blocks_->Add(result.failed_blocks.size());
    }
  }
  obs_->trace.Emit(loop_->now(), obs::TraceLayer::kBlock,
                   obs::TraceKind::kIoComplete, request.block, request.count,
                   static_cast<uint64_t>(result.status.code()));
  if (request.done) {
    request.done(result);
  }
  // After the client applied the write (checksums updated in `done`), let the
  // injector clear rewritten sectors' faults and apply armed torn writes.
  if (injector_ != nullptr && request.dir == IoDir::kWrite) {
    injector_->OnWriteApplied(request.block, request.count, loop_->now());
  }
  if (request.dir == IoDir::kWrite) {
    // The write now sits in the drive cache: volatile until the next barrier.
    for (BlockNo b = request.block; b < request.block + request.count; ++b) {
      NoteVolatileWrite(b);
    }
    --outstanding_writes_;
    // Release barriers waiting on writes submitted before them. Only writes
    // with serial <= the barrier's serial count; later writes (which the
    // scheduler may have serviced first) do not satisfy older barriers.
    for (PendingFlush& flush : waiting_flushes_) {
      if (request.serial <= flush.barrier_serial && flush.writes_remaining > 0) {
        --flush.writes_remaining;
      }
    }
    while (!waiting_flushes_.empty() &&
           waiting_flushes_.front().writes_remaining == 0) {
      PendingFlush ready = std::move(waiting_flushes_.front());
      waiting_flushes_.pop_front();
      EnqueueFlushRequest(std::move(ready));
    }
  }
  TryDispatch();
}

double BlockDevice::BestEffortUtilizationSince(SimTime since,
                                               SimDuration busy_at_since) const {
  SimTime now = loop_->now();
  if (now <= since) {
    return 0;
  }
  SimDuration busy = stats_.busy[static_cast<int>(IoClass::kBestEffort)] - busy_at_since;
  return static_cast<double>(busy) / static_cast<double>(now - since);
}

}  // namespace duet
