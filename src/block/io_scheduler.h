// I/O schedulers. The paper's results hinge on maintenance I/O running in the
// Idle class under CFQ (§6.1.3): idle-class requests are dispatched only
// after the device has seen no best-effort activity for a grace period, so
// maintenance never competes with the foreground workload for the device.
// §6.5 also evaluates the Deadline scheduler, which has no priority classes.
#ifndef SRC_BLOCK_IO_SCHEDULER_H_
#define SRC_BLOCK_IO_SCHEDULER_H_

#include <deque>
#include <optional>

#include "src/block/io_request.h"
#include "src/sim/time.h"

namespace duet {

// Result of a dispatch attempt: either a request to service now, or a time
// at which dispatching should be retried (used to honour the idle grace
// period), or neither (queue empty; device sleeps until the next Submit).
struct DispatchDecision {
  std::optional<IoRequest> request;
  std::optional<SimTime> retry_at;
};

class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  virtual void Enqueue(IoRequest request) = 0;

  // Called by the device when it is free. `now` is the current time and
  // `last_best_effort_activity` the last time a best-effort request was
  // submitted or completed.
  virtual DispatchDecision Dispatch(SimTime now, SimTime last_best_effort_activity) = 0;

  virtual uint64_t QueuedCount(IoClass io_class) const = 0;
  virtual const char* name() const = 0;

  bool Empty() const {
    return QueuedCount(IoClass::kBestEffort) == 0 && QueuedCount(IoClass::kIdle) == 0;
  }
};

// CFQ-like scheduler with two classes. Best-effort requests dispatch FIFO
// and always take precedence. Idle-class requests dispatch only when the
// best-effort queue is empty and the device has had no best-effort activity
// for `idle_grace`.
class CfqScheduler : public IoScheduler {
 public:
  explicit CfqScheduler(SimDuration idle_grace = Millis(2));

  void Enqueue(IoRequest request) override;
  DispatchDecision Dispatch(SimTime now, SimTime last_best_effort_activity) override;
  uint64_t QueuedCount(IoClass io_class) const override;
  const char* name() const override { return "cfq"; }

  SimDuration idle_grace() const { return idle_grace_; }

 private:
  SimDuration idle_grace_;
  std::deque<IoRequest> best_effort_;
  std::deque<IoRequest> idle_;
};

// Deadline-like scheduler: single FIFO, no priority classes — maintenance
// I/O competes head-on with the workload (§6.5 "I/O prioritization").
class DeadlineScheduler : public IoScheduler {
 public:
  void Enqueue(IoRequest request) override;
  DispatchDecision Dispatch(SimTime now, SimTime last_best_effort_activity) override;
  uint64_t QueuedCount(IoClass io_class) const override;
  const char* name() const override { return "deadline"; }

 private:
  std::deque<IoRequest> queue_;
  uint64_t queued_[2] = {0, 0};
};

// Trivial FIFO, used by unit tests.
class NoopScheduler : public DeadlineScheduler {
 public:
  const char* name() const override { return "noop"; }
};

}  // namespace duet

#endif  // SRC_BLOCK_IO_SCHEDULER_H_
