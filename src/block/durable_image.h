// The durable image: what the platter actually holds across a power loss.
//
// The simulated stack distinguishes three tiers of data:
//   * dirty pages in the page cache               — lost on crash;
//   * blocks written to the device but not yet    — lost on crash (they live
//     covered by a completed Flush() barrier         in the drive write cache);
//   * blocks committed by a Flush() barrier       — survive any crash.
// The DurableImage models the third tier. It is owned *outside* the
// simulated stack (by the harness), so it survives tearing down and
// rebuilding every in-memory object — exactly like a disk surviving a
// reboot. BlockDevice commits its volatile write set into the image when a
// flush op completes; a crash freezes the image as-is.
//
// Besides block records, the image holds named metadata regions (checkpoint
// slots, superblock generations, maintenance cursors). Writes to a region
// are atomic at the granularity of one Put — callers layer A/B slots with
// generation numbers and CRCs on top for torn-checkpoint tolerance.
#ifndef SRC_BLOCK_DURABLE_IMAGE_H_
#define SRC_BLOCK_DURABLE_IMAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/util/types.h"

namespace duet {

class DurableImage {
 public:
  // One committed block. `seq` is the global commit sequence number the block
  // was last committed at; roll-forward replay applies records in seq order.
  struct Record {
    uint64_t token = 0;
    uint32_t csum = 0;       // checksum stored alongside the data at commit
    InodeNo ino = kInvalidInode;  // owning page at commit time
    PageIdx idx = 0;
    uint64_t seq = 0;        // 0 = never committed
    bool present = false;
  };

  explicit DurableImage(uint64_t capacity_blocks)
      : records_(capacity_blocks) {}

  DurableImage(const DurableImage&) = delete;
  DurableImage& operator=(const DurableImage&) = delete;

  uint64_t capacity_blocks() const { return records_.size(); }

  // ---- Block commits (BlockDevice flush path) ----

  // Commits `block` with the given content under the next commit sequence
  // number. Returns the assigned seq.
  uint64_t Commit(BlockNo block, uint64_t token, uint32_t csum, InodeNo ino,
                  PageIdx idx);

  // Forgets a block (setup-time resets; not used by the crash path — freed
  // blocks simply stop being referenced by the next checkpoint).
  void Forget(BlockNo block);

  const Record& At(BlockNo block) const { return records_[block]; }
  bool Present(BlockNo block) const { return records_[block].present; }
  uint64_t commit_seq() const { return commit_seq_; }

  // A torn flush (crash mid-barrier) persisted garbage for this block: the
  // token is flipped but the stored csum is kept, so recovery's checksum
  // verification detects the tear and discards the record from replay.
  void TearToken(BlockNo block);
  // Bit rot reaching an already-durable block (fault injection).
  void CorruptToken(BlockNo block) { TearToken(block); }

  // Calls `fn` for every present record, ascending block order.
  void ForEachPresent(
      const std::function<void(BlockNo, const Record&)>& fn) const;

  // ---- Freeze (crash) ----
  // After Freeze(), further Commit/Put calls are ignored: the platter is
  // powered off. Thaw() re-enables writes for the recovered stack.
  void Freeze() { frozen_ = true; }
  void Thaw() { frozen_ = false; }
  bool frozen() const { return frozen_; }

  // ---- Named metadata regions ----
  // Atomic replace of region `key`. Ignored while frozen.
  void PutMeta(const std::string& key, std::vector<uint8_t> blob);
  // nullptr if the region does not exist.
  const std::vector<uint8_t>* GetMeta(const std::string& key) const;
  void EraseMeta(const std::string& key);
  // Total bytes across all metadata regions (recovery-read sizing).
  uint64_t MetaBytes() const;

  // ---- Introspection ----
  uint64_t committed_blocks() const;

 private:
  std::vector<Record> records_;
  // Ordered map: iteration (MetaBytes, debugging) must be deterministic.
  std::map<std::string, std::vector<uint8_t>> meta_;
  uint64_t commit_seq_ = 0;
  bool frozen_ = false;
};

}  // namespace duet

#endif  // SRC_BLOCK_DURABLE_IMAGE_H_
