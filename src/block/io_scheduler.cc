#include "src/block/io_scheduler.h"

#include <utility>

namespace duet {

CfqScheduler::CfqScheduler(SimDuration idle_grace) : idle_grace_(idle_grace) {}

void CfqScheduler::Enqueue(IoRequest request) {
  if (request.io_class == IoClass::kBestEffort) {
    best_effort_.push_back(std::move(request));
  } else {
    idle_.push_back(std::move(request));
  }
}

DispatchDecision CfqScheduler::Dispatch(SimTime now, SimTime last_best_effort_activity) {
  DispatchDecision decision;
  if (!best_effort_.empty()) {
    decision.request = std::move(best_effort_.front());
    best_effort_.pop_front();
    return decision;
  }
  if (idle_.empty()) {
    return decision;  // nothing queued at all
  }
  SimTime eligible_at = last_best_effort_activity + idle_grace_;
  if (now >= eligible_at) {
    decision.request = std::move(idle_.front());
    idle_.pop_front();
  } else {
    decision.retry_at = eligible_at;
  }
  return decision;
}

uint64_t CfqScheduler::QueuedCount(IoClass io_class) const {
  return io_class == IoClass::kBestEffort ? best_effort_.size() : idle_.size();
}

void DeadlineScheduler::Enqueue(IoRequest request) {
  ++queued_[static_cast<int>(request.io_class)];
  queue_.push_back(std::move(request));
}

DispatchDecision DeadlineScheduler::Dispatch(SimTime /*now*/,
                                             SimTime /*last_best_effort_activity*/) {
  DispatchDecision decision;
  if (!queue_.empty()) {
    decision.request = std::move(queue_.front());
    queue_.pop_front();
    --queued_[static_cast<int>(decision.request->io_class)];
  }
  return decision;
}

uint64_t DeadlineScheduler::QueuedCount(IoClass io_class) const {
  return queued_[static_cast<int>(io_class)];
}

}  // namespace duet
