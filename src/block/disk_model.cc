#include "src/block/disk_model.h"

#include <cmath>

namespace duet {
namespace {

SimDuration TransferTime(uint32_t count, double mbps) {
  double bytes = static_cast<double>(count) * static_cast<double>(kPageSize);
  double seconds = bytes / (mbps * 1e6);
  return FromSeconds(seconds);
}

}  // namespace

HddModel::HddModel(HddParams params) : params_(params) {}

SimDuration HddModel::ServiceTime(BlockNo start, uint32_t count, IoDir dir,
                                  BlockNo head) const {
  double mbps = (dir == IoDir::kRead) ? params_.seq_read_mbps : params_.seq_write_mbps;
  SimDuration positioning = 0;
  if (start != head) {
    // Classic square-root seek curve between track and full-stroke times,
    // plus average rotational latency once the head lands.
    uint64_t dist = (start > head) ? start - head : head - start;
    double frac = static_cast<double>(dist) / static_cast<double>(params_.capacity_blocks);
    if (frac > 1.0) {
      frac = 1.0;
    }
    auto seek = static_cast<SimDuration>(
        static_cast<double>(params_.track_seek) +
        static_cast<double>(params_.max_seek - params_.track_seek) * std::sqrt(frac));
    positioning = seek + params_.avg_rotation;
  }
  return positioning + TransferTime(count, mbps);
}

SsdModel::SsdModel(SsdParams params) : params_(params) {}

SimDuration SsdModel::ServiceTime(BlockNo start, uint32_t count, IoDir dir,
                                  BlockNo head) const {
  double mbps = (dir == IoDir::kRead) ? params_.seq_read_mbps : params_.seq_write_mbps;
  SimDuration positioning = 0;
  if (start != head) {
    positioning = (dir == IoDir::kRead) ? params_.random_read_penalty
                                        : params_.random_write_penalty;
  }
  return positioning + TransferTime(count, mbps);
}

}  // namespace duet
