// I/O request types shared by the block device, schedulers, and all clients.
#ifndef SRC_BLOCK_IO_REQUEST_H_
#define SRC_BLOCK_IO_REQUEST_H_

#include <cstdint>
#include <functional>

#include "src/sim/time.h"
#include "src/util/types.h"

namespace duet {

enum class IoDir { kRead = 0, kWrite = 1 };

// I/O priority classes, mirroring the Linux CFQ classes the paper uses:
// foreground workload runs best-effort, in-kernel maintenance tasks issue
// their I/O at Idle priority (§6.1.3).
enum class IoClass { kBestEffort = 0, kIdle = 1 };

struct IoRequest {
  BlockNo block = 0;       // first block
  uint32_t count = 1;      // number of contiguous blocks
  IoDir dir = IoDir::kRead;
  IoClass io_class = IoClass::kBestEffort;
  // Invoked when the device completes the request (virtual time advanced).
  std::function<void()> done;
};

}  // namespace duet

#endif  // SRC_BLOCK_IO_REQUEST_H_
