// I/O request types shared by the block device, schedulers, and all clients.
#ifndef SRC_BLOCK_IO_REQUEST_H_
#define SRC_BLOCK_IO_REQUEST_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/time.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace duet {

enum class IoDir { kRead = 0, kWrite = 1 };

// I/O priority classes, mirroring the Linux CFQ classes the paper uses:
// foreground workload runs best-effort, in-kernel maintenance tasks issue
// their I/O at Idle priority (§6.1.3).
enum class IoClass { kBestEffort = 0, kIdle = 1 };

// Completion status of a request. The device is not assumed perfect: with a
// FaultInjector attached, reads can fail for individual sectors (kIoError,
// with the bad blocks listed) or as a whole, retryably (kBusy, transient).
struct IoResult {
  Status status;
  // Blocks whose read failed (latent sector errors), ascending. Data for
  // these blocks was NOT transferred; the rest of the request completed.
  std::vector<BlockNo> failed_blocks;

  bool ok() const { return status.ok(); }
  bool BlockFailed(BlockNo block) const {
    return std::binary_search(failed_blocks.begin(), failed_blocks.end(), block);
  }
};

struct IoRequest {
  BlockNo block = 0;       // first block
  uint32_t count = 1;      // number of contiguous blocks
  IoDir dir = IoDir::kRead;
  IoClass io_class = IoClass::kBestEffort;
  // Flush/barrier op (REQ_PREFLUSH): transfers no data; when it completes,
  // every write that completed before it was submitted has been committed to
  // the durable image. Built by BlockDevice::Flush, dispatched through the
  // IoScheduler like any other request. `block`/`count` are 0.
  bool is_flush = false;
  // Submission serial stamped by the device; lets a queued flush wait for
  // exactly the writes submitted before it (a barrier), regardless of the
  // scheduler's cross-class reordering. Internal to BlockDevice.
  uint64_t serial = 0;
  // When false, the fault injector is not consulted for this request. Used
  // for reads of redundant copies (cowfs DUP mirror), which live at a
  // different physical location than the primary block number addressing
  // them; their service time is still modeled.
  bool consult_faults = true;
  // Invoked when the device completes the request (virtual time advanced),
  // with the completion status.
  std::function<void(const IoResult&)> done;
};

}  // namespace duet

#endif  // SRC_BLOCK_IO_REQUEST_H_
