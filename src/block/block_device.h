// Simulated block device: single-spindle service loop driven by the event
// loop, a pluggable scheduler and disk model, and busy-time accounting split
// by I/O class (the basis of the paper's iostat-style %util metric).
#ifndef SRC_BLOCK_BLOCK_DEVICE_H_
#define SRC_BLOCK_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>

#include "src/block/disk_model.h"
#include "src/block/io_request.h"
#include "src/block/io_scheduler.h"
#include "src/obs/obs.h"
#include "src/sim/event_loop.h"
#include "src/util/types.h"

namespace duet {

class FaultInjector;

struct DeviceStats {
  // Indexed by [IoClass][IoDir].
  uint64_t ops[2][2] = {{0, 0}, {0, 0}};
  uint64_t blocks[2][2] = {{0, 0}, {0, 0}};
  // Device busy time attributable to each class.
  SimDuration busy[2] = {0, 0};
  // Requests that completed with an error (injected faults).
  uint64_t failed_requests = 0;
  // Individual block reads that failed (latent sector errors).
  uint64_t failed_block_reads = 0;

  uint64_t TotalOps(IoClass c) const {
    return ops[static_cast<int>(c)][0] + ops[static_cast<int>(c)][1];
  }
  uint64_t TotalBlocks(IoClass c) const {
    return blocks[static_cast<int>(c)][0] + blocks[static_cast<int>(c)][1];
  }
  SimDuration TotalBusy() const { return busy[0] + busy[1]; }
};

class BlockDevice {
 public:
  BlockDevice(EventLoop* loop, std::unique_ptr<DiskModel> model,
              std::unique_ptr<IoScheduler> scheduler);

  // Queues a request; `request.done` fires when the device completes it.
  void Submit(IoRequest request);

  // Attaches the error model. The injector is consulted on every dispatch
  // (latency spikes) and completion (read failures, torn-write application).
  // Pass nullptr to detach. Not owned; must outlive the device's I/O.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  const DeviceStats& stats() const { return stats_; }
  const DiskModel& model() const { return *model_; }
  const IoScheduler& scheduler() const { return *scheduler_; }
  uint64_t capacity_blocks() const { return model_->capacity_blocks(); }

  bool busy() const { return busy_; }
  // Requests queued or in flight, any class.
  uint64_t InFlightOrQueued() const;
  // Last instant a best-effort request was submitted or completed.
  SimTime last_best_effort_activity() const { return last_best_effort_activity_; }

  // Fraction of [since, loop->now()) the device spent servicing best-effort
  // requests — the paper's "device utilization" when no maintenance runs.
  double BestEffortUtilizationSince(SimTime since, SimDuration busy_at_since) const;

 private:
  void TryDispatch();
  void Complete(IoRequest request, SimDuration service_time);

  EventLoop* loop_;
  std::unique_ptr<DiskModel> model_;
  std::unique_ptr<IoScheduler> scheduler_;
  FaultInjector* injector_ = nullptr;

  bool busy_ = false;
  uint64_t in_flight_ = 0;
  BlockNo head_ = 0;
  SimTime last_best_effort_activity_ = 0;
  EventId retry_event_ = kInvalidEvent;
  DeviceStats stats_;
  obs::ObsContext* obs_;
  obs::Counter* ctr_submit_;
  obs::Counter* ctr_complete_;
  obs::Counter* ctr_failed_requests_;
  obs::Counter* ctr_failed_blocks_;
  obs::LogHistogram* hist_read_latency_us_;
  obs::LogHistogram* hist_write_latency_us_;
};

}  // namespace duet

#endif  // SRC_BLOCK_BLOCK_DEVICE_H_
