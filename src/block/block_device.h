// Simulated block device: single-spindle service loop driven by the event
// loop, a pluggable scheduler and disk model, and busy-time accounting split
// by I/O class (the basis of the paper's iostat-style %util metric).
#ifndef SRC_BLOCK_BLOCK_DEVICE_H_
#define SRC_BLOCK_BLOCK_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/block/disk_model.h"
#include "src/block/durable_image.h"
#include "src/block/io_request.h"
#include "src/block/io_scheduler.h"
#include "src/obs/obs.h"
#include "src/sim/event_loop.h"
#include "src/util/types.h"

namespace duet {

class FaultInjector;

// Snapshot of a block's on-platter content at flush-commit time, supplied by
// the file system (the owner of the simulated platter array).
struct DurableContent {
  uint64_t token = 0;
  uint32_t csum = 0;
  InodeNo ino = kInvalidInode;
  PageIdx idx = 0;
  bool in_use = false;
};

struct DeviceStats {
  // Indexed by [IoClass][IoDir].
  uint64_t ops[2][2] = {{0, 0}, {0, 0}};
  uint64_t blocks[2][2] = {{0, 0}, {0, 0}};
  // Device busy time attributable to each class.
  SimDuration busy[2] = {0, 0};
  // Requests that completed with an error (injected faults).
  uint64_t failed_requests = 0;
  // Individual block reads that failed (latent sector errors).
  uint64_t failed_block_reads = 0;
  // Flush/barrier ops completed, and blocks they committed durably.
  uint64_t flushes = 0;
  uint64_t blocks_committed = 0;

  uint64_t TotalOps(IoClass c) const {
    return ops[static_cast<int>(c)][0] + ops[static_cast<int>(c)][1];
  }
  uint64_t TotalBlocks(IoClass c) const {
    return blocks[static_cast<int>(c)][0] + blocks[static_cast<int>(c)][1];
  }
  SimDuration TotalBusy() const { return busy[0] + busy[1]; }
};

class BlockDevice {
 public:
  BlockDevice(EventLoop* loop, std::unique_ptr<DiskModel> model,
              std::unique_ptr<IoScheduler> scheduler);

  // Queues a request; `request.done` fires when the device completes it.
  void Submit(IoRequest request);

  // ---- Durability boundary ----

  // Attaches the durable image (owned by the harness so it survives stack
  // teardown) and the content provider the device queries when a write
  // completes — the platter gets the data the write carried, not whatever the
  // host thinks of the block by the time a barrier arrives. Writes completed
  // without a subsequent Flush() stay volatile: they model the drive write
  // cache and are lost on crash.
  void SetDurableImage(DurableImage* image) { image_ = image; }
  DurableImage* durable_image() const { return image_; }
  void SetDurableContentProvider(std::function<DurableContent(BlockNo)> provider) {
    provider_ = std::move(provider);
  }

  // Issues a flush/barrier op through the IoScheduler. It dispatches only
  // after every write submitted before this call has completed; on
  // completion the whole volatile write set (as of completion time) is
  // committed into the durable image, then `done` fires.
  void Flush(IoClass io_class, std::function<void(const IoResult&)> done);

  // Crash: if a flush was mid-service, a deterministic prefix of the write
  // cache reaches the platter with the last block of the prefix torn; then
  // the image freezes. Everything still volatile is lost.
  void CrashFreeze();

  // Blocks written but not yet covered by a completed Flush().
  uint64_t VolatileDirtyBlocks() const { return volatile_index_.size(); }
  // Data + flush ops dispatched to the platter (crash-at-op addressing).
  uint64_t ops_dispatched() const { return ops_dispatched_; }

  // Attaches the error model. The injector is consulted on every dispatch
  // (latency spikes) and completion (read failures, torn-write application).
  // Pass nullptr to detach. Not owned; must outlive the device's I/O.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  const DeviceStats& stats() const { return stats_; }
  const DiskModel& model() const { return *model_; }
  const IoScheduler& scheduler() const { return *scheduler_; }
  uint64_t capacity_blocks() const { return model_->capacity_blocks(); }

  bool busy() const { return busy_; }
  // Requests queued or in flight, any class.
  uint64_t InFlightOrQueued() const;
  // Last instant a best-effort request was submitted or completed.
  SimTime last_best_effort_activity() const { return last_best_effort_activity_; }

  // Fraction of [since, loop->now()) the device spent servicing best-effort
  // requests — the paper's "device utilization" when no maintenance runs.
  double BestEffortUtilizationSince(SimTime since, SimDuration busy_at_since) const;

 private:
  struct PendingFlush {
    uint64_t barrier_serial = 0;  // writes with serial <= this must complete
    uint64_t writes_remaining = 0;
    IoClass io_class = IoClass::kBestEffort;
    std::function<void(const IoResult&)> done;
  };

  void TryDispatch();
  void Complete(IoRequest request, SimDuration service_time);
  void EnqueueFlushRequest(PendingFlush flush);
  // Captures a completed write's content into the drive write cache.
  void NoteVolatileWrite(BlockNo block);
  // Commits the volatile write set into the image; returns blocks committed.
  uint64_t CommitVolatile();

  EventLoop* loop_;
  std::unique_ptr<DiskModel> model_;
  std::unique_ptr<IoScheduler> scheduler_;
  FaultInjector* injector_ = nullptr;
  DurableImage* image_ = nullptr;
  std::function<DurableContent(BlockNo)> provider_;

  bool busy_ = false;
  uint64_t in_flight_ = 0;
  BlockNo head_ = 0;
  // Drive write cache: each completed write's content, captured at completion
  // time and drained to the image in completion order at the next barrier
  // (commit sequence numbers feed the recovery replay, so the order must
  // match write order and be deterministic). A block rewritten while volatile
  // supersedes its earlier entry and moves to the back, as a real write cache
  // coalesces.
  struct VolatileWrite {
    BlockNo block = kInvalidBlock;  // kInvalidBlock: superseded entry
    DurableContent content;
  };
  std::vector<VolatileWrite> volatile_writes_;
  // Live block -> entry index. Only point lookups — commit/replay order
  // comes from volatile_writes_ itself, so no sorted container is needed.
  std::unordered_map<BlockNo, size_t> volatile_index_;
  std::deque<PendingFlush> waiting_flushes_;
  uint64_t write_serial_ = 0;      // last serial stamped on a write
  uint64_t outstanding_writes_ = 0;
  uint64_t ops_dispatched_ = 0;
  bool flush_in_service_ = false;
  SimTime last_best_effort_activity_ = 0;
  EventId retry_event_ = kInvalidEvent;
  DeviceStats stats_;
  obs::ObsContext* obs_;
  obs::Counter* ctr_submit_;
  obs::Counter* ctr_complete_;
  obs::Counter* ctr_failed_requests_;
  obs::Counter* ctr_failed_blocks_;
  obs::Counter* ctr_flushes_;
  obs::Counter* ctr_blocks_committed_;
  obs::LogHistogram* hist_read_latency_us_;
  obs::LogHistogram* hist_write_latency_us_;
};

}  // namespace duet

#endif  // SRC_BLOCK_BLOCK_DEVICE_H_
