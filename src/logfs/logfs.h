// logfs: an F2fs-like log-structured file system (paper §5.4).
//
// Blocks are grouped into segments. Writes append at the log head; updating
// a block invalidates its previous location. Segments with many invalid
// blocks are reclaimed by the garbage-collector task, which reads the
// remaining valid blocks (cache hits are free — the Duet optimization) and
// re-appends them to the log, freeing the segment.
//
// When no free segment is left, the allocator degrades to overwriting
// invalid blocks in scattered segments — the slow mode the paper measures a
// 57% latency increase in; `scattered_writes()` exposes how often it hit.
#ifndef SRC_LOGFS_LOGFS_H_
#define SRC_LOGFS_LOGFS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/fs/file_system.h"
#include "src/util/bitmap.h"

namespace duet {

using SegmentNo = uint64_t;

struct SegmentInfo {
  uint32_t valid = 0;   // live blocks in the segment
  uint32_t written = 0; // log-head position within the segment
  SimTime mtime = 0;    // last modification (age input to the cost function)
};

struct CleanResult {
  Status status;
  SegmentNo segment = 0;
  uint64_t blocks_moved = 0;
  uint64_t blocks_read_disk = 0;   // synchronous reads the cleaner performed
  uint64_t blocks_from_cache = 0;  // reads saved because blocks were cached
  uint64_t device_ops = 0;
  // Bad blocks the cleaner refused to move: re-appending a corrupt or
  // unreadable token would launder it under a fresh checksum. They stay in
  // place (and keep the segment occupied) until repaired or overwritten.
  uint64_t checksum_errors = 0;
  uint64_t read_errors = 0;
  SimDuration duration = 0;        // read phase duration (paper Table 6)
};

class LogFs : public FileSystem {
 public:
  LogFs(EventLoop* loop, BlockDevice* device, uint64_t cache_pages,
        uint32_t segment_blocks = 512, WritebackParams wb_params = WritebackParams());

  // ---- Checksums ----
  // Per-block CRC32C over the stored token, updated on every flush. The GC
  // verifies victims it reads, so cleaning doubles as corruption detection.
  static uint32_t TokenChecksum(uint64_t token);
  bool BlockChecksumOk(BlockNo block) const;
  // Flips on-disk bits without updating the checksum (failure injection).
  void CorruptBlock(BlockNo block) { InjectCorruption(block, false); }
  uint64_t checksum_errors_detected() const { return checksum_errors_detected_; }

  // ---- Geometry ----
  uint32_t segment_blocks() const { return segment_blocks_; }
  uint64_t segment_count() const { return sit_.size(); }
  SegmentNo SegmentOf(BlockNo block) const { return block / segment_blocks_; }

  // ---- Segment info table ----
  const SegmentInfo& segment(SegmentNo seg) const { return sit_[seg]; }
  bool BlockValid(BlockNo block) const { return valid_.Test(block); }
  uint64_t free_segments() const;
  uint64_t scattered_writes() const { return scattered_writes_; }

  // Valid blocks of a segment, ascending.
  std::vector<BlockNo> ValidBlocksOf(SegmentNo seg) const;

  // Number of a segment's valid blocks whose owning page is cached. The
  // Duet GC keeps this incrementally from events; this is the ground truth
  // used by tests and by victim selection fallbacks.
  uint64_t CachedValidBlocksOf(SegmentNo seg) const;

  // ---- Victim selection ----
  // Scans `window` segments starting at `window_start` (wrapping), skipping
  // the open log segment and free segments, and returns the segment with the
  // minimum cost according to `cost` (lower = better victim). Segments whose
  // cost is infinite (e.g. no invalid blocks) are skipped.
  std::optional<SegmentNo> SelectVictim(
      SegmentNo window_start, uint64_t window,
      const std::function<double(SegmentNo, const SegmentInfo&)>& cost) const;

  // ---- Cleaning ----
  // Moves every valid block of `seg` to the log head: uncached blocks are
  // read synchronously at `io_class`; all moved blocks are re-appended and
  // left dirty in the cache for asynchronous writeback (as F2fs does).
  void CleanSegment(SegmentNo seg, IoClass io_class,
                    std::function<void(const CleanResult&)> cb);

  // ---- Crash consistency (checkpoint + roll-forward) ----
  // Commits a checkpoint: Sync(), then serialize the namespace, extent maps,
  // log head, and segment table into the next checkpoint generation
  // (two-slot, CRC-protected), recording the durable image's commit sequence
  // as the replay threshold. Blocks the checkpoint references — and every
  // block committed after it — stay pinned against reuse until the NEXT
  // checkpoint (F2fs's prefree discipline), so roll-forward replay always
  // finds its records intact. Requires quiesced foreground writes during the
  // commit and an attached durable image.
  void WriteCheckpoint(std::function<void(uint64_t generation)> done);
  void Checkpoint(std::function<void()> done) override;
  // Loads the newest checkpoint, then rolls the log tail forward: every
  // image record committed after the checkpoint is replayed in commit-seq
  // order (checksum-verified; torn or orphaned records are discarded), and
  // the replayed tail is read back through the device so recovery latency
  // scales with the amount of work lost. Must be called on a freshly
  // constructed file system.
  void Mount(std::function<void(const MountReport&)> cb) override;
  FsckReport CheckConsistency() const override;
  uint64_t checkpoint_generation() const { return checkpoint_generation_; }
  // True if recovery still depends on this block's current content.
  bool PinnedBlock(BlockNo block) const { return pinned_.Test(block); }

 protected:
  Result<BlockNo> AllocateForWrite(InodeNo ino, PageIdx idx, BlockNo old_block) override;
  void FreeFileBlocks(InodeNo ino) override;
  Status OnDiskBlockRead(BlockNo block, uint64_t token) override;
  void OnBlockFlushed(BlockNo block, uint64_t token) override;
  bool BlockInUse(BlockNo block) const override { return valid_.Test(block); }
  uint32_t StoredChecksum(BlockNo block) const override { return disk_csum_[block]; }

 private:
  // Next block at the log head; opens a new segment when the current one
  // fills, falling back to scattered overwrites when no segment is free.
  // With a durable image attached, blocks recovery depends on (pinned_) are
  // never handed out, and every block handed out is pinned in turn.
  Result<BlockNo> LogAppend();
  void Invalidate(BlockNo block);
  std::optional<SegmentNo> FindFreeSegment();
  std::vector<uint8_t> SerializeCheckpoint() const;
  Status RestoreFromCheckpoint(const std::vector<uint8_t>& payload,
                               MountReport* report, uint64_t* ckpt_seq);
  void ReplayImageRecords(uint64_t ckpt_seq, MountReport* report,
                          std::vector<BlockNo>* replayed);

  uint32_t segment_blocks_;
  std::vector<SegmentInfo> sit_;
  Bitmap valid_;                // block-level liveness
  std::vector<uint32_t> disk_csum_;  // block -> CRC32C of stored token
  SegmentNo open_segment_ = 0;  // current log head segment
  uint64_t scattered_writes_ = 0;
  uint64_t checksum_errors_detected_ = 0;
  // Union of the last checkpoint's referenced blocks and every block
  // written since; cleared down to the then-valid set at each checkpoint.
  // Only maintained when a durable image is attached — empty (and free)
  // otherwise.
  Bitmap pinned_;
  uint64_t checkpoint_generation_ = 0;
};

// The two victim-selection policies (paper §5.4):
//  * Baseline F2fs background GC: greedy-by-cost over data to move and age.
//  * Duet: subtract cached_blocks/2 from the blocks that need moving —
//    cached blocks save the read half of the move (reads and writes are
//    weighed equally).
double GcCostBaseline(const SegmentInfo& info, uint32_t segment_blocks, SimTime now);
double GcCostDuet(const SegmentInfo& info, uint32_t segment_blocks, SimTime now,
                  uint64_t cached_blocks);

}  // namespace duet

#endif  // SRC_LOGFS_LOGFS_H_
