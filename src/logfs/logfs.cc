#include "src/logfs/logfs.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <unordered_set>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/fs/meta_codec.h"
#include "src/obs/obs.h"
#include "src/util/crc32c.h"

namespace duet {

LogFs::LogFs(EventLoop* loop, BlockDevice* device, uint64_t cache_pages,
             uint32_t segment_blocks, WritebackParams wb_params)
    : FileSystem(loop, device, cache_pages, wb_params),
      segment_blocks_(segment_blocks),
      valid_(device->capacity_blocks()),
      disk_csum_(device->capacity_blocks(), TokenChecksum(0)),
      pinned_(device->capacity_blocks()) {
  assert(segment_blocks_ > 0);
  sit_.resize((device->capacity_blocks() + segment_blocks_ - 1) / segment_blocks_);
}

uint32_t LogFs::TokenChecksum(uint64_t token) {
  return Crc32c(&token, sizeof(token));
}

bool LogFs::BlockChecksumOk(BlockNo block) const {
  return disk_csum_[block] == TokenChecksum(disk_data_[block]);
}

Status LogFs::OnDiskBlockRead(BlockNo block, uint64_t token) {
  if (valid_.Test(block) && disk_csum_[block] != TokenChecksum(token)) {
    ++checksum_errors_detected_;
    if (injector_ != nullptr) {
      injector_->NoteCorruptionDetected(block);
    }
    return Status(StatusCode::kCorruption, "checksum mismatch");
  }
  return Status::Ok();
}

void LogFs::OnBlockFlushed(BlockNo block, uint64_t token) {
  FileSystem::OnBlockFlushed(block, token);
  disk_csum_[block] = TokenChecksum(token);
}

uint64_t LogFs::free_segments() const {
  uint64_t free = 0;
  for (SegmentNo s = 0; s < sit_.size(); ++s) {
    if (s != open_segment_ && sit_[s].valid == 0 && sit_[s].written == 0) {
      ++free;
    }
  }
  return free;
}

std::vector<BlockNo> LogFs::ValidBlocksOf(SegmentNo seg) const {
  std::vector<BlockNo> blocks;
  BlockNo start = seg * segment_blocks_;
  BlockNo end = std::min<BlockNo>(start + segment_blocks_, capacity_blocks());
  for (BlockNo b = start; b < end; ++b) {
    if (valid_.Test(b)) {
      blocks.push_back(b);
    }
  }
  return blocks;
}

uint64_t LogFs::CachedValidBlocksOf(SegmentNo seg) const {
  uint64_t cached = 0;
  for (BlockNo b : ValidBlocksOf(seg)) {
    Result<BlockOwner> owner = Rmap(b);
    if (owner.ok() && cache_.Contains(owner->ino, owner->idx)) {
      ++cached;
    }
  }
  return cached;
}

std::optional<SegmentNo> LogFs::FindFreeSegment() {
  for (SegmentNo s = 0; s < sit_.size(); ++s) {
    if (s == open_segment_ || sit_[s].valid != 0) {
      continue;
    }
    // A fully-invalidated segment that still holds pinned blocks is
    // "prefree": recovery depends on its content, so it becomes reusable
    // only after the next checkpoint drops the pins.
    BlockNo start = s * segment_blocks_;
    BlockNo end = std::min<BlockNo>(start + segment_blocks_, capacity_blocks());
    if (pinned_.CountRange(start, end) != 0) {
      continue;
    }
    // Reset a fully-invalidated segment before reuse.
    sit_[s].written = 0;
    return s;
  }
  return std::nullopt;
}

Result<BlockNo> LogFs::LogAppend() {
  if (sit_[open_segment_].written >= segment_blocks_) {
    std::optional<SegmentNo> next = FindFreeSegment();
    if (next.has_value()) {
      open_segment_ = *next;
    } else {
      // Out of clean segments: overwrite an invalid slot inside some
      // already-written segment (the paper's slow scattered-write mode,
      // §6.2 Garbage collection).
      for (SegmentNo s = 0; s < sit_.size(); ++s) {
        BlockNo start = s * segment_blocks_;
        BlockNo end = std::min<BlockNo>(start + sit_[s].written, capacity_blocks());
        for (BlockNo b = start; b < end; ++b) {
          if (!valid_.Test(b) && !pinned_.Test(b)) {
            ++scattered_writes_;
            valid_.Set(b);
            ++sit_[s].valid;
            sit_[s].mtime = loop_->now();
            ++allocated_blocks_;
            if (image_ != nullptr) {
              pinned_.Set(b);
            }
            return b;
          }
        }
      }
      return Status(StatusCode::kNoSpace, "logfs full");
    }
  }
  SegmentInfo& info = sit_[open_segment_];
  BlockNo block = open_segment_ * segment_blocks_ + info.written;
  if (block >= capacity_blocks()) {
    return Status(StatusCode::kNoSpace, "logfs tail segment truncated");
  }
  ++info.written;
  ++info.valid;
  info.mtime = loop_->now();
  valid_.Set(block);
  ++allocated_blocks_;
  if (image_ != nullptr) {
    pinned_.Set(block);
  }
  return block;
}

void LogFs::Invalidate(BlockNo block) {
  if (!valid_.Test(block)) {
    return;
  }
  valid_.Clear(block);
  SegmentNo seg = SegmentOf(block);
  assert(sit_[seg].valid > 0);
  --sit_[seg].valid;
  sit_[seg].mtime = loop_->now();
  --allocated_blocks_;
  ClearOwner(block);
}

Result<BlockNo> LogFs::AllocateForWrite(InodeNo ino, PageIdx idx, BlockNo old_block) {
  Result<BlockNo> fresh = LogAppend();
  if (!fresh.ok()) {
    return fresh;
  }
  if (old_block != kInvalidBlock) {
    Invalidate(old_block);
  }
  SetMapping(ino, idx, *fresh);
  return fresh;
}

void LogFs::FreeFileBlocks(InodeNo ino) {
  auto it = fmap_.find(ino);
  if (it == fmap_.end()) {
    return;
  }
  for (BlockNo block : it->second.blocks) {
    if (block != kInvalidBlock) {
      Invalidate(block);
    }
  }
}

std::optional<SegmentNo> LogFs::SelectVictim(
    SegmentNo window_start, uint64_t window,
    const std::function<double(SegmentNo, const SegmentInfo&)>& cost) const {
  std::optional<SegmentNo> best;
  double best_cost = std::numeric_limits<double>::infinity();
  uint64_t n = std::min<uint64_t>(window, sit_.size());
  for (uint64_t i = 0; i < n; ++i) {
    SegmentNo s = (window_start + i) % sit_.size();
    const SegmentInfo& info = sit_[s];
    if (s == open_segment_ || info.written == 0) {
      continue;  // open log head or never-written segment
    }
    if (info.valid >= info.written) {
      continue;  // nothing invalid to reclaim
    }
    double c = cost(s, info);
    if (c < best_cost) {
      best_cost = c;
      best = s;
    }
  }
  return best;
}

void LogFs::CleanSegment(SegmentNo seg, IoClass io_class,
                         std::function<void(const CleanResult&)> cb) {
  auto result = std::make_shared<CleanResult>();
  result->segment = seg;
  SimTime started = loop_->now();
  auto finish = [this, cb = std::move(cb), result, started](Status status) {
    // Keep an error recorded during the read phase (e.g. a transient kBusy)
    // over the move phase's final Ok.
    if (result->status.ok()) {
      result->status = std::move(status);
    }
    result->duration = loop_->now() - started;
    loop_->ScheduleAfter(0, [cb, result] { cb(*result); });
  };

  struct Victim {
    BlockNo block;
    InodeNo ino;
    PageIdx idx;
  };
  std::vector<Victim> victims;
  std::vector<Victim> to_read;
  for (BlockNo b : ValidBlocksOf(seg)) {
    Result<BlockOwner> owner = Rmap(b);
    if (!owner.ok()) {
      // A valid block must have an owner; treat as corruption.
      finish(Status(StatusCode::kCorruption, "valid block without owner"));
      return;
    }
    Victim v{b, owner->ino, owner->idx};
    victims.push_back(v);
    if (cache_.Contains(v.ino, v.idx)) {
      ++result->blocks_from_cache;
    } else {
      to_read.push_back(v);
    }
  }
  if (victims.empty()) {
    finish(Status::Ok());
    return;
  }

  // Blocks whose read failed or whose checksum did not verify. The move
  // phase leaves them in place: re-appending a bad token would give it a
  // fresh valid checksum, laundering the corruption.
  auto bad = std::make_shared<std::unordered_set<BlockNo>>();

  // Phase 2 (after reads): re-append every still-valid block to the log and
  // leave its page dirty for asynchronous writeback.
  auto move_phase = [this, seg, victims = std::move(victims), bad, result, finish] {
    for (const Victim& v : victims) {
      if (!valid_.Test(v.block)) {
        continue;  // invalidated while we were reading (foreground write)
      }
      if (bad->count(v.block) != 0) {
        continue;  // unreadable or corrupt; not safe to move
      }
      Result<BlockOwner> owner = Rmap(v.block);
      if (!owner.ok() || owner->ino != v.ino || owner->idx != v.idx) {
        continue;  // remapped under us
      }
      const CachedPage* page = cache_.Peek(v.ino, v.idx);
      uint64_t token = (page != nullptr) ? page->data : disk_data_[v.block];
      Result<BlockNo> fresh = LogAppend();
      if (!fresh.ok()) {
        finish(fresh.status());
        return;
      }
      SetMapping(v.ino, v.idx, *fresh);
      Invalidate(v.block);
      if (!cache_.MarkDirty(v.ino, v.idx, token)) {
        cache_.Insert(v.ino, v.idx, token, /*dirty=*/true);
      }
      ++result->blocks_moved;
    }
    (void)seg;
    writeback_.MaybeKick();
    finish(Status::Ok());
  };

  if (to_read.empty()) {
    move_phase();
    return;
  }

  // Phase 1: synchronous reads of uncached victim blocks (coalesced; blocks
  // within one segment are nearly contiguous). Pages enter the cache clean,
  // emitting Added events for any interested Duet session.
  std::sort(to_read.begin(), to_read.end(),
            [](const Victim& a, const Victim& b) { return a.block < b.block; });
  auto outstanding = std::make_shared<uint64_t>(0);
  auto move_shared = std::make_shared<std::function<void()>>(std::move(move_phase));
  size_t i = 0;
  while (i < to_read.size()) {
    size_t j = i + 1;
    while (j < to_read.size() && to_read[j].block == to_read[j - 1].block + 1) {
      ++j;
    }
    std::vector<Victim> run(to_read.begin() + static_cast<long>(i),
                            to_read.begin() + static_cast<long>(j));
    IoRequest req;
    req.block = run.front().block;
    req.count = static_cast<uint32_t>(run.size());
    req.dir = IoDir::kRead;
    req.io_class = io_class;
    ++result->device_ops;
    ++*outstanding;
    req.done = [this, run = std::move(run), bad, result, outstanding,
                move_shared](const IoResult& io) {
      if (io.status.code() == StatusCode::kBusy) {
        // Transient whole-request failure: nothing transferred; leave the
        // run's blocks unmoved and surface the retryable status.
        result->status = io.status;
        for (const Victim& v : run) {
          bad->insert(v.block);
        }
        if (--*outstanding == 0) {
          (*move_shared)();
        }
        return;
      }
      for (const Victim& v : run) {
        ++result->blocks_read_disk;
        if (io.BlockFailed(v.block)) {
          ++result->read_errors;
          bad->insert(v.block);
          continue;
        }
        if (valid_.Test(v.block) && !BlockChecksumOk(v.block)) {
          ++result->checksum_errors;
          ++checksum_errors_detected_;
          bad->insert(v.block);
          if (injector_ != nullptr) {
            injector_->NoteCorruptionDetected(v.block);
          }
          continue;
        }
        if (!cache_.Contains(v.ino, v.idx)) {
          cache_.Insert(v.ino, v.idx, disk_data_[v.block], /*dirty=*/false);
        }
      }
      if (--*outstanding == 0) {
        (*move_shared)();
      }
    };
    device_->Submit(std::move(req));
    i = j;
  }
}

std::vector<uint8_t> LogFs::SerializeCheckpoint() const {
  ByteWriter w;
  SerializeNamespaceAndMaps(&w);
  // Replay threshold: every image record committed after this sequence
  // number belongs to the log tail and is rolled forward at mount.
  w.U64(image_->commit_seq());
  w.U64(open_segment_);
  w.U64(sit_.size());
  for (const SegmentInfo& info : sit_) {
    w.U32(info.written);
    w.U64(info.mtime);
  }
  return w.Take();
}

void LogFs::WriteCheckpoint(std::function<void(uint64_t)> done) {
  assert(image_ != nullptr && "attach a durable image before checkpointing");
  Sync([this, done = std::move(done)]() mutable {
    // Quiesced commit: with no foreground writes racing the sync, the cache
    // is clean at the barrier, so the checkpoint references only durably
    // committed blocks and the recorded commit_seq covers all of them.
    assert(cache_.DirtyCount() == 0 && "quiesce writes during checkpoint");
    std::vector<uint8_t> payload = SerializeCheckpoint();
    uint64_t generation = checkpoint_generation_ + 1;
    SimDuration latency = MetaIoLatency(payload.size());
    loop_->ScheduleAfter(latency, [this, payload = std::move(payload), generation,
                                   done = std::move(done)]() mutable {
      CommitCheckpointSlot(image_, "logfs.ckpt", generation, payload);
      checkpoint_generation_ = generation;
      // Drop the pins down to the blocks this checkpoint references; prefree
      // segments become reusable (F2fs's checkpoint unpins prefree segments).
      pinned_ = valid_;
      obs::CurrentObs()->trace.Emit(loop_->now(), obs::TraceLayer::kFs,
                                    obs::TraceKind::kCheckpointCommit, generation,
                                    payload.size(), image_->commit_seq());
      done(generation);
    });
  });
}

void LogFs::Checkpoint(std::function<void()> done) {
  WriteCheckpoint([done = std::move(done)](uint64_t) { done(); });
}

Status LogFs::RestoreFromCheckpoint(const std::vector<uint8_t>& payload,
                                    MountReport* report, uint64_t* ckpt_seq) {
  ByteReader r(payload);
  if (!RestoreNamespaceAndMaps(&r, &report->files)) {
    return Status(StatusCode::kCorruption, "bad checkpoint namespace");
  }
  *ckpt_seq = r.U64();
  open_segment_ = r.U64();
  uint64_t nsegs = r.U64();
  if (!r.ok() || nsegs != sit_.size() || open_segment_ >= nsegs) {
    return Status(StatusCode::kCorruption, "checkpoint geometry mismatch");
  }
  for (SegmentInfo& info : sit_) {
    info.written = r.U32();
    info.mtime = r.U64();
    info.valid = 0;
  }
  if (!r.ok()) {
    return Status(StatusCode::kCorruption, "truncated checkpoint");
  }

  // Rebuild block-level liveness and content from the restored extent maps.
  for (const auto& [ino, map] : fmap_) {
    for (BlockNo block : map.blocks) {
      if (block == kInvalidBlock) {
        continue;
      }
      valid_.Set(block);
      ++sit_[SegmentOf(block)].valid;
      ++allocated_blocks_;
      pinned_.Set(block);
      if (image_->Present(block)) {
        const DurableImage::Record& rec = image_->At(block);
        disk_data_[block] = rec.token;
        disk_csum_[block] = rec.csum;
        ++report->blocks_restored;
      } else {
        ++report->blocks_missing;
      }
    }
  }
  return Status::Ok();
}

void LogFs::ReplayImageRecords(uint64_t ckpt_seq, MountReport* report,
                               std::vector<BlockNo>* replayed) {
  // Roll-forward: every image record committed after the checkpoint is a log
  // record flushed (and possibly fsync-acknowledged) before the crash.
  struct TailRecord {
    uint64_t seq;
    BlockNo block;
    uint64_t token;
    uint32_t csum;
    InodeNo ino;
    PageIdx idx;
  };
  std::vector<TailRecord> tail;
  image_->ForEachPresent([&](BlockNo block, const DurableImage::Record& rec) {
    if (rec.seq > ckpt_seq) {
      tail.push_back({rec.seq, block, rec.token, rec.csum, rec.ino, rec.idx});
    }
  });
  std::sort(tail.begin(), tail.end(),
            [](const TailRecord& a, const TailRecord& b) { return a.seq < b.seq; });
  for (const TailRecord& rec : tail) {
    if (TokenChecksum(rec.token) != rec.csum) {
      ++report->blocks_discarded;  // torn by a mid-flush crash
      continue;
    }
    const Inode* inode = ns_.Get(rec.ino);
    if (inode == nullptr || inode->is_dir()) {
      // Orphan: the owning file was created after the checkpoint, so the
      // namespace has no inode to attach the page to. (A file deleted after
      // the checkpoint is resurrected instead — without a delete journal,
      // unlinks become durable only at the next checkpoint.)
      ++report->blocks_discarded;
      continue;
    }
    if (valid_.Test(rec.block)) {
      // Pinning makes reuse of a checkpoint-referenced block impossible, so
      // this cannot happen; discard defensively rather than steal the block.
      ++report->blocks_discarded;
      continue;
    }
    Result<BlockNo> old = Bmap(rec.ino, rec.idx);
    if (old.ok()) {
      Invalidate(*old);  // the replayed record supersedes the older location
    }
    SetMapping(rec.ino, rec.idx, rec.block);
    valid_.Set(rec.block);
    SegmentNo seg = SegmentOf(rec.block);
    ++sit_[seg].valid;
    uint32_t offset = static_cast<uint32_t>(rec.block - seg * segment_blocks_);
    sit_[seg].written = std::max(sit_[seg].written, offset + 1);
    sit_[seg].mtime = loop_->now();
    ++allocated_blocks_;
    pinned_.Set(rec.block);
    disk_data_[rec.block] = rec.token;
    disk_csum_[rec.block] = rec.csum;
    // Page granularity is all the log records carry; a replayed tail page
    // extends the file to at least its end.
    Inode* mut = ns_.GetMutable(rec.ino);
    mut->size = std::max<uint64_t>(mut->size, (rec.idx + 1) * kPageSize);
    ++report->blocks_replayed;
    replayed->push_back(rec.block);
  }
}

void LogFs::Mount(std::function<void(const MountReport&)> cb) {
  assert(image_ != nullptr && "attach a durable image before mounting");
  assert(ns_.inode_count() == 1 && fmap_.empty() &&
         "mount requires a freshly constructed file system");
  SimTime started = loop_->now();
  auto report = std::make_shared<MountReport>();
  std::optional<LoadedCheckpoint> loaded = LoadNewestCheckpoint(*image_, "logfs.ckpt");
  if (!loaded.has_value()) {
    report->status = Status(StatusCode::kNotFound, "no committed checkpoint");
    loop_->ScheduleAfter(0, [cb = std::move(cb), report] { cb(*report); });
    return;
  }
  report->generation = loaded->generation;
  report->meta_bytes = loaded->payload.size();
  uint64_t ckpt_seq = 0;
  report->status = RestoreFromCheckpoint(loaded->payload, report.get(), &ckpt_seq);
  if (!report->status.ok()) {
    loop_->ScheduleAfter(0, [cb = std::move(cb), report] { cb(*report); });
    return;
  }
  auto replayed = std::make_shared<std::vector<BlockNo>>();
  ReplayImageRecords(ckpt_seq, report.get(), replayed.get());
  checkpoint_generation_ = loaded->generation;

  auto finish = [this, report, cb = std::move(cb), started] {
    report->duration = loop_->now() - started;
    obs::CurrentObs()->trace.Emit(loop_->now(), obs::TraceLayer::kFs,
                                  obs::TraceKind::kMountRecovered,
                                  report->generation, report->blocks_restored,
                                  report->blocks_discarded);
    cb(*report);
  };
  // Model the recovery I/O: read the checkpoint area, then read the replayed
  // log tail back through the device — recovery latency scales with the
  // amount of post-checkpoint work the crash left behind.
  loop_->ScheduleAfter(MetaIoLatency(loaded->payload.size()),
                       [this, replayed, finish = std::move(finish)]() mutable {
    if (replayed->empty()) {
      finish();
      return;
    }
    ReadBlocks(*replayed, IoClass::kBestEffort,
               [finish = std::move(finish)](const RawReadResult&) { finish(); });
  });
}

FsckReport LogFs::CheckConsistency() const {
  FsckReport report;
  CheckFileMappings(&report);
  // Every extent map must belong to a live regular file and reference only
  // valid blocks.
  for (const auto& [ino, map] : fmap_) {
    const Inode* inode = ns_.Get(ino);
    if (inode == nullptr || inode->is_dir()) {
      ++report.structural_errors;  // extent map for a nonexistent file
      continue;
    }
    for (BlockNo block : map.blocks) {
      if (block != kInvalidBlock && !valid_.Test(block)) {
        ++report.structural_errors;
        report.NoteBad(block);
      }
    }
  }
  // Segment table vs block-level liveness, and log-head discipline: valid
  // blocks only below each segment's write frontier.
  uint64_t valid_count = 0;
  for (SegmentNo s = 0; s < sit_.size(); ++s) {
    BlockNo start = s * segment_blocks_;
    BlockNo end = std::min<BlockNo>(start + segment_blocks_, capacity_blocks());
    uint64_t in_seg = valid_.CountRange(start, end);
    valid_count += in_seg;
    if (sit_[s].valid != in_seg || sit_[s].written > segment_blocks_) {
      ++report.structural_errors;
      report.NoteBad(start);
    }
    for (BlockNo b = start; b < end; ++b) {
      if (!valid_.Test(b)) {
        continue;
      }
      if (b - start >= sit_[s].written) {
        ++report.structural_errors;  // valid block beyond the write frontier
        report.NoteBad(b);
      }
      // logfs's reverse map is exact: every valid block has exactly one
      // owning page, and the forward map agrees.
      Result<BlockOwner> owner = Rmap(b);
      if (!owner.ok()) {
        ++report.structural_errors;
        report.NoteBad(b);
      } else {
        Result<BlockNo> fwd = Bmap(owner->ino, owner->idx);
        if (!fwd.ok() || *fwd != b) {
          ++report.structural_errors;
          report.NoteBad(b);
        }
      }
      ++report.blocks_checked;
      if (!BlockChecksumOk(b)) {
        ++report.checksum_errors;
        report.NoteBad(b);
      }
    }
  }
  if (valid_count != allocated_blocks_) {
    ++report.structural_errors;
  }
  obs::CurrentObs()->trace.Emit(loop_->now(), obs::TraceLayer::kFs,
                                obs::TraceKind::kFsckRan,
                                report.structural_errors, report.checksum_errors,
                                report.blocks_checked);
  return report;
}

double GcCostBaseline(const SegmentInfo& info, uint32_t segment_blocks, SimTime now) {
  // F2fs-style cost-benefit: cost grows with the data to move and shrinks
  // with age. u = utilization of the segment; cost ∝ 2u / ((1-u) * age).
  double u = static_cast<double>(info.valid) / static_cast<double>(segment_blocks);
  if (u >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  double age_s = ToSeconds(now > info.mtime ? now - info.mtime : 0) + 1.0;
  return (2.0 * u) / ((1.0 - u) * age_s);
}

double GcCostDuet(const SegmentInfo& info, uint32_t segment_blocks, SimTime now,
                  uint64_t cached_blocks) {
  // §5.4: moved blocks drop from valid to valid - cached/2 (reads and writes
  // weighed equally; cached blocks save the read half).
  double moved = static_cast<double>(info.valid) -
                 static_cast<double>(cached_blocks) / 2.0;
  if (moved < 0) {
    moved = 0;
  }
  double u = moved / static_cast<double>(segment_blocks);
  double u_real = static_cast<double>(info.valid) / static_cast<double>(segment_blocks);
  if (u_real >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  double age_s = ToSeconds(now > info.mtime ? now - info.mtime : 0) + 1.0;
  return (2.0 * u) / ((1.0 - u_real) * age_s);
}

}  // namespace duet
