// Filebench-like foreground workload generator (paper §6.1).
//
// Three personalities reproduce the paper's read-write mixes:
//  * fileserver — write-heavy, R:W = 1:2 (whole-file reads, overwrites,
//    appends, creates and deletes);
//  * webproxy  — read-heavy, R:W = 4:1, writes mostly append, with file
//    create/delete churn;
//  * webserver — read-mostly, R:W = 10:1, all writes appending to one log.
//
// Knobs match the paper's §6.1.1 modifications to Filebench:
//  * coverage — fraction of the file set the workload ever touches (the
//    "data overlap" with maintenance work);
//  * skewed   — pick files from a Zipf-like distribution fitted to the
//    Microsoft Production Build Server traces (Fig. 1) instead of uniform;
//  * ops_per_sec — rate throttle used to dial in a target device
//    utilization (0 = unthrottled closed loop).
#ifndef SRC_WORKLOAD_FILEBENCH_H_
#define SRC_WORKLOAD_FILEBENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/file_system.h"
#include "src/obs/obs.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/zipf.h"

namespace duet {

enum class Personality { kFileserver, kWebproxy, kWebserver };

const char* PersonalityName(Personality p);

struct WorkloadConfig {
  Personality personality = Personality::kWebserver;
  uint64_t file_count = 4096;
  uint64_t mean_file_size = 64 * 1024;  // bytes; sampled per file
  double coverage = 1.0;                // fraction of files ever accessed
  // Covered-file placement: striped across the device (default) or clustered
  // in one contiguous region, leaving cold data in a separate area (§6.5
  // "cold data placement").
  bool cluster_covered = false;
  bool skewed = false;                  // MS-trace-like access distribution
  double zipf_s = 1.1;
  double ops_per_sec = 0;               // 0 = unthrottled
  // Minimum spacing between ops in the unthrottled closed loop (models the
  // application's own CPU work; prevents zero-time spins on cache hits).
  SimDuration think_time = Micros(100);
  uint64_t append_size = 16 * 1024;
  // Setup-time aging: fraction of files populated fragmented (each aged
  // file has ~30% extent breaks). 0.1 gives the paper's "10% fragmented"
  // file system.
  double fragmented_fraction = 0;
  uint64_t seed = 42;
  // Number of subdirectories the file set is spread across (1 = flat).
  uint64_t subdirs = 1;
  // When > 0, read ops fetch a random aligned range covering this fraction
  // of the file instead of the whole file (web range requests, database
  // pages). Creates partially-cached files.
  double partial_read_fraction = 0;
  std::string data_dir = "/data";
  std::string log_path = "/weblog";
};

struct WorkloadStats {
  uint64_t ops_issued = 0;
  uint64_t ops_completed = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;  // overwrite + append + create + delete
  uint64_t creates = 0;
  uint64_t deletes = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  RunningStats latency_ms;  // per-operation completion latency
};

class FilebenchWorkload {
 public:
  FilebenchWorkload(FileSystem* fs, WorkloadConfig config);

  // Creates the file set (instant, setup-time; no simulated I/O). Must be
  // called once before Start().
  Status Setup();

  // Begins issuing operations on the event loop. The workload runs as a
  // closed loop: one outstanding operation, paced by exponential
  // inter-arrival gaps when a rate limit is set.
  void Start();
  void Stop();

  const WorkloadStats& stats() const { return stats_; }
  WorkloadStats& mutable_stats() { return stats_; }

  // Files the workload may touch (the covered subset).
  uint64_t covered_files() const { return covered_.size(); }
  const WorkloadConfig& config() const { return config_; }

  // Total bytes in the covered subset at setup time (overlap accounting).
  uint64_t covered_bytes() const { return covered_bytes_; }

 private:
  enum class OpType { kReadFile, kOverwrite, kAppendFile, kAppendLog, kCreate, kDelete };

  void IssueNext();
  void OnOpComplete(OpType op, SimTime issued_at, const FsIoResult& result);
  OpType PickOp();
  // Index into covered_ according to the configured distribution.
  size_t PickFileIndex();
  uint64_t SampleFileSize();

  FileSystem* fs_;
  WorkloadConfig config_;
  obs::ObsContext* obs_;
  obs::Counter* ctr_issued_;
  obs::Counter* ctr_completed_;
  obs::Counter* ctr_reads_;
  obs::Counter* ctr_writes_;
  obs::Counter* ctr_pages_read_;
  obs::Counter* ctr_pages_written_;
  obs::LogHistogram* hist_latency_us_;
  Rng rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  std::vector<InodeNo> covered_;  // files the workload may touch
  InodeNo log_ino_ = kInvalidInode;
  uint64_t covered_bytes_ = 0;
  uint64_t create_counter_ = 0;
  bool running_ = false;
  bool setup_done_ = false;
  SimTime next_issue_at_ = 0;
  WorkloadStats stats_;
};

}  // namespace duet

#endif  // SRC_WORKLOAD_FILEBENCH_H_
