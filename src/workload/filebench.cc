#include "src/workload/filebench.h"

#include <algorithm>
#include <cassert>

#include "src/util/format.h"

namespace duet {

const char* PersonalityName(Personality p) {
  switch (p) {
    case Personality::kFileserver:
      return "fileserver";
    case Personality::kWebproxy:
      return "webproxy";
    case Personality::kWebserver:
      return "webserver";
  }
  return "unknown";
}

FilebenchWorkload::FilebenchWorkload(FileSystem* fs, WorkloadConfig config)
    : fs_(fs),
      config_(config),
      obs_(obs::CurrentObs()),
      ctr_issued_(obs_->metrics.GetCounter("workload.ops.issued")),
      ctr_completed_(obs_->metrics.GetCounter("workload.ops.completed")),
      ctr_reads_(obs_->metrics.GetCounter("workload.ops.read")),
      ctr_writes_(obs_->metrics.GetCounter("workload.ops.write")),
      ctr_pages_read_(obs_->metrics.GetCounter("workload.pages.read")),
      ctr_pages_written_(obs_->metrics.GetCounter("workload.pages.written")),
      hist_latency_us_(obs_->metrics.GetHistogram("workload.op.latency_us")),
      rng_(config.seed) {
  assert(fs_ != nullptr);
}

uint64_t FilebenchWorkload::SampleFileSize() {
  // Exponential size distribution around the mean, clamped to [1 page, 16x
  // mean] — close to Filebench's gamma-distributed file sizes.
  double size = rng_.Exponential(static_cast<double>(config_.mean_file_size));
  size = std::clamp(size, static_cast<double>(kPageSize),
                    16.0 * static_cast<double>(config_.mean_file_size));
  return static_cast<uint64_t>(size);
}

Status FilebenchWorkload::Setup() {
  assert(!setup_done_);
  Result<InodeNo> dir = fs_->Mkdir(config_.data_dir);
  if (!dir.ok() && dir.status().code() != StatusCode::kExists) {
    return dir.status();
  }
  uint64_t covered_count =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                static_cast<double>(config_.file_count) * config_.coverage));
  uint64_t subdirs = std::max<uint64_t>(1, config_.subdirs);
  for (uint64_t d = 1; d < subdirs; ++d) {
    Result<InodeNo> sub = fs_->Mkdir(StrFormat("%s/d%03llu", config_.data_dir.c_str(),
                                               static_cast<unsigned long long>(d)));
    if (!sub.ok() && sub.status().code() != StatusCode::kExists) {
      return sub.status();
    }
  }
  for (uint64_t i = 0; i < config_.file_count; ++i) {
    uint64_t d = i % subdirs;
    std::string path =
        d == 0 ? StrFormat("%s/f%06llu", config_.data_dir.c_str(),
                           static_cast<unsigned long long>(i))
               : StrFormat("%s/d%03llu/f%06llu", config_.data_dir.c_str(),
                           static_cast<unsigned long long>(d),
                           static_cast<unsigned long long>(i));
    bool aged =
        config_.fragmented_fraction > 0 && rng_.Chance(config_.fragmented_fraction);
    Result<InodeNo> ino = aged ? fs_->PopulateFileAged(path, SampleFileSize(),
                                                       /*break_prob=*/0.3, rng_)
                               : fs_->PopulateFile(path, SampleFileSize());
    if (!ino.ok()) {
      return ino.status();
    }
    // The covered subset is striped across the file set so covered data is
    // spread over the whole device, unless clustering is requested (cold-
    // data-placement ablation, §6.5).
    bool covered = config_.cluster_covered
                       ? i < covered_count
                       : (i * covered_count) % config_.file_count < covered_count;
    if (covered && covered_.size() < covered_count) {
      covered_.push_back(*ino);
      covered_bytes_ += fs_->ns().Get(*ino)->size;
    }
  }
  Result<InodeNo> log = fs_->PopulateFile(config_.log_path, kPageSize);
  if (!log.ok()) {
    return log.status();
  }
  log_ino_ = *log;
  if (config_.skewed) {
    zipf_ = std::make_unique<ZipfSampler>(covered_.size(), config_.zipf_s);
  }
  setup_done_ = true;
  return Status::Ok();
}

void FilebenchWorkload::Start() {
  assert(setup_done_);
  if (running_) {
    return;
  }
  running_ = true;
  next_issue_at_ = fs_->loop().now();
  IssueNext();
}

void FilebenchWorkload::Stop() { running_ = false; }

FilebenchWorkload::OpType FilebenchWorkload::PickOp() {
  // Weighted mixes chosen to land on the paper's R:W ratios per personality.
  uint64_t r = rng_.Uniform(1000);
  OpType op = OpType::kReadFile;
  switch (config_.personality) {
    case Personality::kWebserver:
      // 10 reads : 1 log append (R:W = 10:1, all writes to one log file).
      op = (r < 909) ? OpType::kReadFile : OpType::kAppendLog;
      break;
    case Personality::kWebproxy:
      // Reads 80%, appends 15%, create/delete churn 5% (R:W = 4:1).
      if (r < 800) {
        op = OpType::kReadFile;
      } else if (r < 950) {
        op = OpType::kAppendFile;
      } else {
        op = (r < 975) ? OpType::kCreate : OpType::kDelete;
      }
      break;
    case Personality::kFileserver:
      // 1 read : 2 writes, any file may be overwritten.
      if (r < 330) {
        op = OpType::kReadFile;
      } else if (r < 730) {
        op = OpType::kOverwrite;
      } else if (r < 870) {
        op = OpType::kAppendFile;
      } else {
        op = (r < 935) ? OpType::kCreate : OpType::kDelete;
      }
      break;
  }
  // Keep the file-set size roughly stable: never let deletes drain the
  // covered set below half its initial size.
  if (op == OpType::kDelete && covered_.size() * 2 < config_.file_count) {
    op = OpType::kCreate;
  }
  return op;
}

size_t FilebenchWorkload::PickFileIndex() {
  assert(!covered_.empty());
  if (zipf_ != nullptr) {
    return static_cast<size_t>(zipf_->Sample(rng_)) % covered_.size();
  }
  return static_cast<size_t>(rng_.Uniform(covered_.size()));
}

void FilebenchWorkload::OnOpComplete(OpType op, SimTime issued_at,
                                     const FsIoResult& result) {
  ++stats_.ops_completed;
  ctr_completed_->Add();
  SimDuration latency = fs_->loop().now() - issued_at;
  stats_.latency_ms.Add(ToMillis(latency));
  hist_latency_us_->Record(latency / kMicrosecond);
  obs_->trace.Emit(fs_->loop().now(), obs::TraceLayer::kWorkload,
                   obs::TraceKind::kOpCompleted, static_cast<uint64_t>(op),
                   latency / kMicrosecond);
  switch (op) {
    case OpType::kReadFile:
      ++stats_.read_ops;
      ctr_reads_->Add();
      stats_.pages_read += result.pages_requested;
      ctr_pages_read_->Add(result.pages_requested);
      break;
    case OpType::kOverwrite:
    case OpType::kAppendFile:
    case OpType::kAppendLog:
      ++stats_.write_ops;
      ctr_writes_->Add();
      stats_.pages_written += result.pages_requested;
      ctr_pages_written_->Add(result.pages_requested);
      break;
    case OpType::kCreate:
      ++stats_.write_ops;
      ctr_writes_->Add();
      ++stats_.creates;
      stats_.pages_written += result.pages_requested;
      ctr_pages_written_->Add(result.pages_requested);
      break;
    case OpType::kDelete:
      ++stats_.write_ops;
      ctr_writes_->Add();
      ++stats_.deletes;
      break;
  }
  if (!running_) {
    return;
  }
  // Closed loop with optional rate throttle: the next operation issues at
  // the later of "now" and the next pacing slot.
  if (config_.ops_per_sec > 0) {
    SimDuration gap = FromSeconds(rng_.Exponential(1.0 / config_.ops_per_sec));
    next_issue_at_ += gap;
  } else {
    next_issue_at_ = fs_->loop().now() + config_.think_time;
  }
  SimTime when = std::max(next_issue_at_, fs_->loop().now());
  fs_->loop().ScheduleAt(when, [this] { IssueNext(); });
}

void FilebenchWorkload::IssueNext() {
  if (!running_) {
    return;
  }
  if (covered_.empty()) {
    running_ = false;
    return;
  }
  OpType op = PickOp();
  SimTime issued_at = fs_->loop().now();
  ++stats_.ops_issued;
  ctr_issued_->Add();
  obs_->trace.Emit(issued_at, obs::TraceLayer::kWorkload,
                   obs::TraceKind::kOpIssued, static_cast<uint64_t>(op));
  auto cb = [this, op, issued_at](const FsIoResult& result) {
    OnOpComplete(op, issued_at, result);
  };

  switch (op) {
    case OpType::kReadFile: {
      InodeNo ino = covered_[PickFileIndex()];
      const Inode* inode = fs_->ns().Get(ino);
      uint64_t size = inode != nullptr ? inode->size : kPageSize;
      if (config_.partial_read_fraction > 0 && size > kPageSize) {
        // Range request: a random page-aligned slice of the file.
        uint64_t len = std::max<uint64_t>(
            kPageSize, static_cast<uint64_t>(config_.partial_read_fraction *
                                             static_cast<double>(size)));
        len = std::min(len, size);
        uint64_t max_first = PagesForBytes(size - len);
        ByteOff off = rng_.Uniform(max_first + 1) * kPageSize;
        fs_->Read(ino, off, len, IoClass::kBestEffort, cb);
      } else {
        fs_->Read(ino, 0, size, IoClass::kBestEffort, cb);
      }
      return;
    }
    case OpType::kOverwrite: {
      InodeNo ino = covered_[PickFileIndex()];
      const Inode* inode = fs_->ns().Get(ino);
      fs_->Write(ino, 0, inode != nullptr ? inode->size : kPageSize,
                 IoClass::kBestEffort, cb);
      return;
    }
    case OpType::kAppendFile: {
      size_t idx = PickFileIndex();
      InodeNo ino = covered_[idx];
      const Inode* inode = fs_->ns().Get(ino);
      // Cap file growth: once a file balloons past 16x the mean, rewrite it
      // in place instead (Filebench keeps its set size roughly stable).
      if (inode != nullptr && inode->size > 16 * config_.mean_file_size) {
        fs_->Write(ino, 0, config_.append_size, IoClass::kBestEffort, cb);
      } else {
        fs_->Append(ino, config_.append_size, IoClass::kBestEffort, cb);
      }
      return;
    }
    case OpType::kAppendLog: {
      const Inode* log = fs_->ns().Get(log_ino_);
      // Rotate the log when it exceeds 256 MiB, as production servers do.
      if (log != nullptr && log->size > 256ull * 1024 * 1024) {
        (void)fs_->DeleteFile(log_ino_);
        Result<InodeNo> fresh = fs_->PopulateFile(config_.log_path, kPageSize);
        if (fresh.ok()) {
          log_ino_ = *fresh;
        }
      }
      fs_->Append(log_ino_, config_.append_size, IoClass::kBestEffort, cb);
      return;
    }
    case OpType::kCreate: {
      std::string path = StrFormat("%s/new%06llu", config_.data_dir.c_str(),
                                   static_cast<unsigned long long>(create_counter_++));
      Result<InodeNo> ino = fs_->CreateFile(path);
      if (!ino.ok()) {
        FsIoResult failed;
        failed.status = ino.status();
        OnOpComplete(op, issued_at, failed);
        return;
      }
      covered_.push_back(*ino);
      fs_->Write(*ino, 0, SampleFileSize(), IoClass::kBestEffort, cb);
      return;
    }
    case OpType::kDelete: {
      size_t idx = PickFileIndex();
      InodeNo ino = covered_[idx];
      covered_[idx] = covered_.back();
      covered_.pop_back();
      (void)fs_->DeleteFile(ino);
      FsIoResult ok_result;
      OnOpComplete(op, issued_at, ok_result);
      return;
    }
  }
}

}  // namespace duet
