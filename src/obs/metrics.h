// MetricsRegistry: named counters, gauges, and log-scale histograms for
// every layer of the stack. Metric handles are registered once (typically at
// component construction) and updated with a single add on the hot path, so
// per-I/O instrumentation costs one pointer dereference and an increment.
//
// Names are hierarchical, dot-separated, lower-case: `<layer>.<noun>[.<verb>]`
// — e.g. `cache.evictions`, `duet.events.dropped`, `block.read.latency_us`.
// The registry iterates in name order, so dumps and snapshots are
// deterministic across runs.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace duet {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t n) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Log2-bucketed histogram over non-negative integer samples (latencies in
// microseconds, sizes in blocks). Bucket i holds samples whose bit width is
// i, i.e. [2^(i-1), 2^i); constant memory, O(1) record, percentile error
// bounded by the bucket ratio (2x) with linear interpolation inside buckets.
class LogHistogram {
 public:
  static constexpr int kBuckets = 65;  // bit widths 0..64

  void Record(uint64_t sample);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  // p in [0, 100]; interpolates within the containing bucket.
  double Percentile(double p) const;
  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

// A point-in-time copy of every scalar metric (counters and gauges), used to
// carry a run's numbers out of a registry whose lifetime ends with the run.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;

  // Value of a counter (0 if absent) / gauge (0 if absent).
  uint64_t Value(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration: returns the existing metric when the name is already
  // registered, so independent components can share a metric. A name refers
  // to exactly one kind; re-registering under a different kind returns
  // nullptr (programming error, surfaced loudly in debug builds).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LogHistogram* GetHistogram(std::string_view name);

  // Lookup without creating; nullptr when absent or of a different kind.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const LogHistogram* FindHistogram(std::string_view name) const;

  // Counter value by name; 0 when absent (convenient for tests and dumps).
  uint64_t CounterValue(std::string_view name) const;

  MetricsSnapshot Snapshot() const;

  // One metric per line, sorted by name:
  //   counter <name> <value>
  //   gauge <name> <value>
  //   histogram <name> count=<n> sum=<s> min=<m> max=<M> p50=<..> p95=<..> p99=<..>
  std::string DumpText() const;
  // A single JSON object keyed by metric name (histograms nest an object).
  std::string DumpJson() const;

  uint64_t metric_count() const { return metrics_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  Metric* GetOrCreate(std::string_view name, Kind kind);
  const Metric* Find(std::string_view name, Kind kind) const;

  // std::map: handles are stable and iteration is name-ordered.
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace obs
}  // namespace duet

#endif  // SRC_OBS_METRICS_H_
