#include "src/obs/trace.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "src/util/format.h"

namespace duet {
namespace obs {

const char* TraceLayerName(TraceLayer layer) {
  switch (layer) {
    case TraceLayer::kSim:
      return "sim";
    case TraceLayer::kBlock:
      return "block";
    case TraceLayer::kCache:
      return "cache";
    case TraceLayer::kDuet:
      return "duet";
    case TraceLayer::kTask:
      return "task";
    case TraceLayer::kFault:
      return "fault";
    case TraceLayer::kWorkload:
      return "workload";
    case TraceLayer::kFs:
      return "fs";
  }
  return "unknown";
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kEventScheduled:
      return "event_scheduled";
    case TraceKind::kEventFired:
      return "event_fired";
    case TraceKind::kEventCancelled:
      return "event_cancelled";
    case TraceKind::kIoSubmit:
      return "io_submit";
    case TraceKind::kIoComplete:
      return "io_complete";
    case TraceKind::kPageAdded:
      return "page_added";
    case TraceKind::kPageRemoved:
      return "page_removed";
    case TraceKind::kPageDirtied:
      return "page_dirtied";
    case TraceKind::kPageFlushed:
      return "page_flushed";
    case TraceKind::kPageEvicted:
      return "page_evicted";
    case TraceKind::kSessionRegistered:
      return "session_registered";
    case TraceKind::kSessionDeregistered:
      return "session_deregistered";
    case TraceKind::kEventDelivered:
      return "event_delivered";
    case TraceKind::kEventDropped:
      return "event_dropped";
    case TraceKind::kItemFetched:
      return "item_fetched";
    case TraceKind::kDoneSet:
      return "done_set";
    case TraceKind::kDoneUnset:
      return "done_unset";
    case TraceKind::kTaskStarted:
      return "task_started";
    case TraceKind::kTaskFinished:
      return "task_finished";
    case TraceKind::kChunkStarted:
      return "chunk_started";
    case TraceKind::kChunkFinished:
      return "chunk_finished";
    case TraceKind::kRepair:
      return "repair";
    case TraceKind::kRetry:
      return "retry";
    case TraceKind::kFaultInjected:
      return "fault_injected";
    case TraceKind::kFaultArmed:
      return "fault_armed";
    case TraceKind::kFaultDetected:
      return "fault_detected";
    case TraceKind::kFaultRepaired:
      return "fault_repaired";
    case TraceKind::kFaultMasked:
      return "fault_masked";
    case TraceKind::kFaultUnrecoverable:
      return "fault_unrecoverable";
    case TraceKind::kOpIssued:
      return "op_issued";
    case TraceKind::kOpCompleted:
      return "op_completed";
    case TraceKind::kDeviceFlush:
      return "device_flush";
    case TraceKind::kCrashTriggered:
      return "crash_triggered";
    case TraceKind::kCheckpointCommit:
      return "checkpoint_commit";
    case TraceKind::kMountRecovered:
      return "mount_recovered";
    case TraceKind::kFsckRan:
      return "fsck_ran";
  }
  return "unknown";
}

std::string TraceEvent::ToJson() const {
  return StrFormat(
      "{\"t\":%llu,\"layer\":\"%s\",\"kind\":\"%s\",\"a\":%llu,\"b\":%llu,"
      "\"c\":%llu}",
      static_cast<unsigned long long>(at), TraceLayerName(layer),
      TraceKindName(kind), static_cast<unsigned long long>(a),
      static_cast<unsigned long long>(b), static_cast<unsigned long long>(c));
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
  events_.resize(capacity_);
}

void TraceRing::OnTraceEvent(const TraceEvent& event) {
  events_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  }
  ++total_seen_;
}

void TraceRing::ForEach(const std::function<void(const TraceEvent&)>& fn) const {
  for (size_t i = 0; i < size_; ++i) {
    fn(at(i));
  }
}

const TraceEvent& TraceRing::at(size_t i) const {
  assert(i < size_);
  // Oldest retained event sits at head_ when full, at 0 otherwise.
  size_t start = size_ == capacity_ ? head_ : 0;
  return events_[(start + i) % capacity_];
}

void TraceRing::Clear() {
  head_ = 0;
  size_ = 0;
  total_seen_ = 0;
}

std::unique_ptr<JsonlTraceSink> JsonlTraceSink::Open(const std::string& path) {
  FILE* file = fopen(path.c_str(), "w");
  if (file == nullptr) {
    return nullptr;
  }
  return std::unique_ptr<JsonlTraceSink>(new JsonlTraceSink(file));
}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr) {
    fclose(file_);
  }
}

void JsonlTraceSink::OnTraceEvent(const TraceEvent& event) {
  std::string line = event.ToJson();
  line += '\n';
  fwrite(line.data(), 1, line.size(), file_);
  ++events_written_;
}

void Tracer::EmitToSinks(const TraceEvent& event) {
  for (TraceSink* sink : sinks_) {
    sink->OnTraceEvent(event);
  }
}

void Tracer::AddSink(TraceSink* sink) {
  assert(sink != nullptr);
  sinks_.push_back(sink);
}

void Tracer::RemoveSink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

}  // namespace obs
}  // namespace duet
