#include "src/obs/metrics.h"

#include <bit>
#include <cassert>

#include "src/util/format.h"

namespace duet {
namespace obs {

void LogHistogram::Record(uint64_t sample) {
  ++buckets_[std::bit_width(sample)];
  ++count_;
  sum_ += sample;
  if (sample < min_) {
    min_ = sample;
  }
  if (sample > max_) {
    max_ = sample;
  }
}

double LogHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0) {
    return static_cast<double>(min());
  }
  if (p >= 100) {
    return static_cast<double>(max_);
  }
  double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (static_cast<double>(seen + buckets_[i]) >= target) {
      // Interpolate linearly within [lo, hi) = [2^(i-1), 2^i).
      double lo = i == 0 ? 0 : static_cast<double>(1ull << (i - 1));
      double hi = i == 0 ? 1 : lo * 2;
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets_[i]);
      double v = lo + frac * (hi - lo);
      // Clamp to the observed range so tiny histograms stay sensible.
      if (v < static_cast<double>(min())) {
        v = static_cast<double>(min());
      }
      if (v > static_cast<double>(max_)) {
        v = static_cast<double>(max_);
      }
      return v;
    }
    seen += buckets_[i];
  }
  return static_cast<double>(max_);
}

uint64_t MetricsSnapshot::Value(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

MetricsRegistry::Metric* MetricsRegistry::GetOrCreate(std::string_view name,
                                                      Kind kind) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    assert(it->second.kind == kind);
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Metric m;
  m.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      m.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      m.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      m.histogram = std::make_unique<LogHistogram>();
      break;
  }
  return &metrics_.emplace(std::string(name), std::move(m)).first->second;
}

const MetricsRegistry::Metric* MetricsRegistry::Find(std::string_view name,
                                                     Kind kind) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != kind) {
    return nullptr;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  Metric* m = GetOrCreate(name, Kind::kCounter);
  return m == nullptr ? nullptr : m->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  Metric* m = GetOrCreate(name, Kind::kGauge);
  return m == nullptr ? nullptr : m->gauge.get();
}

LogHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  Metric* m = GetOrCreate(name, Kind::kHistogram);
  return m == nullptr ? nullptr : m->histogram.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const Metric* m = Find(name, Kind::kCounter);
  return m == nullptr ? nullptr : m->counter.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const Metric* m = Find(name, Kind::kGauge);
  return m == nullptr ? nullptr : m->gauge.get();
}

const LogHistogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const Metric* m = Find(name, Kind::kHistogram);
  return m == nullptr ? nullptr : m->histogram.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, m] : metrics_) {
    if (m.kind == Kind::kCounter) {
      snap.counters[name] = m.counter->value();
    } else if (m.kind == Kind::kGauge) {
      snap.gauges[name] = m.gauge->value();
    }
  }
  return snap;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  for (const auto& [name, m] : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        out += StrFormat("counter %s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(m.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("gauge %s %lld\n", name.c_str(),
                         static_cast<long long>(m.gauge->value()));
        break;
      case Kind::kHistogram: {
        const LogHistogram& h = *m.histogram;
        out += StrFormat(
            "histogram %s count=%llu sum=%llu min=%llu max=%llu "
            "p50=%.1f p95=%.1f p99=%.1f\n",
            name.c_str(), static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.sum()),
            static_cast<unsigned long long>(h.min()),
            static_cast<unsigned long long>(h.max()), h.P50(), h.P95(), h.P99());
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (!first) {
      out += ",";
    }
    first = false;
    switch (m.kind) {
      case Kind::kCounter:
        out += StrFormat("\"%s\":%llu", name.c_str(),
                         static_cast<unsigned long long>(m.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("\"%s\":%lld", name.c_str(),
                         static_cast<long long>(m.gauge->value()));
        break;
      case Kind::kHistogram: {
        const LogHistogram& h = *m.histogram;
        out += StrFormat(
            "\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
            "\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
            name.c_str(), static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.sum()),
            static_cast<unsigned long long>(h.min()),
            static_cast<unsigned long long>(h.max()), h.P50(), h.P95(), h.P99());
        break;
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace duet
