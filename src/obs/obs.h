// Ambient observability context: one MetricsRegistry plus one Tracer,
// discoverable from anywhere in the stack without threading a pointer
// through every constructor.
//
// The simulation is single-threaded, so "ambient" is a plain pointer with
// scoped install semantics: a process-wide default context always exists,
// and a harness/test installs its own with an RAII ObsScope *before*
// constructing the stack. Components capture CurrentObs() (and register
// their metric handles) at construction time, so a context must outlive
// every component built under its scope.
//
//   obs::ObsContext ctx;
//   obs::ObsScope scope(&ctx);
//   CowRig rig(...);            // all layers report into ctx
//   ...run...
//   uint64_t fp = ctx.trace.Fingerprint();
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace duet {
namespace obs {

struct ObsContext {
  MetricsRegistry metrics;
  Tracer trace;
};

// The currently installed context; never null (falls back to the process
// default).
ObsContext* CurrentObs();

// Installs `ctx` as current for this scope; restores the previous context on
// destruction. Scopes nest.
class ObsScope {
 public:
  explicit ObsScope(ObsContext* ctx);
  ~ObsScope();
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  ObsContext* prev_;
};

// Shorthands for the current context's halves.
inline MetricsRegistry& Metrics() { return CurrentObs()->metrics; }
inline Tracer& Trace() { return CurrentObs()->trace; }

}  // namespace obs
}  // namespace duet

#endif  // SRC_OBS_OBS_H_
