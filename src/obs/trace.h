// Structured event trace for the simulation stack.
//
// Every layer emits typed TraceEvents (sim-time, layer, kind, payload) into
// the ambient Tracer. The Tracer folds each event into a streaming FNV-1a
// fingerprint — two runs can be compared for byte-identical event streams in
// O(1) memory — and forwards it to pluggable sinks: a bounded in-memory ring
// for tests and a JSONL file sink for `duetsim --trace`.
//
// Determinism contract: the trace must be a pure function of the simulation
// inputs (seeds and configuration). Only simulation-visible values may enter
// an event payload — sim-time, ids, block/inode numbers — never pointers,
// wall-clock time, or container iteration order of unordered containers.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace duet {
namespace obs {

// The layer that emitted an event (stable wire values; append only).
enum class TraceLayer : uint8_t {
  kSim = 0,
  kBlock = 1,
  kCache = 2,
  kDuet = 3,
  kTask = 4,
  kFault = 5,
  kWorkload = 6,
  kFs = 7,
};

// Event kinds across all layers (stable wire values; append only).
enum class TraceKind : uint8_t {
  // sim
  kEventScheduled = 0,   // a=event id, b=fire time
  kEventFired = 1,       // a=event id
  kEventCancelled = 2,   // a=event id
  // block
  kIoSubmit = 3,         // a=block, b=count, c=class<<1|dir
  kIoComplete = 4,       // a=block, b=count, c=status code
  // cache (Duet's four hook events, plus eviction)
  kPageAdded = 5,        // a=ino, b=page idx
  kPageRemoved = 6,      // a=ino, b=page idx
  kPageDirtied = 7,      // a=ino, b=page idx
  kPageFlushed = 8,      // a=ino, b=page idx
  kPageEvicted = 9,      // a=ino, b=page idx
  // duet
  kSessionRegistered = 10,    // a=session id, b=mask, c=is_block
  kSessionDeregistered = 11,  // a=session id
  kEventDelivered = 12,       // a=session id, b=ino, c=page idx
  kEventDropped = 13,         // a=session id, b=ino, c=page idx
  kItemFetched = 14,          // a=session id, b=item id, c=flags
  kDoneSet = 15,              // a=session id, b=item id
  kDoneUnset = 16,            // a=session id, b=item id
  // tasks
  kTaskStarted = 17,     // a=task tag
  kTaskFinished = 18,    // a=task tag, b=work done
  kChunkStarted = 19,    // a=task tag, b=start, c=count
  kChunkFinished = 20,   // a=task tag, b=start, c=count
  kRepair = 21,          // a=task tag, b=block, c=1 repaired / 0 unrecoverable
  kRetry = 22,           // a=task tag, b=start, c=attempt
  // fault
  kFaultInjected = 23,      // a=block, b=fault kind
  kFaultArmed = 24,         // a=block, b=fault kind
  kFaultDetected = 25,      // a=block
  kFaultRepaired = 26,      // a=block
  kFaultMasked = 27,        // a=block
  kFaultUnrecoverable = 28, // a=block
  // workload
  kOpIssued = 29,        // a=op kind, b=ino
  kOpCompleted = 30,     // a=op kind, b=latency us
  // crash consistency (block/fault/fs layers)
  kDeviceFlush = 31,        // a=blocks committed, b=image commit seq
  kCrashTriggered = 32,     // a=device ops dispatched, b=crash kind tag
  kCheckpointCommit = 33,   // a=generation, b=bytes, c=image commit seq
  kMountRecovered = 34,     // a=generation, b=blocks replayed, c=discarded
  kFsckRan = 35,            // a=structural errors, b=checksum errors
};

const char* TraceLayerName(TraceLayer layer);
const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  SimTime at = 0;
  TraceLayer layer = TraceLayer::kSim;
  TraceKind kind = TraceKind::kEventScheduled;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;

  // One JSON object per event, schema documented in DESIGN.md §8.
  std::string ToJson() const;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnTraceEvent(const TraceEvent& event) = 0;
};

// Bounded in-memory ring: keeps the most recent `capacity` events and counts
// what it had to drop. The test-side sink.
class TraceRing : public TraceSink {
 public:
  explicit TraceRing(size_t capacity);

  void OnTraceEvent(const TraceEvent& event) override;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  uint64_t total_seen() const { return total_seen_; }
  uint64_t dropped() const { return total_seen_ - size_; }
  // Oldest-first iteration over retained events.
  void ForEach(const std::function<void(const TraceEvent&)>& fn) const;
  // The i-th retained event, oldest first.
  const TraceEvent& at(size_t i) const;
  void Clear();

 private:
  size_t capacity_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  uint64_t total_seen_ = 0;
  std::vector<TraceEvent> events_;
};

// Writes one JSON line per event; owns the FILE handle.
class JsonlTraceSink : public TraceSink {
 public:
  // Returns nullptr if the file cannot be opened.
  static std::unique_ptr<JsonlTraceSink> Open(const std::string& path);
  ~JsonlTraceSink() override;

  void OnTraceEvent(const TraceEvent& event) override;
  uint64_t events_written() const { return events_written_; }

 private:
  explicit JsonlTraceSink(FILE* file) : file_(file) {}
  FILE* file_;
  uint64_t events_written_ = 0;
};

// Fan-out point: folds every event into the running FNV-1a fingerprint and
// forwards to registered sinks. Sinks are borrowed, not owned.
class Tracer {
 public:
  static constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
  static constexpr uint64_t kFnvPrime = 0x100000001b3ull;

  // Inline: Emit sits on the hook-dispatch hot path (several emits per
  // page-cache event); only the sink fan-out stays out of line.
  void Emit(SimTime at, TraceLayer layer, TraceKind kind, uint64_t a = 0,
            uint64_t b = 0, uint64_t c = 0) {
    ++events_emitted_;
    if (fingerprint_enabled_) {
      // Fold the event into the running fingerprint with ONE serial multiply
      // per event: the six fields are first mixed into a single word with
      // independent odd-constant multiplies (they have no data dependence,
      // so they issue in parallel), then FNV-chained into the accumulator.
      // The original byte-at-a-time FNV-1a put 48 dependent multiplies on
      // the hook-dispatch critical path; this keeps the same determinism
      // contract (identical streams <=> identical fingerprints, within one
      // build) with a ~2-cycle dependent chain per event.
      uint64_t x = at * 0x9e3779b97f4a7c15ull +
                   a * 0xbf58476d1ce4e5b9ull +
                   b * 0x94d049bb133111ebull +
                   c * 0x2545f4914f6cdd1dull +
                   ((static_cast<uint64_t>(layer) << 8) |
                    static_cast<uint64_t>(kind)) * 0xff51afd7ed558ccdull;
      fingerprint_ = (fingerprint_ ^ x) * kFnvPrime;
    }
    if (!sinks_.empty()) {
      EmitToSinks(TraceEvent{at, layer, kind, a, b, c});
    }
  }

  void AddSink(TraceSink* sink);
  void RemoveSink(TraceSink* sink);

  // Streaming FNV-1a over every emitted event's serialized words. Identical
  // fingerprints <=> (with overwhelming probability) identical event streams.
  uint64_t Fingerprint() const { return fingerprint_; }
  uint64_t events_emitted() const { return events_emitted_; }

  // Fingerprinting is on by default; hot loops may turn it off for perf
  // experiments where the trace itself would dominate.
  void SetFingerprintEnabled(bool enabled) { fingerprint_enabled_ = enabled; }

 private:
  void EmitToSinks(const TraceEvent& event);

  uint64_t fingerprint_ = kFnvOffset;
  uint64_t events_emitted_ = 0;
  bool fingerprint_enabled_ = true;
  std::vector<TraceSink*> sinks_;
};

}  // namespace obs
}  // namespace duet

#endif  // SRC_OBS_TRACE_H_
