#include "src/obs/obs.h"

namespace duet {
namespace obs {

namespace {

ObsContext* g_current = nullptr;

ObsContext* DefaultObs() {
  static ObsContext* instance = new ObsContext();  // leaked: outlives everything
  return instance;
}

}  // namespace

ObsContext* CurrentObs() {
  return g_current != nullptr ? g_current : DefaultObs();
}

ObsScope::ObsScope(ObsContext* ctx) : prev_(g_current) { g_current = ctx; }

ObsScope::~ObsScope() { g_current = prev_; }

}  // namespace obs
}  // namespace duet
