// Experiment stack configuration: device model, scheduler, cache sizing and
// the experiment window. The defaults reproduce the paper's setup (§6.1.3)
// at 1/12.5 scale: 4 GiB of data instead of 50 GB, with the experiment
// window shrunk by the same factor (144 s instead of 30 min), preserving the
// maintenance-work-to-window ratios that determine the paper's
// maximum-utilization results. The page cache is ~2% of the data, as in the
// paper's 2 GB-RAM setup (§6.5).
#ifndef SRC_HARNESS_STACK_CONFIG_H_
#define SRC_HARNESS_STACK_CONFIG_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/block/block_device.h"
#include "src/block/disk_model.h"
#include "src/block/io_scheduler.h"
#include "src/sim/time.h"
#include "src/util/types.h"

namespace duet {

enum class DeviceKind { kHdd, kSsd };
enum class SchedulerKind { kCfq, kDeadline };

struct StackConfig {
  DeviceKind device = DeviceKind::kHdd;
  SchedulerKind scheduler = SchedulerKind::kCfq;
  // 5 GiB device holding 4 GiB of data (free space for COW allocation).
  uint64_t capacity_blocks = 1'310'720;
  uint64_t data_bytes = 4ull * 1024 * 1024 * 1024;
  // Page cache ≈ 2% of data.
  uint64_t cache_pages = 20'972;
  SimDuration window = Seconds(144);
  // CFQ's slice_idle default: idle-class I/O dispatches only after 8 ms
  // without best-effort activity.
  SimDuration idle_grace = Millis(8);

  // Workload file set: mean size 256 KiB (whole-file reads give the
  // workload the paper's high sequential throughput); count derived from
  // data_bytes.
  uint64_t mean_file_size = 256 * 1024;
  uint64_t FileCount() const { return data_bytes / mean_file_size; }
};

// Builds the disk model / scheduler described by the config.
std::unique_ptr<DiskModel> MakeDiskModel(const StackConfig& config);
std::unique_ptr<IoScheduler> MakeScheduler(const StackConfig& config);

// A config scaled down further for quick smoke runs (tests, --quick).
StackConfig QuickStackConfig();

}  // namespace duet

#endif  // SRC_HARNESS_STACK_CONFIG_H_
