// Fully wired simulation stacks for experiments: event loop, block device,
// file system, Duet framework, and a Filebench workload.
#ifndef SRC_HARNESS_RIG_H_
#define SRC_HARNESS_RIG_H_

#include <memory>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/harness/stack_config.h"
#include "src/logfs/logfs.h"
#include "src/workload/filebench.h"

namespace duet {

// cowfs stack (scrubbing / backup / defragmentation / rsync source).
class CowRig {
 public:
  CowRig(const StackConfig& stack, const WorkloadConfig& workload_config);

  EventLoop& loop() { return loop_; }
  BlockDevice& device() { return device_; }
  CowFs& fs() { return fs_; }
  DuetCore& duet() { return duet_; }
  FilebenchWorkload& workload() { return workload_; }
  const StackConfig& stack() const { return stack_; }

  // Measures best-effort device utilization over [since, now].
  double UtilizationSince(SimTime since, SimDuration busy_snapshot) const {
    return device_.BestEffortUtilizationSince(since, busy_snapshot);
  }

 private:
  StackConfig stack_;
  EventLoop loop_;
  BlockDevice device_;
  CowFs fs_;
  DuetCore duet_;
  FilebenchWorkload workload_;
};

// logfs stack (garbage collection).
class LogRig {
 public:
  LogRig(const StackConfig& stack, const WorkloadConfig& workload_config,
         uint32_t segment_blocks = 512);

  EventLoop& loop() { return loop_; }
  BlockDevice& device() { return device_; }
  LogFs& fs() { return fs_; }
  DuetCore& duet() { return duet_; }
  FilebenchWorkload& workload() { return workload_; }

 private:
  StackConfig stack_;
  EventLoop loop_;
  BlockDevice device_;
  LogFs fs_;
  DuetCore duet_;
  FilebenchWorkload workload_;
};

// Fills in the workload's file set parameters from the stack config and
// returns the adjusted config.
WorkloadConfig MakeWorkloadConfig(const StackConfig& stack, Personality personality,
                                  double coverage, bool skewed, double ops_per_sec,
                                  uint64_t seed);

}  // namespace duet

#endif  // SRC_HARNESS_RIG_H_
