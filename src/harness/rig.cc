#include "src/harness/rig.h"

namespace duet {

CowRig::CowRig(const StackConfig& stack, const WorkloadConfig& workload_config)
    : stack_(stack),
      device_(&loop_, MakeDiskModel(stack), MakeScheduler(stack)),
      fs_(&loop_, &device_, stack.cache_pages),
      duet_(&fs_),
      workload_(&fs_, workload_config) {
  Status setup = workload_.Setup();
  assert(setup.ok());
  (void)setup;
}

LogRig::LogRig(const StackConfig& stack, const WorkloadConfig& workload_config,
               uint32_t segment_blocks)
    : stack_(stack),
      device_(&loop_, MakeDiskModel(stack), MakeScheduler(stack)),
      fs_(&loop_, &device_, stack.cache_pages, segment_blocks),
      duet_(&fs_),
      workload_(&fs_, workload_config) {
  Status setup = workload_.Setup();
  assert(setup.ok());
  (void)setup;
}

WorkloadConfig MakeWorkloadConfig(const StackConfig& stack, Personality personality,
                                  double coverage, bool skewed, double ops_per_sec,
                                  uint64_t seed) {
  WorkloadConfig config;
  config.personality = personality;
  config.file_count = stack.FileCount();
  config.mean_file_size = stack.mean_file_size;
  config.coverage = coverage;
  config.skewed = skewed;
  config.ops_per_sec = ops_per_sec;
  config.seed = seed;
  return config;
}

}  // namespace duet
