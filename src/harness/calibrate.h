// Workload-rate calibration, mirroring the paper's methodology (§6.1.2):
// each Filebench personality is profiled alone (no maintenance) at different
// throttle settings to find the ops/sec rate that produces a target device
// utilization.
#ifndef SRC_HARNESS_CALIBRATE_H_
#define SRC_HARNESS_CALIBRATE_H_

#include <map>
#include <string>

#include "src/harness/rig.h"
#include "src/harness/stack_config.h"

namespace duet {

// Runs the workload alone for a profiling window and returns the measured
// best-effort device utilization (the iostat %util analogue).
double MeasureUtilization(const StackConfig& stack, const WorkloadConfig& workload,
                          SimDuration profile_window = Seconds(12));

// Finds the ops/sec rate at which the workload alone drives the device at
// `target_util` (0 < target_util < 1), via bisection on the rate. Returns 0
// for target 0 (workload off). A target at or above the workload's maximum
// achievable utilization returns 0 rate with `unthrottled` set.
struct CalibratedRate {
  double ops_per_sec = 0;   // 0 with unthrottled=false means "no workload"
  bool unthrottled = false; // target at/above the natural maximum
  double achieved_util = 0;
};
CalibratedRate CalibrateRate(const StackConfig& stack, const WorkloadConfig& base,
                             double target_util,
                             SimDuration profile_window = Seconds(12));

// Memoizes calibration results across runs of a bench binary: calibration is
// deterministic given (stack, workload, target), so each combination is
// profiled once.
class RateTable {
 public:
  RateTable() = default;
  // With a path, previously saved calibrations are loaded, and new ones are
  // appended on destruction — bench binaries share one cache file.
  explicit RateTable(std::string cache_path);
  ~RateTable();

  const CalibratedRate& Get(const StackConfig& stack, const WorkloadConfig& base,
                            double target_util);

 private:
  std::string cache_path_;
  bool dirty_ = false;
  std::map<std::string, CalibratedRate> cache_;
};

}  // namespace duet

#endif  // SRC_HARNESS_CALIBRATE_H_
