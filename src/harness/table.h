// Minimal aligned-text table printer for bench output.
#ifndef SRC_HARNESS_TABLE_H_
#define SRC_HARNESS_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace duet {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders with column alignment and a header separator.
  std::string Render() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a fraction as a percentage, e.g. 0.42 -> "42%".
std::string Pct(double fraction);
// Formats a double with the given precision.
std::string Num(double value, int precision = 2);

// Renders every counter and gauge in the snapshot whose name starts with
// `prefix` (all of them when empty) as an aligned two-column table, in name
// order. The standard way for tools and benches to report registry numbers.
std::string RenderMetricsTable(const obs::MetricsSnapshot& snapshot,
                               std::string_view prefix = "");

}  // namespace duet

#endif  // SRC_HARNESS_TABLE_H_
