#include "src/harness/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/format.h"

namespace duet {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += "|";
    sep.append(widths[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TextTable::Print() const { fputs(Render().c_str(), stdout); }

std::string Pct(double fraction) { return StrFormat("%.0f%%", fraction * 100.0); }

std::string Num(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string RenderMetricsTable(const obs::MetricsSnapshot& snapshot,
                               std::string_view prefix) {
  TextTable table({"metric", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      table.AddRow({name, StrFormat("%llu", static_cast<unsigned long long>(value))});
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      table.AddRow({name, StrFormat("%lld", static_cast<long long>(value))});
    }
  }
  return table.Render();
}

}  // namespace duet
