// Experiment runners: build a stack, start the workload at a calibrated
// rate, run one or more maintenance tasks (baseline or Duet mode), and
// report the paper's metrics (Table 4).
#ifndef SRC_HARNESS_RUNNER_H_
#define SRC_HARNESS_RUNNER_H_

#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/harness/calibrate.h"
#include "src/harness/rig.h"
#include "src/obs/obs.h"
#include "src/tasks/backup.h"
#include "src/tasks/defrag_task.h"
#include "src/tasks/gc_task.h"
#include "src/tasks/rsync_task.h"
#include "src/tasks/scrubber.h"
#include "src/util/stats.h"

namespace duet {

enum class MaintKind { kScrub, kBackup, kDefrag };

const char* MaintKindName(MaintKind kind);

struct MaintenanceRunConfig {
  StackConfig stack;
  Personality personality = Personality::kWebserver;
  double coverage = 1.0;
  bool skewed = false;
  double target_util = 0.5;       // 0 = no foreground workload
  std::vector<MaintKind> tasks;
  bool use_duet = false;
  double fragmented_fraction = 0; // aged FS for defrag experiments
  // Informed cache replacement: evict already-processed pages first (§2's
  // PACMan-style extension).
  bool informed_eviction = false;
  uint64_t seed = 42;
  // Pre-calibrated rate (reuse across runs); negative = calibrate here.
  double ops_per_sec = -1;
  bool unthrottled = false;
  // Fault injection: active when fault.faults_per_second > 0. A window of 0
  // means "span the whole run" (stack.window). The plan is derived from
  // fault_seed, independent of the workload seed, so the same failure
  // scenario replays across baseline/Duet comparisons.
  FaultPlanConfig fault;
  uint64_t fault_seed = 1;
  // Observability context for the run. When null, the runner creates a
  // private context so every run starts with zeroed counters and a fresh
  // trace fingerprint. A caller-provided context must outlive the run and
  // accumulates across runs that share it.
  obs::ObsContext* obs = nullptr;
};

struct MaintenanceRunResult {
  // Indexed like MaintenanceRunConfig::tasks.
  std::vector<TaskStats> task_stats;
  bool all_finished = false;
  double measured_util = 0;       // best-effort utilization during the run
  DuetStats duet_stats;
  uint64_t workload_ops = 0;
  double workload_latency_ms = 0;
  // Fault accounting (zero when no injector was configured).
  FaultStats fault_stats;
  uint32_t fault_fingerprint = 0;  // FaultPlan::Fingerprint() for replay
  uint64_t scrub_repaired = 0;
  uint64_t scrub_unrecoverable = 0;
  // End-of-run registry snapshot (the reporting source of truth) and the
  // streaming FNV-1a fingerprint of every trace event the run emitted.
  obs::MetricsSnapshot metrics;
  uint64_t trace_fingerprint = 0;

  // Table 4 metrics, read back from the registry snapshot (published by
  // RunMaintenance under tasks.total.*).
  uint64_t TotalTaskIo() const;
  uint64_t TotalWork() const;     // the without-Duet maintenance I/O
  // Table 4's "I/O saved": fraction of the baseline maintenance I/O avoided.
  double IoSavedFraction() const;
  double WorkCompletedFraction() const;
};

// Runs maintenance task(s) concurrently with the workload for the stack's
// window. Tasks run at idle I/O priority.
MaintenanceRunResult RunMaintenance(const MaintenanceRunConfig& config);

// Finds the maximum utilization (in `step` increments, e.g. 0.1) at which
// all tasks still finish within the window (paper Table 5).
double FindMaxUtilization(MaintenanceRunConfig config, double step = 0.1);

// Rsync experiment (§6.2, Fig. 4): source workload runs unthrottled; rsync
// runs at normal priority until completion. Returns the task runtime.
struct RsyncRunResult {
  SimDuration runtime = 0;
  TaskStats stats;
  bool finished = false;
};
RsyncRunResult RunRsync(const StackConfig& stack, Personality personality,
                        double coverage, bool skewed, bool use_duet, uint64_t seed,
                        obs::ObsContext* obs = nullptr);

// GC experiment (§6.2, Table 6): fileserver on logfs at a target utilization;
// measures per-segment cleaning time.
struct GcRunResult {
  RunningStats cleaning_time_ms;
  uint64_t segments_cleaned = 0;
  uint64_t scattered_writes = 0;
  uint64_t blocks_read = 0;    // synchronous cleaning reads performed
  uint64_t blocks_cached = 0;  // cleaning reads saved by the cache
  double measured_util = 0;
};
GcRunResult RunGc(const StackConfig& stack, double target_util, bool use_duet,
                  uint64_t seed, double ops_per_sec = -1, bool unthrottled = false,
                  bool skewed = false, obs::ObsContext* obs = nullptr);

}  // namespace duet

#endif  // SRC_HARNESS_RUNNER_H_
