#include "src/harness/calibrate.h"

#include <algorithm>

#include "src/util/format.h"

namespace duet {

double MeasureUtilization(const StackConfig& stack, const WorkloadConfig& workload,
                          SimDuration profile_window) {
  CowRig rig(stack, workload);
  // Short warmup so the cache reaches a steady mix before measuring.
  SimDuration warmup = profile_window / 5;
  rig.workload().Start();
  rig.loop().RunUntil(warmup);
  SimTime measure_start = rig.loop().now();
  SimDuration busy_at_start =
      rig.device().stats().busy[static_cast<int>(IoClass::kBestEffort)];
  rig.loop().RunUntil(warmup + profile_window);
  rig.workload().Stop();
  return rig.UtilizationSince(measure_start, busy_at_start);
}

CalibratedRate CalibrateRate(const StackConfig& stack, const WorkloadConfig& base,
                             double target_util, SimDuration profile_window) {
  CalibratedRate out;
  if (target_util <= 0) {
    return out;
  }
  // Natural maximum with the unthrottled closed loop.
  WorkloadConfig probe = base;
  probe.ops_per_sec = 0;
  double max_util = MeasureUtilization(stack, probe, profile_window);
  if (target_util >= max_util - 0.01) {
    out.unthrottled = true;
    out.achieved_util = max_util;
    return out;
  }
  // Bisect the rate. An upper bound: unthrottled ops/sec estimate from the
  // profile run would do, but a generous fixed ceiling converges just as
  // fast in ~12 iterations.
  double lo = 0.1;
  double hi = 4000.0;
  double best_rate = hi;
  double best_err = 1.0;
  for (int iter = 0; iter < 11; ++iter) {
    double mid = (lo + hi) / 2;
    probe.ops_per_sec = mid;
    double util = MeasureUtilization(stack, probe, profile_window);
    double err = util - target_util;
    if (std::abs(err) < std::abs(best_err)) {
      best_err = err;
      best_rate = mid;
    }
    if (std::abs(err) < 0.015) {
      break;
    }
    if (err < 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.ops_per_sec = best_rate;
  out.achieved_util = target_util + best_err;
  return out;
}

RateTable::RateTable(std::string cache_path) : cache_path_(std::move(cache_path)) {
  FILE* f = fopen(cache_path_.c_str(), "r");
  if (f == nullptr) {
    return;
  }
  char key[512];
  double ops = 0;
  int unthrottled = 0;
  double achieved = 0;
  while (fscanf(f, "%511s %lf %d %lf", key, &ops, &unthrottled, &achieved) == 4) {
    CalibratedRate rate;
    rate.ops_per_sec = ops;
    rate.unthrottled = unthrottled != 0;
    rate.achieved_util = achieved;
    cache_.emplace(key, rate);
  }
  fclose(f);
}

RateTable::~RateTable() {
  if (cache_path_.empty() || !dirty_) {
    return;
  }
  FILE* f = fopen(cache_path_.c_str(), "w");
  if (f == nullptr) {
    return;
  }
  for (const auto& [key, rate] : cache_) {
    fprintf(f, "%s %.6f %d %.6f\n", key.c_str(), rate.ops_per_sec,
            rate.unthrottled ? 1 : 0, rate.achieved_util);
  }
  fclose(f);
}

const CalibratedRate& RateTable::Get(const StackConfig& stack,
                                     const WorkloadConfig& base, double target_util) {
  std::string key = StrFormat(
      "%d|%d|%llu|%llu|%s|%.3f|%d|%.3f|%.2f|%llu", static_cast<int>(stack.device),
      static_cast<int>(stack.scheduler),
      static_cast<unsigned long long>(stack.capacity_blocks),
      static_cast<unsigned long long>(stack.cache_pages),
      PersonalityName(base.personality), base.coverage, base.skewed ? 1 : 0,
      base.fragmented_fraction, target_util,
      static_cast<unsigned long long>(base.seed));
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, CalibrateRate(stack, base, target_util)).first;
    dirty_ = true;
  }
  return it->second;
}

}  // namespace duet
