#include "src/harness/runner.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace duet {

const char* MaintKindName(MaintKind kind) {
  switch (kind) {
    case MaintKind::kScrub:
      return "scrub";
    case MaintKind::kBackup:
      return "backup";
    case MaintKind::kDefrag:
      return "defrag";
  }
  return "unknown";
}

uint64_t MaintenanceRunResult::TotalTaskIo() const {
  return metrics.Value("tasks.total.io_pages");
}

uint64_t MaintenanceRunResult::TotalWork() const {
  return metrics.Value("tasks.total.work");
}

double MaintenanceRunResult::IoSavedFraction() const {
  // Table 4: maintenance I/O saved with Duet over the total maintenance I/O
  // without Duet. Only I/O that was actually *avoided* counts — work the
  // task never got to attempt within the window does not.
  uint64_t work = TotalWork();
  if (work == 0) {
    return 0;
  }
  uint64_t saved = std::min(metrics.Value("tasks.total.saved_pages"), work);
  return static_cast<double>(saved) / static_cast<double>(work);
}

double MaintenanceRunResult::WorkCompletedFraction() const {
  uint64_t work = TotalWork();
  if (work == 0) {
    return 1.0;
  }
  return static_cast<double>(metrics.Value("tasks.total.done")) /
         static_cast<double>(work);
}

MaintenanceRunResult RunMaintenance(const MaintenanceRunConfig& config) {
  WorkloadConfig workload = MakeWorkloadConfig(
      config.stack, config.personality, config.coverage, config.skewed,
      /*ops_per_sec=*/0, config.seed);
  workload.fragmented_fraction = config.fragmented_fraction;

  bool run_workload = config.target_util > 0;
  if (run_workload) {
    if (config.ops_per_sec >= 0) {
      workload.ops_per_sec = config.unthrottled ? 0 : config.ops_per_sec;
    } else {
      CalibratedRate rate = CalibrateRate(config.stack, workload, config.target_util);
      workload.ops_per_sec = rate.unthrottled ? 0 : rate.ops_per_sec;
    }
  }

  // Calibration above runs throwaway stacks; the run's observability scope
  // starts here so its counters and trace cover exactly this stack.
  obs::ObsContext local_obs;
  obs::ObsContext* obs = config.obs != nullptr ? config.obs : &local_obs;
  obs::ObsScope obs_scope(obs);

  CowRig rig(config.stack, workload);
  if (config.informed_eviction) {
    rig.fs().cache().SetEvictionAdvisor(
        [&rig](InodeNo ino, PageIdx idx) {
          return rig.duet().ProcessedByAllSessions(ino, idx);
        });
  }

  // Fault injection: generate the deterministic schedule after the file set
  // is populated (the target filter skips unallocated blocks) and before the
  // clock starts.
  std::unique_ptr<FaultInjector> injector;
  if (config.fault.faults_per_second > 0) {
    FaultPlanConfig fc = config.fault;
    if (fc.window == 0) {
      fc.window = config.stack.window;
    }
    injector = std::make_unique<FaultInjector>(
        &rig.loop(),
        FaultPlan::Generate(config.fault_seed, fc, rig.fs().capacity_blocks()));
    rig.fs().AttachFaultInjector(injector.get());
    injector->Start();
  }

  // Instantiate the requested maintenance tasks.
  std::unique_ptr<Scrubber> scrub;
  std::unique_ptr<Backup> backup;
  std::unique_ptr<DefragTask> defrag;
  for (MaintKind kind : config.tasks) {
    switch (kind) {
      case MaintKind::kScrub: {
        ScrubberConfig c;
        c.use_duet = config.use_duet;
        scrub = std::make_unique<Scrubber>(&rig.fs(), &rig.duet(), c);
        break;
      }
      case MaintKind::kBackup: {
        BackupConfig c;
        c.use_duet = config.use_duet;
        backup = std::make_unique<Backup>(&rig.fs(), &rig.duet(), c);
        break;
      }
      case MaintKind::kDefrag: {
        DefragConfig c;
        c.use_duet = config.use_duet;
        defrag = std::make_unique<DefragTask>(&rig.fs(), &rig.duet(), c);
        break;
      }
    }
  }

  if (scrub != nullptr) {
    scrub->Start();
  }
  if (backup != nullptr) {
    backup->Start();
  }
  if (defrag != nullptr) {
    defrag->Start();
  }
  if (run_workload) {
    rig.workload().Start();
  }

  rig.loop().RunUntil(config.stack.window);

  MaintenanceRunResult result;
  result.measured_util = rig.UtilizationSince(0, 0);
  result.duet_stats = rig.duet().stats();
  result.workload_ops = rig.workload().stats().ops_completed;
  result.workload_latency_ms = rig.workload().stats().latency_ms.mean();
  if (injector != nullptr) {
    result.fault_stats = injector->stats();
    result.fault_fingerprint = injector->plan().Fingerprint();
  }
  if (scrub != nullptr) {
    result.scrub_repaired = scrub->blocks_repaired();
    result.scrub_unrecoverable = scrub->blocks_unrecoverable();
  }
  rig.workload().Stop();

  // Stop tasks first: Stop() finalizes accounting (e.g. the scrubber's
  // done-bitmap-derived savings) before releasing Duet sessions.
  if (scrub != nullptr) {
    scrub->Stop();
  }
  if (backup != nullptr) {
    backup->Stop();
  }
  if (defrag != nullptr) {
    defrag->Stop();
  }
  result.all_finished = true;
  for (MaintKind kind : config.tasks) {
    const TaskStats* stats = nullptr;
    switch (kind) {
      case MaintKind::kScrub:
        stats = &scrub->stats();
        break;
      case MaintKind::kBackup:
        stats = &backup->stats();
        break;
      case MaintKind::kDefrag:
        stats = &defrag->stats();
        break;
    }
    result.task_stats.push_back(*stats);
    result.all_finished = result.all_finished && stats->finished;
  }

  // Publish end-of-run totals so every reported number can be read back from
  // the registry (Table 4 arithmetic lives in the result methods above).
  uint64_t total_io = 0, total_work = 0, total_saved = 0, total_done = 0;
  for (const TaskStats& s : result.task_stats) {
    total_io += s.TotalIoPages();
    total_work += s.work_total;
    total_saved += s.saved_read_pages + s.saved_write_pages;
    total_done += std::min(s.work_done, s.work_total);
  }
  obs->metrics.GetCounter("tasks.total.io_pages")->Add(total_io);
  obs->metrics.GetCounter("tasks.total.work")->Add(total_work);
  obs->metrics.GetCounter("tasks.total.saved_pages")->Add(total_saved);
  obs->metrics.GetCounter("tasks.total.done")->Add(total_done);
  result.metrics = obs->metrics.Snapshot();
  result.trace_fingerprint = obs->trace.Fingerprint();
  return result;
}

double FindMaxUtilization(MaintenanceRunConfig config, double step) {
  double best = -1;
  for (double util = 0; util <= 1.0001; util += step) {
    config.target_util = util;
    config.ops_per_sec = -1;  // calibrate per level
    MaintenanceRunResult result = RunMaintenance(config);
    // A target the workload cannot actually reach (its natural maximum is
    // lower) does not count as a higher utilization level.
    bool reachable = util <= 0.01 || result.measured_util >= util - 0.08;
    if (result.all_finished && reachable) {
      best = util;
    } else if (util > 0) {
      break;  // completion is monotone in utilization
    }
  }
  return best;
}

RsyncRunResult RunRsync(const StackConfig& stack, Personality personality,
                        double coverage, bool skewed, bool use_duet, uint64_t seed,
                        obs::ObsContext* obs) {
  WorkloadConfig workload =
      MakeWorkloadConfig(stack, personality, coverage, skewed, /*ops_per_sec=*/0, seed);
  obs::ObsContext local_obs;
  obs::ObsScope obs_scope(obs != nullptr ? obs : &local_obs);
  CowRig rig(stack, workload);

  // Destination: a second device + file system in the same simulation.
  BlockDevice dst_device(&rig.loop(), MakeDiskModel(stack), MakeScheduler(stack));
  CowFs dst_fs(&rig.loop(), &dst_device, stack.cache_pages);
  Result<InodeNo> dst_dir = dst_fs.Mkdir("/backup");
  assert(dst_dir.ok());
  (void)dst_dir;

  RsyncConfig config;
  config.use_duet = use_duet;
  config.source_dir = "/data";
  config.dest_dir = "/backup";
  RsyncTask task(&rig.fs(), &dst_fs, &rig.duet(), config);

  RsyncRunResult out;
  bool finished = false;
  SimTime started = rig.loop().now();
  task.Start([&] { finished = true; });
  rig.workload().Start();

  // Run until rsync completes (cap at 40x the window as a safety net).
  SimTime cap = started + 40 * stack.window;
  while (!finished && rig.loop().now() < cap) {
    rig.loop().RunUntil(rig.loop().now() + Seconds(1));
  }
  rig.workload().Stop();
  out.finished = finished;
  out.runtime = (finished ? task.stats().finished_at : rig.loop().now()) - started;
  out.stats = task.stats();
  task.Stop();
  return out;
}

GcRunResult RunGc(const StackConfig& stack, double target_util, bool use_duet,
                  uint64_t seed, double ops_per_sec, bool unthrottled, bool skewed,
                  obs::ObsContext* obs) {
  WorkloadConfig workload = MakeWorkloadConfig(stack, Personality::kFileserver,
                                               /*coverage=*/1.0, skewed,
                                               /*ops_per_sec=*/0, seed);
  if (ops_per_sec >= 0) {
    workload.ops_per_sec = unthrottled ? 0 : ops_per_sec;
  } else if (target_util > 0) {
    // Calibrate on a cowfs stack — close enough for the same device model —
    // to avoid a second calibration code path.
    CalibratedRate rate = CalibrateRate(stack, workload, target_util);
    workload.ops_per_sec = rate.unthrottled ? 0 : rate.ops_per_sec;
  }

  obs::ObsContext local_obs;
  obs::ObsScope obs_scope(obs != nullptr ? obs : &local_obs);
  LogRig rig(stack, workload);
  GcConfig config;
  config.use_duet = use_duet;
  config.wake_interval = Millis(100);
  config.idle_threshold = Millis(10);
  GcTask gc(&rig.fs(), &rig.duet(), config);
  gc.Start();
  rig.workload().Start();
  rig.loop().RunUntil(stack.window);
  rig.workload().Stop();

  GcRunResult out;
  out.cleaning_time_ms = gc.cleaning_time_ms();
  out.segments_cleaned = gc.segments_cleaned();
  out.scattered_writes = rig.fs().scattered_writes();
  out.blocks_read = gc.stats().io_read_pages;
  out.blocks_cached = gc.stats().saved_read_pages;
  out.measured_util = rig.device().BestEffortUtilizationSince(0, 0);
  gc.Stop();
  return out;
}

}  // namespace duet
