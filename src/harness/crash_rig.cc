#include "src/harness/crash_rig.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/block/block_device.h"
#include "src/block/durable_image.h"
#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/fault/fault_injector.h"
#include "src/harness/stack_config.h"
#include "src/logfs/logfs.h"
#include "src/tasks/backup.h"
#include "src/tasks/scrubber.h"
#include "src/util/rng.h"

namespace duet {

namespace {

StackConfig RigStackConfig(const CrashRunConfig& config) {
  StackConfig sc;
  sc.capacity_blocks = config.capacity_blocks;
  sc.cache_pages = config.cache_pages;
  return sc;
}

std::unique_ptr<FileSystem> MakeFs(const CrashRunConfig& config, EventLoop* loop,
                                   BlockDevice* device) {
  if (config.fs == CrashFsKind::kLog) {
    return std::make_unique<LogFs>(loop, device, config.cache_pages,
                                   config.segment_blocks);
  }
  return std::make_unique<CowFs>(loop, device, config.cache_pages);
}

// Runs queued events until `flag` flips (without fast-forwarding the clock
// the way RunUntil would). Stops early on a halted loop or a drained queue.
void RunUntilFlag(EventLoop* loop, const bool* flag) {
  while (!*flag && !loop->halted() && loop->RunOne()) {
  }
}

}  // namespace

CrashRunResult RunCrashRecovery(const CrashRunConfig& config) {
  CrashRunResult result;
  DurableImage image(config.capacity_blocks);

  const uint64_t total_pages = config.files * config.file_pages;
  // Per-page version history: index 0 is the populated content, each rewrite
  // appends. Tokens are unique, so a recovered token identifies its version.
  std::vector<std::vector<uint64_t>> history(total_pages);
  // Highest history index acknowledged durable (promoted at barrier/commit
  // completion). Everything is acked at version 0 by the setup checkpoint.
  std::vector<uint64_t> acked(total_pages, 0);
  std::vector<InodeNo> inos(config.files, kInvalidInode);

  // ---- Phase A: populate, checkpoint, run the workload, crash ----
  {
    StackConfig sc = RigStackConfig(config);
    EventLoop loop;
    BlockDevice device(&loop, MakeDiskModel(sc), MakeScheduler(sc));
    std::unique_ptr<FileSystem> fs = MakeFs(config, &loop, &device);
    fs->AttachDurableImage(&image);

    for (uint64_t f = 0; f < config.files; ++f) {
      Result<InodeNo> ino = fs->PopulateFile("/f" + std::to_string(f),
                                             config.file_pages * kPageSize);
      assert(ino.ok());
      inos[f] = *ino;
      for (PageIdx p = 0; p < config.file_pages; ++p) {
        Result<BlockNo> block = fs->Bmap(*ino, p);
        assert(block.ok());
        history[f * config.file_pages + p].push_back(fs->DiskToken(*block));
      }
    }
    fs->SnapshotToDurable();

    // Setup checkpoint: generation 1 covers the populated state, so every
    // crash point — even one before the first workload barrier — has a
    // consistent image to recover to.
    bool setup_done = false;
    fs->Checkpoint([&setup_done] { setup_done = true; });
    RunUntilFlag(&loop, &setup_done);
    assert(setup_done);

    // The injector is used purely as the deterministic crash trigger here
    // (fault schedules are a different experiment's business).
    FaultInjector injector(&loop, FaultPlan());
    fs->AttachFaultInjector(&injector);
    injector.SetCrashHandler([&device, &loop] {
      device.CrashFreeze();
      loop.Halt();
    });
    if (config.crash_at_time != 0) {
      injector.ScheduleCrashAtTime(config.crash_at_time);
    }
    if (config.crash_at_op != 0) {
      injector.ScheduleCrashAtOp(config.crash_at_op);
    }
    injector.Start();

    // Maintenance with persisted cursors (cowfs only).
    std::optional<DuetCore> duet;
    std::optional<Scrubber> scrubber;
    std::optional<Backup> backup;
    if (config.run_tasks && config.fs == CrashFsKind::kCow) {
      auto* cow = static_cast<CowFs*>(fs.get());
      duet.emplace(fs.get());
      ScrubberConfig scrub_config;
      scrub_config.use_duet = true;
      scrubber.emplace(cow, &*duet, scrub_config);
      scrubber->EnableCursorPersistence(&image);
      scrubber->Start();
      BackupConfig backup_config;
      backup_config.use_duet = true;
      backup.emplace(cow, &*duet, backup_config);
      backup->EnableCursorPersistence(&image);
      backup->Start();
    }

    // Workload driver: seeded single-page rewrites, paused while a
    // checkpoint commit is in flight (quiesced commits).
    Rng rng(config.seed);
    uint64_t oracle_token = 0xc0ffee00d15c0000ULL;
    bool commit_in_flight = false;
    bool workload_done = config.writes == 0;

    std::function<void()> issue_write = [&] {
      if (loop.halted() || result.writes_issued >= config.writes) {
        workload_done = true;
        return;
      }
      if (commit_in_flight) {
        loop.ScheduleAfter(config.write_gap, issue_write);
        return;
      }
      uint64_t page = rng.Uniform(total_pages);
      uint64_t f = page / config.file_pages;
      PageIdx idx = page % config.file_pages;
      uint64_t token = ++oracle_token;
      history[page].push_back(token);
      fs->CopyIn(inos[f], idx * kPageSize, kPageSize, {token},
                 IoClass::kBestEffort, [](const FsIoResult&) {});
      ++result.writes_issued;
      loop.ScheduleAfter(config.write_gap, issue_write);
    };
    loop.ScheduleAfter(config.write_gap, issue_write);

    // A completed barrier/commit promotes the versions that existed when it
    // was issued: Sync guarantees durability for writes submitted before the
    // call; commits additionally quiesce, so call-time state = commit state.
    auto snapshot_versions = [&history, total_pages] {
      std::vector<uint64_t> cur(total_pages);
      for (uint64_t p = 0; p < total_pages; ++p) {
        cur[p] = history[p].size() - 1;
      }
      return cur;
    };
    auto promote = [&acked, total_pages](const std::vector<uint64_t>& cur) {
      for (uint64_t p = 0; p < total_pages; ++p) {
        acked[p] = std::max(acked[p], cur[p]);
      }
    };

    std::function<void()> sync_tick = [&] {
      if (loop.halted() || workload_done) {
        return;
      }
      fs->Sync([&, cur = snapshot_versions()] {
        // cowfs has no log tree: a crash rolls back to the last superblock
        // commit, so a bare fsync acknowledges durability only on logfs
        // (whose roll-forward replay restores synced records).
        if (config.fs == CrashFsKind::kLog) {
          promote(cur);
        }
        ++result.syncs_completed;
      });
      loop.ScheduleAfter(config.sync_every, sync_tick);
    };
    loop.ScheduleAfter(config.sync_every, sync_tick);

    std::function<void()> checkpoint_tick = [&] {
      if (loop.halted() || workload_done || commit_in_flight) {
        return;
      }
      commit_in_flight = true;
      fs->Checkpoint([&, cur = snapshot_versions()] {
        promote(cur);
        ++result.checkpoints_completed;
        commit_in_flight = false;
      });
      loop.ScheduleAfter(config.checkpoint_every, checkpoint_tick);
    };
    loop.ScheduleAfter(config.checkpoint_every, checkpoint_tick);

    // Generous bound: the workload ends far earlier; a crash ends it earlier
    // still. RunUntil returns immediately once the crash halts the loop.
    loop.RunUntil(config.writes * config.write_gap + Seconds(4));
    result.crashed = injector.crashed();
    result.ops_before_crash = device.ops_dispatched();
    if (!result.crashed) {
      // No mid-run crash point: pull the plug at the end of the window.
      device.CrashFreeze();
    }
  }  // stack A torn down; only `image` survives

  // ---- Phase B: rebuild the stack over the image, mount, verify ----
  image.Thaw();
  {
    StackConfig sc = RigStackConfig(config);
    EventLoop loop;
    BlockDevice device(&loop, MakeDiskModel(sc), MakeScheduler(sc));
    std::unique_ptr<FileSystem> fs = MakeFs(config, &loop, &device);
    fs->AttachDurableImage(&image);

    bool mounted = false;
    fs->Mount([&](const MountReport& report) {
      result.mount = report;
      mounted = true;
    });
    RunUntilFlag(&loop, &mounted);
    assert(mounted);
    if (!result.mount.status.ok()) {
      return result;
    }
    result.fsck = fs->CheckConsistency();

    // Durability oracle: every acked version must still be reachable.
    for (uint64_t p = 0; p < total_pages; ++p) {
      uint64_t f = p / config.file_pages;
      PageIdx idx = p % config.file_pages;
      ++result.acked_pages;
      Result<BlockNo> block = fs->Bmap(inos[f], idx);
      uint64_t recovered = block.ok() ? fs->DiskToken(*block) : 0;
      const std::vector<uint64_t>& versions = history[p];
      auto it = std::find(versions.begin(), versions.end(), recovered);
      if (it == versions.end() ||
          static_cast<uint64_t>(it - versions.begin()) < acked[p]) {
        ++result.lost_pages;  // acknowledged-durable data gone
        continue;
      }
      ++result.verified_pages;
      if (static_cast<uint64_t>(it - versions.begin()) < versions.size() - 1) {
        ++result.rolled_back_pages;  // unacked tail undone — allowed
      }
    }

    // Restart maintenance: sessions re-register against the recovered stack
    // (soft state rebuilt by the registration-time initial scan) and the
    // tasks resume from their persisted cursors.
    if (config.run_tasks && config.fs == CrashFsKind::kCow) {
      auto* cow = static_cast<CowFs*>(fs.get());
      DuetCore duet(fs.get());
      ScrubberConfig scrub_config;
      scrub_config.use_duet = true;
      Scrubber scrubber(cow, &duet, scrub_config);
      scrubber.EnableCursorPersistence(&image);
      bool scrub_done = false;
      scrubber.Start([&scrub_done] { scrub_done = true; });
      result.scrub_resume_cursor = scrubber.resume_start();

      BackupConfig backup_config;
      backup_config.use_duet = true;
      Backup backup(cow, &duet, backup_config);
      backup.EnableCursorPersistence(&image);
      bool backup_done = false;
      backup.Start([&backup_done] { backup_done = true; });
      result.backup_resumed = backup.resumed();
      result.backup_resumed_pages = backup.resumed_pages();

      loop.RunUntil(loop.now() + Seconds(30));
      assert(scrub_done && backup_done);
      (void)scrub_done;
      (void)backup_done;
    }
  }
  return result;
}

}  // namespace duet
