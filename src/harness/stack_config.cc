#include "src/harness/stack_config.h"

namespace duet {

std::unique_ptr<DiskModel> MakeDiskModel(const StackConfig& config) {
  if (config.device == DeviceKind::kSsd) {
    SsdParams params;
    params.capacity_blocks = config.capacity_blocks;
    return std::make_unique<SsdModel>(params);
  }
  HddParams params;
  params.capacity_blocks = config.capacity_blocks;
  return std::make_unique<HddModel>(params);
}

std::unique_ptr<IoScheduler> MakeScheduler(const StackConfig& config) {
  if (config.scheduler == SchedulerKind::kDeadline) {
    return std::make_unique<DeadlineScheduler>();
  }
  return std::make_unique<CfqScheduler>(config.idle_grace);
}

StackConfig QuickStackConfig() {
  StackConfig config;
  config.capacity_blocks = 163'840;                 // 640 MiB device
  config.data_bytes = 512ull * 1024 * 1024;         // 512 MiB of data
  config.cache_pages = 2'621;                       // ~2%
  config.window = Seconds(18);                      // 1/100 of 30 min
  return config;
}

}  // namespace duet
