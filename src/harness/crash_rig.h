// Crash-torture harness: drives a deterministic single-page-rewrite workload
// against a cowfs or logfs stack with a durable image attached, pulls the
// plug at a chosen point (sim-time or Nth device op), rebuilds the stack
// over the surviving image, remounts, runs fsck, and checks the durability
// oracle: every page whose content was acknowledged durable before the crash
// must be recovered at least that new. Unacknowledged writes may roll back —
// that is the contract, not a bug.
//
// The whole run is a pure function of the config (virtual time, seeded
// writes, deterministic crash point), so any failing crash point replays
// exactly.
#ifndef SRC_HARNESS_CRASH_RIG_H_
#define SRC_HARNESS_CRASH_RIG_H_

#include <cstdint>

#include "src/fs/file_system.h"
#include "src/sim/time.h"
#include "src/util/types.h"

namespace duet {

enum class CrashFsKind { kCow, kLog };

struct CrashRunConfig {
  CrashFsKind fs = CrashFsKind::kCow;
  uint64_t seed = 1;

  // Crash point: at an absolute sim-time, or when the device dispatches its
  // Nth data/flush op (1-based). Both zero = no mid-run crash; the plug is
  // pulled when the workload window ends instead.
  SimTime crash_at_time = 0;
  uint64_t crash_at_op = 0;

  // Stack scale — deliberately tiny: a torture sweep runs hundreds of these.
  uint64_t capacity_blocks = 4096;
  uint64_t cache_pages = 128;
  uint32_t segment_blocks = 64;  // logfs

  // Workload: `files` files of `file_pages` pages populated and checkpointed
  // up front, then `writes` random single-page rewrites spaced `write_gap`
  // apart, an fsync barrier every `sync_every`, and a checkpoint/superblock
  // commit every `checkpoint_every`. Foreground writes pause during commits
  // (the transaction-commit stall of a real COW/log file system).
  uint64_t files = 8;
  uint64_t file_pages = 16;
  uint64_t writes = 256;
  SimDuration write_gap = Millis(2);
  SimDuration sync_every = Millis(40);
  SimDuration checkpoint_every = Millis(160);

  // cowfs only: run a Duet scrubber and backup with persisted cursors during
  // the workload, and restart them after recovery to verify they re-register
  // and resume from the cursors instead of starting over.
  bool run_tasks = false;
};

struct CrashRunResult {
  // ---- Phase A (workload until the crash) ----
  bool crashed = false;           // the crash point fired mid-run
  uint64_t ops_before_crash = 0;  // device ops dispatched before the freeze
  uint64_t writes_issued = 0;
  uint64_t syncs_completed = 0;
  uint64_t checkpoints_completed = 0;

  // ---- Phase B (recovery) ----
  MountReport mount;
  FsckReport fsck;

  // ---- Durability oracle ----
  uint64_t acked_pages = 0;       // pages with an acknowledged-durable version
  uint64_t verified_pages = 0;    // recovered at least as new as acknowledged
  uint64_t lost_pages = 0;        // recovered older than acknowledged — a bug
  uint64_t rolled_back_pages = 0; // unacked tail writes undone (allowed)

  // ---- Maintenance resume (run_tasks) ----
  BlockNo scrub_resume_cursor = 0;   // nonzero: the scrub pass resumed there
  bool backup_resumed = false;       // reused the persisted snapshot + cursor
  uint64_t backup_resumed_pages = 0; // pages it did not have to re-stream

  bool ok() const {
    return mount.status.ok() && fsck.clean() && lost_pages == 0;
  }
};

// Runs one crash/recover cycle. Deterministic given `config`.
CrashRunResult RunCrashRecovery(const CrashRunConfig& config);

}  // namespace duet

#endif  // SRC_HARNESS_CRASH_RIG_H_
