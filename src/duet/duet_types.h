// Public Duet types: notification masks, fetched items, session ids.
//
// The flag field carries six notification bits, one per event and state
// notification type (paper Table 2 / §3.2): four page events plus the two
// state bits. For state subscribers, an item is returned when a page's net
// state changed since the last fetch, and the EXISTS/MODIFIED bits carry the
// page's *current* state.
#ifndef SRC_DUET_DUET_TYPES_H_
#define SRC_DUET_DUET_TYPES_H_

#include <cstdint>

#include "src/util/types.h"

namespace duet {

using SessionId = uint32_t;
inline constexpr SessionId kInvalidSession = ~0u;

// Notification mask / item flag bits.
inline constexpr uint8_t kDuetPageAdded = 1u << 0;
inline constexpr uint8_t kDuetPageRemoved = 1u << 1;
inline constexpr uint8_t kDuetPageDirtied = 1u << 2;
inline constexpr uint8_t kDuetPageFlushed = 1u << 3;
inline constexpr uint8_t kDuetPageExists = 1u << 4;    // state
inline constexpr uint8_t kDuetPageModified = 1u << 5;  // state

inline constexpr uint8_t kDuetEventMask =
    kDuetPageAdded | kDuetPageRemoved | kDuetPageDirtied | kDuetPageFlushed;
inline constexpr uint8_t kDuetStateMask = kDuetPageExists | kDuetPageModified;

// An item returned by duet_fetch (paper §3.2): for block tasks `id` is the
// block number and `offset` is 0; for file tasks `id` is the inode number
// and `offset` is the byte offset of the page within the file.
struct DuetItem {
  uint64_t id = 0;
  ByteOff offset = 0;
  uint8_t flags = 0;

  bool has(uint8_t bit) const { return (flags & bit) != 0; }
};

struct DuetStats {
  uint64_t hook_invocations = 0;   // page events seen by the framework
  uint64_t descriptor_updates = 0; // per-session flag mutations
  uint64_t items_fetched = 0;      // items copied out by fetch calls
  uint64_t fetch_calls = 0;
  uint64_t events_dropped = 0;     // descriptor-limit drops (event-only)
  uint64_t relevance_checks = 0;   // backward path traversals performed
};

}  // namespace duet

#endif  // SRC_DUET_DUET_TYPES_H_
