#include "src/duet/duet_core.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace duet {
namespace {

uint8_t EventBit(PageEventType type) {
  switch (type) {
    case PageEventType::kAdded:
      return kDuetPageAdded;
    case PageEventType::kRemoved:
      return kDuetPageRemoved;
    case PageEventType::kDirtied:
      return kDuetPageDirtied;
    case PageEventType::kFlushed:
      return kDuetPageFlushed;
  }
  return 0;
}

// State bit affected by an event (Table 2's pairing).
uint8_t AffectedStateBit(PageEventType type) {
  switch (type) {
    case PageEventType::kAdded:
    case PageEventType::kRemoved:
      return kDuetPageExists;
    case PageEventType::kDirtied:
    case PageEventType::kFlushed:
      return kDuetPageModified;
  }
  return 0;
}

}  // namespace

DuetCore::DuetCore(FileSystem* fs, DuetConfig config)
    : fs_(fs),
      config_(config),
      obs_(obs::CurrentObs()),
      ctr_hooks_(obs_->metrics.GetCounter("duet.hooks")),
      ctr_delivered_(obs_->metrics.GetCounter("duet.events.delivered")),
      ctr_dropped_(obs_->metrics.GetCounter("duet.events.dropped")),
      ctr_fetched_(obs_->metrics.GetCounter("duet.items.fetched")),
      ctr_fetch_calls_(obs_->metrics.GetCounter("duet.fetch.calls")),
      ctr_done_set_(obs_->metrics.GetCounter("duet.done.set")),
      ctr_done_unset_(obs_->metrics.GetCounter("duet.done.unset")) {
  assert(fs_ != nullptr);
  assert(config_.max_sessions <= kMaxSessionsHard);
  fs_->cache().AddListener(this);
  fs_->ns().AddObserver(this);
}

SimTime DuetCore::Now() const { return fs_->loop().now(); }

DuetCore::~DuetCore() {
  fs_->cache().RemoveListener(this);
  fs_->ns().RemoveObserver(this);
}

Result<SessionId> DuetCore::AllocateSession(uint8_t mask) {
  if ((mask & (kDuetEventMask | kDuetStateMask)) == 0) {
    return Status(StatusCode::kInvalidArgument, "empty notification mask");
  }
  for (SessionId sid = 0; sid < config_.max_sessions; ++sid) {
    if (!sessions_[sid].active) {
      Session& s = sessions_[sid];
      s = Session{};
      s.active = true;
      s.mask = mask;
      ++active_sessions_;
      return sid;
    }
  }
  return Status(StatusCode::kLimit, "session table full");
}

Result<SessionId> DuetCore::RegisterFileTask(std::string_view path, uint8_t mask) {
  Result<InodeNo> dir = fs_->ns().Resolve(path);
  if (!dir.ok()) {
    return dir.status();
  }
  const Inode* inode = fs_->ns().Get(*dir);
  if (inode == nullptr || !inode->is_dir()) {
    return Status(StatusCode::kInvalidArgument, "registered path is not a directory");
  }
  Result<SessionId> sid = AllocateSession(mask);
  if (!sid.ok()) {
    return sid;
  }
  Session& s = sessions_[*sid];
  s.is_block = false;
  s.registered_dir = *dir;
  uint64_t inode_bits = fs_->ns().max_ino() + 4096;
  s.done.Resize(inode_bits);
  s.relevant.Resize(inode_bits);
  obs_->metrics.GetCounter("duet.sessions.registered")->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet,
                   obs::TraceKind::kSessionRegistered, *sid, mask, 0);
  InitialScan(*sid);
  return sid;
}

Result<SessionId> DuetCore::RegisterBlockTask(uint8_t mask) {
  Result<SessionId> sid = AllocateSession(mask);
  if (!sid.ok()) {
    return sid;
  }
  Session& s = sessions_[*sid];
  s.is_block = true;
  s.done.Resize(fs_->capacity_blocks());
  obs_->metrics.GetCounter("duet.sessions.registered")->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet,
                   obs::TraceKind::kSessionRegistered, *sid, mask, 1);
  InitialScan(*sid);
  return sid;
}

Status DuetCore::Deregister(SessionId sid) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  s.active = false;
  // Clear this session's bytes in every descriptor and drop empties.
  std::vector<PageKey> keys;
  keys.reserve(descriptors_.size());
  for (auto& [key, d] : descriptors_) {
    d.flags[sid] = 0;
    keys.push_back(key);
  }
  for (const PageKey& key : keys) {
    MaybeFreeDescriptor(key);
  }
  s.queue.clear();
  s.done.Reset();
  s.relevant.Reset();
  s.pending = 0;
  --active_sessions_;
  obs_->metrics.GetCounter("duet.sessions.deregistered")->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet,
                   obs::TraceKind::kSessionDeregistered, sid);
  return Status::Ok();
}

void DuetCore::EnsureInodeCapacity(InodeNo ino) {
  for (uint32_t sid = 0; sid < config_.max_sessions; ++sid) {
    Session& s = sessions_[sid];
    if (s.active && !s.is_block && ino >= s.done.size()) {
      uint64_t bits = std::max<uint64_t>(ino + 1, s.done.size() * 2);
      s.done.Resize(bits);
      s.relevant.Resize(bits);
    }
  }
}

DuetCore::Descriptor& DuetCore::GetOrCreateDescriptor(const PageKey& key) {
  auto it = descriptors_.find(key);
  if (it == descriptors_.end()) {
    Descriptor d;
    const CachedPage* page = fs_->cache().Peek(key.ino, key.idx);
    d.cur_exists = page != nullptr;
    d.cur_modified = page != nullptr && page->dirty;
    it = descriptors_.emplace(key, d).first;
    inode_index_[key.ino].insert(key.idx);
  }
  return it->second;
}

bool DuetCore::DescriptorNeeded(const Descriptor& d) const {
  for (uint32_t sid = 0; sid < config_.max_sessions; ++sid) {
    const Session& s = sessions_[sid];
    if (!s.active) {
      continue;
    }
    // Unfetched-but-cancelled notifications (e.g. a page added and evicted
    // between fetches) do NOT keep a descriptor alive — that is what gives
    // the paper's 2x-cache-pages bound for state sessions (§4.2). A stale
    // fetch-queue entry is skipped harmlessly later.
    if (HasPending(s, sid, d)) {
      return true;
    }
    // Keep the descriptor while the page is cached and some state session
    // exists: its reported-state snapshot is live context.
    if (SubscribesState(s) && d.cur_exists) {
      return true;
    }
  }
  return false;
}

void DuetCore::MaybeFreeDescriptor(const PageKey& key) {
  auto it = descriptors_.find(key);
  if (it == descriptors_.end() || DescriptorNeeded(it->second)) {
    return;
  }
  // Reconcile queue accounting: freeing a queued descriptor leaves a stale
  // deque entry behind, which Fetch skips.
  for (uint32_t sid = 0; sid < config_.max_sessions; ++sid) {
    Session& s = sessions_[sid];
    if (s.active && (it->second.flags[sid] & kQueued) != 0) {
      assert(s.pending > 0);
      --s.pending;
    }
  }
  descriptors_.erase(it);
  auto idx_it = inode_index_.find(key.ino);
  if (idx_it != inode_index_.end()) {
    idx_it->second.erase(key.idx);
    if (idx_it->second.empty()) {
      inode_index_.erase(idx_it);
    }
  }
}

bool DuetCore::HasPending(const Session& s, SessionId sid, const Descriptor& d) const {
  uint8_t byte = d.flags[sid];
  if ((byte & kPendingEventMask) != 0) {
    return true;
  }
  if ((s.mask & kDuetPageExists) != 0 &&
      ((byte & kReportedExists) != 0) != d.cur_exists) {
    return true;
  }
  if ((s.mask & kDuetPageModified) != 0 &&
      ((byte & kReportedModified) != 0) != d.cur_modified) {
    return true;
  }
  return false;
}

bool DuetCore::EnsureQueued(SessionId sid, Session& s, Descriptor& d,
                            const PageKey& key) {
  if ((d.flags[sid] & kQueued) != 0) {
    return true;
  }
  if (!SubscribesState(s) && s.pending >= config_.max_pending_per_session) {
    // Event-only session at its descriptor limit: drop (§4.2).
    ++stats_.events_dropped;
    ++s.dropped;
    ctr_dropped_->Add();
    obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kEventDropped,
                     sid, key.ino, key.idx);
    d.flags[sid] &= static_cast<uint8_t>(~kPendingEventMask);
    return false;
  }
  d.flags[sid] |= kQueued;
  s.queue.push_back(key);
  ++s.pending;
  return true;
}

bool DuetCore::IsRelevant(Session& s, InodeNo ino) {
  if (s.relevant.Test(ino)) {
    return true;
  }
  ++stats_.relevance_checks;
  if (fs_->ns().IsUnder(ino, s.registered_dir)) {
    s.relevant.Set(ino);
    return true;
  }
  // Irrelevant: mark done so no backward traversal happens again (§4.1).
  s.done.Set(ino);
  return false;
}

void DuetCore::OnPageEvent(const PageEvent& event) {
  ++stats_.hook_invocations;
  ctr_hooks_->Add();
  if (active_sessions_ == 0) {
    // Still refresh an existing descriptor's state view if one survives.
    auto it = descriptors_.find(PageKey{event.ino, event.idx});
    if (it != descriptors_.end()) {
      const CachedPage* page = fs_->cache().Peek(event.ino, event.idx);
      it->second.cur_exists = page != nullptr;
      it->second.cur_modified = page != nullptr && page->dirty;
    }
    return;
  }
  PageKey key{event.ino, event.idx};

  // Refresh the merged descriptor's current-state view (the cache has
  // already been updated when the hook fires).
  auto desc_it = descriptors_.find(key);
  if (desc_it != descriptors_.end()) {
    const CachedPage* page = fs_->cache().Peek(event.ino, event.idx);
    desc_it->second.cur_exists = page != nullptr;
    desc_it->second.cur_modified = page != nullptr && page->dirty;
  }

  for (SessionId sid = 0; sid < config_.max_sessions; ++sid) {
    Session& s = sessions_[sid];
    if (!s.active) {
      continue;
    }
    uint8_t interest = static_cast<uint8_t>(
        (s.mask & EventBit(event.type)) | (s.mask & AffectedStateBit(event.type)));
    if (interest == 0) {
      continue;
    }
    if (s.is_block) {
      Result<BlockNo> block = fs_->Bmap(event.ino, event.idx);
      if (!block.ok() || s.done.Test(*block)) {
        continue;
      }
    } else {
      if (event.ino >= s.done.size()) {
        EnsureInodeCapacity(event.ino);
      }
      if (s.done.Test(event.ino) || !IsRelevant(s, event.ino)) {
        continue;
      }
    }
    ApplyEvent(sid, s, key, event.type);
  }
  MaybeFreeDescriptor(key);
}

void DuetCore::ApplyEvent(SessionId sid, Session& s, const PageKey& key,
                          PageEventType type) {
  Descriptor& d = GetOrCreateDescriptor(key);
  ++stats_.descriptor_updates;
  ctr_delivered_->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kEventDelivered,
                   sid, key.ino, key.idx);
  uint8_t event_bit = static_cast<uint8_t>(s.mask & EventBit(type));
  if (event_bit != 0) {
    d.flags[sid] |= event_bit;
  }
  if (HasPending(s, sid, d)) {
    EnsureQueued(sid, s, d, key);
  }
}

void DuetCore::InitialScan(SessionId sid) {
  Session& s = sessions_[sid];
  fs_->cache().ForEachPage([&](InodeNo ino, PageIdx idx, const CachedPage& page) {
    if (s.is_block) {
      if (!fs_->Bmap(ino, idx).ok()) {
        return;
      }
    } else {
      if (ino >= s.done.size()) {
        EnsureInodeCapacity(ino);
      }
      if (s.done.Test(ino) || !IsRelevant(s, ino)) {
        return;
      }
    }
    PageKey key{ino, idx};
    Descriptor& d = GetOrCreateDescriptor(key);
    ++stats_.descriptor_updates;
    ctr_delivered_->Add();
    // The scan marks the page present (and possibly dirty), §4.1.
    if ((s.mask & kDuetPageAdded) != 0) {
      d.flags[sid] |= kDuetPageAdded;
    }
    if (page.dirty && (s.mask & kDuetPageDirtied) != 0) {
      d.flags[sid] |= kDuetPageDirtied;
    }
    if (HasPending(s, sid, d)) {
      EnsureQueued(sid, s, d, key);
    } else {
      MaybeFreeDescriptor(key);
    }
  });
}

Result<std::vector<DuetItem>> DuetCore::Fetch(SessionId sid, size_t max_items) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  ++stats_.fetch_calls;
  ctr_fetch_calls_->Add();
  std::vector<DuetItem> items;
  while (items.size() < max_items && !s.queue.empty()) {
    PageKey key = s.queue.front();
    s.queue.pop_front();
    auto it = descriptors_.find(key);
    if (it == descriptors_.end()) {
      continue;  // descriptor freed since it was queued
    }
    Descriptor& d = it->second;
    uint8_t byte = d.flags[sid];
    if ((byte & kQueued) == 0) {
      continue;  // stale queue entry
    }
    d.flags[sid] = static_cast<uint8_t>(byte & ~kQueued);
    assert(s.pending > 0);
    --s.pending;

    uint8_t out = byte & kPendingEventMask;
    if ((s.mask & kDuetPageExists) != 0 &&
        ((byte & kReportedExists) != 0) != d.cur_exists) {
      out |= d.cur_exists ? kDuetPageExists : kDuetPageRemoved;
    }
    if ((s.mask & kDuetPageModified) != 0 &&
        ((byte & kReportedModified) != 0) != d.cur_modified) {
      out |= d.cur_modified ? kDuetPageModified : kDuetPageFlushed;
    }

    // Mark up-to-date: clear pending events, snapshot the reported state.
    uint8_t cleared = static_cast<uint8_t>(d.flags[sid] & ~kPendingEventMask &
                                           ~(kReportedExists | kReportedModified));
    if (d.cur_exists) {
      cleared |= kReportedExists;
    }
    if (d.cur_modified) {
      cleared |= kReportedModified;
    }
    d.flags[sid] = cleared;

    if (out == 0) {
      // Notifications cancelled each other (e.g. added then removed).
      MaybeFreeDescriptor(key);
      continue;
    }
    DuetItem item;
    item.flags = out;
    if (s.is_block) {
      Result<BlockNo> block = fs_->Bmap(key.ino, key.idx);
      if (!block.ok()) {
        MaybeFreeDescriptor(key);
        continue;  // page no longer mapped (file deleted/truncated)
      }
      item.id = *block;
      item.offset = 0;
    } else {
      item.id = key.ino;
      item.offset = key.idx * kPageSize;
    }
    items.push_back(item);
    ++stats_.items_fetched;
    ctr_fetched_->Add();
    obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kItemFetched,
                     sid, item.id, item.flags);
    MaybeFreeDescriptor(key);
  }
  return items;
}

bool DuetCore::CheckDone(SessionId sid, uint64_t item_id) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return false;
  }
  const Session& s = sessions_[sid];
  if (item_id >= s.done.size()) {
    return false;
  }
  return s.done.Test(item_id);
}

Status DuetCore::SetDone(SessionId sid, uint64_t item_id) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  if (item_id >= s.done.size()) {
    if (s.is_block) {
      return Status(StatusCode::kInvalidArgument, "block out of range");
    }
    EnsureInodeCapacity(item_id);
  }
  s.done.Set(item_id);
  ctr_done_set_->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kDoneSet, sid,
                   item_id);

  // Mark existing descriptors up-to-date so completed items generate no
  // further notifications (§4.1).
  auto clear_page = [&](const PageKey& key) {
    auto it = descriptors_.find(key);
    if (it == descriptors_.end()) {
      return;
    }
    Descriptor& d = it->second;
    uint8_t byte = d.flags[sid];
    uint8_t cleared = 0;
    if (d.cur_exists) {
      cleared |= kReportedExists;
    }
    if (d.cur_modified) {
      cleared |= kReportedModified;
    }
    d.flags[sid] = cleared;
    if ((byte & kQueued) != 0) {
      assert(s.pending > 0);
      --s.pending;
    }
    MaybeFreeDescriptor(key);
  };

  if (s.is_block) {
    Result<FileSystem::BlockOwner> owner = fs_->Rmap(item_id);
    if (owner.ok()) {
      clear_page(PageKey{owner->ino, owner->idx});
    }
  } else {
    auto idx_it = inode_index_.find(item_id);
    if (idx_it != inode_index_.end()) {
      std::vector<PageIdx> pages(idx_it->second.begin(), idx_it->second.end());
      for (PageIdx idx : pages) {
        clear_page(PageKey{item_id, idx});
      }
    }
  }
  return Status::Ok();
}

Status DuetCore::UnsetDone(SessionId sid, uint64_t item_id) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  if (item_id >= s.done.size()) {
    return Status(StatusCode::kInvalidArgument, "item out of range");
  }
  s.done.Clear(item_id);
  ctr_done_unset_->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kDoneUnset, sid,
                   item_id);
  return Status::Ok();
}

Result<std::string> DuetCore::GetPath(SessionId sid, InodeNo ino) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  const Session& s = sessions_[sid];
  if (s.is_block) {
    return Status(StatusCode::kInvalidArgument, "block tasks have no paths");
  }
  if (!fs_->ns().Exists(ino) || !fs_->ns().IsUnder(ino, s.registered_dir)) {
    return Status(StatusCode::kNotFound, "not under registered directory");
  }
  // The "truth" for our hints (§3.2): fail when the file has no cached
  // pages left, so tasks can back out of stale opportunistic work.
  if (fs_->cache().CachedPagesOfInode(ino) == 0) {
    return Status(StatusCode::kNotFound, "no cached pages");
  }
  Result<std::string> full = fs_->ns().PathOf(ino);
  if (!full.ok()) {
    return full;
  }
  Result<std::string> base = fs_->ns().PathOf(s.registered_dir);
  if (!base.ok()) {
    return base;
  }
  if (*base == "/") {
    return full;
  }
  std::string rel = full->substr(base->size());
  return rel.empty() ? std::string("/") : rel;
}

void DuetCore::FileMovedIn(SessionId sid, Session& s, InodeNo ino) {
  EnsureInodeCapacity(ino);
  s.done.Clear(ino);
  s.relevant.Set(ino);
  // Initialize descriptors for all cached pages, as the registration scan
  // does (§4.1).
  fs_->cache().ForEachPageOfInode(ino, [&](PageIdx idx, const CachedPage& page) {
    PageKey key{ino, idx};
    Descriptor& d = GetOrCreateDescriptor(key);
    ++stats_.descriptor_updates;
    ctr_delivered_->Add();
    if ((s.mask & kDuetPageAdded) != 0) {
      d.flags[sid] |= kDuetPageAdded;
    }
    if (page.dirty && (s.mask & kDuetPageDirtied) != 0) {
      d.flags[sid] |= kDuetPageDirtied;
    }
    // Force a fresh state report.
    d.flags[sid] &= static_cast<uint8_t>(~(kReportedExists | kReportedModified));
    if (HasPending(s, sid, d)) {
      EnsureQueued(sid, s, d, key);
    }
  });
}

void DuetCore::FileMovedOut(SessionId sid, Session& s, InodeNo ino) {
  // Set the Removed bit and clear the Exists view for all existing pages,
  // then mark the file done (§4.1).
  fs_->cache().ForEachPageOfInode(ino, [&](PageIdx idx, const CachedPage&) {
    PageKey key{ino, idx};
    Descriptor& d = GetOrCreateDescriptor(key);
    ++stats_.descriptor_updates;
    ctr_delivered_->Add();
    if ((s.mask & (kDuetPageRemoved | kDuetPageExists)) != 0) {
      d.flags[sid] |= kDuetPageRemoved;
      // Pretend the page's existence was already re-reported so the state
      // machinery does not also emit a (contradictory) Exists item.
      if (d.cur_exists) {
        d.flags[sid] |= kReportedExists;
      }
      EnsureQueued(sid, s, d, key);
    }
  });
  EnsureInodeCapacity(ino);
  s.done.Set(ino);
  s.relevant.Clear(ino);
}

void DuetCore::OnRename(InodeNo ino, InodeNo old_parent, InodeNo new_parent,
                        bool is_dir) {
  for (SessionId sid = 0; sid < config_.max_sessions; ++sid) {
    Session& s = sessions_[sid];
    if (!s.active || s.is_block) {
      continue;
    }
    bool old_in = fs_->ns().IsUnder(old_parent, s.registered_dir);
    bool new_in = fs_->ns().IsUnder(new_parent, s.registered_dir);
    if (!old_in && !new_in) {
      continue;
    }
    if (is_dir) {
      // Directory rename: reset relevant/done for every file except those
      // fully processed (both bits set), §4.1. Files will have their
      // relevance re-checked lazily.
      std::vector<uint64_t> to_reset;
      for (std::optional<uint64_t> i = s.relevant.FindNextSet(0); i.has_value();
           i = s.relevant.FindNextSet(*i + 1)) {
        if (!s.done.Test(*i)) {
          to_reset.push_back(*i);
        }
      }
      for (std::optional<uint64_t> i = s.done.FindNextSet(0); i.has_value();
           i = s.done.FindNextSet(*i + 1)) {
        if (!s.relevant.Test(*i)) {
          to_reset.push_back(*i);
        }
      }
      for (uint64_t i : to_reset) {
        s.relevant.Clear(i);
        s.done.Clear(i);
      }
    } else {
      if (!old_in && new_in) {
        FileMovedIn(sid, s, ino);
      } else if (old_in && !new_in) {
        FileMovedOut(sid, s, ino);
      }
      // Moves within the registered directory change only the path, which
      // is resolved lazily via GetPath.
    }
  }
}

void DuetCore::OnUnlink(InodeNo /*ino*/) {
  // Page-cache Removed events for the file's pages fire separately through
  // the cache hooks; no extra bookkeeping is needed here.
}

void DuetCore::OnCreate(InodeNo ino) { EnsureInodeCapacity(ino); }

uint64_t DuetCore::SessionBitmapBytes(SessionId sid) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return 0;
  }
  return sessions_[sid].done.MemoryBytes() + sessions_[sid].relevant.MemoryBytes();
}

uint64_t DuetCore::DoneCount(SessionId sid) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return 0;
  }
  return sessions_[sid].done.Count();
}

bool DuetCore::ProcessedByAllSessions(InodeNo ino, PageIdx idx) const {
  bool any_tracking = false;
  for (SessionId sid = 0; sid < config_.max_sessions; ++sid) {
    const Session& s = sessions_[sid];
    if (!s.active || s.done.Count() == 0) {
      continue;  // sessions that do not track completion get no vote
    }
    any_tracking = true;
    if (s.is_block) {
      Result<BlockNo> block = fs_->Bmap(ino, idx);
      if (!block.ok() || !s.done.Test(*block)) {
        return false;
      }
    } else {
      if (ino >= s.done.size() || !s.done.Test(ino)) {
        return false;
      }
    }
  }
  return any_tracking;
}

uint64_t DuetCore::PendingCount(SessionId sid) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return 0;
  }
  return sessions_[sid].pending;
}

}  // namespace duet
