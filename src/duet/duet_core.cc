#include "src/duet/duet_core.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace duet {
namespace {

uint8_t EventBit(PageEventType type) {
  switch (type) {
    case PageEventType::kAdded:
      return kDuetPageAdded;
    case PageEventType::kRemoved:
      return kDuetPageRemoved;
    case PageEventType::kDirtied:
      return kDuetPageDirtied;
    case PageEventType::kFlushed:
      return kDuetPageFlushed;
  }
  return 0;
}

// State bit affected by an event (Table 2's pairing).
uint8_t AffectedStateBit(PageEventType type) {
  switch (type) {
    case PageEventType::kAdded:
    case PageEventType::kRemoved:
      return kDuetPageExists;
    case PageEventType::kDirtied:
    case PageEventType::kFlushed:
      return kDuetPageModified;
  }
  return 0;
}

}  // namespace

DuetCore::DuetCore(FileSystem* fs, DuetConfig config)
    : fs_(fs),
      config_(config),
      obs_(obs::CurrentObs()),
      ctr_hooks_(obs_->metrics.GetCounter("duet.hooks")),
      ctr_delivered_(obs_->metrics.GetCounter("duet.events.delivered")),
      ctr_dropped_(obs_->metrics.GetCounter("duet.events.dropped")),
      ctr_fetched_(obs_->metrics.GetCounter("duet.items.fetched")),
      ctr_fetch_calls_(obs_->metrics.GetCounter("duet.fetch.calls")),
      ctr_done_set_(obs_->metrics.GetCounter("duet.done.set")),
      ctr_done_unset_(obs_->metrics.GetCounter("duet.done.unset")) {
  assert(fs_ != nullptr);
  assert(config_.max_sessions <= kMaxSessionsHard);
  fs_->cache().AddListener(this);
  fs_->ns().AddObserver(this);
}

SimTime DuetCore::Now() const { return fs_->loop().now(); }

DuetCore::~DuetCore() {
  fs_->cache().RemoveListener(this);
  fs_->ns().RemoveObserver(this);
}

void DuetCore::RebuildInterestMasks() {
  active_mask_ = 0;
  state_mask_ = 0;
  event_interest_.fill(0);
  for (SessionId sid = 0; sid < config_.max_sessions; ++sid) {
    const Session& s = sessions_[sid];
    if (!s.active) {
      continue;
    }
    uint64_t bit = 1ull << sid;
    active_mask_ |= bit;
    if (SubscribesState(s)) {
      state_mask_ |= bit;
    }
    for (int t = 0; t < 4; ++t) {
      auto type = static_cast<PageEventType>(t);
      if ((s.mask & (EventBit(type) | AffectedStateBit(type))) != 0) {
        event_interest_[t] |= bit;
      }
    }
  }
}

Result<SessionId> DuetCore::AllocateSession(uint8_t mask) {
  if ((mask & (kDuetEventMask | kDuetStateMask)) == 0) {
    return Status(StatusCode::kInvalidArgument, "empty notification mask");
  }
  for (SessionId sid = 0; sid < config_.max_sessions; ++sid) {
    if (!sessions_[sid].active) {
      Session& s = sessions_[sid];
      s.done.Reset();
      s.relevant.Reset();
      s.flags.Reset();
      s.queue.clear();
      s = Session{};
      s.active = true;
      s.mask = mask;
      ++active_sessions_;
      return sid;
    }
  }
  return Status(StatusCode::kLimit, "session table full");
}

Result<SessionId> DuetCore::RegisterFileTask(std::string_view path, uint8_t mask) {
  Result<InodeNo> dir = fs_->ns().Resolve(path);
  if (!dir.ok()) {
    return dir.status();
  }
  const Inode* inode = fs_->ns().Get(*dir);
  if (inode == nullptr || !inode->is_dir()) {
    return Status(StatusCode::kInvalidArgument, "registered path is not a directory");
  }
  Result<SessionId> sid = AllocateSession(mask);
  if (!sid.ok()) {
    return sid;
  }
  Session& s = sessions_[*sid];
  s.is_block = false;
  s.registered_dir = *dir;
  uint64_t inode_bits = fs_->ns().max_ino() + 4096;
  s.done.Resize(inode_bits);
  s.relevant.Resize(inode_bits);
  RebuildInterestMasks();
  obs_->metrics.GetCounter("duet.sessions.registered")->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet,
                   obs::TraceKind::kSessionRegistered, *sid, mask, 0);
  InitialScan(*sid);
  return sid;
}

Result<SessionId> DuetCore::RegisterBlockTask(uint8_t mask) {
  Result<SessionId> sid = AllocateSession(mask);
  if (!sid.ok()) {
    return sid;
  }
  Session& s = sessions_[*sid];
  s.is_block = true;
  s.done.Resize(fs_->capacity_blocks());
  RebuildInterestMasks();
  obs_->metrics.GetCounter("duet.sessions.registered")->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet,
                   obs::TraceKind::kSessionRegistered, *sid, mask, 1);
  InitialScan(*sid);
  return sid;
}

Status DuetCore::Deregister(SessionId sid) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  s.active = false;
  // Drop this session's whole flag plane in one shot (it holds every byte
  // the session ever wrote), then sweep live descriptors for ones nobody
  // needs any more.
  s.flags.Reset();
  RebuildInterestMasks();
  for (uint32_t slot = 0; slot < arena_.size(); ++slot) {
    if (arena_[slot].live) {
      MaybeFreeDescriptor(PageKey{arena_[slot].ino, arena_[slot].idx}, slot);
    }
  }
  s.queue.clear();
  s.queue_head = 0;
  s.done.Reset();
  s.relevant.Reset();
  s.pending = 0;
  --active_sessions_;
  obs_->metrics.GetCounter("duet.sessions.deregistered")->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet,
                   obs::TraceKind::kSessionDeregistered, sid);
  return Status::Ok();
}

void DuetCore::EnsureInodeCapacity(InodeNo ino) {
  for (uint32_t sid = 0; sid < config_.max_sessions; ++sid) {
    Session& s = sessions_[sid];
    if (s.active && !s.is_block && ino >= s.done.size()) {
      uint64_t bits = std::max<uint64_t>(ino + 1, s.done.size() * 2);
      s.done.Resize(bits);
      s.relevant.Resize(bits);
    }
  }
}

uint32_t DuetCore::GetOrCreateSlot(const PageKey& key, bool exists,
                                   bool modified) {
  uint32_t slot = page_table_.Find(key.ino, key.idx);
  if (slot != kNoSlot) {
    return slot;
  }
  return CreateSlot(key, exists, modified);
}

uint32_t DuetCore::CreateSlot(const PageKey& key, bool exists, bool modified) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  Descriptor& d = arena_[slot];
  d.ino = key.ino;
  d.idx = key.idx;
  d.live = true;
  d.cur_exists = exists;
  d.cur_modified = modified;
  // Link into the inode's descriptor chain (front; order is only consumed
  // by per-file bookkeeping, which collects before mutating).
  auto [it, created] = inode_heads_.try_emplace(key.ino, slot);
  if (created) {
    d.ino_next = kNoSlot;
  } else {
    d.ino_next = it->second;
    arena_[it->second].ino_prev = slot;
    it->second = slot;
  }
  d.ino_prev = kNoSlot;
  page_table_.Insert(key.ino, key.idx, slot);
  ++live_descriptors_;
  return slot;
}

bool DuetCore::DescriptorNeeded(uint32_t slot, const Descriptor& d) const {
  // Keep the descriptor while the page is cached and some state session
  // exists: its reported-state snapshot is live context.
  if (d.cur_exists && state_mask_ != 0) {
    return true;
  }
  // Unfetched-but-cancelled notifications (e.g. a page added and evicted
  // between fetches) do NOT keep a descriptor alive — that is what gives
  // the paper's 2x-cache-pages bound for state sessions (§4.2). A stale
  // fetch-queue entry is skipped harmlessly later.
  uint64_t mask = active_mask_;
  while (mask != 0) {
    auto sid = static_cast<SessionId>(std::countr_zero(mask));
    mask &= mask - 1;
    const Session& sess = sessions_[sid];
    if (HasPending(sess, sess.flags.Get(slot), d)) {
      return true;
    }
  }
  return false;
}

void DuetCore::MaybeFreeDescriptor(const PageKey& key, uint32_t slot) {
  if (slot == kNoSlot) {
    return;
  }
  Descriptor& d = arena_[slot];
  if (!d.live || DescriptorNeeded(slot, d)) {
    return;
  }
  // Clear every active session's flag byte for this slot (slots recycle, so
  // a freed slot must read as 0 everywhere) and reconcile queue accounting:
  // freeing a queued descriptor leaves a stale deque entry behind, which
  // Fetch skips.
  uint64_t mask = active_mask_;
  while (mask != 0) {
    auto sid = static_cast<SessionId>(std::countr_zero(mask));
    mask &= mask - 1;
    Session& s = sessions_[sid];
    uint8_t byte = s.flags.Get(slot);
    if (byte != 0) {
      if ((byte & kQueued) != 0) {
        assert(s.pending > 0);
        --s.pending;
      }
      s.flags.Set(slot, 0);
    }
  }
  // Unlink from the inode chain.
  if (d.ino_prev != kNoSlot) {
    arena_[d.ino_prev].ino_next = d.ino_next;
  } else {
    auto it = inode_heads_.find(key.ino);
    assert(it != inode_heads_.end() && it->second == slot);
    if (d.ino_next == kNoSlot) {
      inode_heads_.erase(it);
    } else {
      it->second = d.ino_next;
    }
  }
  if (d.ino_next != kNoSlot) {
    arena_[d.ino_next].ino_prev = d.ino_prev;
  }
  page_table_.Erase(key.ino, key.idx);
  d = Descriptor{};
  free_slots_.push_back(slot);
  --live_descriptors_;
}

bool DuetCore::HasPending(const Session& s, uint8_t byte,
                          const Descriptor& d) const {
  if ((byte & kPendingEventMask) != 0) {
    return true;
  }
  if ((s.mask & kDuetPageExists) != 0 &&
      ((byte & kReportedExists) != 0) != d.cur_exists) {
    return true;
  }
  if ((s.mask & kDuetPageModified) != 0 &&
      ((byte & kReportedModified) != 0) != d.cur_modified) {
    return true;
  }
  return false;
}

bool DuetCore::EnsureQueued(SessionId sid, Session& s, uint32_t slot,
                            const PageKey& key, uint8_t byte) {
  if ((byte & kQueued) != 0) {
    return true;
  }
  if (!SubscribesState(s) && s.pending >= config_.max_pending_per_session) {
    // Event-only session at its descriptor limit: drop (§4.2).
    ++stats_.events_dropped;
    ++s.dropped;
    ctr_dropped_->Add();
    obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kEventDropped,
                     sid, key.ino, key.idx);
    s.flags.Set(slot, static_cast<uint8_t>(byte & ~kPendingEventMask));
    return false;
  }
  s.flags.Set(slot, static_cast<uint8_t>(byte | kQueued));
  s.queue.push_back(key);
  ++s.pending;
  return true;
}

bool DuetCore::IsRelevant(Session& s, InodeNo ino) {
  if (s.relevant.Test(ino)) {
    return true;
  }
  ++stats_.relevance_checks;
  if (fs_->ns().IsUnder(ino, s.registered_dir)) {
    s.relevant.Set(ino);
    return true;
  }
  // Irrelevant: mark done so no backward traversal happens again (§4.1).
  s.done.Set(ino);
  return false;
}

void DuetCore::OnPageEvent(const PageEvent& event) {
  ++stats_.hook_invocations;
  ctr_hooks_->Add();
  PageKey key{event.ino, event.idx};
  uint32_t slot = FindSlot(key);
  // Refresh the merged descriptor's current-state view from the hook's
  // post-event snapshot (no cache probe needed).
  if (slot != kNoSlot) {
    arena_[slot].cur_exists = event.exists;
    arena_[slot].cur_modified = event.dirty;
  }
  uint64_t interested = event_interest_[static_cast<int>(event.type)];
  if (interested == 0) {
    return;
  }
  uint64_t mask = interested;
  while (mask != 0) {
    auto sid = static_cast<SessionId>(std::countr_zero(mask));
    mask &= mask - 1;
    Session& s = sessions_[sid];
    if (s.is_block) {
      Result<BlockNo> block = fs_->Bmap(event.ino, event.idx);
      if (!block.ok() || s.done.Test(*block)) {
        continue;
      }
    } else {
      if (event.ino >= s.done.size()) {
        EnsureInodeCapacity(event.ino);
      }
      if (s.done.Test(event.ino) || !IsRelevant(s, event.ino)) {
        continue;
      }
    }
    ApplyEvent(sid, s, key, slot, event.type, event.exists, event.dirty);
  }
  MaybeFreeDescriptor(key, slot);
}

void DuetCore::ApplyEvent(SessionId sid, Session& s, const PageKey& key,
                          uint32_t& slot, PageEventType type, bool exists,
                          bool modified) {
  if (slot == kNoSlot) {
    // OnPageEvent already probed the page table and missed; create without
    // re-probing. (Nothing between that probe and here mutates the table.)
    slot = CreateSlot(key, exists, modified);
  }
  ++stats_.descriptor_updates;
  ctr_delivered_->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kEventDelivered,
                   sid, key.ino, key.idx);
  uint8_t byte = s.flags.Get(slot);
  uint8_t event_bit = static_cast<uint8_t>(s.mask & EventBit(type));
  if (event_bit != 0 && (byte & event_bit) != event_bit) {
    byte = static_cast<uint8_t>(byte | event_bit);
    s.flags.Set(slot, byte);
  }
  if (HasPending(s, byte, arena_[slot])) {
    EnsureQueued(sid, s, slot, key, byte);
  }
}

void DuetCore::InitialScan(SessionId sid) {
  Session& s = sessions_[sid];
  fs_->cache().ForEachPage([&](InodeNo ino, PageIdx idx, const CachedPage& page) {
    if (s.is_block) {
      if (!fs_->Bmap(ino, idx).ok()) {
        return;
      }
    } else {
      if (ino >= s.done.size()) {
        EnsureInodeCapacity(ino);
      }
      if (s.done.Test(ino) || !IsRelevant(s, ino)) {
        return;
      }
    }
    PageKey key{ino, idx};
    uint32_t slot = GetOrCreateSlot(key, /*exists=*/true, page.dirty);
    ++stats_.descriptor_updates;
    ctr_delivered_->Add();
    // The scan marks the page present (and possibly dirty), §4.1.
    uint8_t byte = s.flags.Get(slot);
    if ((s.mask & kDuetPageAdded) != 0) {
      byte |= kDuetPageAdded;
    }
    if (page.dirty && (s.mask & kDuetPageDirtied) != 0) {
      byte |= kDuetPageDirtied;
    }
    s.flags.Set(slot, byte);
    if (HasPending(s, byte, arena_[slot])) {
      EnsureQueued(sid, s, slot, key, byte);
    } else {
      MaybeFreeDescriptor(key, slot);
    }
  });
}

Result<std::vector<DuetItem>> DuetCore::Fetch(SessionId sid, size_t max_items) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  ++stats_.fetch_calls;
  ctr_fetch_calls_->Add();
  std::vector<DuetItem> items;
  items.reserve(std::min<uint64_t>(max_items, s.queue.size() - s.queue_head));
  while (items.size() < max_items && s.queue_head < s.queue.size()) {
    PageKey key = s.queue[s.queue_head++];
    uint32_t slot = FindSlot(key);
    if (slot == kNoSlot) {
      continue;  // descriptor freed since it was queued
    }
    Descriptor& d = arena_[slot];
    uint8_t byte = s.flags.Get(slot);
    if ((byte & kQueued) == 0) {
      continue;  // stale queue entry
    }
    assert(s.pending > 0);
    --s.pending;

    uint8_t out = byte & kPendingEventMask;
    if ((s.mask & kDuetPageExists) != 0 &&
        ((byte & kReportedExists) != 0) != d.cur_exists) {
      out |= d.cur_exists ? kDuetPageExists : kDuetPageRemoved;
    }
    if ((s.mask & kDuetPageModified) != 0 &&
        ((byte & kReportedModified) != 0) != d.cur_modified) {
      out |= d.cur_modified ? kDuetPageModified : kDuetPageFlushed;
    }

    // Mark up-to-date: clear queued + pending events, snapshot the reported
    // state.
    uint8_t cleared = 0;
    if (d.cur_exists) {
      cleared |= kReportedExists;
    }
    if (d.cur_modified) {
      cleared |= kReportedModified;
    }
    s.flags.Set(slot, cleared);

    if (out == 0) {
      // Notifications cancelled each other (e.g. added then removed).
      MaybeFreeDescriptor(key, slot);
      continue;
    }
    DuetItem item;
    item.flags = out;
    if (s.is_block) {
      Result<BlockNo> block = fs_->Bmap(key.ino, key.idx);
      if (!block.ok()) {
        MaybeFreeDescriptor(key, slot);
        continue;  // page no longer mapped (file deleted/truncated)
      }
      item.id = *block;
      item.offset = 0;
    } else {
      item.id = key.ino;
      item.offset = key.idx * kPageSize;
    }
    items.push_back(item);
    ++stats_.items_fetched;
    ctr_fetched_->Add();
    obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kItemFetched,
                     sid, item.id, item.flags);
    MaybeFreeDescriptor(key, slot);
  }
  if (s.queue_head == s.queue.size()) {
    // Fully drained: reclaim the consumed prefix so the vector's footprint
    // tracks the backlog, not the session's cumulative event count.
    s.queue.clear();
    s.queue_head = 0;
  }
  return items;
}

bool DuetCore::CheckDone(SessionId sid, uint64_t item_id) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return false;
  }
  const Session& s = sessions_[sid];
  if (item_id >= s.done.size()) {
    return false;
  }
  return s.done.Test(item_id);
}

Status DuetCore::SetDone(SessionId sid, uint64_t item_id) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  if (item_id >= s.done.size()) {
    if (s.is_block) {
      return Status(StatusCode::kInvalidArgument, "block out of range");
    }
    EnsureInodeCapacity(item_id);
  }
  s.done.Set(item_id);
  ctr_done_set_->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kDoneSet, sid,
                   item_id);

  // Mark existing descriptors up-to-date so completed items generate no
  // further notifications (§4.1).
  auto clear_page = [&](const PageKey& key) {
    uint32_t slot = FindSlot(key);
    if (slot == kNoSlot) {
      return;
    }
    Descriptor& d = arena_[slot];
    uint8_t byte = s.flags.Get(slot);
    uint8_t cleared = 0;
    if (d.cur_exists) {
      cleared |= kReportedExists;
    }
    if (d.cur_modified) {
      cleared |= kReportedModified;
    }
    s.flags.Set(slot, cleared);
    if ((byte & kQueued) != 0) {
      assert(s.pending > 0);
      --s.pending;
    }
    MaybeFreeDescriptor(key, slot);
  };

  if (s.is_block) {
    Result<FileSystem::BlockOwner> owner = fs_->Rmap(item_id);
    if (owner.ok()) {
      clear_page(PageKey{owner->ino, owner->idx});
    }
  } else {
    auto head_it = inode_heads_.find(item_id);
    if (head_it != inode_heads_.end()) {
      // Collect first: clear_page can free descriptors and relink the chain.
      std::vector<PageKey> pages;
      for (uint32_t slot = head_it->second; slot != kNoSlot;
           slot = arena_[slot].ino_next) {
        pages.push_back(PageKey{arena_[slot].ino, arena_[slot].idx});
      }
      for (const PageKey& key : pages) {
        clear_page(key);
      }
    }
  }
  return Status::Ok();
}

Status DuetCore::UnsetDone(SessionId sid, uint64_t item_id) {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  Session& s = sessions_[sid];
  if (item_id >= s.done.size()) {
    return Status(StatusCode::kInvalidArgument, "item out of range");
  }
  s.done.Clear(item_id);
  ctr_done_unset_->Add();
  obs_->trace.Emit(Now(), obs::TraceLayer::kDuet, obs::TraceKind::kDoneUnset, sid,
                   item_id);
  return Status::Ok();
}

Result<std::string> DuetCore::GetPath(SessionId sid, InodeNo ino) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return Status(StatusCode::kNotFound, "no such session");
  }
  const Session& s = sessions_[sid];
  if (s.is_block) {
    return Status(StatusCode::kInvalidArgument, "block tasks have no paths");
  }
  if (!fs_->ns().Exists(ino) || !fs_->ns().IsUnder(ino, s.registered_dir)) {
    return Status(StatusCode::kNotFound, "not under registered directory");
  }
  // The "truth" for our hints (§3.2): fail when the file has no cached
  // pages left, so tasks can back out of stale opportunistic work.
  if (fs_->cache().CachedPagesOfInode(ino) == 0) {
    return Status(StatusCode::kNotFound, "no cached pages");
  }
  Result<std::string> full = fs_->ns().PathOf(ino);
  if (!full.ok()) {
    return full;
  }
  Result<std::string> base = fs_->ns().PathOf(s.registered_dir);
  if (!base.ok()) {
    return base;
  }
  if (*base == "/") {
    return full;
  }
  std::string rel = full->substr(base->size());
  return rel.empty() ? std::string("/") : rel;
}

void DuetCore::FileMovedIn(SessionId sid, Session& s, InodeNo ino) {
  EnsureInodeCapacity(ino);
  s.done.Clear(ino);
  s.relevant.Set(ino);
  // Initialize descriptors for all cached pages, as the registration scan
  // does (§4.1).
  fs_->cache().ForEachPageOfInode(ino, [&](PageIdx idx, const CachedPage& page) {
    PageKey key{ino, idx};
    uint32_t slot = GetOrCreateSlot(key, /*exists=*/true, page.dirty);
    ++stats_.descriptor_updates;
    ctr_delivered_->Add();
    uint8_t byte = s.flags.Get(slot);
    if ((s.mask & kDuetPageAdded) != 0) {
      byte |= kDuetPageAdded;
    }
    if (page.dirty && (s.mask & kDuetPageDirtied) != 0) {
      byte |= kDuetPageDirtied;
    }
    // Force a fresh state report.
    byte &= static_cast<uint8_t>(~(kReportedExists | kReportedModified));
    s.flags.Set(slot, byte);
    if (HasPending(s, byte, arena_[slot])) {
      EnsureQueued(sid, s, slot, key, byte);
    }
  });
}

void DuetCore::FileMovedOut(SessionId sid, Session& s, InodeNo ino) {
  // Set the Removed bit and clear the Exists view for all existing pages,
  // then mark the file done (§4.1).
  fs_->cache().ForEachPageOfInode(ino, [&](PageIdx idx, const CachedPage& page) {
    PageKey key{ino, idx};
    uint32_t slot = GetOrCreateSlot(key, /*exists=*/true, page.dirty);
    ++stats_.descriptor_updates;
    ctr_delivered_->Add();
    if ((s.mask & (kDuetPageRemoved | kDuetPageExists)) != 0) {
      uint8_t byte = s.flags.Get(slot);
      byte |= kDuetPageRemoved;
      // Pretend the page's existence was already re-reported so the state
      // machinery does not also emit a (contradictory) Exists item.
      if (arena_[slot].cur_exists) {
        byte |= kReportedExists;
      }
      s.flags.Set(slot, byte);
      EnsureQueued(sid, s, slot, key, byte);
    }
  });
  EnsureInodeCapacity(ino);
  s.done.Set(ino);
  s.relevant.Clear(ino);
}

void DuetCore::OnRename(InodeNo ino, InodeNo old_parent, InodeNo new_parent,
                        bool is_dir) {
  for (SessionId sid = 0; sid < config_.max_sessions; ++sid) {
    Session& s = sessions_[sid];
    if (!s.active || s.is_block) {
      continue;
    }
    bool old_in = fs_->ns().IsUnder(old_parent, s.registered_dir);
    bool new_in = fs_->ns().IsUnder(new_parent, s.registered_dir);
    if (!old_in && !new_in) {
      continue;
    }
    if (is_dir) {
      // Directory rename: reset relevant/done for every file except those
      // fully processed (both bits set), §4.1. Files will have their
      // relevance re-checked lazily.
      std::vector<uint64_t> to_reset;
      for (std::optional<uint64_t> i = s.relevant.FindNextSet(0); i.has_value();
           i = s.relevant.FindNextSet(*i + 1)) {
        if (!s.done.Test(*i)) {
          to_reset.push_back(*i);
        }
      }
      for (std::optional<uint64_t> i = s.done.FindNextSet(0); i.has_value();
           i = s.done.FindNextSet(*i + 1)) {
        if (!s.relevant.Test(*i)) {
          to_reset.push_back(*i);
        }
      }
      for (uint64_t i : to_reset) {
        s.relevant.Clear(i);
        s.done.Clear(i);
      }
    } else {
      if (!old_in && new_in) {
        FileMovedIn(sid, s, ino);
      } else if (old_in && !new_in) {
        FileMovedOut(sid, s, ino);
      }
      // Moves within the registered directory change only the path, which
      // is resolved lazily via GetPath.
    }
  }
}

void DuetCore::OnUnlink(InodeNo /*ino*/) {
  // Page-cache Removed events for the file's pages fire separately through
  // the cache hooks; no extra bookkeeping is needed here.
}

void DuetCore::OnCreate(InodeNo ino) { EnsureInodeCapacity(ino); }

uint64_t DuetCore::DescriptorMemoryBytes() const {
  return arena_.capacity() * sizeof(Descriptor) +
         free_slots_.capacity() * sizeof(uint32_t) + page_table_.MemoryBytes();
}

uint64_t DuetCore::SessionBitmapBytes(SessionId sid) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return 0;
  }
  const Session& s = sessions_[sid];
  return s.done.MemoryBytes() + s.relevant.MemoryBytes() + s.flags.MemoryBytes();
}

uint64_t DuetCore::DoneCount(SessionId sid) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return 0;
  }
  return sessions_[sid].done.Count();
}

bool DuetCore::ProcessedByAllSessions(InodeNo ino, PageIdx idx) const {
  bool any_tracking = false;
  uint64_t mask = active_mask_;
  while (mask != 0) {
    auto sid = static_cast<SessionId>(std::countr_zero(mask));
    mask &= mask - 1;
    const Session& s = sessions_[sid];
    if (s.done.Count() == 0) {
      continue;  // sessions that do not track completion get no vote
    }
    any_tracking = true;
    if (s.is_block) {
      Result<BlockNo> block = fs_->Bmap(ino, idx);
      if (!block.ok() || !s.done.Test(*block)) {
        return false;
      }
    } else {
      if (ino >= s.done.size() || !s.done.Test(ino)) {
        return false;
      }
    }
  }
  return any_tracking;
}

uint64_t DuetCore::PendingCount(SessionId sid) const {
  if (sid >= config_.max_sessions || !sessions_[sid].active) {
    return 0;
  }
  return sessions_[sid].pending;
}

}  // namespace duet
