#include "src/duet/inotify.h"

#include <cassert>

namespace duet {

Inotify::Inotify(FileSystem* fs, size_t queue_limit)
    : fs_(fs), queue_limit_(queue_limit) {
  assert(fs_ != nullptr);
  fs_->cache().AddListener(this);
}

Inotify::~Inotify() { fs_->cache().RemoveListener(this); }

Result<int> Inotify::AddWatch(InodeNo dir, uint32_t mask) {
  const Inode* inode = fs_->ns().Get(dir);
  if (inode == nullptr || !inode->is_dir()) {
    return Status(StatusCode::kInvalidArgument, "watch target is not a directory");
  }
  auto existing = by_dir_.find(dir);
  if (existing != by_dir_.end()) {
    watches_[existing->second].mask |= mask;
    return existing->second;
  }
  int wd = next_wd_++;
  watches_.emplace(wd, Watch{dir, mask});
  by_dir_.emplace(dir, wd);
  return wd;
}

Status Inotify::RemoveWatch(int wd) {
  auto it = watches_.find(wd);
  if (it == watches_.end()) {
    return Status(StatusCode::kNotFound);
  }
  by_dir_.erase(it->second.dir);
  watches_.erase(it);
  return Status::Ok();
}

Result<uint64_t> Inotify::AddWatchRecursive(InodeNo root, uint32_t mask) {
  Result<int> top = AddWatch(root, mask);
  if (!top.ok()) {
    return top.status();
  }
  uint64_t created = 1;
  bool failed = false;
  fs_->ns().WalkDepthFirst(root, [&](const Inode& inode) {
    if (inode.is_dir()) {
      if (AddWatch(inode.ino, mask).ok()) {
        ++created;
      } else {
        failed = true;
      }
    }
    return true;
  });
  if (failed) {
    return Status(StatusCode::kLimit, "some watches could not be created");
  }
  return created;
}

std::vector<InotifyEvent> Inotify::ReadEvents(size_t max) {
  std::vector<InotifyEvent> out;
  while (!queue_.empty() && out.size() < max) {
    out.push_back(queue_.front());
    queue_.pop_front();
  }
  return out;
}

void Inotify::OnPageEvent(const PageEvent& event) {
  // File-level masks only; writeback/eviction events are invisible to
  // inotify consumers.
  uint32_t mask = 0;
  switch (event.type) {
    case PageEventType::kAdded:
      mask = kInAccess;
      break;
    case PageEventType::kDirtied:
      mask = kInModify;
      break;
    case PageEventType::kRemoved:
    case PageEventType::kFlushed:
      return;
  }
  const Inode* inode = fs_->ns().Get(event.ino);
  if (inode == nullptr) {
    return;
  }
  auto watch_it = by_dir_.find(inode->parent);
  if (watch_it == by_dir_.end()) {
    return;
  }
  const Watch& watch = watches_[watch_it->second];
  if ((watch.mask & mask) == 0) {
    return;
  }
  // Coalesce with the most recent event, as the kernel does for identical
  // consecutive events.
  if (!queue_.empty() && queue_.back().ino == event.ino &&
      queue_.back().mask == mask) {
    return;
  }
  if (queue_.size() >= queue_limit_) {
    ++dropped_;  // IN_Q_OVERFLOW
    return;
  }
  queue_.push_back(InotifyEvent{watch_it->second, event.ino, mask});
}

}  // namespace duet
