#include "src/duet/duet_library.h"

#include <cassert>
#include <utility>

namespace duet {

InodePriorityQueue::InodePriorityQueue(std::function<double(InodeNo, uint64_t)> score)
    : score_(std::move(score)) {
  assert(score_ != nullptr);
}

void InodePriorityQueue::Reinsert(InodeNo ino) {
  PageSet& entry = inodes_[ino];
  if (entry.queued) {
    by_score_.erase({entry.score, ino});
  }
  entry.score = score_(ino, entry.count);
  entry.queued = true;
  by_score_.insert({entry.score, ino});
}

void InodePriorityQueue::Update(const std::vector<DuetItem>& items) {
  for (const DuetItem& item : items) {
    InodeNo ino = item.id;
    PageSet& entry = inodes_[ino];
    if (item.has(kDuetPageExists) || item.has(kDuetPageAdded)) {
      ++entry.count;
    } else if (item.has(kDuetPageRemoved)) {
      if (entry.count > 0) {
        --entry.count;
      }
    } else {
      // Dirtied/Flushed-only items do not change residency.
      continue;
    }
    Reinsert(ino);
  }
}

std::optional<InodeNo> InodePriorityQueue::Dequeue() {
  if (by_score_.empty()) {
    return std::nullopt;
  }
  auto it = std::prev(by_score_.end());  // highest score
  InodeNo ino = it->second;
  by_score_.erase(it);
  inodes_[ino].queued = false;
  return ino;
}

void InodePriorityQueue::Erase(InodeNo ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return;
  }
  if (it->second.queued) {
    by_score_.erase({it->second.score, ino});
  }
  inodes_.erase(it);
}

uint64_t InodePriorityQueue::PagesInMemory(InodeNo ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? 0 : it->second.count;
}

uint64_t DrainEvents(DuetCore& duet, SessionId sid, InodePriorityQueue& queue,
                     size_t batch) {
  uint64_t total = 0;
  while (true) {
    Result<std::vector<DuetItem>> items = duet.Fetch(sid, batch);
    if (!items.ok() || items->empty()) {
      return total;
    }
    total += items->size();
    queue.Update(*items);
  }
}

uint64_t DrainEvents(DuetCore& duet, SessionId sid,
                     const std::function<void(const DuetItem&)>& fn, size_t batch) {
  uint64_t total = 0;
  while (true) {
    Result<std::vector<DuetItem>> items = duet.Fetch(sid, batch);
    if (!items.ok() || items->empty()) {
      return total;
    }
    total += items->size();
    for (const DuetItem& item : *items) {
      fn(item);
    }
  }
}

}  // namespace duet
