// An Inotify-like file-level notification facility, for the paper's §3.3
// comparison between Duet and Linux Inotify:
//
//  * events are *file-level* (a file was accessed / modified) — no page
//    counts, no offsets;
//  * there is no notification for writeback or eviction, so consumers learn
//    nothing about data leaving memory;
//  * directories are watched NON-recursively: a consumer must add one watch
//    per directory, which is slow and race-prone for large trees (the cost
//    §3.3 calls out).
//
// Implemented against the same hooks Duet uses, so the two can be compared
// head-to-head on identical runs (bench/ablation_inotify_vs_duet).
#ifndef SRC_DUET_INOTIFY_H_
#define SRC_DUET_INOTIFY_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/cache/page_event.h"
#include "src/fs/file_system.h"
#include "src/util/status.h"

namespace duet {

inline constexpr uint32_t kInAccess = 1u << 0;  // file data was read
inline constexpr uint32_t kInModify = 1u << 1;  // file data was written

struct InotifyEvent {
  int wd = -1;        // watch descriptor (the watched parent directory)
  InodeNo ino = 0;    // the file the event refers to
  uint32_t mask = 0;
};

class Inotify : public PageEventListener {
 public:
  explicit Inotify(FileSystem* fs, size_t queue_limit = 16384);
  ~Inotify() override;

  Inotify(const Inotify&) = delete;
  Inotify& operator=(const Inotify&) = delete;

  // Watches a single directory (non-recursive, like the real thing).
  Result<int> AddWatch(InodeNo dir, uint32_t mask);
  Status RemoveWatch(int wd);

  // Convenience for consumers that need recursive coverage: walks the tree
  // and adds one watch per directory, returning how many were created (the
  // setup cost the paper contrasts with Duet's single registration).
  Result<uint64_t> AddWatchRecursive(InodeNo root, uint32_t mask);

  // Drains up to `max` queued events.
  std::vector<InotifyEvent> ReadEvents(size_t max);

  uint64_t watches() const { return watches_.size(); }
  uint64_t events_dropped() const { return dropped_; }

  // PageEventListener: translates page events into file-level events for
  // files whose parent directory is watched.
  void OnPageEvent(const PageEvent& event) override;

 private:
  FileSystem* fs_;
  size_t queue_limit_;
  int next_wd_ = 1;
  struct Watch {
    InodeNo dir;
    uint32_t mask;
  };
  std::unordered_map<int, Watch> watches_;
  std::unordered_map<InodeNo, int> by_dir_;
  std::deque<InotifyEvent> queue_;
  uint64_t dropped_ = 0;
};

}  // namespace duet

#endif  // SRC_DUET_INOTIFY_H_
