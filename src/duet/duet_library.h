// The Duet task library (paper §4.2): a priority queue for opportunistic
// processing plus the fetch-drain helper from Algorithm 1. Used by both
// "kernel" tasks (defrag) and "user" tasks (rsync) in this repository.
#ifndef SRC_DUET_DUET_LIBRARY_H_
#define SRC_DUET_DUET_LIBRARY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/duet/duet_core.h"
#include "src/duet/duet_types.h"

namespace duet {

// Priority queue over inodes, ordered by a task-specific score derived from
// the number of pages Duet reports in memory (e.g. absolute count for rsync,
// fraction of the file for defrag). Backed by an ordered set (red-black
// tree), as the paper's implementation is.
class InodePriorityQueue {
 public:
  // `score` maps (inode, pages_in_memory) to a priority; higher dequeues
  // first. Called whenever an inode's page count changes.
  explicit InodePriorityQueue(std::function<double(InodeNo, uint64_t)> score);

  // Ingests fetched file-task items: Exists notifications raise an inode's
  // page count, Removed (¬exists) notifications lower it.
  void Update(const std::vector<DuetItem>& items);

  // Removes and returns the highest-priority inode, or nullopt when empty.
  std::optional<InodeNo> Dequeue();

  // Drops an inode (e.g. after the task processed or dismissed it).
  void Erase(InodeNo ino);

  uint64_t size() const { return by_score_.size(); }
  bool empty() const { return by_score_.empty(); }
  uint64_t PagesInMemory(InodeNo ino) const;

 private:
  void Reinsert(InodeNo ino);

  std::function<double(InodeNo, uint64_t)> score_;
  struct PageSet {
    uint64_t count = 0;
    double score = 0;
    bool queued = false;
  };
  std::unordered_map<InodeNo, PageSet> inodes_;
  // (score, ino), ordered descending by score via reverse iteration.
  std::set<std::pair<double, InodeNo>> by_score_;
};

// Algorithm 1's prioqueue_update: drains all pending events from the
// session into the queue. Returns the number of items fetched.
uint64_t DrainEvents(DuetCore& duet, SessionId sid, InodePriorityQueue& queue,
                     size_t batch = 256);

// Drains pending events and hands each raw item to `fn` (block tasks).
uint64_t DrainEvents(DuetCore& duet, SessionId sid,
                     const std::function<void(const DuetItem&)>& fn,
                     size_t batch = 256);

}  // namespace duet

#endif  // SRC_DUET_DUET_LIBRARY_H_
