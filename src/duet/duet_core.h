// DuetCore: the framework of the paper (§4) — the userspace equivalent of
// the Duet kernel module plus its page-cache hooks.
//
// DuetCore listens to the page cache's Added/Removed/Dirtied/Flushed hooks
// and to VFS rename/unlink notifications. It maintains:
//  * a session table (up to `max_sessions` concurrent sessions, §4.2);
//  * one *merged* item descriptor per page with pending notifications, in a
//    single global hash table, holding an N-byte per-session flag array;
//  * per-session done / relevant bitmaps backed by dynamically allocated
//    chunks in a red-black tree (RangeBitmap).
//
// Item identity: descriptors are keyed by (inode, page index). Block-task
// items are translated to block numbers through the file system's FIBMAP
// (Bmap) at event and fetch time, exactly the mechanism §4.2 describes for
// informing block tasks of file-level accesses.
//
// Memory bound: a descriptor stays allocated while its page is cached and a
// state-subscribed session exists, or while any session has unfetched
// notifications — giving the paper's 2 × (max pages in cache) bound for
// state sessions. Event-only sessions are subject to a per-session
// descriptor limit; beyond it, new events are dropped (§4.2).
#ifndef SRC_DUET_DUET_CORE_H_
#define SRC_DUET_DUET_CORE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cache/page_event.h"
#include "src/duet/duet_types.h"
#include "src/fs/file_system.h"
#include "src/fs/vfs_observer.h"
#include "src/obs/obs.h"
#include "src/util/range_bitmap.h"
#include "src/util/status.h"

namespace duet {

struct DuetConfig {
  uint32_t max_sessions = 16;
  // Per-session cap on descriptors with pending notifications; beyond this,
  // events are dropped for event-only sessions (state sessions are bounded
  // by cache size and never drop).
  uint64_t max_pending_per_session = 1u << 20;
};

class DuetCore : public PageEventListener, public VfsObserver {
 public:
  // Attaches to `fs`'s page cache and namespace. Detaches on destruction.
  explicit DuetCore(FileSystem* fs, DuetConfig config = DuetConfig());
  ~DuetCore() override;

  DuetCore(const DuetCore&) = delete;
  DuetCore& operator=(const DuetCore&) = delete;

  // ---- The Duet API (paper Table 1) ----

  // Registers a file task watching `path` (a directory). Items are inode
  // numbers + offsets for files under the directory.
  Result<SessionId> RegisterFileTask(std::string_view path, uint8_t mask);

  // Registers a block task watching the whole device. Items are block
  // numbers.
  Result<SessionId> RegisterBlockTask(uint8_t mask);

  Status Deregister(SessionId sid);

  // Returns up to `max_items` pending notifications. Items whose
  // notifications cancelled out (§3.2) are silently skipped.
  Result<std::vector<DuetItem>> Fetch(SessionId sid, size_t max_items);

  // Work tracking (done bitmap): item_id is a block number for block tasks
  // and an inode number for file tasks.
  bool CheckDone(SessionId sid, uint64_t item_id) const;
  Status SetDone(SessionId sid, uint64_t item_id);
  Status UnsetDone(SessionId sid, uint64_t item_id);

  // Translates an inode to a path relative to the session's registered
  // directory. Fails when the file has no pages left in the cache — the
  // "truth" check that lets tasks back out of stale hints (§3.2) — or when
  // the file moved out of the registered directory.
  Result<std::string> GetPath(SessionId sid, InodeNo ino) const;

  // ---- Hooks (wired automatically) ----
  void OnPageEvent(const PageEvent& event) override;
  void OnRename(InodeNo ino, InodeNo old_parent, InodeNo new_parent,
                bool is_dir) override;
  void OnUnlink(InodeNo ino) override;
  void OnCreate(InodeNo ino) override;

  // ---- Introspection / accounting (§6.4 experiments) ----
  const DuetStats& stats() const { return stats_; }
  uint64_t descriptor_count() const { return descriptors_.size(); }
  // Paper's estimate: 32 bytes per merged descriptor (id, offset, N-byte
  // flag array, hash linkage) with N = 16.
  uint64_t DescriptorMemoryBytes() const { return descriptors_.size() * 32; }
  // Heap footprint of one session's done+relevant bitmaps.
  uint64_t SessionBitmapBytes(SessionId sid) const;
  uint32_t active_sessions() const { return active_sessions_; }
  uint64_t PendingCount(SessionId sid) const;
  // Number of items currently marked done for the session (block tasks:
  // blocks; file tasks: inodes, including irrelevance markings).
  uint64_t DoneCount(SessionId sid) const;

  // Informed cache replacement (the PACMan-style extension §2 anticipates):
  // true when every active session that tracks completion has marked this
  // page's item done — its cache residency no longer helps maintenance.
  // Suitable as a PageCache::EvictionAdvisor:
  //   cache.SetEvictionAdvisor([&duet](InodeNo i, PageIdx p) {
  //     return duet.ProcessedByAllSessions(i, p);
  //   });
  bool ProcessedByAllSessions(InodeNo ino, PageIdx idx) const;

 private:
  static constexpr uint32_t kMaxSessionsHard = 64;

  // Per-session per-descriptor flag byte layout.
  static constexpr uint8_t kPendingEventMask = 0x0f;  // bits 0-3: Table 2 events
  static constexpr uint8_t kReportedExists = 1u << 4;
  static constexpr uint8_t kReportedModified = 1u << 5;
  static constexpr uint8_t kQueued = 1u << 6;  // on the session's fetch queue

  struct PageKey {
    InodeNo ino;
    PageIdx idx;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return std::hash<uint64_t>()(k.ino * 0x9e3779b97f4a7c15ULL ^ k.idx);
    }
  };

  // Merged item descriptor (§4.2): one per page for all sessions.
  struct Descriptor {
    bool cur_exists = false;
    bool cur_modified = false;
    std::array<uint8_t, kMaxSessionsHard> flags{};
  };

  struct Session {
    bool active = false;
    bool is_block = false;
    uint8_t mask = 0;
    InodeNo registered_dir = kInvalidInode;
    RangeBitmap done;
    RangeBitmap relevant;  // file tasks only
    std::deque<PageKey> queue;  // descriptors with pending notifications
    uint64_t pending = 0;
    uint64_t dropped = 0;
  };

  bool SubscribesState(const Session& s) const { return (s.mask & kDuetStateMask) != 0; }

  Result<SessionId> AllocateSession(uint8_t mask);
  // Scans the page cache at registration time so existing pages generate
  // notifications immediately (§4.1).
  void InitialScan(SessionId sid);

  // Relevance for file tasks: lazily resolved on the first event for an
  // inode; irrelevant inodes are marked done so they are never re-checked.
  bool IsRelevant(Session& s, InodeNo ino);

  // Applies one page event to one session's descriptor byte. `forced_gone`
  // models a file leaving the registered directory (treated as ¬exists).
  void ApplyEvent(SessionId sid, Session& s, const PageKey& key, PageEventType type);
  // Marks the descriptor pending for `sid` and enqueues it, honouring the
  // event-only drop limit. Returns false if the event had to be dropped.
  bool EnsureQueued(SessionId sid, Session& s, Descriptor& d, const PageKey& key);
  // True if session `sid` has anything to report for `d`.
  bool HasPending(const Session& s, SessionId sid, const Descriptor& d) const;
  // Frees the descriptor if no session needs it any more.
  void MaybeFreeDescriptor(const PageKey& key);
  bool DescriptorNeeded(const Descriptor& d) const;

  Descriptor& GetOrCreateDescriptor(const PageKey& key);
  void EnsureInodeCapacity(InodeNo ino);

  // Handles a file moving into / out of a session's registered directory.
  void FileMovedIn(SessionId sid, Session& s, InodeNo ino);
  void FileMovedOut(SessionId sid, Session& s, InodeNo ino);

  SimTime Now() const;

  FileSystem* fs_;
  DuetConfig config_;
  obs::ObsContext* obs_;
  obs::Counter* ctr_hooks_;
  obs::Counter* ctr_delivered_;
  obs::Counter* ctr_dropped_;
  obs::Counter* ctr_fetched_;
  obs::Counter* ctr_fetch_calls_;
  obs::Counter* ctr_done_set_;
  obs::Counter* ctr_done_unset_;
  std::array<Session, kMaxSessionsHard> sessions_;
  uint32_t active_sessions_ = 0;
  std::unordered_map<PageKey, Descriptor, PageKeyHash> descriptors_;
  // Secondary index: inode -> pages with live descriptors (done-marking and
  // rename handling need per-file access).
  std::unordered_map<InodeNo, std::unordered_set<PageIdx>> inode_index_;
  DuetStats stats_;
};

}  // namespace duet

#endif  // SRC_DUET_DUET_CORE_H_
