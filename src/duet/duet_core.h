// DuetCore: the framework of the paper (§4) — the userspace equivalent of
// the Duet kernel module plus its page-cache hooks.
//
// DuetCore listens to the page cache's Added/Removed/Dirtied/Flushed hooks
// and to VFS rename/unlink notifications. It maintains:
//  * a session table (up to `max_sessions` concurrent sessions, §4.2);
//  * one *merged* item descriptor per page with pending notifications, in a
//    packed descriptor arena addressed through a flat open-addressed page
//    table; the arena slot doubles as the page's *global page number*, the
//    key the paper uses for its per-session structures;
//  * per-session notification flag bytes (the four Table 2 event bits plus
//    reported-state/queued bookkeeping) in dynamically allocated 4 KiB
//    chunks keyed by global page number (ChunkedByteMap — the byte-wide
//    sibling of the paper's chunked bitmaps);
//  * per-session done / relevant bitmaps backed by dynamically allocated
//    chunks in a red-black tree (RangeBitmap, §4.2 verbatim).
//
// Hook dispatch is the hottest path in the stack: every page-cache event
// fans out to the interested sessions. Three things keep it O(1) per
// interested session with no allocation on the steady path:
//  * per-event-type session interest masks — a hook visits exactly the
//    sessions subscribed to that event (bit-scan, not a table walk);
//  * the flat page table — one open-addressed probe replaces an
//    unordered_map find plus a secondary inode-index map;
//  * the descriptor arena + freelist — descriptors recycle without heap
//    traffic, and per-inode descriptor chains are intrusive (slot links),
//    so done-marking a file touches only that file's descriptors.
//
// Item identity: descriptors are keyed by (inode, page index). Block-task
// items are translated to block numbers through the file system's FIBMAP
// (Bmap) at event and fetch time, exactly the mechanism §4.2 describes for
// informing block tasks of file-level accesses.
//
// Memory bound: a descriptor stays allocated while its page is cached and a
// state-subscribed session exists, or while any session has unfetched
// notifications — giving the paper's 2 × (max pages in cache) bound for
// state sessions. Event-only sessions are subject to a per-session
// descriptor limit; beyond it, new events are dropped (§4.2).
#ifndef SRC_DUET_DUET_CORE_H_
#define SRC_DUET_DUET_CORE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/page_event.h"
#include "src/duet/duet_types.h"
#include "src/fs/file_system.h"
#include "src/fs/vfs_observer.h"
#include "src/obs/obs.h"
#include "src/util/chunked_bytes.h"
#include "src/util/flat_page_map.h"
#include "src/util/range_bitmap.h"
#include "src/util/status.h"

namespace duet {

struct DuetConfig {
  uint32_t max_sessions = 16;
  // Per-session cap on descriptors with pending notifications; beyond this,
  // events are dropped for event-only sessions (state sessions are bounded
  // by cache size and never drop).
  uint64_t max_pending_per_session = 1u << 20;
};

class DuetCore : public PageEventListener, public VfsObserver {
 public:
  // Attaches to `fs`'s page cache and namespace. Detaches on destruction.
  explicit DuetCore(FileSystem* fs, DuetConfig config = DuetConfig());
  ~DuetCore() override;

  DuetCore(const DuetCore&) = delete;
  DuetCore& operator=(const DuetCore&) = delete;

  // ---- The Duet API (paper Table 1) ----

  // Registers a file task watching `path` (a directory). Items are inode
  // numbers + offsets for files under the directory.
  Result<SessionId> RegisterFileTask(std::string_view path, uint8_t mask);

  // Registers a block task watching the whole device. Items are block
  // numbers.
  Result<SessionId> RegisterBlockTask(uint8_t mask);

  Status Deregister(SessionId sid);

  // Returns up to `max_items` pending notifications. Items whose
  // notifications cancelled out (§3.2) are silently skipped.
  Result<std::vector<DuetItem>> Fetch(SessionId sid, size_t max_items);

  // Work tracking (done bitmap): item_id is a block number for block tasks
  // and an inode number for file tasks.
  bool CheckDone(SessionId sid, uint64_t item_id) const;
  Status SetDone(SessionId sid, uint64_t item_id);
  Status UnsetDone(SessionId sid, uint64_t item_id);

  // Translates an inode to a path relative to the session's registered
  // directory. Fails when the file has no pages left in the cache — the
  // "truth" check that lets tasks back out of stale hints (§3.2) — or when
  // the file moved out of the registered directory.
  Result<std::string> GetPath(SessionId sid, InodeNo ino) const;

  // ---- Hooks (wired automatically) ----
  void OnPageEvent(const PageEvent& event) override;
  void OnRename(InodeNo ino, InodeNo old_parent, InodeNo new_parent,
                bool is_dir) override;
  void OnUnlink(InodeNo ino) override;
  void OnCreate(InodeNo ino) override;

  // ---- Introspection / accounting (§6.4 experiments) ----
  const DuetStats& stats() const { return stats_; }
  uint64_t descriptor_count() const { return live_descriptors_; }
  // sizeof-accurate footprint of the descriptor store: the packed arena
  // (capacity, since freelist slots stay resident), its freelist, and the
  // flat page table. Per-session flag chunks and done/relevant bitmaps are
  // reported by SessionBitmapBytes.
  uint64_t DescriptorMemoryBytes() const;
  // Heap footprint of one session's done+relevant bitmaps and its
  // notification flag chunks.
  uint64_t SessionBitmapBytes(SessionId sid) const;
  uint32_t active_sessions() const { return active_sessions_; }
  uint64_t PendingCount(SessionId sid) const;
  // Number of items currently marked done for the session (block tasks:
  // blocks; file tasks: inodes, including irrelevance markings).
  uint64_t DoneCount(SessionId sid) const;

  // Informed cache replacement (the PACMan-style extension §2 anticipates):
  // true when every active session that tracks completion has marked this
  // page's item done — its cache residency no longer helps maintenance.
  // Suitable as a PageCache::EvictionAdvisor:
  //   cache.SetEvictionAdvisor([&duet](InodeNo i, PageIdx p) {
  //     return duet.ProcessedByAllSessions(i, p);
  //   });
  bool ProcessedByAllSessions(InodeNo ino, PageIdx idx) const;

 private:
  static constexpr uint32_t kMaxSessionsHard = 64;
  static constexpr uint32_t kNoSlot = FlatPageMap::kNoSlot;

  // Per-session per-page flag byte layout (stored in ChunkedByteMap).
  static constexpr uint8_t kPendingEventMask = 0x0f;  // bits 0-3: Table 2 events
  static constexpr uint8_t kReportedExists = 1u << 4;
  static constexpr uint8_t kReportedModified = 1u << 5;
  static constexpr uint8_t kQueued = 1u << 6;  // on the session's fetch queue

  struct PageKey {
    InodeNo ino;
    PageIdx idx;
    bool operator==(const PageKey&) const = default;
  };

  // Merged item descriptor (§4.2): one per page for all sessions, 32 bytes
  // as the paper estimates. Per-session flag bytes live in the sessions'
  // chunked flag maps, keyed by this descriptor's arena slot.
  struct Descriptor {
    InodeNo ino = kInvalidInode;
    PageIdx idx = 0;
    uint32_t ino_next = kNoSlot;  // intrusive chain of this inode's descriptors
    uint32_t ino_prev = kNoSlot;
    bool cur_exists = false;
    bool cur_modified = false;
    bool live = false;  // false: slot is on the freelist
  };

  struct Session {
    bool active = false;
    bool is_block = false;
    uint8_t mask = 0;
    InodeNo registered_dir = kInvalidInode;
    RangeBitmap done;
    RangeBitmap relevant;  // file tasks only
    ChunkedByteMap flags;  // per-page flag byte, keyed by descriptor slot
    // Pages with pending notifications, FIFO. A vector with a consumed-prefix
    // cursor beats a deque here: pushes are a bump store, Fetch drains are a
    // linear walk, and full drains (the common case) reset to empty. The
    // consumed prefix is compacted when it outgrows the live tail.
    std::vector<PageKey> queue;
    size_t queue_head = 0;  // index of the first unconsumed queue entry
    uint64_t pending = 0;
    uint64_t dropped = 0;
  };

  bool SubscribesState(const Session& s) const { return (s.mask & kDuetStateMask) != 0; }

  Result<SessionId> AllocateSession(uint8_t mask);
  // Scans the page cache at registration time so existing pages generate
  // notifications immediately (§4.1).
  void InitialScan(SessionId sid);

  // Relevance for file tasks: lazily resolved on the first event for an
  // inode; irrelevant inodes are marked done so they are never re-checked.
  bool IsRelevant(Session& s, InodeNo ino);

  // Applies one page event to one session's flag byte. `slot` is the page's
  // descriptor slot, created on demand (kNoSlot on entry = not yet looked
  // up/created); `exists`/`modified` is the page's post-event state from the
  // hook, used when the descriptor must be created.
  void ApplyEvent(SessionId sid, Session& s, const PageKey& key, uint32_t& slot,
                  PageEventType type, bool exists, bool modified);
  // Marks the page pending for `sid` and enqueues it, honouring the
  // event-only drop limit. `byte` is the session's current flag byte for
  // `slot` (the hot path already holds it; passing it avoids a re-read).
  // Returns false if the event had to be dropped.
  bool EnsureQueued(SessionId sid, Session& s, uint32_t slot, const PageKey& key,
                    uint8_t byte);
  // True if the session has anything to report for a page whose flag byte
  // is `byte` and whose descriptor is `d`.
  bool HasPending(const Session& s, uint8_t byte, const Descriptor& d) const;
  // Frees the descriptor if no session needs it any more.
  void MaybeFreeDescriptor(const PageKey& key, uint32_t slot);
  bool DescriptorNeeded(uint32_t slot, const Descriptor& d) const;

  // Returns the page's descriptor slot, allocating one (and linking it into
  // its inode's chain) if absent. `exists`/`modified` seed a newly created
  // descriptor's current-state view; callers always know the page state (from
  // the hook event or a cache scan), so creation never probes the cache.
  uint32_t GetOrCreateSlot(const PageKey& key, bool exists, bool modified);
  // Allocates + links a descriptor for a key known to be absent from the
  // page table (callers that just probed and missed skip the re-probe).
  uint32_t CreateSlot(const PageKey& key, bool exists, bool modified);
  uint32_t FindSlot(const PageKey& key) const {
    return page_table_.Find(key.ino, key.idx);
  }
  void EnsureInodeCapacity(InodeNo ino);

  // Handles a file moving into / out of a session's registered directory.
  void FileMovedIn(SessionId sid, Session& s, InodeNo ino);
  void FileMovedOut(SessionId sid, Session& s, InodeNo ino);

  // Recomputes the per-event-type interest masks from the active sessions.
  void RebuildInterestMasks();

  SimTime Now() const;

  FileSystem* fs_;
  DuetConfig config_;
  obs::ObsContext* obs_;
  obs::Counter* ctr_hooks_;
  obs::Counter* ctr_delivered_;
  obs::Counter* ctr_dropped_;
  obs::Counter* ctr_fetched_;
  obs::Counter* ctr_fetch_calls_;
  obs::Counter* ctr_done_set_;
  obs::Counter* ctr_done_unset_;
  std::array<Session, kMaxSessionsHard> sessions_;
  uint32_t active_sessions_ = 0;
  // Bit s set: session s is active / is active and interested in event type
  // t (its mask covers the event bit or the state bit the event affects).
  uint64_t active_mask_ = 0;
  uint64_t state_mask_ = 0;  // active sessions subscribed to state bits
  std::array<uint64_t, 4> event_interest_{};  // indexed by PageEventType

  // Descriptor store: flat page table -> packed arena + freelist. The arena
  // slot is the page's global page number for per-session structures.
  FlatPageMap page_table_;
  std::vector<Descriptor> arena_;
  std::vector<uint32_t> free_slots_;
  uint64_t live_descriptors_ = 0;
  // Head (slot) of each inode's intrusive descriptor chain: done-marking and
  // rename handling need per-file access.
  std::unordered_map<InodeNo, uint32_t> inode_heads_;
  DuetStats stats_;
};

}  // namespace duet

#endif  // SRC_DUET_DUET_CORE_H_
