#include "src/fault/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace duet {

FaultInjector::FaultInjector(EventLoop* loop, FaultPlan plan)
    : loop_(loop),
      plan_(std::move(plan)),
      obs_(obs::CurrentObs()),
      ctr_injected_(obs_->metrics.GetCounter("fault.injected")),
      ctr_detected_(obs_->metrics.GetCounter("fault.detected")),
      ctr_repaired_(obs_->metrics.GetCounter("fault.repaired")),
      ctr_masked_(obs_->metrics.GetCounter("fault.masked")),
      ctr_unrecoverable_(obs_->metrics.GetCounter("fault.unrecoverable")),
      ctr_read_errors_(obs_->metrics.GetCounter("fault.read_errors")),
      ctr_transient_failures_(obs_->metrics.GetCounter("fault.transient_failures")),
      ctr_crashes_(obs_->metrics.GetCounter("fault.crashes")) {
  assert(loop_ != nullptr);
}

void FaultInjector::SetCorruptionSink(std::function<void(BlockNo, bool)> sink) {
  sink_ = std::move(sink);
}

void FaultInjector::SetTargetFilter(std::function<bool(BlockNo)> filter) {
  filter_ = std::move(filter);
}

void FaultInjector::SetCrashHandler(std::function<void()> handler) {
  crash_handler_ = std::move(handler);
}

void FaultInjector::ScheduleCrashAtTime(SimTime at) {
  loop_->ScheduleAt(at, [this] { TriggerCrash(/*source_tag=*/1); });
}

void FaultInjector::OnDeviceOp(uint64_t ops_dispatched, SimTime /*now*/) {
  if (crash_at_op_ != 0 && ops_dispatched >= crash_at_op_ && !crashed_) {
    TriggerCrash(/*source_tag=*/2);
  }
}

void FaultInjector::TriggerCrash(uint64_t source_tag) {
  if (crashed_) {
    return;  // a machine loses power once
  }
  crashed_ = true;
  ++stats_.crashes;
  ctr_crashes_->Add();
  obs_->trace.Emit(loop_->now(), obs::TraceLayer::kFault,
                   obs::TraceKind::kCrashTriggered, source_tag, kFaultCrash);
  if (crash_handler_) {
    crash_handler_();
  }
}

void FaultInjector::Start() {
  assert(!started_);
  started_ = true;
  for (const FaultEvent& event : plan_.events()) {
    loop_->ScheduleAt(event.at, [this, event] { Activate(event); });
  }
}

void FaultInjector::Activate(const FaultEvent& event) {
  switch (event.kind) {
    case kFaultLatent:
    case kFaultBitRot: {
      if ((filter_ && !filter_(event.block)) || active_.count(event.block) != 0) {
        ++stats_.skipped;
        return;
      }
      active_[event.block] = ActiveFault{event.kind, loop_->now(), false, false};
      ++stats_.injected;
      ctr_injected_->Add();
      obs_->trace.Emit(loop_->now(), obs::TraceLayer::kFault,
                       obs::TraceKind::kFaultInjected, event.block, event.kind);
      if (event.kind == kFaultBitRot && sink_) {
        sink_(event.block, event.both_copies);
      }
      break;
    }
    case kFaultTornWrite:
      // Materializes when (and if) a write covers the block.
      if (armed_torn_.emplace(event.block, loop_->now()).second) {
        ++stats_.torn_armed;
        obs_->trace.Emit(loop_->now(), obs::TraceLayer::kFault,
                         obs::TraceKind::kFaultArmed, event.block, event.kind);
      }
      break;
    case kFaultTransient:
      transients_.push_back(TransientWindow{
          event.block, event.span, loop_->now() + plan_.config().transient_duration,
          plan_.config().transient_latency});
      ++stats_.transient_windows;
      break;
    case kFaultCrash:
      TriggerCrash(/*source_tag=*/0);
      break;
    default:
      break;
  }
}

SimDuration FaultInjector::ExtraLatency(BlockNo block, uint32_t count, bool is_read,
                                        SimTime now) {
  if (!is_read || transients_.empty()) {
    return 0;
  }
  SimDuration extra = 0;
  for (const TransientWindow& w : transients_) {
    if (now < w.until && block < w.start + w.span && w.start < block + count) {
      extra = std::max(extra, w.latency);
    }
  }
  return extra;
}

Status FaultInjector::OnRead(BlockNo block, uint32_t count, SimTime now,
                             std::vector<BlockNo>* failed) {
  // Transient windows fail the whole request, retryably. Expired windows are
  // pruned here, the only place that scans them on the hot path.
  if (!transients_.empty()) {
    std::erase_if(transients_, [now](const TransientWindow& w) { return now >= w.until; });
    for (const TransientWindow& w : transients_) {
      if (block < w.start + w.span && w.start < block + count) {
        ++stats_.transient_failures;
        ctr_transient_failures_->Add();
        return Status(StatusCode::kBusy, "transient read timeout");
      }
    }
  }
  Status status = Status::Ok();
  for (BlockNo b = block; b < block + count; ++b) {
    auto it = active_.find(b);
    if (it == active_.end() || it->second.kind != kFaultLatent) {
      continue;
    }
    if (failed != nullptr) {
      failed->push_back(b);
    }
    ++stats_.read_errors;
    ctr_read_errors_->Add();
    if (!it->second.detected) {
      it->second.detected = true;
      ++stats_.detected;
      ctr_detected_->Add();
      obs_->trace.Emit(now, obs::TraceLayer::kFault,
                       obs::TraceKind::kFaultDetected, b);
      stats_.total_detect_latency += now - it->second.injected_at;
    }
    status = Status(StatusCode::kIoError, "latent sector error");
  }
  return status;
}

void FaultInjector::ResolveFault(BlockNo block, bool via_rewrite) {
  auto it = active_.find(block);
  if (it == active_.end()) {
    return;
  }
  if (it->second.detected) {
    ++stats_.repaired;
    ctr_repaired_->Add();
    obs_->trace.Emit(loop_->now(), obs::TraceLayer::kFault,
                     obs::TraceKind::kFaultRepaired, block);
  } else {
    ++stats_.masked;
    ctr_masked_->Add();
    obs_->trace.Emit(loop_->now(), obs::TraceLayer::kFault,
                     obs::TraceKind::kFaultMasked, block);
  }
  (void)via_rewrite;
  active_.erase(it);
}

void FaultInjector::OnWriteApplied(BlockNo block, uint32_t count, SimTime now) {
  for (BlockNo b = block; b < block + count; ++b) {
    // Rewriting the sector replaces its content: the active fault is gone.
    ResolveFault(b, /*via_rewrite=*/true);
    // An armed torn write corrupts the freshly persisted content.
    auto torn = armed_torn_.find(b);
    if (torn != armed_torn_.end()) {
      armed_torn_.erase(torn);
      active_[b] = ActiveFault{kFaultTornWrite, now, false, false};
      ++stats_.injected;
      ctr_injected_->Add();
      obs_->trace.Emit(now, obs::TraceLayer::kFault,
                       obs::TraceKind::kFaultInjected, b, kFaultTornWrite);
      if (sink_) {
        sink_(b, /*both_copies=*/false);
      }
    }
  }
}

void FaultInjector::NoteCorruptionDetected(BlockNo block) {
  auto it = active_.find(block);
  if (it == active_.end() || it->second.detected) {
    return;  // not one of ours (manual test hook) or already counted
  }
  it->second.detected = true;
  ++stats_.detected;
  ctr_detected_->Add();
  obs_->trace.Emit(loop_->now(), obs::TraceLayer::kFault,
                   obs::TraceKind::kFaultDetected, block);
  stats_.total_detect_latency += loop_->now() - it->second.injected_at;
}

void FaultInjector::NoteUnrecoverable(BlockNo block) {
  auto it = active_.find(block);
  if (it == active_.end() || it->second.unrecoverable) {
    return;
  }
  it->second.unrecoverable = true;
  ++stats_.unrecoverable;
  ctr_unrecoverable_->Add();
  obs_->trace.Emit(loop_->now(), obs::TraceLayer::kFault,
                   obs::TraceKind::kFaultUnrecoverable, block);
}

void FaultInjector::OnBlockFreed(BlockNo block) {
  // A freed block no longer backs live data; its fault cannot surface again.
  ResolveFault(block, /*via_rewrite=*/false);
}

bool FaultInjector::HasActiveFault(BlockNo block) const {
  return active_.count(block) != 0;
}

}  // namespace duet
