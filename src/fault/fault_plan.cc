#include "src/fault/fault_plan.h"

#include <algorithm>

#include "src/util/crc32c.h"
#include "src/util/rng.h"

namespace duet {

const char* FaultKindName(uint32_t kind) {
  switch (kind) {
    case kFaultLatent:
      return "latent";
    case kFaultBitRot:
      return "bitrot";
    case kFaultTornWrite:
      return "torn";
    case kFaultTransient:
      return "transient";
    case kFaultCrash:
      return "crash";
  }
  return "unknown";
}

FaultPlan FaultPlan::Generate(uint64_t seed, const FaultPlanConfig& config,
                              uint64_t capacity_blocks) {
  FaultPlan plan;
  plan.config_ = config;
  if (config.faults_per_second <= 0 || (config.kinds & kFaultAllKinds) == 0 ||
      capacity_blocks == 0) {
    return plan;
  }
  BlockNo lo = std::min<BlockNo>(config.range_lo, capacity_blocks - 1);
  BlockNo hi = config.range_hi == 0 ? capacity_blocks
                                    : std::min<BlockNo>(config.range_hi, capacity_blocks);
  if (hi <= lo) {
    hi = lo + 1;
  }

  std::vector<uint32_t> kinds;
  for (uint32_t k : {kFaultLatent, kFaultBitRot, kFaultTornWrite, kFaultTransient,
                     kFaultCrash}) {
    if (config.kinds & k) {
      kinds.push_back(k);
    }
  }

  Rng rng(seed);
  double t_seconds = 0;
  const double window_seconds = ToSeconds(config.window);
  bool crash_scheduled = false;
  while (true) {
    t_seconds += rng.Exponential(1.0 / config.faults_per_second);
    if (t_seconds >= window_seconds) {
      break;
    }
    FaultEvent event;
    event.at = FromSeconds(t_seconds);
    event.kind = kinds[rng.Uniform(kinds.size())];
    if (event.kind == kFaultCrash) {
      // A machine loses power at most once per plan; later arrivals re-draw
      // nothing (events after a crash would never fire anyway).
      if (crash_scheduled) {
        continue;
      }
      crash_scheduled = true;
      event.block = 0;
      plan.events_.push_back(event);
      continue;
    }
    bool use_hot = !config.hot_blocks.empty() && rng.Chance(config.hot_fraction);
    event.block = use_hot ? config.hot_blocks[rng.Uniform(config.hot_blocks.size())]
                          : lo + rng.Uniform(hi - lo);
    if (event.kind == kFaultTransient) {
      event.span = config.transient_span_blocks;
    }
    if (event.kind == kFaultBitRot) {
      event.both_copies = rng.Chance(config.rot_both_copies_fraction);
    }
    plan.events_.push_back(event);
  }
  return plan;
}

FaultPlan FaultPlan::FromEvents(const FaultPlanConfig& config,
                                std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  FaultPlan plan;
  plan.config_ = config;
  plan.events_ = std::move(events);
  return plan;
}

uint32_t FaultPlan::Fingerprint() const {
  uint32_t crc = 0;
  for (const FaultEvent& e : events_) {
    crc = Crc32c(&e.at, sizeof(e.at), crc);
    crc = Crc32c(&e.kind, sizeof(e.kind), crc);
    crc = Crc32c(&e.block, sizeof(e.block), crc);
    crc = Crc32c(&e.span, sizeof(e.span), crc);
    crc = Crc32c(&e.both_copies, sizeof(e.both_copies), crc);
  }
  return crc;
}

}  // namespace duet
