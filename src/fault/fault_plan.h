// Deterministic fault schedules for the simulated storage stack.
//
// A FaultPlan is a pure function of (seed, FaultPlanConfig, device capacity):
// the same inputs always produce a byte-identical schedule, so any failure
// scenario can be replayed exactly. The plan is a time-ordered list of fault
// events; the FaultInjector arms them against the event loop and the block
// device consults it on every request (the error path the paper's motivating
// tasks — scrubbing, backup verification — exist to exercise).
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/util/types.h"

namespace duet {

// Fault kinds, usable as a bitmask in FaultPlanConfig::kinds.
inline constexpr uint32_t kFaultLatent = 1u << 0;     // unreadable sector
inline constexpr uint32_t kFaultBitRot = 1u << 1;     // silent data corruption
inline constexpr uint32_t kFaultTornWrite = 1u << 2;  // next write persists torn
inline constexpr uint32_t kFaultTransient = 1u << 3;  // read timeout/latency spike
inline constexpr uint32_t kFaultCrash = 1u << 4;      // power loss: volatile state gone
inline constexpr uint32_t kFaultAllKinds =
    kFaultLatent | kFaultBitRot | kFaultTornWrite | kFaultTransient | kFaultCrash;

const char* FaultKindName(uint32_t kind);

struct FaultPlanConfig {
  uint32_t kinds = kFaultLatent | kFaultBitRot;
  // Mean fault arrival rate (Poisson process over the window).
  double faults_per_second = 0;
  SimDuration window = Seconds(18);
  // Target block range [range_lo, range_hi); range_hi = 0 means the whole
  // device. Lets scenarios concentrate faults on a file set or a disk zone.
  BlockNo range_lo = 0;
  BlockNo range_hi = 0;
  // Temperature bias: this fraction of faults is drawn from `hot_blocks`
  // (recently/frequently accessed data) instead of uniformly from the range.
  std::vector<BlockNo> hot_blocks;
  double hot_fraction = 0;
  // Fraction of bit-rot faults that also corrupt the redundant copy (cowfs
  // DUP profile), making them unrecoverable unless the page is cached.
  double rot_both_copies_fraction = 0;
  // Transient spikes: affected region size, added latency, and how long the
  // region keeps failing reads.
  uint32_t transient_span_blocks = 1024;
  SimDuration transient_latency = Millis(40);
  SimDuration transient_duration = Millis(200);
};

struct FaultEvent {
  SimTime at = 0;
  uint32_t kind = 0;
  BlockNo block = 0;
  // kFaultTransient: blocks [block, block+span) are affected.
  uint32_t span = 1;
  // kFaultBitRot: corrupt the redundant copy as well.
  bool both_copies = false;

  bool operator==(const FaultEvent&) const = default;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Builds the deterministic schedule. Identical (seed, config, capacity)
  // inputs yield identical plans (the replay guarantee).
  static FaultPlan Generate(uint64_t seed, const FaultPlanConfig& config,
                            uint64_t capacity_blocks);

  // Hand-authored schedule (directed failure scenarios, tests). Events are
  // sorted by time; `config` supplies the transient parameters.
  static FaultPlan FromEvents(const FaultPlanConfig& config,
                              std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  const FaultPlanConfig& config() const { return config_; }
  bool empty() const { return events_.empty(); }

  // Stable fingerprint of the schedule (CRC32C over the event list), used by
  // the determinism property test and printed by benches for replay checks.
  uint32_t Fingerprint() const;

 private:
  FaultPlanConfig config_;
  std::vector<FaultEvent> events_;
};

}  // namespace duet

#endif  // SRC_FAULT_FAULT_PLAN_H_
