// Replayable fault injection: arms a FaultPlan against the event loop and
// serves as the block device's error model.
//
// Lifecycle of a fault:
//  * latent sector error — the block becomes unreadable at its scheduled
//    time; every read of it fails (detection happens at the device) until a
//    write rewrites the sector (disk firmware remap semantics);
//  * silent bit rot — the on-disk content is flipped through the corruption
//    sink without touching the stored checksum; only a checksum verification
//    on a later read detects it;
//  * torn write — armed at its scheduled time; the next write that covers
//    the block persists corrupt content (checksum of the intended data,
//    garbage on the platter);
//  * transient — a region of the device fails reads with kBusy and adds a
//    latency spike for a bounded window; callers are expected to retry.
//
// Every fault is tracked from injection to resolution, producing the
// harness metrics: detected / repaired / masked / unrecoverable counts and
// mean time to detect (MTTD).
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/obs/obs.h"
#include "src/sim/event_loop.h"
#include "src/util/status.h"

namespace duet {

struct FaultStats {
  uint64_t injected = 0;       // latent/rot activated + torn actually applied
  uint64_t skipped = 0;        // activation hit a block not in use
  uint64_t torn_armed = 0;     // torn events waiting for a write
  uint64_t transient_windows = 0;
  uint64_t detected = 0;       // surfaced via read failure or checksum
  uint64_t repaired = 0;       // detected, then cleared by a rewrite/free
  uint64_t masked = 0;         // cleared by a rewrite/free before detection
  uint64_t unrecoverable = 0;  // detected, no good copy to repair from
  uint64_t read_errors = 0;        // block reads failed with kIoError
  uint64_t transient_failures = 0; // requests failed with kBusy
  uint64_t crashes = 0;            // power-loss events triggered
  SimDuration total_detect_latency = 0;

  uint64_t Undetected() const {
    uint64_t resolved = detected + masked;
    return injected > resolved ? injected - resolved : 0;
  }
  double MeanTimeToDetectSeconds() const {
    return detected == 0 ? 0 : ToSeconds(total_detect_latency) /
                                   static_cast<double>(detected);
  }
};

class FaultInjector {
 public:
  FaultInjector(EventLoop* loop, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // The sink flips on-disk content without updating the stored checksum.
  // Registered by the file system (FileSystem::AttachFaultInjector).
  void SetCorruptionSink(std::function<void(BlockNo, bool both_copies)> sink);
  // Activation filter: latent/rot events targeting blocks where this returns
  // false are skipped (e.g. unallocated blocks hold no data to corrupt).
  void SetTargetFilter(std::function<bool(BlockNo)> filter);

  // Schedules every plan event on the loop. Call once, after the sink and
  // filter are registered and the initial file set is populated.
  void Start();

  // ---- Crash points ----
  // The handler runs exactly once, at the crash instant; it is expected to
  // freeze the durable image (BlockDevice::CrashFreeze) and halt the event
  // loop so the harness can tear the stack down. A kCrash plan event with no
  // handler registered only counts in stats (benign in crash-unaware rigs).
  void SetCrashHandler(std::function<void()> handler);
  // Explicit crash points, usable with or without a plan: at an absolute
  // sim-time, or when the device dispatches its Nth op (1-based).
  void ScheduleCrashAtTime(SimTime at);
  void ScheduleCrashAtOp(uint64_t nth_op) { crash_at_op_ = nth_op; }
  bool crashed() const { return crashed_; }

  // ---- Device-side consultation ----
  // Extra service latency for a request (transient spikes; reads only).
  SimDuration ExtraLatency(BlockNo block, uint32_t count, bool is_read, SimTime now);
  // Outcome of reading [block, block+count): kBusy if a transient window
  // covers the range (whole request fails, retryable), kIoError if any block
  // has a latent error (failed blocks appended to `failed`, ascending), Ok
  // otherwise. Latent failures count as detected — the device observed them.
  Status OnRead(BlockNo block, uint32_t count, SimTime now,
                std::vector<BlockNo>* failed);
  // Called after a write to [block, block+count) has been applied by the
  // file system: rewriting a sector clears its active fault (repaired if it
  // had been detected, masked otherwise), then any armed torn write for the
  // range corrupts the freshly written content through the sink.
  void OnWriteApplied(BlockNo block, uint32_t count, SimTime now);
  // Called on every op the device dispatches (crash-at-op addressing).
  void OnDeviceOp(uint64_t ops_dispatched, SimTime now);

  // ---- Consumer-side notifications ----
  // A checksum verification caught corrupt content in `block`.
  void NoteCorruptionDetected(BlockNo block);
  // A repair attempt found no good copy; the fault stays active.
  void NoteUnrecoverable(BlockNo block);
  // The block was freed (COW rewrite, GC move, unlink): its fault can no
  // longer serve corrupt data.
  void OnBlockFreed(BlockNo block);

  bool HasActiveFault(BlockNo block) const;
  uint64_t active_fault_count() const { return active_.size(); }
  const FaultStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  struct ActiveFault {
    uint32_t kind = 0;
    SimTime injected_at = 0;
    bool detected = false;
    bool unrecoverable = false;
  };
  struct TransientWindow {
    BlockNo start = 0;
    uint32_t span = 1;
    SimTime until = 0;
    SimDuration latency = 0;
  };

  void Activate(const FaultEvent& event);
  void ResolveFault(BlockNo block, bool via_rewrite);
  void TriggerCrash(uint64_t source_tag);

  EventLoop* loop_;
  FaultPlan plan_;
  obs::ObsContext* obs_;
  obs::Counter* ctr_injected_;
  obs::Counter* ctr_detected_;
  obs::Counter* ctr_repaired_;
  obs::Counter* ctr_masked_;
  obs::Counter* ctr_unrecoverable_;
  obs::Counter* ctr_read_errors_;
  obs::Counter* ctr_transient_failures_;
  obs::Counter* ctr_crashes_;
  std::function<void(BlockNo, bool)> sink_;
  std::function<bool(BlockNo)> filter_;
  std::function<void()> crash_handler_;
  uint64_t crash_at_op_ = 0;  // 0 = disabled
  bool crashed_ = false;
  bool started_ = false;
  std::unordered_map<BlockNo, ActiveFault> active_;
  std::unordered_map<BlockNo, SimTime> armed_torn_;  // block -> armed at
  std::vector<TransientWindow> transients_;
  FaultStats stats_;
};

}  // namespace duet

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
