// Shared file-system machinery for the two concrete file systems (cowfs,
// logfs): namespace, page cache, async read/write paths over the simulated
// block device, and writeback. Concrete file systems supply block placement
// (COW vs log-structured) through a small set of virtual hooks.
//
// All data callbacks are delivered through the event loop (never inline), so
// task state machines cannot recurse unboundedly on all-cached reads.
#ifndef SRC_FS_FILE_SYSTEM_H_
#define SRC_FS_FILE_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/block/block_device.h"
#include "src/cache/page_cache.h"
#include "src/cache/writeback.h"
#include "src/fs/namespace.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace duet {

class FaultInjector;
class ByteReader;
class ByteWriter;

// Outcome of an asynchronous file-system operation. The per-source page
// counts let maintenance tasks account I/O performed vs I/O saved.
struct FsIoResult {
  Status status;
  uint64_t pages_requested = 0;
  uint64_t pages_from_cache = 0;  // served without device I/O
  uint64_t pages_from_disk = 0;
  uint64_t pages_failed = 0;      // device read failed or checksum mismatch
  uint64_t device_ops = 0;        // requests submitted to the device
};

using FsIoCallback = std::function<void(const FsIoResult&)>;

// Outcome of a mount-time recovery (FileSystem::Mount).
struct MountReport {
  Status status;
  uint64_t generation = 0;       // checkpoint/superblock generation loaded
  uint64_t blocks_restored = 0;  // blocks reloaded from the durable image
  uint64_t blocks_replayed = 0;  // log records rolled forward (logfs)
  uint64_t blocks_discarded = 0; // torn or orphaned records discarded
  uint64_t blocks_missing = 0;   // referenced by metadata, absent from image
  uint64_t files = 0;            // regular files recovered
  uint64_t meta_bytes = 0;       // checkpoint payload size read
  SimDuration duration = 0;      // virtual time the mount took
};

// Outcome of an fsck-style full consistency check (CheckConsistency).
struct FsckReport {
  uint64_t blocks_checked = 0;
  uint64_t structural_errors = 0;  // refcount/bitmap/extent-map disagreements
  uint64_t checksum_errors = 0;    // stored CRC32C does not match content
  BlockNo first_bad_block = kInvalidBlock;

  bool clean() const { return structural_errors == 0 && checksum_errors == 0; }
  void NoteBad(BlockNo block) {
    if (first_bad_block == kInvalidBlock) {
      first_bad_block = block;
    }
  }
};

// Outcome of a raw block-level read (no page-cache involvement).
struct RawReadResult {
  Status status;
  uint64_t blocks_read = 0;
  uint64_t checksum_errors = 0;
  uint64_t read_errors = 0;  // device-level failures (latent sector errors)
  uint64_t device_ops = 0;
  // Blocks that failed verification or could not be read, ascending; the
  // scrubber's repair path consumes this.
  std::vector<BlockNo> bad_blocks;
};

class FileSystem : public WritebackTarget {
 public:
  FileSystem(EventLoop* loop, BlockDevice* device, uint64_t cache_pages,
             WritebackParams wb_params = WritebackParams());
  ~FileSystem() override = default;

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // ---- Components ----
  Namespace& ns() { return ns_; }
  const Namespace& ns() const { return ns_; }
  PageCache& cache() { return cache_; }
  const PageCache& cache() const { return cache_; }
  BlockDevice& device() { return *device_; }
  EventLoop& loop() { return *loop_; }
  Writeback& writeback() { return writeback_; }

  // ---- Namespace convenience ----
  Result<InodeNo> CreateFile(std::string_view path) {
    return ns_.Create(path, FileType::kRegular);
  }
  Result<InodeNo> Mkdir(std::string_view path) {
    return ns_.Create(path, FileType::kDirectory);
  }
  // Unlinks a regular file: drops its cache pages, frees its blocks.
  Status DeleteFile(InodeNo ino);

  // ---- Data path (asynchronous; callbacks via the event loop) ----

  // Reads [off, off+len) of `ino`. Cached pages are free; misses are mapped
  // to blocks, coalesced into contiguous runs, and submitted at `io_class`.
  void Read(InodeNo ino, ByteOff off, uint64_t len, IoClass io_class, FsIoCallback cb);

  // Writes [off, off+len): allocates (COW / log-append) a new block per
  // page, installs dirty pages in the cache, extends the file if needed.
  // Completes without device I/O; writeback flushes later.
  void Write(InodeNo ino, ByteOff off, uint64_t len, IoClass io_class, FsIoCallback cb);

  // Appends `len` bytes at EOF.
  void Append(InodeNo ino, uint64_t len, IoClass io_class, FsIoCallback cb);

  // Like Write, but installs the given page contents instead of generating
  // fresh tokens (one token per page of the range). Used by copy tasks
  // (rsync's receiver) so destination content equals the source.
  void CopyIn(InodeNo ino, ByteOff off, uint64_t len, std::vector<uint64_t> tokens,
              IoClass io_class, FsIoCallback cb);

  // Reads an explicit list of device blocks, bypassing the page cache.
  // Consecutive block numbers are coalesced into single requests. Content
  // verification (checksums) happens via OnDiskBlockRead. Used by tasks that
  // must read data with no live page, e.g. preserved snapshot blocks.
  void ReadBlocks(std::vector<BlockNo> blocks, IoClass io_class,
                  std::function<void(const RawReadResult&)> cb);

  // ---- Mapping (the FIBMAP ioctl the paper relies on, §4.2) ----
  // Returns the device block currently backing page `idx` of `ino`.
  // Inline: block-task hook dispatch translates every page event through
  // Bmap, making this one of the hottest lookups in the stack.
  Result<BlockNo> Bmap(InodeNo ino, PageIdx idx) const {
    auto it = fmap_.find(ino);
    if (it == fmap_.end() || idx >= it->second.blocks.size() ||
        it->second.blocks[idx] == kInvalidBlock) {
      return Status(StatusCode::kNotFound, "unmapped page");
    }
    return it->second.blocks[idx];
  }

  // Reverse mapping (back references): the file page currently stored in
  // `block`, if any. Used to surface block-level reads as page events and by
  // the logfs cleaner.
  struct BlockOwner {
    InodeNo ino = kInvalidInode;
    PageIdx idx = 0;
  };
  Result<BlockOwner> Rmap(BlockNo block) const;

  // ---- Setup-time population (no I/O, no virtual time) ----
  // Creates the file's data instantly: allocates blocks, writes tokens and
  // metadata directly to the simulated disk. Returns the inode.
  Result<InodeNo> PopulateFile(std::string_view path, uint64_t bytes);

  // Population with deliberate fragmentation, where the file system supports
  // it (cowfs); the default ignores `break_prob` and places contiguously.
  virtual Result<InodeNo> PopulateFileAged(std::string_view path, uint64_t bytes,
                                           double break_prob, Rng& rng);

  // ---- Crash consistency (durability boundary & recovery) ----

  // Wires the durable image (owned by the harness, so it survives stack
  // teardown) to this stack: the device commits its volatile write set into
  // it on every completed Flush(), pulling content through a provider backed
  // by this file system's simulated platter. Call before any I/O.
  void AttachDurableImage(DurableImage* image);
  DurableImage* durable_image() const { return image_; }

  // fsync-style barrier: flushes every dirty page, then issues a device
  // Flush(). When `done` fires, all data written before the call is in the
  // durable image (it survives a crash).
  void Sync(std::function<void()> done);

  // Setup-time seeding: commits every in-use block into the durable image
  // instantly (populate writes bypass the device, so the image never saw
  // them). Call after population, before the run starts.
  void SnapshotToDurable();

  // Commits a recovery point: Sync(), then serialize metadata and write it
  // to the image's checkpoint area (cowfs: superblock generation; logfs:
  // checkpoint). Requires quiesced foreground writes between the internal
  // Sync and the metadata write — the transaction-commit stall of a real
  // COW/log file system. The base implementation only syncs.
  virtual void Checkpoint(std::function<void()> done);

  // Mount-time recovery: rebuilds all in-memory state from the durable
  // image. Must be called on a freshly constructed file system (empty
  // namespace). The base implementation reports kNotSupported.
  virtual void Mount(std::function<void(const MountReport&)> cb);

  // fsck: verifies refcounts, allocation bitmaps, forward/reverse extent
  // maps, and per-block CRC32C of every in-use block. Pure in-memory check
  // (no modeled I/O); run it right after Mount to audit the recovered state.
  virtual FsckReport CheckConsistency() const;

  // ---- Fault injection ----
  // Wires a fault injector to this stack: the device consults it on every
  // request, its corruption sink flips this file system's on-disk content,
  // and its target filter skips blocks not in use. Call before
  // FaultInjector::Start(). Passing nullptr detaches.
  void AttachFaultInjector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  // ---- Introspection ----
  uint64_t allocated_blocks() const { return allocated_blocks_; }
  uint64_t capacity_blocks() const { return disk_data_.size(); }
  // Token currently stored on disk for `block` (tests, verification).
  uint64_t DiskToken(BlockNo block) const { return disk_data_[block]; }
  // Current in-memory-or-disk content of a file page (cache wins).
  Result<uint64_t> PageContent(InodeNo ino, PageIdx idx) const;

  // WritebackTarget:
  void WritebackPages(std::vector<PageCache::DirtyPageRef> pages,
                      std::function<void()> done) override;

 protected:
  // ---- Placement hooks implemented by cowfs / logfs ----

  // Allocates the block that will back (ino, idx), given the previous block
  // (kInvalidBlock for a fresh page). Must update internal maps so Bmap
  // reflects the new location; must release/invalidate `old_block`.
  virtual Result<BlockNo> AllocateForWrite(InodeNo ino, PageIdx idx,
                                           BlockNo old_block) = 0;

  // Frees every block of the file (unlink path).
  virtual void FreeFileBlocks(InodeNo ino) = 0;

  // Called when a block's content has been read from the device; cowfs
  // verifies the stored checksum here.
  virtual Status OnDiskBlockRead(BlockNo block, uint64_t token);

  // Called when writeback has persisted `token` into `block`; cowfs updates
  // the block checksum, logfs updates segment metadata.
  virtual void OnBlockFlushed(BlockNo block, uint64_t token);

  // Corruption sink for the fault injector (and the CorruptBlock test
  // hooks): flips the on-disk content of `block` without touching any stored
  // checksum. cowfs extends it to optionally corrupt the DUP mirror too.
  virtual void InjectCorruption(BlockNo block, bool both_copies);

  // True if `block` currently holds live data (fault targeting filter).
  virtual bool BlockInUse(BlockNo /*block*/) const { return true; }

  // Stored checksum of `block` (may legitimately disagree with the current
  // content — that is how torn writes and bit rot are detected). Feeds the
  // durable-image content provider.
  virtual uint32_t StoredChecksum(BlockNo /*block*/) const { return 0; }

  // Shared checkpoint payload pieces: the namespace (inode table) and the
  // forward extent map, in deterministic (inode-sorted) order.
  void SerializeNamespaceAndMaps(ByteWriter* w) const;
  // Inverse of the above; installs inodes and page->block mappings (which
  // also rebuilds the reverse map). Returns false on a malformed payload.
  bool RestoreNamespaceAndMaps(ByteReader* r, uint64_t* files_out);

  // Shared fsck piece: every page of every live file must be mapped (no
  // holes), its block in use, and the reverse map must agree.
  void CheckFileMappings(FsckReport* report) const;

  // Forward/reverse map storage shared by both file systems.
  struct FileMap {
    std::vector<BlockNo> blocks;  // page index -> block
  };
  std::unordered_map<InodeNo, FileMap> fmap_;
  std::vector<BlockOwner> rmap_;     // block -> owner page
  std::vector<uint64_t> disk_data_;  // block -> stored token
  uint64_t allocated_blocks_ = 0;

  // Fresh unique content token.
  uint64_t NextToken() { return token_counter_ += 0x9e3779b97f4a7c15ULL; }

  // Installs a page->block mapping (and the reverse map).
  void SetMapping(InodeNo ino, PageIdx idx, BlockNo block);
  void ClearOwner(BlockNo block);

  EventLoop* loop_;
  BlockDevice* device_;
  PageCache cache_;
  Namespace ns_;
  Writeback writeback_;
  FaultInjector* injector_ = nullptr;
  DurableImage* image_ = nullptr;

 private:
  struct ReadJob;
  void FinishViaLoop(FsIoCallback cb, FsIoResult result);

  uint64_t token_counter_ = 1;
};

}  // namespace duet

#endif  // SRC_FS_FILE_SYSTEM_H_
