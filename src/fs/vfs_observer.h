// VFS-level notifications. Duet registers an observer to learn about files
// moving into or out of a registered directory and about deletions (paper
// §4.1, "Duet also needs to handle files and directories being moved").
#ifndef SRC_FS_VFS_OBSERVER_H_
#define SRC_FS_VFS_OBSERVER_H_

#include "src/util/types.h"

namespace duet {

class VfsObserver {
 public:
  virtual ~VfsObserver() = default;

  // `ino` (file or directory) was renamed/moved from `old_parent` to
  // `new_parent` (equal parents for a simple rename). Fired after the
  // namespace has been updated.
  virtual void OnRename(InodeNo ino, InodeNo old_parent, InodeNo new_parent,
                        bool is_dir) = 0;

  // `ino` was unlinked and destroyed. Page-cache Removed events for its
  // pages fire separately via the cache hooks.
  virtual void OnUnlink(InodeNo ino) = 0;

  // A new inode was created (Duet uses the max inode number to size its
  // file-task bitmaps).
  virtual void OnCreate(InodeNo ino) = 0;
};

}  // namespace duet

#endif  // SRC_FS_VFS_OBSERVER_H_
