// Directory-tree (namespace) management shared by cowfs and logfs: inode
// table, path resolution, create/unlink/rename, and ancestor queries. Data
// placement is left entirely to the concrete file system.
#ifndef SRC_FS_NAMESPACE_H_
#define SRC_FS_NAMESPACE_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/fs/inode.h"
#include "src/fs/vfs_observer.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace duet {

class Namespace {
 public:
  Namespace();

  Namespace(const Namespace&) = delete;
  Namespace& operator=(const Namespace&) = delete;

  InodeNo root() const { return kRootIno; }
  static constexpr InodeNo kRootIno = 1;

  // ---- Lookup ----

  // Resolves an absolute path ("/a/b/c"; "/" is the root).
  Result<InodeNo> Resolve(std::string_view path) const;

  // Absolute path of an inode.
  Result<std::string> PathOf(InodeNo ino) const;

  const Inode* Get(InodeNo ino) const;
  Inode* GetMutable(InodeNo ino);
  bool Exists(InodeNo ino) const { return inodes_.count(ino) > 0; }

  // True if `ino` equals `ancestor` or lies anywhere beneath it.
  bool IsUnder(InodeNo ino, InodeNo ancestor) const;

  // ---- Mutation ----

  // Creates a regular file or directory at `path` (parent must exist).
  Result<InodeNo> Create(std::string_view path, FileType type);
  Result<InodeNo> CreateIn(InodeNo parent, std::string_view name, FileType type);

  // Unlinks a file or an empty directory. The inode is destroyed.
  Status Unlink(InodeNo ino);

  // Moves `ino` under `new_parent` as `new_name`. Fails if the destination
  // name exists or the move would create a cycle.
  Status Rename(InodeNo ino, InodeNo new_parent, std::string_view new_name);

  // ---- Crash recovery (mount-time restore) ----

  // Installs an inode record directly into the table: no parent checks, no
  // observer events (recovery happens before any Duet session registers).
  // Restoring the root updates the existing entry. Parents may be restored
  // after their children — call RestoreLinks() once all inodes are in.
  void RestoreInode(InodeNo ino, FileType type, uint64_t size, InodeNo parent,
                    std::string name);

  // Rebuilds every directory's children map from the restored parent/name
  // fields and sets the next inode number to allocate.
  void RestoreLinks(InodeNo next_ino);

  // ---- Iteration ----

  // Depth-first, name-ordered traversal under `dir` (inclusive of files,
  // exclusive of `dir` itself). `fn` returning false stops the walk.
  void WalkDepthFirst(InodeNo dir, const std::function<bool(const Inode&)>& fn) const;

  // Calls `fn` for every inode (any order).
  void ForEachInode(const std::function<void(const Inode&)>& fn) const;

  uint64_t inode_count() const { return inodes_.size(); }
  // Upper bound on inode numbers ever allocated (bitmap sizing).
  InodeNo max_ino() const { return next_ino_; }

  // ---- Observers ----
  void AddObserver(VfsObserver* observer);
  void RemoveObserver(VfsObserver* observer);

 private:
  bool WalkImpl(const Inode& dir, const std::function<bool(const Inode&)>& fn) const;

  std::unordered_map<InodeNo, Inode> inodes_;
  InodeNo next_ino_ = kRootIno + 1;
  std::vector<VfsObserver*> observers_;
};

// Splits "/a/b/c" into {"a","b","c"}. Empty components are ignored.
std::vector<std::string_view> SplitPath(std::string_view path);

}  // namespace duet

#endif  // SRC_FS_NAMESPACE_H_
