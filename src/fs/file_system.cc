#include "src/fs/file_system.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/fs/meta_codec.h"

namespace duet {

FileSystem::FileSystem(EventLoop* loop, BlockDevice* device, uint64_t cache_pages,
                       WritebackParams wb_params)
    : loop_(loop),
      device_(device),
      cache_(cache_pages, [loop] { return loop->now(); }),
      writeback_(loop, &cache_, this, wb_params) {
  assert(loop_ != nullptr && device_ != nullptr);
  disk_data_.assign(device_->capacity_blocks(), 0);
  rmap_.assign(device_->capacity_blocks(), BlockOwner{});
  writeback_.Start();
}

Status FileSystem::OnDiskBlockRead(BlockNo /*block*/, uint64_t /*token*/) {
  return Status::Ok();
}

void FileSystem::OnBlockFlushed(BlockNo block, uint64_t token) {
  disk_data_[block] = token;
}

void FileSystem::InjectCorruption(BlockNo block, bool /*both_copies*/) {
  disk_data_[block] ^= 0xdeadbeefcafef00dULL;
  // The durable image models the same platter: rot that hits a committed
  // block must survive a crash and remount too.
  if (image_ != nullptr && image_->Present(block)) {
    image_->CorruptToken(block);
  }
}

void FileSystem::AttachFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  device_->SetFaultInjector(injector);
  if (injector != nullptr) {
    injector->SetCorruptionSink(
        [this](BlockNo block, bool both) { InjectCorruption(block, both); });
    injector->SetTargetFilter([this](BlockNo block) { return BlockInUse(block); });
  }
}

void FileSystem::AttachDurableImage(DurableImage* image) {
  image_ = image;
  device_->SetDurableImage(image);
  if (image != nullptr) {
    device_->SetDurableContentProvider([this](BlockNo block) {
      DurableContent content;
      content.token = disk_data_[block];
      content.csum = StoredChecksum(block);
      content.ino = rmap_[block].ino;
      content.idx = rmap_[block].idx;
      content.in_use = BlockInUse(block);
      return content;
    });
  }
}

void FileSystem::Sync(std::function<void()> done) {
  writeback_.Sync([this, done = std::move(done)]() mutable {
    device_->Flush(IoClass::kBestEffort,
                   [done = std::move(done)](const IoResult&) { done(); });
  });
}

void FileSystem::SnapshotToDurable() {
  if (image_ == nullptr) {
    return;
  }
  for (BlockNo b = 0; b < capacity_blocks(); ++b) {
    if (BlockInUse(b)) {
      image_->Commit(b, disk_data_[b], StoredChecksum(b), rmap_[b].ino,
                     rmap_[b].idx);
    }
  }
}

void FileSystem::Checkpoint(std::function<void()> done) {
  Sync(std::move(done));
}

void FileSystem::Mount(std::function<void(const MountReport&)> cb) {
  MountReport report;
  report.status = Status(StatusCode::kNotSupported, "no recovery metadata");
  loop_->ScheduleAfter(0, [cb = std::move(cb), report] { cb(report); });
}

FsckReport FileSystem::CheckConsistency() const {
  FsckReport report;
  CheckFileMappings(&report);
  return report;
}

void FileSystem::SerializeNamespaceAndMaps(ByteWriter* w) const {
  std::vector<const Inode*> inodes;
  ns_.ForEachInode([&inodes](const Inode& inode) { inodes.push_back(&inode); });
  std::sort(inodes.begin(), inodes.end(),
            [](const Inode* a, const Inode* b) { return a->ino < b->ino; });
  w->U64(ns_.max_ino());
  w->U64(inodes.size());
  for (const Inode* inode : inodes) {
    w->U64(inode->ino);
    w->U8(inode->is_dir() ? 1 : 0);
    w->U64(inode->size);
    w->U64(inode->parent);
    w->Str(inode->name);
  }
  std::vector<std::pair<InodeNo, const FileMap*>> maps;
  maps.reserve(fmap_.size());
  for (const auto& [ino, map] : fmap_) {
    maps.emplace_back(ino, &map);
  }
  std::sort(maps.begin(), maps.end());
  w->U64(maps.size());
  for (const auto& [ino, map] : maps) {
    w->U64(ino);
    w->U64(map->blocks.size());
    for (BlockNo block : map->blocks) {
      w->U64(block);
    }
  }
}

bool FileSystem::RestoreNamespaceAndMaps(ByteReader* r, uint64_t* files_out) {
  InodeNo next_ino = r->U64();
  uint64_t inode_count = r->U64();
  uint64_t files = 0;
  for (uint64_t k = 0; k < inode_count && r->ok(); ++k) {
    InodeNo ino = r->U64();
    FileType type = r->U8() != 0 ? FileType::kDirectory : FileType::kRegular;
    uint64_t size = r->U64();
    InodeNo parent = r->U64();
    std::string name = r->Str();
    if (!r->ok()) {
      return false;
    }
    ns_.RestoreInode(ino, type, size, parent, std::move(name));
    if (type == FileType::kRegular) {
      ++files;
    }
  }
  if (!r->ok()) {
    return false;
  }
  ns_.RestoreLinks(next_ino);
  uint64_t map_count = r->U64();
  for (uint64_t k = 0; k < map_count && r->ok(); ++k) {
    InodeNo ino = r->U64();
    uint64_t nblocks = r->U64();
    for (PageIdx idx = 0; idx < nblocks; ++idx) {
      BlockNo block = r->U64();
      if (!r->ok() || (block != kInvalidBlock && block >= capacity_blocks())) {
        return false;
      }
      SetMapping(ino, idx, block);
    }
  }
  if (!r->ok()) {
    return false;
  }
  if (files_out != nullptr) {
    *files_out = files;
  }
  return true;
}

void FileSystem::CheckFileMappings(FsckReport* report) const {
  ns_.ForEachInode([this, report](const Inode& inode) {
    if (inode.is_dir()) {
      return;
    }
    for (PageIdx p = 0; p < inode.PageCount(); ++p) {
      Result<BlockNo> block = Bmap(inode.ino, p);
      if (!block.ok()) {
        ++report->structural_errors;  // hole inside a live file
        continue;
      }
      if (!BlockInUse(*block) || rmap_[*block].ino != inode.ino ||
          rmap_[*block].idx != p) {
        ++report->structural_errors;
        report->NoteBad(*block);
      }
    }
  });
}

void FileSystem::SetMapping(InodeNo ino, PageIdx idx, BlockNo block) {
  FileMap& map = fmap_[ino];
  if (map.blocks.size() <= idx) {
    map.blocks.resize(idx + 1, kInvalidBlock);
  }
  map.blocks[idx] = block;
  if (block != kInvalidBlock) {
    rmap_[block] = BlockOwner{ino, idx};
  }
}

void FileSystem::ClearOwner(BlockNo block) {
  if (block != kInvalidBlock) {
    rmap_[block] = BlockOwner{};
    if (injector_ != nullptr) {
      // A freed block's fault can no longer serve corrupt data to a reader.
      injector_->OnBlockFreed(block);
    }
  }
}

Result<FileSystem::BlockOwner> FileSystem::Rmap(BlockNo block) const {
  if (block >= rmap_.size() || rmap_[block].ino == kInvalidInode) {
    return Status(StatusCode::kNotFound, "unowned block");
  }
  return rmap_[block];
}

Result<uint64_t> FileSystem::PageContent(InodeNo ino, PageIdx idx) const {
  if (const CachedPage* page = cache_.Peek(ino, idx)) {
    return page->data;
  }
  Result<BlockNo> block = Bmap(ino, idx);
  if (!block.ok()) {
    return block.status();
  }
  return disk_data_[*block];
}

Status FileSystem::DeleteFile(InodeNo ino) {
  const Inode* inode = ns_.Get(ino);
  if (inode == nullptr) {
    return Status(StatusCode::kNotFound);
  }
  if (inode->is_dir()) {
    return Status(StatusCode::kInvalidArgument, "is a directory");
  }
  cache_.RemoveInode(ino);
  FreeFileBlocks(ino);
  fmap_.erase(ino);
  return ns_.Unlink(ino);
}

void FileSystem::FinishViaLoop(FsIoCallback cb, FsIoResult result) {
  if (!cb) {
    return;
  }
  loop_->ScheduleAfter(0, [cb = std::move(cb), result = std::move(result)] { cb(result); });
}

// Shared context for a multi-request read.
struct FileSystem::ReadJob {
  FsIoResult result;
  uint64_t outstanding = 0;
  bool submitted_all = false;
  FsIoCallback cb;
};

void FileSystem::Read(InodeNo ino, ByteOff off, uint64_t len, IoClass io_class,
                      FsIoCallback cb) {
  const Inode* inode = ns_.Get(ino);
  FsIoResult result;
  if (inode == nullptr || inode->is_dir()) {
    result.status = Status(StatusCode::kNotFound, "bad inode for read");
    FinishViaLoop(std::move(cb), std::move(result));
    return;
  }
  if (off >= inode->size || len == 0) {
    FinishViaLoop(std::move(cb), std::move(result));
    return;
  }
  len = std::min(len, inode->size - off);
  PageIdx first = off / kPageSize;
  PageIdx last = (off + len + kPageSize - 1) / kPageSize;  // exclusive

  // Classify pages: cache hits are free, misses become block reads.
  struct Miss {
    BlockNo block;
    InodeNo ino;
    PageIdx idx;
  };
  std::vector<Miss> misses;
  auto job = std::make_shared<ReadJob>();
  job->cb = std::move(cb);
  job->result.pages_requested = last - first;
  for (PageIdx p = first; p < last; ++p) {
    if (cache_.Lookup(ino, p).has_value()) {
      ++job->result.pages_from_cache;
      continue;
    }
    Result<BlockNo> block = Bmap(ino, p);
    if (!block.ok()) {
      job->result.status = Status(StatusCode::kCorruption, "hole in file");
      FinishViaLoop(std::move(job->cb), std::move(job->result));
      return;
    }
    misses.push_back(Miss{*block, ino, p});
  }
  if (misses.empty()) {
    FinishViaLoop(std::move(job->cb), std::move(job->result));
    return;
  }

  // Coalesce block-contiguous misses into device requests.
  std::sort(misses.begin(), misses.end(),
            [](const Miss& a, const Miss& b) { return a.block < b.block; });
  size_t i = 0;
  while (i < misses.size()) {
    size_t j = i + 1;
    while (j < misses.size() && misses[j].block == misses[j - 1].block + 1) {
      ++j;
    }
    std::vector<Miss> run(misses.begin() + static_cast<long>(i),
                          misses.begin() + static_cast<long>(j));
    IoRequest req;
    req.block = run.front().block;
    req.count = static_cast<uint32_t>(run.size());
    req.dir = IoDir::kRead;
    req.io_class = io_class;
    ++job->result.device_ops;
    ++job->outstanding;
    req.done = [this, job, run = std::move(run)](const IoResult& io) {
      bool whole_request_failed = !io.status.ok() && io.failed_blocks.empty();
      for (const Miss& m : run) {
        // A write may have raced this read: if the page gained a cache entry
        // while the read was in flight, that entry is newer than the disk
        // content the read carries. The fill must not clobber it (a dirty
        // entry holds data the disk has never seen), and a read failure must
        // not evict it.
        const CachedPage* raced = cache_.Peek(m.ino, m.idx);
        if (whole_request_failed || io.BlockFailed(m.block)) {
          // No data was transferred for this page. Invalidate a clean stale
          // copy so the cache cannot mask the failure.
          ++job->result.pages_failed;
          if (raced == nullptr || !raced->dirty) {
            cache_.Remove(m.ino, m.idx);
          }
          if (job->result.status.ok()) {
            job->result.status = io.status;
          }
          continue;
        }
        uint64_t token = disk_data_[m.block];
        Status verify = OnDiskBlockRead(m.block, token);
        if (!verify.ok()) {
          // Corrupt content must not enter the page cache: a later read
          // would be served the bad token with an OK status.
          ++job->result.pages_failed;
          if (raced == nullptr || !raced->dirty) {
            cache_.Remove(m.ino, m.idx);
          }
          if (job->result.status.ok()) {
            job->result.status = verify;
          }
          continue;
        }
        ++job->result.pages_from_disk;
        if (raced == nullptr) {
          cache_.Insert(m.ino, m.idx, token, /*dirty=*/false);
        }
      }
      if (--job->outstanding == 0 && job->submitted_all) {
        // Already async (device completion), deliver directly.
        if (job->cb) {
          job->cb(job->result);
        }
      }
    };
    device_->Submit(std::move(req));
    i = j;
  }
  job->submitted_all = true;
  if (job->outstanding == 0 && job->cb) {
    // All completions ran synchronously (not possible with a real device
    // model, but guard anyway).
    FinishViaLoop(std::move(job->cb), std::move(job->result));
  }
}

void FileSystem::Write(InodeNo ino, ByteOff off, uint64_t len, IoClass io_class,
                       FsIoCallback cb) {
  CopyIn(ino, off, len, {}, io_class, std::move(cb));
}

void FileSystem::CopyIn(InodeNo ino, ByteOff off, uint64_t len,
                        std::vector<uint64_t> tokens, IoClass /*io_class*/,
                        FsIoCallback cb) {
  Inode* inode = ns_.GetMutable(ino);
  FsIoResult result;
  if (inode == nullptr || inode->is_dir()) {
    result.status = Status(StatusCode::kNotFound, "bad inode for write");
    FinishViaLoop(std::move(cb), std::move(result));
    return;
  }
  if (len == 0) {
    FinishViaLoop(std::move(cb), std::move(result));
    return;
  }
  PageIdx first = off / kPageSize;
  PageIdx last = (off + len + kPageSize - 1) / kPageSize;  // exclusive
  assert(tokens.empty() || tokens.size() >= last - first);
  result.pages_requested = last - first;
  for (PageIdx p = first; p < last; ++p) {
    BlockNo old_block = kInvalidBlock;
    if (auto mapped = Bmap(ino, p); mapped.ok()) {
      old_block = *mapped;
    }
    Result<BlockNo> fresh = AllocateForWrite(ino, p, old_block);
    if (!fresh.ok()) {
      result.status = fresh.status();
      break;
    }
    uint64_t token = tokens.empty() ? NextToken() : tokens[p - first];
    if (!cache_.MarkDirty(ino, p, token)) {
      cache_.Insert(ino, p, token, /*dirty=*/true);
    }
  }
  if (result.status.ok()) {
    inode->size = std::max(inode->size, off + len);
  }
  writeback_.MaybeKick();
  FinishViaLoop(std::move(cb), std::move(result));
}

void FileSystem::Append(InodeNo ino, uint64_t len, IoClass io_class, FsIoCallback cb) {
  const Inode* inode = ns_.Get(ino);
  if (inode == nullptr) {
    FsIoResult result;
    result.status = Status(StatusCode::kNotFound);
    FinishViaLoop(std::move(cb), std::move(result));
    return;
  }
  Write(ino, inode->size, len, io_class, std::move(cb));
}

void FileSystem::ReadBlocks(std::vector<BlockNo> blocks, IoClass io_class,
                            std::function<void(const RawReadResult&)> cb) {
  auto result = std::make_shared<RawReadResult>();
  if (blocks.empty()) {
    loop_->ScheduleAfter(0, [cb = std::move(cb), result] { cb(*result); });
    return;
  }
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  std::vector<std::pair<BlockNo, uint32_t>> runs;
  size_t i = 0;
  while (i < blocks.size()) {
    size_t j = i + 1;
    while (j < blocks.size() && blocks[j] == blocks[j - 1] + 1) {
      ++j;
    }
    runs.emplace_back(blocks[i], static_cast<uint32_t>(j - i));
    i = j;
  }
  auto outstanding = std::make_shared<uint64_t>(runs.size());
  auto cb_shared =
      std::make_shared<std::function<void(const RawReadResult&)>>(std::move(cb));
  for (const auto& [start, count] : runs) {
    IoRequest req;
    req.block = start;
    req.count = count;
    req.dir = IoDir::kRead;
    req.io_class = io_class;
    ++result->device_ops;
    req.done = [this, start = start, count = count, result, outstanding,
                cb_shared](const IoResult& io) {
      bool whole_request_failed = !io.status.ok() && io.failed_blocks.empty();
      for (BlockNo b = start; b < start + count; ++b) {
        if (whole_request_failed || io.BlockFailed(b)) {
          ++result->read_errors;
          result->bad_blocks.push_back(b);
          result->status = io.status;
          continue;
        }
        ++result->blocks_read;
        Status verify = OnDiskBlockRead(b, disk_data_[b]);
        if (!verify.ok()) {
          ++result->checksum_errors;
          result->bad_blocks.push_back(b);
          result->status = verify;
        }
      }
      if (--*outstanding == 0) {
        // Requests may complete out of submission order.
        std::sort(result->bad_blocks.begin(), result->bad_blocks.end());
        (*cb_shared)(*result);
      }
    };
    device_->Submit(std::move(req));
  }
}

void FileSystem::WritebackPages(std::vector<PageCache::DirtyPageRef> pages,
                                std::function<void()> done) {
  // Re-resolve current mappings and tokens: a page may have been re-written
  // (new COW/log location) since it was collected.
  struct Flush {
    BlockNo block;
    InodeNo ino;
    PageIdx idx;
    uint64_t token;
  };
  std::vector<Flush> flushes;
  flushes.reserve(pages.size());
  for (const auto& ref : pages) {
    const CachedPage* page = cache_.Peek(ref.ino, ref.idx);
    if (page == nullptr || !page->dirty) {
      continue;  // already gone or cleaned
    }
    Result<BlockNo> block = Bmap(ref.ino, ref.idx);
    if (!block.ok()) {
      continue;  // file deleted under us
    }
    flushes.push_back(Flush{*block, ref.ino, ref.idx, page->data});
  }
  if (flushes.empty()) {
    loop_->ScheduleAfter(0, std::move(done));
    return;
  }
  std::sort(flushes.begin(), flushes.end(),
            [](const Flush& a, const Flush& b) { return a.block < b.block; });

  auto outstanding = std::make_shared<uint64_t>(0);
  auto all_submitted = std::make_shared<bool>(false);
  auto done_shared = std::make_shared<std::function<void()>>(std::move(done));
  size_t i = 0;
  while (i < flushes.size()) {
    size_t j = i + 1;
    while (j < flushes.size() && flushes[j].block == flushes[j - 1].block + 1) {
      ++j;
    }
    std::vector<Flush> run(flushes.begin() + static_cast<long>(i),
                           flushes.begin() + static_cast<long>(j));
    IoRequest req;
    req.block = run.front().block;
    req.count = static_cast<uint32_t>(run.size());
    req.dir = IoDir::kWrite;
    // Flusher I/O is driven by foreground writes; it competes best-effort.
    req.io_class = IoClass::kBestEffort;
    ++*outstanding;
    req.done = [this, run = std::move(run), outstanding, all_submitted,
                done_shared](const IoResult&) {
      for (const Flush& f : run) {
        OnBlockFlushed(f.block, f.token);
        const CachedPage* page = cache_.Peek(f.ino, f.idx);
        // Only clean the page if it was not re-dirtied with new content
        // while the write was in flight.
        if (page != nullptr && page->dirty && page->data == f.token) {
          cache_.MarkClean(f.ino, f.idx);
        }
      }
      if (--*outstanding == 0 && *all_submitted && *done_shared) {
        (*done_shared)();
      }
    };
    device_->Submit(std::move(req));
    i = j;
  }
  *all_submitted = true;
  if (*outstanding == 0 && *done_shared) {
    loop_->ScheduleAfter(0, std::move(*done_shared));
  }
}

Result<InodeNo> FileSystem::PopulateFileAged(std::string_view path, uint64_t bytes,
                                             double /*break_prob*/, Rng& /*rng*/) {
  return PopulateFile(path, bytes);
}

Result<InodeNo> FileSystem::PopulateFile(std::string_view path, uint64_t bytes) {
  Result<InodeNo> created = ns_.Create(path, FileType::kRegular);
  if (!created.ok()) {
    return created;
  }
  InodeNo ino = *created;
  uint64_t npages = PagesForBytes(bytes);
  for (PageIdx p = 0; p < npages; ++p) {
    Result<BlockNo> block = AllocateForWrite(ino, p, kInvalidBlock);
    if (!block.ok()) {
      return block.status();
    }
    uint64_t token = NextToken();
    OnBlockFlushed(*block, token);  // content goes straight to "disk"
  }
  ns_.GetMutable(ino)->size = bytes;
  return ino;
}

}  // namespace duet
