// Inode model shared by both simulated file systems.
#ifndef SRC_FS_INODE_H_
#define SRC_FS_INODE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/util/types.h"

namespace duet {

enum class FileType : uint8_t { kRegular, kDirectory };

struct Inode {
  InodeNo ino = kInvalidInode;
  FileType type = FileType::kRegular;
  uint64_t size = 0;             // bytes (regular files)
  InodeNo parent = kInvalidInode;
  std::string name;              // name within parent (root has "")
  // Directory entries, name -> child inode. Ordered so traversals are
  // deterministic (rsync walks depth-first in name order).
  std::map<std::string, InodeNo> children;

  bool is_dir() const { return type == FileType::kDirectory; }
  uint64_t PageCount() const { return PagesForBytes(size); }
};

}  // namespace duet

#endif  // SRC_FS_INODE_H_
