// Serialization helpers for crash-consistent file-system metadata.
//
// Checkpoints and superblocks are stored in the DurableImage's metadata
// region as two alternating slots ("<prefix>.0" / "<prefix>.1"), each
// wrapped with a magic, a generation number, and a CRC32C. A commit always
// overwrites the slot holding the OLDER generation, so a crash in the middle
// of a commit (modeled as the commit simply not happening — the image
// freezes before PutMeta) leaves the previous generation intact: checkpoint
// writes are atomic. Mount loads whichever slot carries the newest valid
// generation.
#ifndef SRC_FS_META_CODEC_H_
#define SRC_FS_META_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/block/durable_image.h"
#include "src/sim/time.h"

namespace duet {

// Little-endian append-only byte serializer.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

// Bounds-checked reader; any over-read latches ok() = false and further
// reads return zero values, so callers can validate once at the end.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  uint8_t U8() { return Fail(1) ? 0 : buf_[pos_++]; }
  uint32_t U32() {
    if (Fail(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (Fail(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (Fail(n)) {
      return std::string();
    }
    std::string s(buf_.begin() + static_cast<long>(pos_),
                  buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return s;
  }
  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  bool Fail(size_t need) {
    if (!ok_ || buf_.size() - pos_ < need) {
      ok_ = false;
      return true;
    }
    return false;
  }

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

struct LoadedCheckpoint {
  uint64_t generation = 0;
  std::vector<uint8_t> payload;
};

// Writes `payload` under generation `generation` into the older of the two
// slots. No-op while the image is frozen (crash mid-commit: the previous
// generation survives untouched).
void CommitCheckpointSlot(DurableImage* image, const std::string& prefix,
                          uint64_t generation, const std::vector<uint8_t>& payload);

// Returns the newest slot whose magic and CRC verify, or nullopt if neither
// slot holds a valid checkpoint.
std::optional<LoadedCheckpoint> LoadNewestCheckpoint(const DurableImage& image,
                                                     const std::string& prefix);

// Modeled latency of reading/writing `bytes` of checkpoint metadata. The
// metadata region is a small reserved area written FUA (write-through), so
// it is charged as a fixed seek plus a streaming component rather than
// queued behind data I/O.
SimDuration MetaIoLatency(size_t bytes);

// ---- Small persisted cursors (maintenance-task resume points) ----
// A cursor is a few words a task rewrites often (scan position, last file
// streamed). One slot suffices: PutMeta replaces are atomic, and a stale
// cursor only costs re-done work, never correctness. The CRC guards against
// a mismatched key, not tearing.
void PutCursorMeta(DurableImage* image, const std::string& key,
                   const std::vector<uint64_t>& words);
std::optional<std::vector<uint64_t>> GetCursorMeta(const DurableImage& image,
                                                   const std::string& key);

}  // namespace duet

#endif  // SRC_FS_META_CODEC_H_
