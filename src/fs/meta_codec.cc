#include "src/fs/meta_codec.h"

#include "src/util/crc32c.h"

namespace duet {

namespace {

constexpr uint32_t kSlotMagic = 0x444b5054;  // "DKPT"

std::string SlotKey(const std::string& prefix, int slot) {
  return prefix + (slot == 0 ? ".0" : ".1");
}

// Parses one slot; returns nullopt if absent, bad magic, or bad CRC.
std::optional<LoadedCheckpoint> ParseSlot(const DurableImage& image,
                                          const std::string& key) {
  const std::vector<uint8_t>* blob = image.GetMeta(key);
  if (blob == nullptr) {
    return std::nullopt;
  }
  ByteReader r(*blob);
  if (r.U32() != kSlotMagic) {
    return std::nullopt;
  }
  LoadedCheckpoint out;
  out.generation = r.U64();
  uint64_t payload_size = r.U64();
  if (!r.ok() || blob->size() < 4 + 8 + 8 + payload_size + 4) {
    return std::nullopt;
  }
  out.payload.assign(blob->begin() + (4 + 8 + 8),
                     blob->begin() + static_cast<long>(4 + 8 + 8 + payload_size));
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>((*blob)[4 + 8 + 8 + payload_size + i])
                  << (8 * i);
  }
  if (stored_crc != Crc32c(blob->data(), 4 + 8 + 8 + payload_size)) {
    return std::nullopt;
  }
  return out;
}

}  // namespace

void CommitCheckpointSlot(DurableImage* image, const std::string& prefix,
                          uint64_t generation, const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.U32(kSlotMagic);
  w.U64(generation);
  w.U64(payload.size());
  std::vector<uint8_t> blob = w.Take();
  blob.insert(blob.end(), payload.begin(), payload.end());
  uint32_t crc = Crc32c(blob.data(), blob.size());
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  // Overwrite the slot with the older generation (or an empty/invalid one).
  std::optional<LoadedCheckpoint> s0 = ParseSlot(*image, SlotKey(prefix, 0));
  std::optional<LoadedCheckpoint> s1 = ParseSlot(*image, SlotKey(prefix, 1));
  int target = 0;
  if (s0.has_value() && (!s1.has_value() || s0->generation > s1->generation)) {
    target = 1;
  }
  image->PutMeta(SlotKey(prefix, target), std::move(blob));
}

std::optional<LoadedCheckpoint> LoadNewestCheckpoint(const DurableImage& image,
                                                     const std::string& prefix) {
  std::optional<LoadedCheckpoint> s0 = ParseSlot(image, SlotKey(prefix, 0));
  std::optional<LoadedCheckpoint> s1 = ParseSlot(image, SlotKey(prefix, 1));
  if (s0.has_value() && s1.has_value()) {
    return s0->generation >= s1->generation ? s0 : s1;
  }
  return s0.has_value() ? s0 : s1;
}

namespace {
constexpr uint32_t kCursorMagic = 0x43525352;  // "CRSR"
}  // namespace

void PutCursorMeta(DurableImage* image, const std::string& key,
                   const std::vector<uint64_t>& words) {
  ByteWriter w;
  w.U32(kCursorMagic);
  w.U32(static_cast<uint32_t>(words.size()));
  for (uint64_t word : words) {
    w.U64(word);
  }
  std::vector<uint8_t> blob = w.Take();
  uint32_t crc = Crc32c(blob.data(), blob.size());
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  image->PutMeta(key, std::move(blob));
}

std::optional<std::vector<uint64_t>> GetCursorMeta(const DurableImage& image,
                                                   const std::string& key) {
  const std::vector<uint8_t>* blob = image.GetMeta(key);
  if (blob == nullptr || blob->size() < 4 + 4 + 4) {
    return std::nullopt;
  }
  ByteReader r(*blob);
  if (r.U32() != kCursorMagic) {
    return std::nullopt;
  }
  uint32_t count = r.U32();
  std::vector<uint64_t> words;
  for (uint32_t i = 0; i < count; ++i) {
    words.push_back(r.U64());
  }
  uint32_t stored_crc = r.U32();
  if (!r.ok() || !r.AtEnd() ||
      stored_crc != Crc32c(blob->data(), blob->size() - 4)) {
    return std::nullopt;
  }
  return words;
}

SimDuration MetaIoLatency(size_t bytes) {
  // One seek to the reserved metadata area, then ~400 MB/s streaming.
  return Micros(400) + Micros((bytes * 8) / 3200 + 1);
}

}  // namespace duet
