#include "src/fs/namespace.h"

#include <algorithm>
#include <cassert>

namespace duet {

std::vector<std::string_view> SplitPath(std::string_view path) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start < path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) {
      slash = path.size();
    }
    if (slash > start) {
      parts.push_back(path.substr(start, slash - start));
    }
    start = slash + 1;
  }
  return parts;
}

Namespace::Namespace() {
  Inode root;
  root.ino = kRootIno;
  root.type = FileType::kDirectory;
  root.parent = kInvalidInode;
  inodes_.emplace(kRootIno, std::move(root));
}

Result<InodeNo> Namespace::Resolve(std::string_view path) const {
  InodeNo cur = kRootIno;
  for (std::string_view part : SplitPath(path)) {
    const Inode* inode = Get(cur);
    if (inode == nullptr || !inode->is_dir()) {
      return Status(StatusCode::kNotFound, std::string(path));
    }
    auto it = inode->children.find(std::string(part));
    if (it == inode->children.end()) {
      return Status(StatusCode::kNotFound, std::string(path));
    }
    cur = it->second;
  }
  return cur;
}

Result<std::string> Namespace::PathOf(InodeNo ino) const {
  const Inode* inode = Get(ino);
  if (inode == nullptr) {
    return Status(StatusCode::kNotFound);
  }
  if (ino == kRootIno) {
    return std::string("/");
  }
  std::vector<const Inode*> chain;
  while (inode != nullptr && inode->ino != kRootIno) {
    chain.push_back(inode);
    inode = Get(inode->parent);
  }
  if (inode == nullptr) {
    return Status(StatusCode::kCorruption, "detached inode");
  }
  std::string path;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    path += '/';
    path += (*it)->name;
  }
  return path;
}

const Inode* Namespace::Get(InodeNo ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

Inode* Namespace::GetMutable(InodeNo ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

bool Namespace::IsUnder(InodeNo ino, InodeNo ancestor) const {
  while (ino != kInvalidInode) {
    if (ino == ancestor) {
      return true;
    }
    const Inode* inode = Get(ino);
    if (inode == nullptr) {
      return false;
    }
    ino = inode->parent;
  }
  return false;
}

Result<InodeNo> Namespace::Create(std::string_view path, FileType type) {
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty path");
  }
  std::string_view name = parts.back();
  InodeNo parent = kRootIno;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    const Inode* dir = Get(parent);
    if (dir == nullptr || !dir->is_dir()) {
      return Status(StatusCode::kNotFound, std::string(path));
    }
    auto it = dir->children.find(std::string(parts[i]));
    if (it == dir->children.end()) {
      return Status(StatusCode::kNotFound, std::string(path));
    }
    parent = it->second;
  }
  return CreateIn(parent, name, type);
}

Result<InodeNo> Namespace::CreateIn(InodeNo parent, std::string_view name,
                                    FileType type) {
  Inode* dir = GetMutable(parent);
  if (dir == nullptr || !dir->is_dir()) {
    return Status(StatusCode::kNotFound, "parent");
  }
  if (name.empty() || name.find('/') != std::string_view::npos) {
    return Status(StatusCode::kInvalidArgument, std::string(name));
  }
  std::string key(name);
  if (dir->children.count(key) > 0) {
    return Status(StatusCode::kExists, key);
  }
  InodeNo ino = next_ino_++;
  Inode inode;
  inode.ino = ino;
  inode.type = type;
  inode.parent = parent;
  inode.name = key;
  dir->children.emplace(std::move(key), ino);
  inodes_.emplace(ino, std::move(inode));
  for (VfsObserver* o : observers_) {
    o->OnCreate(ino);
  }
  return ino;
}

Status Namespace::Unlink(InodeNo ino) {
  if (ino == kRootIno) {
    return Status(StatusCode::kInvalidArgument, "cannot unlink root");
  }
  Inode* inode = GetMutable(ino);
  if (inode == nullptr) {
    return Status(StatusCode::kNotFound);
  }
  if (inode->is_dir() && !inode->children.empty()) {
    return Status(StatusCode::kBusy, "directory not empty");
  }
  Inode* parent = GetMutable(inode->parent);
  assert(parent != nullptr);
  parent->children.erase(inode->name);
  inodes_.erase(ino);
  for (VfsObserver* o : observers_) {
    o->OnUnlink(ino);
  }
  return Status::Ok();
}

Status Namespace::Rename(InodeNo ino, InodeNo new_parent, std::string_view new_name) {
  if (ino == kRootIno) {
    return Status(StatusCode::kInvalidArgument, "cannot move root");
  }
  Inode* inode = GetMutable(ino);
  Inode* dest = GetMutable(new_parent);
  if (inode == nullptr || dest == nullptr || !dest->is_dir()) {
    return Status(StatusCode::kNotFound);
  }
  if (new_name.empty() || new_name.find('/') != std::string_view::npos) {
    return Status(StatusCode::kInvalidArgument, std::string(new_name));
  }
  if (inode->is_dir() && IsUnder(new_parent, ino)) {
    return Status(StatusCode::kInvalidArgument, "would create a cycle");
  }
  std::string key(new_name);
  if (dest->children.count(key) > 0) {
    return Status(StatusCode::kExists, key);
  }
  InodeNo old_parent = inode->parent;
  Inode* src = GetMutable(old_parent);
  assert(src != nullptr);
  src->children.erase(inode->name);
  inode->parent = new_parent;
  inode->name = key;
  dest->children.emplace(std::move(key), ino);
  for (VfsObserver* o : observers_) {
    o->OnRename(ino, old_parent, new_parent, inode->is_dir());
  }
  return Status::Ok();
}

void Namespace::RestoreInode(InodeNo ino, FileType type, uint64_t size,
                             InodeNo parent, std::string name) {
  Inode inode;
  inode.ino = ino;
  inode.type = type;
  inode.size = size;
  inode.parent = parent;
  inode.name = std::move(name);
  inodes_[ino] = std::move(inode);
}

void Namespace::RestoreLinks(InodeNo next_ino) {
  for (auto& [ino, inode] : inodes_) {
    inode.children.clear();
  }
  for (auto& [ino, inode] : inodes_) {
    if (ino == kRootIno) {
      continue;
    }
    Inode* parent = GetMutable(inode.parent);
    assert(parent != nullptr && parent->is_dir());
    parent->children.emplace(inode.name, ino);
  }
  next_ino_ = next_ino;
}

bool Namespace::WalkImpl(const Inode& dir,
                         const std::function<bool(const Inode&)>& fn) const {
  for (const auto& [name, child_ino] : dir.children) {
    const Inode* child = Get(child_ino);
    assert(child != nullptr);
    if (!fn(*child)) {
      return false;
    }
    if (child->is_dir() && !WalkImpl(*child, fn)) {
      return false;
    }
  }
  return true;
}

void Namespace::WalkDepthFirst(InodeNo dir,
                               const std::function<bool(const Inode&)>& fn) const {
  const Inode* inode = Get(dir);
  if (inode == nullptr || !inode->is_dir()) {
    return;
  }
  WalkImpl(*inode, fn);
}

void Namespace::ForEachInode(const std::function<void(const Inode&)>& fn) const {
  for (const auto& [ino, inode] : inodes_) {
    fn(inode);
  }
}

void Namespace::AddObserver(VfsObserver* observer) {
  assert(observer != nullptr);
  observers_.push_back(observer);
}

void Namespace::RemoveObserver(VfsObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

}  // namespace duet
