// Virtual time for the discrete-event simulation. All latency in the stack
// (device service times, writeback timers, workload pacing) is expressed in
// SimTime; no wall-clock time is ever consulted, so runs are deterministic.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace duet {

// Nanoseconds since simulation start.
using SimTime = uint64_t;
// A duration, also in nanoseconds.
using SimDuration = uint64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;

constexpr SimDuration Micros(uint64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(uint64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(uint64_t n) { return n * kSecond; }
constexpr SimDuration Minutes(uint64_t n) { return n * kMinute; }

// Converts a duration given as floating-point seconds; negative clamps to 0.
constexpr SimDuration FromSeconds(double s) {
  return s <= 0 ? 0 : static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace duet

#endif  // SRC_SIM_TIME_H_
