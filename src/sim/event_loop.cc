#include "src/sim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace duet {

EventLoop::EventLoop()
    : obs_(obs::CurrentObs()),
      ctr_scheduled_(obs_->metrics.GetCounter("sim.events.scheduled")),
      ctr_fired_(obs_->metrics.GetCounter("sim.events.fired")),
      ctr_cancelled_(obs_->metrics.GetCounter("sim.events.cancelled")) {
  // Typical stacks keep a few hundred events in flight; reserving up front
  // keeps the hot Schedule/RunOne path free of reallocation.
  heap_.reserve(4096);
  pending_ids_.reserve(4096);
}

EventId EventLoop::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(fn != nullptr);
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_ids_.insert(id);
  ctr_scheduled_->Add();
  obs_->trace.Emit(now_, obs::TraceLayer::kSim, obs::TraceKind::kEventScheduled,
                   id, when);
  return id;
}

EventId EventLoop::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventLoop::Cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) {
    return false;
  }
  ctr_cancelled_->Add();
  obs_->trace.Emit(now_, obs::TraceLayer::kSim, obs::TraceKind::kEventCancelled,
                   id);
  return true;
}

bool EventLoop::SkimCancelled() {
  while (!heap_.empty() && pending_ids_.count(heap_.front().id) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  return !heap_.empty();
}

bool EventLoop::RunOne() {
  if (halted_ || !SkimCancelled()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  pending_ids_.erase(top.id);
  assert(top.when >= now_);
  now_ = top.when;
  ++executed_;
  ctr_fired_->Add();
  obs_->trace.Emit(now_, obs::TraceLayer::kSim, obs::TraceKind::kEventFired,
                   top.id);
  top.fn();
  return true;
}

SimTime EventLoop::Run() {
  while (RunOne()) {
  }
  return now_;
}

void EventLoop::RunUntil(SimTime deadline) {
  while (!halted_ && SkimCancelled() && heap_.front().when <= deadline) {
    RunOne();
  }
  if (halted_) {
    return;  // crash froze the clock at the halt instant
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace duet
