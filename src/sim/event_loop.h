// Discrete-event simulation loop: a virtual clock plus a time-ordered queue
// of callbacks. Components (block device, writeback, workload generator,
// maintenance task runners) schedule events against one shared loop.
//
// Events scheduled for the same instant run in scheduling order (FIFO), which
// keeps the simulation deterministic.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/obs/obs.h"
#include "src/sim/time.h"

namespace duet {

using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventLoop {
 public:
  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (clamped to now()).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after the current time.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the final time.
  SimTime Run();

  // Runs all events with time <= deadline, then advances the clock to
  // `deadline` (even if the queue still has later events).
  void RunUntil(SimTime deadline);

  // Runs a single event if one is pending. Returns false if the queue is
  // empty.
  bool RunOne();

  // Crash support: halts the loop. Run/RunUntil return immediately (without
  // advancing the clock further) and RunOne refuses to fire events until
  // ClearHalt(). Used by the crash injector to freeze the stack mid-run so
  // the harness can tear it down at the exact crash instant.
  void Halt() { halted_ = true; }
  void ClearHalt() { halted_ = false; }
  bool halted() const { return halted_; }

  uint64_t pending_count() const { return pending_ids_.size(); }
  uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  // Pops cancelled entries off the heap top. Returns false if empty after.
  bool SkimCancelled();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  bool halted_ = false;
  // Captured at construction so a stack built under an ObsScope keeps
  // reporting into that scope's context for its whole lifetime.
  obs::ObsContext* obs_;
  obs::Counter* ctr_scheduled_;
  obs::Counter* ctr_fired_;
  obs::Counter* ctr_cancelled_;
  // Binary heap managed with push_heap/pop_heap over a pre-reserved vector:
  // same ordering as std::priority_queue, but storage is reused across the
  // run instead of re-growing, and the comparator stays inlined.
  std::vector<Entry> heap_;
  // Ids that are scheduled and not yet run or cancelled. A heap entry whose
  // id is absent here is a cancelled tombstone and is skipped.
  std::unordered_set<EventId> pending_ids_;
};

}  // namespace duet

#endif  // SRC_SIM_EVENT_LOOP_H_
