// Simulated page cache.
//
// Pages are keyed by (inode, page index) as in the Linux address_space
// model. Content is a 64-bit token rather than a 4 KiB payload: every
// correctness property the stack needs (checksum verification, backup/rsync
// equality, corruption detection) is expressed over tokens, which keeps a
// 50 GB simulated device resident in a few hundred megabytes.
//
// The cache emits the four Duet hook events (Added/Removed/Dirtied/Flushed)
// synchronously to registered listeners — the exact hook surface the paper's
// kernel patch adds to the Linux page cache (§4.1).
//
// Eviction is LRU over *clean* pages. Writes may transiently push the cache
// over capacity; the writeback component cleans pages so later evictions can
// reclaim them (mirroring dirty-ratio behaviour without blocking writers).
#ifndef SRC_CACHE_PAGE_CACHE_H_
#define SRC_CACHE_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/cache/page_event.h"
#include "src/obs/obs.h"
#include "src/sim/time.h"
#include "src/util/flat_page_map.h"
#include "src/util/types.h"

namespace duet {

struct CachedPage {
  uint64_t data = 0;
  bool dirty = false;
  SimTime dirtied_at = 0;
};

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t events_emitted = 0;
  // Pages removed while still dirty (truncate/delete): these never emit
  // kFlushed, so the dirtied == flushed + removed_dirty + resident-dirty
  // conservation law needs them accounted separately.
  uint64_t removed_dirty = 0;
};

class PageCache {
 public:
  // `clock` provides the current virtual time for dirty timestamps.
  PageCache(uint64_t capacity_pages, std::function<SimTime()> clock);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // ---- Lookup / mutation (called by the file-system layer) ----

  // Returns the page data if cached, touching LRU. Counts a hit or miss.
  std::optional<uint64_t> Lookup(InodeNo ino, PageIdx idx);

  // Peeks without touching LRU or hit/miss counters (used by opportunistic
  // readers that must not perturb recency, and by tests). The returned
  // pointer is valid only until the next Insert (the entry arena may grow);
  // consume it before mutating the cache.
  const CachedPage* Peek(InodeNo ino, PageIdx idx) const;

  // Inserts (or overwrites) a page. `dirty` pages are timestamped. Emits
  // kAdded for new pages and kDirtied on a clean->dirty transition. Evicts
  // clean LRU pages if over capacity.
  void Insert(InodeNo ino, PageIdx idx, uint64_t data, bool dirty);

  // Overwrites the data of a cached page and marks it dirty, emitting
  // kDirtied on the clean->dirty transition. Returns false if not cached.
  bool MarkDirty(InodeNo ino, PageIdx idx, uint64_t data);

  // Clears the dirty bit after writeback, emitting kFlushed. Returns false
  // if the page is not cached or not dirty.
  bool MarkClean(InodeNo ino, PageIdx idx);

  // Removes a page (emits kRemoved). Returns false if absent.
  bool Remove(InodeNo ino, PageIdx idx);

  // Removes every page of `ino` (truncate/delete). Emits kRemoved for each.
  void RemoveInode(InodeNo ino);

  // ---- Introspection (used by Duet and the writeback component) ----

  bool Contains(InodeNo ino, PageIdx idx) const;
  uint64_t PageCount() const { return page_count_; }
  uint64_t DirtyCount() const { return dirty_count_; }
  uint64_t capacity() const { return capacity_; }

  // Number of cached pages belonging to `ino` (defrag/rsync prioritization).
  uint64_t CachedPagesOfInode(InodeNo ino) const;

  // Iterates over every cached page (Duet's registration-time scan), in
  // canonical order: inodes ascending, pages of an inode in cache-insertion
  // order. The order is part of the determinism contract — it must not
  // depend on hash-table layout.
  void ForEachPage(const std::function<void(InodeNo, PageIdx, const CachedPage&)>& fn) const;

  // Iterates over the pages of one inode, in cache-insertion order.
  void ForEachPageOfInode(
      InodeNo ino, const std::function<void(PageIdx, const CachedPage&)>& fn) const;

  // Collects up to `max` dirty pages that were dirtied at or before
  // `not_after`, in LRU order (oldest first). Used by writeback.
  struct DirtyPageRef {
    InodeNo ino;
    PageIdx idx;
    uint64_t data;
  };
  std::vector<DirtyPageRef> CollectDirty(SimTime not_after, uint64_t max) const;

  // ---- Hook registration ----

  void AddListener(PageEventListener* listener);
  void RemoveListener(PageEventListener* listener);

  // ---- Informed replacement (the PACMan-style extension the paper's §2
  // anticipates) ----
  // The advisor returns true for pages that are good eviction victims (e.g.
  // already processed by every maintenance session). When set, eviction
  // scans up to `window` LRU-tail entries and evicts advised pages first,
  // falling back to plain LRU order.
  using EvictionAdvisor = std::function<bool(InodeNo, PageIdx)>;
  void SetEvictionAdvisor(EvictionAdvisor advisor, size_t window = 64);
  void ClearEvictionAdvisor();

  const PageCacheStats& stats() const { return stats_; }

  // sizeof-accurate heap footprint of the cache index (entry arena, freelist,
  // flat page table, per-inode chain directory).
  uint64_t IndexMemoryBytes() const;

 private:
  static constexpr uint32_t kNoSlot = FlatPageMap::kNoSlot;

  // One cached page. Entries live in a packed arena; the flat page table
  // maps (inode, index) -> arena slot. LRU and per-inode membership are
  // intrusive slot-linked lists, so every cache operation is O(1) with no
  // allocation on the steady path.
  struct Entry {
    InodeNo ino = kInvalidInode;
    PageIdx idx = 0;
    CachedPage page;
    uint32_t lru_newer = kNoSlot;  // toward MRU
    uint32_t lru_older = kNoSlot;  // toward LRU tail
    uint32_t ino_next = kNoSlot;   // per-inode chain, insertion order
    uint32_t ino_prev = kNoSlot;
    bool live = false;
  };
  // Per-inode chain bookkeeping: head/tail of the intrusive chain plus a
  // count so CachedPagesOfInode is O(1).
  struct InodeChain {
    uint32_t head = kNoSlot;
    uint32_t tail = kNoSlot;
    uint64_t count = 0;
  };

  // `exists`/`dirty` are the page's post-event state, forwarded to listeners
  // in the PageEvent so they never re-probe the index on the hook path.
  void Emit(PageEventType type, InodeNo ino, PageIdx idx, bool exists,
            bool dirty);
  void EvictIfNeeded();

  uint32_t FindSlot(InodeNo ino, PageIdx idx) const {
    return page_table_.Find(ino, idx);
  }
  // Commits the arena allocation named by `slot` (peeked before the fused
  // table probe) and links it (LRU front, inode chain tail). The caller has
  // already inserted the key into the page table and fills in the payload.
  void CommitEntry(uint32_t slot, InodeNo ino, PageIdx idx);
  // Unlinks and recycles an entry. The caller has already erased the key
  // from the page table. Does not emit.
  void DestroyEntry(uint32_t slot);
  void MoveToLruFront(uint32_t slot);

  uint64_t capacity_;
  std::function<SimTime()> clock_;
  FlatPageMap page_table_;
  std::vector<Entry> arena_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<InodeNo, InodeChain> inode_chains_;
  uint32_t lru_head_ = kNoSlot;  // most recently used
  uint32_t lru_tail_ = kNoSlot;  // coldest
  uint64_t page_count_ = 0;
  uint64_t dirty_count_ = 0;
  std::vector<PageEventListener*> listeners_;
  EvictionAdvisor advisor_;
  size_t advisor_window_ = 64;
  PageCacheStats stats_;
  obs::ObsContext* obs_;
  // One counter per hook event type, indexed by PageEventType.
  obs::Counter* ctr_events_[4];
  obs::Counter* ctr_hits_;
  obs::Counter* ctr_misses_;
  obs::Counter* ctr_evictions_;
  obs::Counter* ctr_removed_dirty_;
};

}  // namespace duet

#endif  // SRC_CACHE_PAGE_CACHE_H_
