#include "src/cache/writeback.h"

#include <cassert>
#include <utility>

namespace duet {

Writeback::Writeback(EventLoop* loop, PageCache* cache, WritebackTarget* target,
                     WritebackParams params)
    : loop_(loop), cache_(cache), target_(target), params_(params) {
  assert(loop_ != nullptr && cache_ != nullptr && target_ != nullptr);
  cache_->AddListener(this);
}

Writeback::~Writeback() { cache_->RemoveListener(this); }

void Writeback::OnPageEvent(const PageEvent& event) {
  if (event.type == PageEventType::kDirtied) {
    NoteDirty();
  }
}

void Writeback::Start() {
  started_ = true;
  NoteDirty();
}

void Writeback::Stop() {
  started_ = false;
  if (tick_event_ != kInvalidEvent) {
    loop_->Cancel(tick_event_);
    tick_event_ = kInvalidEvent;
  }
}

void Writeback::NoteDirty() {
  if (!started_ || tick_event_ != kInvalidEvent || cache_->DirtyCount() == 0) {
    return;
  }
  tick_event_ = loop_->ScheduleAfter(params_.period, [this] { PeriodicTick(); });
}

void Writeback::PeriodicTick() {
  tick_event_ = kInvalidEvent;
  RunPass(/*force=*/false, nullptr);
  // Re-arm only while dirty pages remain (or a pass is still running, which
  // may leave re-dirtied pages behind).
  if (started_ && (cache_->DirtyCount() > 0 || pass_in_flight_)) {
    tick_event_ = loop_->ScheduleAfter(params_.period, [this] { PeriodicTick(); });
  }
}

void Writeback::MaybeKick() {
  NoteDirty();
  double ratio = static_cast<double>(cache_->DirtyCount()) /
                 static_cast<double>(cache_->capacity());
  if (ratio < params_.dirty_ratio) {
    return;
  }
  if (pass_in_flight_) {
    kick_pending_ = true;  // re-run as soon as the current pass completes
    return;
  }
  RunPass(/*force=*/true, nullptr);
}

void Writeback::Sync(std::function<void()> done) {
  if (cache_->DirtyCount() == 0 && !pass_in_flight_) {
    if (done) {
      done();
    }
    return;
  }
  RunPass(/*force=*/true, [this, done = std::move(done)]() mutable {
    Sync(std::move(done));  // keep flushing until the cache is clean
  });
}

void Writeback::RunPass(bool force, std::function<void()> after) {
  if (pass_in_flight_) {
    // A pass is already running; queue continuation behind it.
    if (after) {
      loop_->ScheduleAfter(params_.period / 4, [this, a = std::move(after)]() mutable {
        RunPass(true, std::move(a));
      });
    } else {
      kick_pending_ = true;
    }
    return;
  }
  SimTime now = loop_->now();
  if (!force && now < params_.dirty_expire) {
    // Nothing can be old enough yet.
    if (after) {
      after();
    }
    return;
  }
  SimTime not_after = force ? now : now - params_.dirty_expire;
  auto pages = cache_->CollectDirty(not_after, params_.batch_pages);
  if (pages.empty()) {
    if (after) {
      after();
    }
    return;
  }
  pass_in_flight_ = true;
  target_->WritebackPages(std::move(pages), [this, after = std::move(after)]() mutable {
    pass_in_flight_ = false;
    NoteDirty();  // re-arm the timer if dirty pages remain
    if (kick_pending_) {
      kick_pending_ = false;
      RunPass(/*force=*/true, std::move(after));
      return;
    }
    if (after) {
      after();
    }
  });
}

}  // namespace duet
