#include "src/cache/page_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace duet {

const char* PageEventTypeName(PageEventType type) {
  switch (type) {
    case PageEventType::kAdded:
      return "ADDED";
    case PageEventType::kRemoved:
      return "REMOVED";
    case PageEventType::kDirtied:
      return "DIRTIED";
    case PageEventType::kFlushed:
      return "FLUSHED";
  }
  return "UNKNOWN";
}

namespace {

// Trace kinds indexed by PageEventType (kAdded..kFlushed).
constexpr obs::TraceKind kPageTraceKind[4] = {
    obs::TraceKind::kPageAdded, obs::TraceKind::kPageRemoved,
    obs::TraceKind::kPageDirtied, obs::TraceKind::kPageFlushed};

}  // namespace

PageCache::PageCache(uint64_t capacity_pages, std::function<SimTime()> clock)
    : capacity_(capacity_pages), clock_(std::move(clock)), obs_(obs::CurrentObs()) {
  assert(capacity_ > 0);
  assert(clock_ != nullptr);
  ctr_events_[0] = obs_->metrics.GetCounter("cache.added");
  ctr_events_[1] = obs_->metrics.GetCounter("cache.removed");
  ctr_events_[2] = obs_->metrics.GetCounter("cache.dirtied");
  ctr_events_[3] = obs_->metrics.GetCounter("cache.flushed");
  ctr_hits_ = obs_->metrics.GetCounter("cache.hits");
  ctr_misses_ = obs_->metrics.GetCounter("cache.misses");
  ctr_evictions_ = obs_->metrics.GetCounter("cache.evictions");
  ctr_removed_dirty_ = obs_->metrics.GetCounter("cache.removed_dirty");
}

void PageCache::Emit(PageEventType type, InodeNo ino, PageIdx idx) {
  ++stats_.events_emitted;
  ctr_events_[static_cast<int>(type)]->Add();
  obs_->trace.Emit(clock_(), obs::TraceLayer::kCache,
                   kPageTraceKind[static_cast<int>(type)], ino, idx);
  PageEvent event{type, ino, idx};
  for (PageEventListener* l : listeners_) {
    l->OnPageEvent(event);
  }
}

std::optional<uint64_t> PageCache::Lookup(InodeNo ino, PageIdx idx) {
  auto ino_it = pages_.find(ino);
  if (ino_it != pages_.end()) {
    auto it = ino_it->second.find(idx);
    if (it != ino_it->second.end()) {
      ++stats_.hits;
      ctr_hits_->Add();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.page.data;
    }
  }
  ++stats_.misses;
  ctr_misses_->Add();
  return std::nullopt;
}

const CachedPage* PageCache::Peek(InodeNo ino, PageIdx idx) const {
  auto ino_it = pages_.find(ino);
  if (ino_it == pages_.end()) {
    return nullptr;
  }
  auto it = ino_it->second.find(idx);
  if (it == ino_it->second.end()) {
    return nullptr;
  }
  return &it->second.page;
}

void PageCache::Insert(InodeNo ino, PageIdx idx, uint64_t data, bool dirty) {
  auto& ino_map = pages_[ino];
  auto it = ino_map.find(idx);
  if (it != ino_map.end()) {
    // Overwrite in place; only a clean->dirty transition emits an event.
    Entry& entry = it->second;
    entry.page.data = data;
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
    if (dirty && !entry.page.dirty) {
      entry.page.dirty = true;
      entry.page.dirtied_at = clock_();
      ++dirty_count_;
      Emit(PageEventType::kDirtied, ino, idx);
    }
    return;
  }
  lru_.push_front(PageKey{ino, idx});
  Entry entry;
  entry.page.data = data;
  entry.page.dirty = dirty;
  entry.page.dirtied_at = dirty ? clock_() : 0;
  entry.lru_it = lru_.begin();
  ino_map.emplace(idx, std::move(entry));
  ++page_count_;
  if (dirty) {
    ++dirty_count_;
  }
  ++stats_.insertions;
  Emit(PageEventType::kAdded, ino, idx);
  if (dirty) {
    Emit(PageEventType::kDirtied, ino, idx);
  }
  EvictIfNeeded();
}

bool PageCache::MarkDirty(InodeNo ino, PageIdx idx, uint64_t data) {
  auto ino_it = pages_.find(ino);
  if (ino_it == pages_.end()) {
    return false;
  }
  auto it = ino_it->second.find(idx);
  if (it == ino_it->second.end()) {
    return false;
  }
  Entry& entry = it->second;
  entry.page.data = data;
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  if (!entry.page.dirty) {
    entry.page.dirty = true;
    entry.page.dirtied_at = clock_();
    ++dirty_count_;
    Emit(PageEventType::kDirtied, ino, idx);
  }
  return true;
}

bool PageCache::MarkClean(InodeNo ino, PageIdx idx) {
  auto ino_it = pages_.find(ino);
  if (ino_it == pages_.end()) {
    return false;
  }
  auto it = ino_it->second.find(idx);
  if (it == ino_it->second.end() || !it->second.page.dirty) {
    return false;
  }
  it->second.page.dirty = false;
  --dirty_count_;
  Emit(PageEventType::kFlushed, ino, idx);
  EvictIfNeeded();  // newly clean pages may satisfy a pending overshoot
  return true;
}

bool PageCache::Remove(InodeNo ino, PageIdx idx) {
  auto ino_it = pages_.find(ino);
  if (ino_it == pages_.end()) {
    return false;
  }
  auto it = ino_it->second.find(idx);
  if (it == ino_it->second.end()) {
    return false;
  }
  if (it->second.page.dirty) {
    --dirty_count_;
    ++stats_.removed_dirty;
    ctr_removed_dirty_->Add();
  }
  lru_.erase(it->second.lru_it);
  ino_it->second.erase(it);
  if (ino_it->second.empty()) {
    pages_.erase(ino_it);
  }
  --page_count_;
  Emit(PageEventType::kRemoved, ino, idx);
  return true;
}

void PageCache::RemoveInode(InodeNo ino) {
  auto ino_it = pages_.find(ino);
  if (ino_it == pages_.end()) {
    return;
  }
  // Collect indices first: Emit may re-enter observers that inspect us.
  std::vector<PageIdx> indices;
  indices.reserve(ino_it->second.size());
  for (const auto& [idx, entry] : ino_it->second) {
    indices.push_back(idx);
  }
  for (PageIdx idx : indices) {
    Remove(ino, idx);
  }
}

bool PageCache::Contains(InodeNo ino, PageIdx idx) const {
  return Peek(ino, idx) != nullptr;
}

uint64_t PageCache::CachedPagesOfInode(InodeNo ino) const {
  auto it = pages_.find(ino);
  return it == pages_.end() ? 0 : it->second.size();
}

void PageCache::ForEachPage(
    const std::function<void(InodeNo, PageIdx, const CachedPage&)>& fn) const {
  for (const auto& [ino, ino_map] : pages_) {
    for (const auto& [idx, entry] : ino_map) {
      fn(ino, idx, entry.page);
    }
  }
}

void PageCache::ForEachPageOfInode(
    InodeNo ino, const std::function<void(PageIdx, const CachedPage&)>& fn) const {
  auto it = pages_.find(ino);
  if (it == pages_.end()) {
    return;
  }
  for (const auto& [idx, entry] : it->second) {
    fn(idx, entry.page);
  }
}

std::vector<PageCache::DirtyPageRef> PageCache::CollectDirty(SimTime not_after,
                                                             uint64_t max) const {
  std::vector<DirtyPageRef> out;
  // Walk from the LRU tail (coldest first), as the kernel flusher does.
  for (auto it = lru_.rbegin(); it != lru_.rend() && out.size() < max; ++it) {
    const CachedPage* page = Peek(it->ino, it->idx);
    assert(page != nullptr);
    if (page->dirty && page->dirtied_at <= not_after) {
      out.push_back(DirtyPageRef{it->ino, it->idx, page->data});
    }
  }
  return out;
}

void PageCache::SetEvictionAdvisor(EvictionAdvisor advisor, size_t window) {
  advisor_ = std::move(advisor);
  advisor_window_ = window;
}

void PageCache::ClearEvictionAdvisor() { advisor_ = nullptr; }

void PageCache::AddListener(PageEventListener* listener) {
  assert(listener != nullptr);
  listeners_.push_back(listener);
}

void PageCache::RemoveListener(PageEventListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void PageCache::EvictIfNeeded() {
  if (page_count_ <= capacity_) {
    return;
  }
  // Evict clean pages from the LRU tail. Dirty pages are skipped; writeback
  // cleans them and calls back here. Victims are collected first so the walk
  // never iterates a list it is mutating.
  std::vector<PageKey> victims;
  uint64_t need = page_count_ - capacity_;
  if (advisor_ != nullptr) {
    // Informed replacement: within a window of the coldest pages, evict the
    // ones the advisor marks (already-processed data) before plain LRU.
    std::vector<PageKey> fallback;
    size_t scanned = 0;
    for (auto it = lru_.rbegin();
         it != lru_.rend() && victims.size() < need &&
         scanned < std::max<size_t>(advisor_window_, need);
         ++it, ++scanned) {
      if (*it == lru_.front()) {
        break;
      }
      const CachedPage* page = Peek(it->ino, it->idx);
      assert(page != nullptr);
      if (page->dirty) {
        continue;
      }
      if (advisor_(it->ino, it->idx)) {
        victims.push_back(*it);
      } else {
        fallback.push_back(*it);
      }
    }
    for (const PageKey& key : fallback) {
      if (victims.size() >= need) {
        break;
      }
      victims.push_back(key);
    }
  } else {
    for (auto it = lru_.rbegin(); it != lru_.rend() && victims.size() < need; ++it) {
      if (*it == lru_.front()) {
        break;  // never evict the page that was just inserted/touched
      }
      const CachedPage* page = Peek(it->ino, it->idx);
      assert(page != nullptr);
      if (!page->dirty) {
        victims.push_back(*it);
      }
    }
  }
  for (const PageKey& key : victims) {
    ++stats_.evictions;
    ctr_evictions_->Add();
    obs_->trace.Emit(clock_(), obs::TraceLayer::kCache,
                     obs::TraceKind::kPageEvicted, key.ino, key.idx);
    Remove(key.ino, key.idx);
  }
}

}  // namespace duet
