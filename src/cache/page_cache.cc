#include "src/cache/page_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace duet {

const char* PageEventTypeName(PageEventType type) {
  switch (type) {
    case PageEventType::kAdded:
      return "ADDED";
    case PageEventType::kRemoved:
      return "REMOVED";
    case PageEventType::kDirtied:
      return "DIRTIED";
    case PageEventType::kFlushed:
      return "FLUSHED";
  }
  return "UNKNOWN";
}

namespace {

// Trace kinds indexed by PageEventType (kAdded..kFlushed).
constexpr obs::TraceKind kPageTraceKind[4] = {
    obs::TraceKind::kPageAdded, obs::TraceKind::kPageRemoved,
    obs::TraceKind::kPageDirtied, obs::TraceKind::kPageFlushed};

}  // namespace

PageCache::PageCache(uint64_t capacity_pages, std::function<SimTime()> clock)
    : capacity_(capacity_pages), clock_(std::move(clock)), obs_(obs::CurrentObs()) {
  assert(capacity_ > 0);
  assert(clock_ != nullptr);
  // Pre-size the entry arena for the configured capacity: the steady state
  // allocates nothing. The page table deliberately starts small and doubles
  // on demand: sizing it for full capacity up front would spread every probe
  // across megabytes of mostly-empty cells (evicting L1/L2 on workloads
  // whose live page set is far below capacity), while demand growth keeps
  // the table proportional to the working set at O(n) amortized rehash.
  arena_.reserve(capacity_ + capacity_ / 4);
  free_slots_.reserve(64);
  ctr_events_[0] = obs_->metrics.GetCounter("cache.added");
  ctr_events_[1] = obs_->metrics.GetCounter("cache.removed");
  ctr_events_[2] = obs_->metrics.GetCounter("cache.dirtied");
  ctr_events_[3] = obs_->metrics.GetCounter("cache.flushed");
  ctr_hits_ = obs_->metrics.GetCounter("cache.hits");
  ctr_misses_ = obs_->metrics.GetCounter("cache.misses");
  ctr_evictions_ = obs_->metrics.GetCounter("cache.evictions");
  ctr_removed_dirty_ = obs_->metrics.GetCounter("cache.removed_dirty");
}

void PageCache::Emit(PageEventType type, InodeNo ino, PageIdx idx,
                     bool exists, bool dirty) {
  ++stats_.events_emitted;
  ctr_events_[static_cast<int>(type)]->Add();
  obs_->trace.Emit(clock_(), obs::TraceLayer::kCache,
                   kPageTraceKind[static_cast<int>(type)], ino, idx);
  PageEvent event{type, ino, idx, exists, dirty};
  for (PageEventListener* l : listeners_) {
    l->OnPageEvent(event);
  }
}

void PageCache::CommitEntry(uint32_t slot, InodeNo ino, PageIdx idx) {
  // `slot` was peeked (freelist back / arena end) before the page-table
  // probe; commit the allocation it named.
  if (!free_slots_.empty()) {
    assert(free_slots_.back() == slot);
    free_slots_.pop_back();
  } else {
    assert(slot == arena_.size());
    arena_.emplace_back();
  }
  Entry& e = arena_[slot];
  e.ino = ino;
  e.idx = idx;
  e.live = true;
  // LRU front (MRU end).
  e.lru_newer = kNoSlot;
  e.lru_older = lru_head_;
  if (lru_head_ != kNoSlot) {
    arena_[lru_head_].lru_newer = slot;
  }
  lru_head_ = slot;
  if (lru_tail_ == kNoSlot) {
    lru_tail_ = slot;
  }
  // Inode chain tail (insertion order, the canonical iteration order).
  InodeChain& chain = inode_chains_[ino];
  e.ino_next = kNoSlot;
  e.ino_prev = chain.tail;
  if (chain.tail != kNoSlot) {
    arena_[chain.tail].ino_next = slot;
  } else {
    chain.head = slot;
  }
  chain.tail = slot;
  ++chain.count;
  ++page_count_;
}

// The caller has already removed the key from the page table (fused with
// its lookup probe); this only unlinks and recycles the arena entry.
void PageCache::DestroyEntry(uint32_t slot) {
  Entry& e = arena_[slot];
  assert(e.live);
  // LRU unlink.
  if (e.lru_newer != kNoSlot) {
    arena_[e.lru_newer].lru_older = e.lru_older;
  } else {
    lru_head_ = e.lru_older;
  }
  if (e.lru_older != kNoSlot) {
    arena_[e.lru_older].lru_newer = e.lru_newer;
  } else {
    lru_tail_ = e.lru_newer;
  }
  // Inode chain unlink.
  auto it = inode_chains_.find(e.ino);
  assert(it != inode_chains_.end());
  InodeChain& chain = it->second;
  if (e.ino_prev != kNoSlot) {
    arena_[e.ino_prev].ino_next = e.ino_next;
  } else {
    chain.head = e.ino_next;
  }
  if (e.ino_next != kNoSlot) {
    arena_[e.ino_next].ino_prev = e.ino_prev;
  } else {
    chain.tail = e.ino_prev;
  }
  // Deliberately keep the chain record when it empties: insert/remove churn
  // on the same inode would otherwise rebuild the directory entry on every
  // cycle. Empty records are 24 bytes, bounded by the number of distinct
  // inodes ever cached, and reaped by RemoveInode (truncate/delete).
  --chain.count;
  e = Entry{};
  free_slots_.push_back(slot);
  --page_count_;
}

void PageCache::MoveToLruFront(uint32_t slot) {
  if (slot == lru_head_) {
    return;
  }
  Entry& e = arena_[slot];
  arena_[e.lru_newer].lru_older = e.lru_older;  // slot != head => newer exists
  if (e.lru_older != kNoSlot) {
    arena_[e.lru_older].lru_newer = e.lru_newer;
  } else {
    lru_tail_ = e.lru_newer;
  }
  e.lru_newer = kNoSlot;
  e.lru_older = lru_head_;
  arena_[lru_head_].lru_newer = slot;
  lru_head_ = slot;
}

std::optional<uint64_t> PageCache::Lookup(InodeNo ino, PageIdx idx) {
  uint32_t slot = FindSlot(ino, idx);
  if (slot != kNoSlot) {
    ++stats_.hits;
    ctr_hits_->Add();
    MoveToLruFront(slot);
    return arena_[slot].page.data;
  }
  ++stats_.misses;
  ctr_misses_->Add();
  return std::nullopt;
}

const CachedPage* PageCache::Peek(InodeNo ino, PageIdx idx) const {
  uint32_t slot = FindSlot(ino, idx);
  return slot == kNoSlot ? nullptr : &arena_[slot].page;
}

void PageCache::Insert(InodeNo ino, PageIdx idx, uint64_t data, bool dirty) {
  // Peek the slot a new entry would take, then resolve lookup + insertion
  // with a single table probe; the allocation commits only on insertion.
  uint32_t new_slot = free_slots_.empty()
                          ? static_cast<uint32_t>(arena_.size())
                          : free_slots_.back();
  uint32_t slot = page_table_.FindOrInsert(ino, idx, new_slot);
  if (slot != new_slot) {
    // Overwrite in place; only a clean->dirty transition emits an event.
    Entry& entry = arena_[slot];
    entry.page.data = data;
    MoveToLruFront(slot);
    if (dirty && !entry.page.dirty) {
      entry.page.dirty = true;
      entry.page.dirtied_at = clock_();
      ++dirty_count_;
      Emit(PageEventType::kDirtied, ino, idx, /*exists=*/true, /*dirty=*/true);
    }
    return;
  }
  CommitEntry(slot, ino, idx);
  Entry& entry = arena_[slot];
  entry.page.data = data;
  entry.page.dirty = dirty;
  entry.page.dirtied_at = dirty ? clock_() : 0;
  if (dirty) {
    ++dirty_count_;
  }
  ++stats_.insertions;
  Emit(PageEventType::kAdded, ino, idx, /*exists=*/true, dirty);
  if (dirty) {
    Emit(PageEventType::kDirtied, ino, idx, /*exists=*/true, /*dirty=*/true);
  }
  EvictIfNeeded();
}

bool PageCache::MarkDirty(InodeNo ino, PageIdx idx, uint64_t data) {
  uint32_t slot = FindSlot(ino, idx);
  if (slot == kNoSlot) {
    return false;
  }
  Entry& entry = arena_[slot];
  entry.page.data = data;
  MoveToLruFront(slot);
  if (!entry.page.dirty) {
    entry.page.dirty = true;
    entry.page.dirtied_at = clock_();
    ++dirty_count_;
    Emit(PageEventType::kDirtied, ino, idx, /*exists=*/true, /*dirty=*/true);
  }
  return true;
}

bool PageCache::MarkClean(InodeNo ino, PageIdx idx) {
  uint32_t slot = FindSlot(ino, idx);
  if (slot == kNoSlot || !arena_[slot].page.dirty) {
    return false;
  }
  arena_[slot].page.dirty = false;
  --dirty_count_;
  Emit(PageEventType::kFlushed, ino, idx, /*exists=*/true, /*dirty=*/false);
  EvictIfNeeded();  // newly clean pages may satisfy a pending overshoot
  return true;
}

bool PageCache::Remove(InodeNo ino, PageIdx idx) {
  // Erase returns the slot, fusing lookup and table removal into one probe.
  uint32_t slot = page_table_.Erase(ino, idx);
  if (slot == kNoSlot) {
    return false;
  }
  if (arena_[slot].page.dirty) {
    --dirty_count_;
    ++stats_.removed_dirty;
    ctr_removed_dirty_->Add();
  }
  DestroyEntry(slot);
  Emit(PageEventType::kRemoved, ino, idx, /*exists=*/false, /*dirty=*/false);
  return true;
}

void PageCache::RemoveInode(InodeNo ino) {
  auto it = inode_chains_.find(ino);
  if (it == inode_chains_.end()) {
    return;
  }
  // Collect indices first: Emit may re-enter observers that inspect us.
  std::vector<PageIdx> indices;
  indices.reserve(it->second.count);
  for (uint32_t slot = it->second.head; slot != kNoSlot;
       slot = arena_[slot].ino_next) {
    indices.push_back(arena_[slot].idx);
  }
  for (PageIdx idx : indices) {
    Remove(ino, idx);
  }
  // Reap the (now empty) chain record: the inode is going away for good.
  it = inode_chains_.find(ino);
  if (it != inode_chains_.end() && it->second.count == 0) {
    inode_chains_.erase(it);
  }
}

bool PageCache::Contains(InodeNo ino, PageIdx idx) const {
  return FindSlot(ino, idx) != kNoSlot;
}

uint64_t PageCache::CachedPagesOfInode(InodeNo ino) const {
  auto it = inode_chains_.find(ino);
  return it == inode_chains_.end() ? 0 : it->second.count;
}

void PageCache::ForEachPage(
    const std::function<void(InodeNo, PageIdx, const CachedPage&)>& fn) const {
  // Canonical order: inodes ascending, then insertion order within each
  // inode. Hash-table layout must never leak into observable iteration.
  std::vector<InodeNo> inodes;
  inodes.reserve(inode_chains_.size());
  for (const auto& [ino, chain] : inode_chains_) {
    inodes.push_back(ino);
  }
  std::sort(inodes.begin(), inodes.end());
  for (InodeNo ino : inodes) {
    ForEachPageOfInode(ino, [&](PageIdx idx, const CachedPage& page) {
      fn(ino, idx, page);
    });
  }
}

void PageCache::ForEachPageOfInode(
    InodeNo ino, const std::function<void(PageIdx, const CachedPage&)>& fn) const {
  auto it = inode_chains_.find(ino);
  if (it == inode_chains_.end()) {
    return;
  }
  for (uint32_t slot = it->second.head; slot != kNoSlot;
       slot = arena_[slot].ino_next) {
    fn(arena_[slot].idx, arena_[slot].page);
  }
}

std::vector<PageCache::DirtyPageRef> PageCache::CollectDirty(SimTime not_after,
                                                             uint64_t max) const {
  std::vector<DirtyPageRef> out;
  // Walk from the LRU tail (coldest first), as the kernel flusher does.
  for (uint32_t slot = lru_tail_; slot != kNoSlot && out.size() < max;
       slot = arena_[slot].lru_newer) {
    const Entry& e = arena_[slot];
    if (e.page.dirty && e.page.dirtied_at <= not_after) {
      out.push_back(DirtyPageRef{e.ino, e.idx, e.page.data});
    }
  }
  return out;
}

void PageCache::SetEvictionAdvisor(EvictionAdvisor advisor, size_t window) {
  advisor_ = std::move(advisor);
  advisor_window_ = window;
}

void PageCache::ClearEvictionAdvisor() { advisor_ = nullptr; }

void PageCache::AddListener(PageEventListener* listener) {
  assert(listener != nullptr);
  listeners_.push_back(listener);
}

void PageCache::RemoveListener(PageEventListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

uint64_t PageCache::IndexMemoryBytes() const {
  return arena_.capacity() * sizeof(Entry) +
         free_slots_.capacity() * sizeof(uint32_t) + page_table_.MemoryBytes() +
         inode_chains_.size() * (sizeof(InodeNo) + sizeof(InodeChain));
}

void PageCache::EvictIfNeeded() {
  if (page_count_ <= capacity_) {
    return;
  }
  // Evict clean pages from the LRU tail. Dirty pages are skipped; writeback
  // cleans them and calls back here. Victims are collected first so the walk
  // never iterates a list it is mutating.
  struct Victim {
    InodeNo ino;
    PageIdx idx;
  };
  std::vector<Victim> victims;
  uint64_t need = page_count_ - capacity_;
  if (advisor_ != nullptr) {
    // Informed replacement: within a window of the coldest pages, evict the
    // ones the advisor marks (already-processed data) before plain LRU.
    std::vector<Victim> fallback;
    size_t scanned = 0;
    for (uint32_t slot = lru_tail_;
         slot != kNoSlot && victims.size() < need &&
         scanned < std::max<size_t>(advisor_window_, need);
         slot = arena_[slot].lru_newer, ++scanned) {
      if (slot == lru_head_) {
        break;
      }
      const Entry& e = arena_[slot];
      if (e.page.dirty) {
        continue;
      }
      if (advisor_(e.ino, e.idx)) {
        victims.push_back(Victim{e.ino, e.idx});
      } else {
        fallback.push_back(Victim{e.ino, e.idx});
      }
    }
    for (const Victim& v : fallback) {
      if (victims.size() >= need) {
        break;
      }
      victims.push_back(v);
    }
  } else {
    for (uint32_t slot = lru_tail_; slot != kNoSlot && victims.size() < need;
         slot = arena_[slot].lru_newer) {
      if (slot == lru_head_) {
        break;  // never evict the page that was just inserted/touched
      }
      const Entry& e = arena_[slot];
      if (!e.page.dirty) {
        victims.push_back(Victim{e.ino, e.idx});
      }
    }
  }
  for (const Victim& v : victims) {
    ++stats_.evictions;
    ctr_evictions_->Add();
    obs_->trace.Emit(clock_(), obs::TraceLayer::kCache,
                     obs::TraceKind::kPageEvicted, v.ino, v.idx);
    Remove(v.ino, v.idx);
  }
}

}  // namespace duet
