// Periodic dirty-page writeback, modeled on the kernel flusher threads:
// a periodic pass writes back pages that have been dirty longer than the
// expiry age, and a "kick" (called by the FS when the dirty ratio climbs)
// flushes regardless of age. The actual I/O is delegated to the file system,
// which maps pages to blocks, coalesces, and calls PageCache::MarkClean on
// completion (emitting the Flushed events Duet consumes).
#ifndef SRC_CACHE_WRITEBACK_H_
#define SRC_CACHE_WRITEBACK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/sim/event_loop.h"
#include "src/sim/time.h"

namespace duet {

// Implemented by the file-system layer.
class WritebackTarget {
 public:
  virtual ~WritebackTarget() = default;

  // Writes the given dirty pages to storage. Must invoke `done` once all
  // submitted I/O has completed (and pages have been marked clean).
  virtual void WritebackPages(std::vector<PageCache::DirtyPageRef> pages,
                              std::function<void()> done) = 0;
};

struct WritebackParams {
  SimDuration period = Seconds(5);        // flusher wake interval
  SimDuration dirty_expire = Seconds(10); // age before a periodic flush
  uint64_t batch_pages = 2048;            // max pages per pass
  double dirty_ratio = 0.20;              // Kick threshold (fraction of cache)
};

class Writeback : public PageEventListener {
 public:
  Writeback(EventLoop* loop, PageCache* cache, WritebackTarget* target,
            WritebackParams params = WritebackParams());
  ~Writeback() override;

  // Enables the periodic flusher. The tick timer is armed lazily: it runs
  // only while the cache holds dirty pages and disarms itself when the cache
  // is clean, so an idle simulation's event queue can drain.
  void Start();
  void Stop();

  // Called by the FS whenever pages become dirty; arms the tick timer.
  // Also invoked automatically via the cache's Dirtied hook.
  void NoteDirty();

  // PageEventListener: arms the tick timer on Dirtied events.
  void OnPageEvent(const PageEvent& event) override;

  // Called by the FS after writes; flushes immediately (ignoring age) when
  // the dirty ratio exceeds the threshold.
  void MaybeKick();

  // Forces a full flush of all dirty pages (age ignored), invoking `done`
  // when the cache has no dirty pages left. Used by sync-style operations
  // and test teardown.
  void Sync(std::function<void()> done);

  bool running_pass() const { return pass_in_flight_; }
  const WritebackParams& params() const { return params_; }

 private:
  void PeriodicTick();
  void RunPass(bool force, std::function<void()> after);

  EventLoop* loop_;
  PageCache* cache_;
  WritebackTarget* target_;
  WritebackParams params_;
  bool started_ = false;
  bool pass_in_flight_ = false;
  bool kick_pending_ = false;
  EventId tick_event_ = kInvalidEvent;
};

}  // namespace duet

#endif  // SRC_CACHE_WRITEBACK_H_
