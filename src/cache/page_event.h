// Page-cache event types — the four events Duet hooks (paper Table 2).
#ifndef SRC_CACHE_PAGE_EVENT_H_
#define SRC_CACHE_PAGE_EVENT_H_

#include <cstdint>

#include "src/util/types.h"

namespace duet {

enum class PageEventType : uint8_t {
  kAdded = 0,    // page added to the cache
  kRemoved = 1,  // page removed from the cache
  kDirtied = 2,  // dirty bit set
  kFlushed = 3,  // dirty bit cleared (written back)
};

const char* PageEventTypeName(PageEventType type);

struct PageEvent {
  PageEventType type;
  InodeNo ino;
  PageIdx idx;
  // Page state as of *after* the event, captured by the cache at emit time.
  // Listeners that track current state (Duet's merged descriptors) read
  // these instead of looking the page up again — the hook path stays free
  // of redundant index probes.
  bool exists = false;
  bool dirty = false;
};

// Implemented by the Duet framework; the page cache invokes listeners on
// every page event, synchronously and in registration order.
class PageEventListener {
 public:
  virtual ~PageEventListener() = default;
  virtual void OnPageEvent(const PageEvent& event) = 0;
};

}  // namespace duet

#endif  // SRC_CACHE_PAGE_EVENT_H_
