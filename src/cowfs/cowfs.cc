#include "src/cowfs/cowfs.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/fs/meta_codec.h"
#include "src/obs/obs.h"
#include "src/util/crc32c.h"

namespace duet {

CowFs::CowFs(EventLoop* loop, BlockDevice* device, uint64_t cache_pages,
             WritebackParams wb_params)
    : FileSystem(loop, device, cache_pages, wb_params),
      allocated_(device->capacity_blocks()),
      refcount_(device->capacity_blocks(), 0),
      // A fresh device holds token 0 everywhere; checksums must agree, or
      // every allocated-but-never-flushed block would read as corrupt.
      disk_csum_(device->capacity_blocks(), TokenChecksum(0)),
      mirror_data_(device->capacity_blocks(), 0),
      committed_(device->capacity_blocks()) {}

uint32_t CowFs::TokenChecksum(uint64_t token) {
  return Crc32c(&token, sizeof(token));
}

bool CowFs::BlockChecksumOk(BlockNo block) const {
  return disk_csum_[block] == TokenChecksum(disk_data_[block]);
}

void CowFs::CorruptBlock(BlockNo block, bool also_mirror) {
  InjectCorruption(block, also_mirror);
}

void CowFs::InjectCorruption(BlockNo block, bool both_copies) {
  FileSystem::InjectCorruption(block, both_copies);
  if (both_copies) {
    mirror_data_[block] ^= 0xdeadbeefcafef00dULL;
  }
}

std::optional<BlockNo> CowFs::FindFreeUnpinned(BlockNo from) const {
  std::optional<BlockNo> found = allocated_.FindNextClear(from);
  while (found.has_value() && committed_.Test(*found)) {
    found = allocated_.FindNextClear(*found + 1);
  }
  return found;
}

Result<BlockNo> CowFs::AllocBlock(BlockNo hint) {
  if (hint >= capacity_blocks()) {
    hint = 0;
  }
  std::optional<BlockNo> found = FindFreeUnpinned(hint);
  if (!found.has_value()) {
    found = FindFreeUnpinned(0);
  }
  if (!found.has_value()) {
    return Status(StatusCode::kNoSpace, "cowfs full");
  }
  allocated_.Set(*found);
  ++allocated_blocks_;
  alloc_cursor_ = *found + 1;
  return *found;
}

void CowFs::Incref(BlockNo block) {
  assert(allocated_.Test(block));
  ++refcount_[block];
}

void CowFs::Decref(BlockNo block) {
  assert(allocated_.Test(block));
  assert(refcount_[block] > 0);
  if (--refcount_[block] == 0) {
    allocated_.Clear(block);
    --allocated_blocks_;
    ClearOwner(block);
  }
}

Result<BlockNo> CowFs::AllocateForWrite(InodeNo ino, PageIdx idx, BlockNo old_block) {
  if (old_block != kInvalidBlock) {
    // Same-transaction optimization: if the previous block is exclusively
    // ours (no snapshot reference), its page is still dirty (never flushed),
    // and it is not part of the committed superblock tree (crash rollback
    // would need its old content), rewrite it in place rather than COWing.
    const CachedPage* page = cache_.Peek(ino, idx);
    if (refcount_[old_block] == 1 && page != nullptr && page->dirty &&
        !committed_.Test(old_block)) {
      return old_block;
    }
  }
  // Place the copy near the old block, or extend past the previous page.
  BlockNo hint = alloc_cursor_;
  if (old_block != kInvalidBlock) {
    hint = old_block + 1;
  } else if (idx > 0) {
    if (Result<BlockNo> prev = Bmap(ino, idx - 1); prev.ok()) {
      hint = *prev + 1;
    }
  }
  Result<BlockNo> fresh = AllocBlock(hint);
  if (!fresh.ok()) {
    return fresh;
  }
  refcount_[*fresh] = 1;
  if (old_block != kInvalidBlock) {
    Decref(old_block);
  }
  SetMapping(ino, idx, *fresh);
  return fresh;
}

void CowFs::FreeFileBlocks(InodeNo ino) {
  auto it = fmap_.find(ino);
  if (it == fmap_.end()) {
    return;
  }
  for (BlockNo block : it->second.blocks) {
    if (block != kInvalidBlock) {
      Decref(block);
    }
  }
}

Status CowFs::OnDiskBlockRead(BlockNo block, uint64_t token) {
  if (allocated_.Test(block) && disk_csum_[block] != TokenChecksum(token)) {
    ++checksum_errors_detected_;
    if (injector_ != nullptr) {
      injector_->NoteCorruptionDetected(block);
    }
    return Status(StatusCode::kCorruption, "checksum mismatch");
  }
  return Status::Ok();
}

void CowFs::OnBlockFlushed(BlockNo block, uint64_t token) {
  FileSystem::OnBlockFlushed(block, token);
  disk_csum_[block] = TokenChecksum(token);
  mirror_data_[block] = token;
}

std::optional<BlockNo> CowFs::NextAllocated(BlockNo from) const {
  return allocated_.FindNextSet(from);
}

void CowFs::ReadRawBlocks(BlockNo start, uint32_t count, IoClass io_class,
                          bool populate_cache,
                          std::function<void(const RawReadResult&)> cb) {
  // Collect allocated blocks in the range and coalesce them into runs.
  std::vector<std::pair<BlockNo, uint32_t>> runs;
  BlockNo cursor = start;
  BlockNo end = std::min<BlockNo>(start + count, capacity_blocks());
  while (cursor < end) {
    std::optional<BlockNo> next = allocated_.FindNextSet(cursor);
    if (!next.has_value() || *next >= end) {
      break;
    }
    BlockNo run_start = *next;
    BlockNo run_end = run_start;
    while (run_end < end && allocated_.Test(run_end)) {
      ++run_end;
    }
    runs.emplace_back(run_start, static_cast<uint32_t>(run_end - run_start));
    cursor = run_end;
  }
  auto result = std::make_shared<RawReadResult>();
  if (runs.empty()) {
    loop_->ScheduleAfter(0, [cb = std::move(cb), result] { cb(*result); });
    return;
  }
  auto outstanding = std::make_shared<uint64_t>(runs.size());
  auto cb_shared = std::make_shared<std::function<void(const RawReadResult&)>>(std::move(cb));
  for (const auto& [run_start, run_count] : runs) {
    IoRequest req;
    req.block = run_start;
    req.count = run_count;
    req.dir = IoDir::kRead;
    req.io_class = io_class;
    ++result->device_ops;
    req.done = [this, run_start, run_count, populate_cache, result, outstanding,
                cb_shared](const IoResult& io) {
      if (io.status.code() == StatusCode::kBusy) {
        // Transient whole-request failure: nothing was transferred.
        result->status = io.status;
        if (--*outstanding == 0) {
          std::sort(result->bad_blocks.begin(), result->bad_blocks.end());
          (*cb_shared)(*result);
        }
        return;
      }
      for (BlockNo b = run_start; b < run_start + run_count; ++b) {
        ++result->blocks_read;
        bool verified = false;
        if (io.BlockFailed(b)) {
          // Latent sector error: the medium returned EIO, no data came back.
          ++result->read_errors;
          result->bad_blocks.push_back(b);
          result->status = io.status;
        } else if (allocated_.Test(b) && !BlockChecksumOk(b)) {
          ++result->checksum_errors;
          ++checksum_errors_detected_;
          result->bad_blocks.push_back(b);
          if (injector_ != nullptr) {
            injector_->NoteCorruptionDetected(b);
          }
          if (result->status.ok()) {
            result->status = Status(StatusCode::kCorruption, "checksum mismatch");
          }
        } else {
          verified = true;
        }
        // Only verified content may enter the page cache; caching a corrupt
        // or unread token would mask the fault from every later reader.
        if (populate_cache && verified) {
          Result<BlockOwner> owner = Rmap(b);
          if (owner.ok() && !cache_.Contains(owner->ino, owner->idx)) {
            cache_.Insert(owner->ino, owner->idx, disk_data_[b], /*dirty=*/false);
          }
        }
      }
      if (--*outstanding == 0) {
        std::sort(result->bad_blocks.begin(), result->bad_blocks.end());
        (*cb_shared)(*result);
      }
    };
    device_->Submit(std::move(req));
  }
}

// Sequential repair state machine. Faults are rare, so one block at a time
// keeps the logic (and the virtual-time ordering) simple and deterministic.
struct CowFs::RepairJob {
  std::vector<BlockNo> blocks;
  size_t next = 0;
  IoClass io_class = IoClass::kIdle;
  RepairResult result;
  std::function<void(const RepairResult&)> cb;
};

void CowFs::RepairBlocks(std::vector<BlockNo> blocks, IoClass io_class,
                         std::function<void(const RepairResult&)> cb) {
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  auto job = std::make_shared<RepairJob>();
  job->blocks = std::move(blocks);
  job->io_class = io_class;
  job->cb = std::move(cb);
  RepairNext(std::move(job));
}

void CowFs::RepairNext(std::shared_ptr<RepairJob> job) {
  while (job->next < job->blocks.size()) {
    BlockNo block = job->blocks[job->next++];
    if (!allocated_.Test(block)) {
      // Freed (COW) since it was reported bad; nothing left to repair.
      continue;
    }
    ++job->result.attempted;
    const uint32_t want = disk_csum_[block];

    // Source 1: a clean cached page whose content matches the stored
    // checksum — repair costs one write, no read.
    Result<BlockOwner> owner = Rmap(block);
    if (owner.ok()) {
      const CachedPage* page = cache_.Peek(owner->ino, owner->idx);
      if (page != nullptr && !page->dirty && TokenChecksum(page->data) == want) {
        ++job->result.repaired_from_cache;
        WriteRepair(std::move(job), block, page->data);
        return;
      }
    }

    // Source 2: the DUP mirror copy, if intact — one read plus one write.
    if (TokenChecksum(mirror_data_[block]) == want) {
      ++job->result.device_reads;
      IoRequest req;
      req.block = block;
      req.count = 1;
      req.dir = IoDir::kRead;
      req.io_class = job->io_class;
      req.consult_faults = false;  // mirror lives elsewhere on the platter
      req.done = [this, job = std::move(job), block](const IoResult&) mutable {
        // Re-check: the block may have been freed or COWed away while the
        // mirror read was queued. Note a latent-error block's simulated
        // token can look intact (the failure is in readability), so the
        // rewrite proceeds whenever the mirror still matches the checksum.
        if (allocated_.Test(block) &&
            TokenChecksum(mirror_data_[block]) == disk_csum_[block]) {
          ++job->result.repaired_from_mirror;
          WriteRepair(std::move(job), block, mirror_data_[block]);
        } else {
          RepairNext(std::move(job));
        }
      };
      device_->Submit(std::move(req));
      return;
    }

    // No intact copy anywhere: data loss.
    ++job->result.unrecoverable;
    if (injector_ != nullptr) {
      injector_->NoteUnrecoverable(block);
    }
  }
  loop_->ScheduleAfter(0, [job = std::move(job)] { job->cb(job->result); });
}

void CowFs::WriteRepair(std::shared_ptr<RepairJob> job, BlockNo block,
                        uint64_t token) {
  ++job->result.device_writes;
  IoRequest req;
  req.block = block;
  req.count = 1;
  req.dir = IoDir::kWrite;
  req.io_class = job->io_class;
  req.done = [this, job = std::move(job), block, token](const IoResult&) mutable {
    // Persist the healed content; the injector observes the rewrite (via
    // OnWriteApplied after this callback) and counts the fault repaired.
    OnBlockFlushed(block, token);
    RepairNext(std::move(job));
  };
  device_->Submit(std::move(req));
}

Result<SnapshotId> CowFs::CreateSnapshot() {
  assert(cache_.DirtyCount() == 0 && "sync before snapshotting");
  Snapshot snap;
  snap.id = next_snapshot_id_++;
  ns_.ForEachInode([&](const Inode& inode) {
    if (inode.is_dir()) {
      return;
    }
    auto it = fmap_.find(inode.ino);
    if (it == fmap_.end()) {
      return;
    }
    SnapshotFile file;
    file.size = inode.size;
    file.blocks.assign(it->second.blocks.begin(),
                       it->second.blocks.begin() +
                           static_cast<long>(std::min<uint64_t>(
                               it->second.blocks.size(), inode.PageCount())));
    for (BlockNo block : file.blocks) {
      if (block != kInvalidBlock) {
        Incref(block);
      }
    }
    snap.files.emplace(inode.ino, std::move(file));
  });
  SnapshotId id = snap.id;
  snapshots_.emplace(id, std::move(snap));
  return id;
}

void CowFs::CreateSnapshotAsync(std::function<void(Result<SnapshotId>)> cb) {
  writeback_.Sync([this, cb = std::move(cb)] { cb(CreateSnapshot()); });
}

Status CowFs::DeleteSnapshot(SnapshotId id) {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) {
    return Status(StatusCode::kNotFound);
  }
  for (const auto& [ino, file] : it->second.files) {
    for (BlockNo block : file.blocks) {
      if (block != kInvalidBlock) {
        Decref(block);
      }
    }
  }
  snapshots_.erase(it);
  return Status::Ok();
}

const CowFs::Snapshot* CowFs::GetSnapshot(SnapshotId id) const {
  auto it = snapshots_.find(id);
  return it == snapshots_.end() ? nullptr : &it->second;
}

bool CowFs::SharedWithSnapshot(SnapshotId id, InodeNo ino, PageIdx idx) const {
  const Snapshot* snap = GetSnapshot(id);
  if (snap == nullptr) {
    return false;
  }
  auto it = snap->files.find(ino);
  if (it == snap->files.end() || idx >= it->second.blocks.size()) {
    return false;
  }
  Result<BlockNo> live = Bmap(ino, idx);
  return live.ok() && *live == it->second.blocks[idx];
}

uint64_t CowFs::ExtentCount(InodeNo ino) const {
  auto it = fmap_.find(ino);
  if (it == fmap_.end() || it->second.blocks.empty()) {
    return 0;
  }
  uint64_t extents = 0;
  BlockNo prev = kInvalidBlock;
  for (BlockNo block : it->second.blocks) {
    if (block == kInvalidBlock) {
      prev = kInvalidBlock;
      continue;
    }
    if (prev == kInvalidBlock || block != prev + 1) {
      ++extents;
    }
    prev = block;
  }
  return extents;
}

Result<std::vector<std::pair<BlockNo, uint32_t>>> CowFs::AllocContiguous(uint64_t n) {
  std::vector<std::pair<BlockNo, uint32_t>> runs;
  uint64_t remaining = n;
  BlockNo scan = alloc_cursor_;
  bool wrapped = false;
  while (remaining > 0) {
    std::optional<BlockNo> next = FindFreeUnpinned(scan);
    if (!next.has_value()) {
      if (wrapped) {
        break;
      }
      wrapped = true;
      scan = 0;
      continue;
    }
    BlockNo run_start = *next;
    BlockNo run_end = run_start;
    while (run_end < capacity_blocks() && !allocated_.Test(run_end) &&
           !committed_.Test(run_end) && run_end - run_start < remaining) {
      ++run_end;
    }
    uint32_t len = static_cast<uint32_t>(run_end - run_start);
    runs.emplace_back(run_start, len);
    remaining -= len;
    scan = run_end;
    if (scan >= capacity_blocks()) {
      if (wrapped) {
        break;
      }
      wrapped = true;
      scan = 0;
    }
  }
  if (remaining > 0) {
    // Roll back: nothing was marked yet (marking happens in the caller).
    return Status(StatusCode::kNoSpace, "not enough free blocks");
  }
  return runs;
}

void CowFs::DefragFile(InodeNo ino, IoClass io_class,
                       std::function<void(const DefragResult&)> cb) {
  const Inode* inode = ns_.Get(ino);
  auto result = std::make_shared<DefragResult>();
  auto finish = [this, cb = std::move(cb), result](Status status) {
    result->status = std::move(status);
    loop_->ScheduleAfter(0, [cb, result] { cb(*result); });
  };
  if (inode == nullptr || inode->is_dir()) {
    finish(Status(StatusCode::kNotFound, "bad inode for defrag"));
    return;
  }
  uint64_t npages = inode->PageCount();
  if (npages == 0) {
    finish(Status::Ok());
    return;
  }
  result->pages = npages;
  result->extents_before = ExtentCount(ino);

  // Phase 1: bring the whole file into memory (cache hits are free).
  Read(ino, 0, inode->size, io_class, [this, ino, npages, io_class, result,
                                       finish](const FsIoResult& read) {
    if (!read.status.ok()) {
      finish(read.status);
      return;
    }
    result->pages_from_cache = read.pages_from_cache;
    result->pages_read_disk = read.pages_from_disk;

    // Count pages the workload had already dirtied: their writeback was due
    // anyway, so the paper counts them as saved write I/O (§6.2).
    for (PageIdx p = 0; p < npages; ++p) {
      const CachedPage* page = cache_.Peek(ino, p);
      if (page != nullptr && page->dirty) {
        ++result->dirty_pages;
      }
    }

    // Phase 2: allocate a contiguous destination and move the mapping.
    Result<std::vector<std::pair<BlockNo, uint32_t>>> runs = AllocContiguous(npages);
    if (!runs.ok()) {
      finish(runs.status());
      return;
    }
    // Mark the new blocks allocated and remap pages onto them.
    std::vector<BlockNo> new_blocks;
    new_blocks.reserve(npages);
    for (const auto& [start, count] : *runs) {
      for (BlockNo b = start; b < start + count; ++b) {
        allocated_.Set(b);
        ++allocated_blocks_;
        refcount_[b] = 1;
        new_blocks.push_back(b);
      }
    }
    std::vector<uint64_t> tokens(npages, 0);
    for (PageIdx p = 0; p < npages; ++p) {
      BlockNo old_block = kInvalidBlock;
      if (Result<BlockNo> mapped = Bmap(ino, p); mapped.ok()) {
        old_block = *mapped;
      }
      const CachedPage* page = cache_.Peek(ino, p);
      // The read above cached every page; a concurrent eviction could drop
      // one, in which case we fall back to its on-disk content.
      tokens[p] = (page != nullptr)           ? page->data
                  : (old_block != kInvalidBlock) ? disk_data_[old_block]
                                                 : 0;
      SetMapping(ino, p, new_blocks[p]);
      if (old_block != kInvalidBlock) {
        Decref(old_block);
      }
    }

    // Phase 3: write the new extent(s) as one transaction.
    auto outstanding = std::make_shared<uint64_t>(runs->size());
    uint64_t base_page = 0;
    for (const auto& [start, count] : *runs) {
      IoRequest req;
      req.block = start;
      req.count = count;
      req.dir = IoDir::kWrite;
      req.io_class = io_class;
      uint64_t first_page = base_page;
      req.done = [this, ino, start = start, count = count, first_page, tokens, result,
                  outstanding, finish](const IoResult&) {
        for (uint32_t k = 0; k < count; ++k) {
          PageIdx p = first_page + k;
          OnBlockFlushed(start + k, tokens[p]);
          ++result->pages_written;
          const CachedPage* page = cache_.Peek(ino, p);
          if (page != nullptr && page->dirty && page->data == tokens[p]) {
            cache_.MarkClean(ino, p);
          }
        }
        if (--*outstanding == 0) {
          result->extents_after = ExtentCount(ino);
          finish(Status::Ok());
        }
      };
      base_page += count;
      device_->Submit(std::move(req));
    }
  });
}

Result<InodeNo> CowFs::PopulateFragmentedFile(std::string_view path, uint64_t bytes,
                                              double break_prob, Rng& rng) {
  Result<InodeNo> created = ns_.Create(path, FileType::kRegular);
  if (!created.ok()) {
    return created;
  }
  InodeNo ino = *created;
  uint64_t npages = PagesForBytes(bytes);
  // The random jumps below must not leak into subsequent allocations, or
  // every file populated afterwards would inherit the fragmentation.
  BlockNo saved_cursor = alloc_cursor_;
  for (PageIdx p = 0; p < npages; ++p) {
    if (rng.Chance(break_prob)) {
      alloc_cursor_ = rng.Uniform(capacity_blocks());
    }
    Result<BlockNo> block = AllocBlock(alloc_cursor_);
    if (!block.ok()) {
      alloc_cursor_ = saved_cursor;
      return block.status();
    }
    refcount_[*block] = 1;
    SetMapping(ino, p, *block);
    OnBlockFlushed(*block, NextToken());
  }
  ns_.GetMutable(ino)->size = bytes;
  alloc_cursor_ = saved_cursor;
  return ino;
}

std::vector<uint8_t> CowFs::SerializeSuperblock() const {
  ByteWriter w;
  SerializeNamespaceAndMaps(&w);
  std::vector<const Snapshot*> snaps;
  snaps.reserve(snapshots_.size());
  for (const auto& [id, snap] : snapshots_) {
    snaps.push_back(&snap);
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const Snapshot* a, const Snapshot* b) { return a->id < b->id; });
  w.U64(snaps.size());
  for (const Snapshot* snap : snaps) {
    w.U64(snap->id);
    w.U64(snap->files.size());
    for (const auto& [ino, file] : snap->files) {  // std::map: ino-ordered
      w.U64(ino);
      w.U64(file.size);
      w.U64(file.blocks.size());
      for (BlockNo block : file.blocks) {
        w.U64(block);
      }
    }
  }
  w.U64(next_snapshot_id_);
  return w.Take();
}

void CowFs::CommitSuperblock(std::function<void(uint64_t)> done) {
  assert(image_ != nullptr && "attach a durable image before committing");
  Sync([this, done = std::move(done)]() mutable {
    // Quiesced commit: with no foreground writes racing the sync, the cache
    // is clean at the barrier, so the serialized tree references only
    // durably committed blocks.
    assert(cache_.DirtyCount() == 0 && "quiesce writes during superblock commit");
    std::vector<uint8_t> payload = SerializeSuperblock();
    uint64_t generation = superblock_generation_ + 1;
    SimDuration latency = MetaIoLatency(payload.size());
    // The superblock area is written FUA at the end of the modeled latency;
    // a crash inside the window simply leaves the previous generation (and
    // the image's PutMeta is a no-op once frozen anyway).
    loop_->ScheduleAfter(latency, [this, payload = std::move(payload), generation,
                                   done = std::move(done)]() mutable {
      CommitCheckpointSlot(image_, "cowfs.sb", generation, payload);
      superblock_generation_ = generation;
      committed_ = allocated_;  // pin the committed tree until the next commit
      obs::CurrentObs()->trace.Emit(loop_->now(), obs::TraceLayer::kFs,
                                    obs::TraceKind::kCheckpointCommit, generation,
                                    payload.size(), image_->commit_seq());
      done(generation);
    });
  });
}

void CowFs::Checkpoint(std::function<void()> done) {
  CommitSuperblock([done = std::move(done)](uint64_t) { done(); });
}

Status CowFs::RestoreFromSuperblock(const std::vector<uint8_t>& payload,
                                    MountReport* report) {
  ByteReader r(payload);
  if (!RestoreNamespaceAndMaps(&r, &report->files)) {
    return Status(StatusCode::kCorruption, "bad superblock namespace");
  }
  uint64_t snap_count = r.U64();
  for (uint64_t k = 0; k < snap_count && r.ok(); ++k) {
    Snapshot snap;
    snap.id = r.U64();
    uint64_t file_count = r.U64();
    for (uint64_t j = 0; j < file_count && r.ok(); ++j) {
      InodeNo ino = r.U64();
      SnapshotFile file;
      file.size = r.U64();
      uint64_t nblocks = r.U64();
      for (uint64_t b = 0; b < nblocks; ++b) {
        BlockNo block = r.U64();
        if (block != kInvalidBlock && block >= capacity_blocks()) {
          return Status(StatusCode::kCorruption, "snapshot block out of range");
        }
        file.blocks.push_back(block);
      }
      snap.files.emplace(ino, std::move(file));
    }
    snapshots_.emplace(snap.id, std::move(snap));
  }
  next_snapshot_id_ = r.U64();
  if (!r.ok()) {
    return Status(StatusCode::kCorruption, "truncated superblock");
  }

  // Rebuild refcounts and the allocation bitmap from the restored trees.
  for (const auto& [ino, map] : fmap_) {
    for (BlockNo block : map.blocks) {
      if (block != kInvalidBlock) {
        ++refcount_[block];
      }
    }
  }
  for (const auto& [id, snap] : snapshots_) {
    for (const auto& [ino, file] : snap.files) {
      for (BlockNo block : file.blocks) {
        if (block != kInvalidBlock) {
          ++refcount_[block];
        }
      }
    }
  }
  allocated_blocks_ = 0;
  for (BlockNo b = 0; b < capacity_blocks(); ++b) {
    if (refcount_[b] == 0) {
      continue;
    }
    allocated_.Set(b);
    ++allocated_blocks_;
    if (image_->Present(b)) {
      const DurableImage::Record& rec = image_->At(b);
      disk_data_[b] = rec.token;
      disk_csum_[b] = rec.csum;
      // The DUP mirror is not persisted separately; it is resilvered from
      // the primary copy during mount.
      mirror_data_[b] = rec.token;
      ++report->blocks_restored;
    } else {
      ++report->blocks_missing;
    }
  }
  return Status::Ok();
}

void CowFs::Mount(std::function<void(const MountReport&)> cb) {
  assert(image_ != nullptr && "attach a durable image before mounting");
  assert(ns_.inode_count() == 1 && fmap_.empty() &&
         "mount requires a freshly constructed file system");
  SimTime started = loop_->now();
  auto report = std::make_shared<MountReport>();
  std::optional<LoadedCheckpoint> loaded = LoadNewestCheckpoint(*image_, "cowfs.sb");
  if (!loaded.has_value()) {
    report->status = Status(StatusCode::kNotFound, "no committed superblock");
    loop_->ScheduleAfter(0, [cb = std::move(cb), report] { cb(*report); });
    return;
  }
  report->generation = loaded->generation;
  report->meta_bytes = loaded->payload.size();
  report->status = RestoreFromSuperblock(loaded->payload, report.get());
  if (!report->status.ok()) {
    loop_->ScheduleAfter(0, [cb = std::move(cb), report] { cb(*report); });
    return;
  }
  superblock_generation_ = loaded->generation;
  committed_ = allocated_;
  // Rollback recovery reads only the superblock area — no data blocks.
  loop_->ScheduleAfter(MetaIoLatency(loaded->payload.size()),
                       [this, report, cb = std::move(cb), started] {
    report->duration = loop_->now() - started;
    obs::CurrentObs()->trace.Emit(loop_->now(), obs::TraceLayer::kFs,
                                  obs::TraceKind::kMountRecovered,
                                  report->generation, report->blocks_restored,
                                  report->blocks_discarded);
    cb(*report);
  });
}

FsckReport CowFs::CheckConsistency() const {
  FsckReport report;
  CheckFileMappings(&report);
  // Recompute every block's expected reference count from the live extent
  // maps and the snapshot tables.
  std::vector<uint32_t> want(capacity_blocks(), 0);
  for (const auto& [ino, map] : fmap_) {
    const Inode* inode = ns_.Get(ino);
    if (inode == nullptr || inode->is_dir()) {
      ++report.structural_errors;  // extent map for a nonexistent file
      continue;
    }
    for (BlockNo block : map.blocks) {
      if (block != kInvalidBlock) {
        ++want[block];
      }
    }
  }
  for (const auto& [id, snap] : snapshots_) {
    for (const auto& [ino, file] : snap.files) {
      for (BlockNo block : file.blocks) {
        if (block != kInvalidBlock) {
          ++want[block];
        }
      }
    }
  }
  uint64_t allocated_count = 0;
  for (BlockNo b = 0; b < capacity_blocks(); ++b) {
    bool alloc = allocated_.Test(b);
    if (want[b] != refcount_[b] || alloc != (want[b] > 0)) {
      ++report.structural_errors;
      report.NoteBad(b);
    }
    if (!alloc) {
      continue;
    }
    ++allocated_count;
    ++report.blocks_checked;
    if (!BlockChecksumOk(b)) {
      ++report.checksum_errors;
      report.NoteBad(b);
    }
  }
  if (allocated_count != allocated_blocks_) {
    ++report.structural_errors;
  }
  obs::CurrentObs()->trace.Emit(loop_->now(), obs::TraceLayer::kFs,
                                obs::TraceKind::kFsckRan,
                                report.structural_errors, report.checksum_errors,
                                report.blocks_checked);
  return report;
}

}  // namespace duet
