// cowfs: a Btrfs-like copy-on-write file system over the simulated stack.
//
// Mechanisms the paper's tasks rely on (§5):
//  * per-block CRC32C checksums, verified on every read path — the scrubber's
//    correctness guarantee and the reason a page Added event means "verified";
//  * copy-on-write: every write allocates a new block, breaking sharing with
//    snapshots (the backup task's staleness signal);
//  * refcounted snapshots with back references (SharedWithSnapshot);
//  * extent fragmentation metrics and a defragmentation primitive.
#ifndef SRC_COWFS_COWFS_H_
#define SRC_COWFS_COWFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/fs/file_system.h"
#include "src/util/bitmap.h"
#include "src/util/rng.h"

namespace duet {

using SnapshotId = uint64_t;

struct DefragResult {
  Status status;
  uint64_t pages = 0;             // pages in the file
  uint64_t pages_read_disk = 0;   // read I/O actually performed
  uint64_t pages_from_cache = 0;  // reads saved by the cache
  uint64_t dirty_pages = 0;       // pages that were already dirty (write I/O
                                  // the workload would have issued anyway)
  uint64_t pages_written = 0;     // write I/O performed
  uint64_t extents_before = 0;
  uint64_t extents_after = 0;
};

class CowFs : public FileSystem {
 public:
  CowFs(EventLoop* loop, BlockDevice* device, uint64_t cache_pages,
        WritebackParams wb_params = WritebackParams());

  // ---- Checksums ----
  static uint32_t TokenChecksum(uint64_t token);
  // Verifies the on-disk copy of `block` against its stored checksum.
  bool BlockChecksumOk(BlockNo block) const;
  // Flips on-disk bits without updating the checksum (failure injection).
  // With `also_mirror`, the DUP mirror copy is corrupted too, making the
  // block unrecoverable by RepairBlocks.
  void CorruptBlock(BlockNo block, bool also_mirror = false);
  uint64_t checksum_errors_detected() const { return checksum_errors_detected_; }
  // DUP mirror copy of `block` (tests).
  uint64_t MirrorToken(BlockNo block) const { return mirror_data_[block]; }

  // ---- Raw block reads (scrubber; backup's unshared blocks) ----
  // Reads `count` blocks at `start` from the device, verifying checksums of
  // allocated blocks. Unallocated blocks in the range are skipped without
  // I/O. With `populate_cache`, blocks owned by a live file page are
  // inserted into the page cache (clean), surfacing the access to Duet —
  // this is how one maintenance pass serves other tasks (§6.3).
  void ReadRawBlocks(BlockNo start, uint32_t count, IoClass io_class,
                     bool populate_cache,
                     std::function<void(const RawReadResult&)> cb);

  // ---- Repair (scrubber error path) ----
  // Outcome of a RepairBlocks call.
  struct RepairResult {
    uint64_t attempted = 0;
    uint64_t repaired_from_cache = 0;   // clean cached page matched the csum
    uint64_t repaired_from_mirror = 0;  // DUP mirror copy matched the csum
    uint64_t unrecoverable = 0;         // no intact copy available
    uint64_t device_reads = 0;          // mirror reads issued
    uint64_t device_writes = 0;         // repair rewrites issued
    uint64_t repaired() const { return repaired_from_cache + repaired_from_mirror; }
  };

  // Attempts to repair `blocks` (bad checksum or unreadable): picks an intact
  // copy — a clean cached page whose token matches the stored checksum, else
  // the DUP mirror copy if its checksum matches — and rewrites the primary
  // block with it at `io_class`. Blocks with no intact copy are reported
  // unrecoverable (and to the fault injector, if attached). Blocks processed
  // sequentially; `cb` fires once all are done.
  void RepairBlocks(std::vector<BlockNo> blocks, IoClass io_class,
                    std::function<void(const RepairResult&)> cb);

  // ---- Allocation map queries (scrubber traversal) ----
  bool IsAllocated(BlockNo block) const { return allocated_.Test(block); }
  // First allocated block at or after `from`.
  std::optional<BlockNo> NextAllocated(BlockNo from) const;

  // ---- Snapshots (backup substrate) ----
  struct SnapshotFile {
    uint64_t size = 0;
    std::vector<BlockNo> blocks;
  };
  struct Snapshot {
    SnapshotId id = 0;
    // Ordered by inode number: the backup tool processes files in inode
    // order (paper Table 3).
    std::map<InodeNo, SnapshotFile> files;
  };

  // Takes a snapshot of every regular file. Requires a clean cache (callers
  // use CreateSnapshotAsync to sync first); asserts otherwise.
  Result<SnapshotId> CreateSnapshot();
  // Flushes dirty data, then snapshots.
  void CreateSnapshotAsync(std::function<void(Result<SnapshotId>)> cb);
  Status DeleteSnapshot(SnapshotId id);
  const Snapshot* GetSnapshot(SnapshotId id) const;

  // True if page `idx` of `ino` still shares its block with the snapshot
  // (i.e. has not been modified since) — the Btrfs back-reference check the
  // opportunistic backup performs (§5.2).
  bool SharedWithSnapshot(SnapshotId id, InodeNo ino, PageIdx idx) const;

  // ---- Fragmentation / defragmentation ----
  // Number of contiguous extents backing the file (1 = fully contiguous).
  uint64_t ExtentCount(InodeNo ino) const;

  // Rewrites the file into (as close as possible to) one contiguous extent:
  // reads all pages (cache hits are free), allocates a new contiguous run,
  // writes every page at `io_class`, remaps, and frees the old blocks.
  void DefragFile(InodeNo ino, IoClass io_class,
                  std::function<void(const DefragResult&)> cb);

  // Populates a file whose extents are deliberately broken: after each page,
  // the allocation cursor jumps with probability `break_prob`.
  Result<InodeNo> PopulateFragmentedFile(std::string_view path, uint64_t bytes,
                                         double break_prob, Rng& rng);

  // FileSystem aging hook: fragments according to break_prob.
  Result<InodeNo> PopulateFileAged(std::string_view path, uint64_t bytes,
                                   double break_prob, Rng& rng) override {
    return PopulateFragmentedFile(path, bytes, break_prob, rng);
  }

  uint64_t free_blocks() const { return capacity_blocks() - allocated_.Count(); }
  uint32_t BlockRefcount(BlockNo block) const { return refcount_[block]; }

  // ---- Crash consistency (superblock generations) ----
  // Atomically commits the current tree: Sync(), then serialize the
  // namespace, extent maps, and snapshot tables into the next superblock
  // generation (two-slot, CRC-protected). Every block the committed tree
  // references is pinned — not reusable by the allocator — until the NEXT
  // commit, so a crash always rolls back to an intact tree. Requires
  // quiesced foreground writes during the commit (a real COW file system's
  // transaction-commit stall) and an attached durable image.
  void CommitSuperblock(std::function<void(uint64_t generation)> done);
  void Checkpoint(std::function<void()> done) override;
  // Rolls back to the newest committed superblock generation: restores the
  // namespace, maps, snapshots, refcounts, and block content from the
  // durable image. Anything written after that commit is gone (cowfs has no
  // log tree). Must be called on a freshly constructed file system.
  void Mount(std::function<void(const MountReport&)> cb) override;
  FsckReport CheckConsistency() const override;
  uint64_t superblock_generation() const { return superblock_generation_; }
  // True if the last committed superblock references `block` (pinned).
  bool CommittedBlock(BlockNo block) const { return committed_.Test(block); }

 protected:
  Result<BlockNo> AllocateForWrite(InodeNo ino, PageIdx idx, BlockNo old_block) override;
  void FreeFileBlocks(InodeNo ino) override;
  Status OnDiskBlockRead(BlockNo block, uint64_t token) override;
  void OnBlockFlushed(BlockNo block, uint64_t token) override;
  void InjectCorruption(BlockNo block, bool both_copies) override;
  bool BlockInUse(BlockNo block) const override { return allocated_.Test(block); }
  uint32_t StoredChecksum(BlockNo block) const override { return disk_csum_[block]; }

 private:
  struct RepairJob;
  void RepairNext(std::shared_ptr<RepairJob> job);
  void WriteRepair(std::shared_ptr<RepairJob> job, BlockNo block, uint64_t token);

  // Allocates one free block, next-fit from `hint`. Blocks referenced by the
  // last committed superblock are skipped even when free (pinned until the
  // next commit), so rollback never finds its tree overwritten.
  Result<BlockNo> AllocBlock(BlockNo hint);
  // First free, unpinned block at or after `from`.
  std::optional<BlockNo> FindFreeUnpinned(BlockNo from) const;
  std::vector<uint8_t> SerializeSuperblock() const;
  Status RestoreFromSuperblock(const std::vector<uint8_t>& payload,
                               MountReport* report);
  // Allocates `n` contiguous free blocks; falls back to the longest runs
  // available. Returns the start blocks of the runs covering n blocks total.
  Result<std::vector<std::pair<BlockNo, uint32_t>>> AllocContiguous(uint64_t n);
  void Incref(BlockNo block);
  void Decref(BlockNo block);

  Bitmap allocated_;
  std::vector<uint32_t> refcount_;
  std::vector<uint32_t> disk_csum_;
  // DUP profile: a second physical copy of each block, kept in sync by
  // OnBlockFlushed. Repair reads it (one device read) when the primary is
  // corrupt; reading it does not consult the fault injector since it lives
  // at a different physical location.
  std::vector<uint64_t> mirror_data_;
  BlockNo alloc_cursor_ = 0;
  SnapshotId next_snapshot_id_ = 1;
  std::unordered_map<SnapshotId, Snapshot> snapshots_;
  uint64_t checksum_errors_detected_ = 0;
  // Blocks referenced by the last committed superblock. Pinned against both
  // in-place rewrite and reallocation until the next commit (btrfs's pinned
  // extents). Empty when no superblock was ever committed, making the whole
  // crash path zero-cost for stacks that never use it.
  Bitmap committed_;
  uint64_t superblock_generation_ = 0;
};

}  // namespace duet

#endif  // SRC_COWFS_COWFS_H_
