#include "src/util/logging.h"

namespace duet {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarning;
  return level;
}

}  // namespace duet
