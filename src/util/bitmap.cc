#include "src/util/bitmap.h"

#include <bit>
#include <cassert>

namespace duet {

namespace {
constexpr uint64_t kWordBits = 64;

uint64_t WordCount(uint64_t bits) { return (bits + kWordBits - 1) / kWordBits; }

// Mask with bits [lo, hi) set within one word, 0 <= lo <= hi <= 64.
uint64_t RangeMask(uint64_t lo, uint64_t hi) {
  if (lo >= hi) {
    return 0;
  }
  uint64_t high = (hi == kWordBits) ? ~0ULL : ((1ULL << hi) - 1);
  uint64_t low = (1ULL << lo) - 1;
  return high & ~low;
}
}  // namespace

Bitmap::Bitmap(uint64_t num_bits) { Resize(num_bits); }

void Bitmap::Resize(uint64_t num_bits) {
  num_bits_ = num_bits;
  words_.assign(WordCount(num_bits), 0);
}

void Bitmap::Set(uint64_t bit) {
  assert(bit < num_bits_);
  words_[bit / kWordBits] |= 1ULL << (bit % kWordBits);
}

void Bitmap::Clear(uint64_t bit) {
  assert(bit < num_bits_);
  words_[bit / kWordBits] &= ~(1ULL << (bit % kWordBits));
}

bool Bitmap::Test(uint64_t bit) const {
  assert(bit < num_bits_);
  return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1;
}

void Bitmap::SetRange(uint64_t begin, uint64_t end) {
  assert(begin <= end && end <= num_bits_);
  for (uint64_t w = begin / kWordBits; w <= (end ? (end - 1) / kWordBits : 0) && begin < end;
       ++w) {
    uint64_t lo = (w == begin / kWordBits) ? begin % kWordBits : 0;
    uint64_t hi = (w == (end - 1) / kWordBits) ? ((end - 1) % kWordBits) + 1 : kWordBits;
    words_[w] |= RangeMask(lo, hi);
  }
}

void Bitmap::ClearRange(uint64_t begin, uint64_t end) {
  assert(begin <= end && end <= num_bits_);
  for (uint64_t w = begin / kWordBits; w <= (end ? (end - 1) / kWordBits : 0) && begin < end;
       ++w) {
    uint64_t lo = (w == begin / kWordBits) ? begin % kWordBits : 0;
    uint64_t hi = (w == (end - 1) / kWordBits) ? ((end - 1) % kWordBits) + 1 : kWordBits;
    words_[w] &= ~RangeMask(lo, hi);
  }
}

uint64_t Bitmap::Count() const {
  uint64_t total = 0;
  for (uint64_t w : words_) {
    total += static_cast<uint64_t>(std::popcount(w));
  }
  return total;
}

uint64_t Bitmap::CountRange(uint64_t begin, uint64_t end) const {
  assert(begin <= end && end <= num_bits_);
  uint64_t total = 0;
  for (uint64_t w = begin / kWordBits; begin < end && w <= (end - 1) / kWordBits; ++w) {
    uint64_t lo = (w == begin / kWordBits) ? begin % kWordBits : 0;
    uint64_t hi = (w == (end - 1) / kWordBits) ? ((end - 1) % kWordBits) + 1 : kWordBits;
    total += static_cast<uint64_t>(std::popcount(words_[w] & RangeMask(lo, hi)));
  }
  return total;
}

std::optional<uint64_t> Bitmap::FindNextSet(uint64_t from) const {
  if (from >= num_bits_) {
    return std::nullopt;
  }
  uint64_t w = from / kWordBits;
  uint64_t word = words_[w] & ~((1ULL << (from % kWordBits)) - 1);
  while (true) {
    if (word != 0) {
      uint64_t bit = w * kWordBits + static_cast<uint64_t>(std::countr_zero(word));
      if (bit < num_bits_) {
        return bit;
      }
      return std::nullopt;
    }
    if (++w >= words_.size()) {
      return std::nullopt;
    }
    word = words_[w];
  }
}

std::optional<uint64_t> Bitmap::FindNextClear(uint64_t from) const {
  if (from >= num_bits_) {
    return std::nullopt;
  }
  uint64_t w = from / kWordBits;
  uint64_t word = ~words_[w] & ~((1ULL << (from % kWordBits)) - 1);
  while (true) {
    if (word != 0) {
      uint64_t bit = w * kWordBits + static_cast<uint64_t>(std::countr_zero(word));
      if (bit < num_bits_) {
        return bit;
      }
      return std::nullopt;
    }
    if (++w >= words_.size()) {
      return std::nullopt;
    }
    word = ~words_[w];
  }
}

bool Bitmap::AllClear() const {
  for (uint64_t w : words_) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

bool Bitmap::AllSet() const { return Count() == num_bits_; }

void Bitmap::Reset() { words_.assign(words_.size(), 0); }

}  // namespace duet
