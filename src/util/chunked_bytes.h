// ChunkedByteMap: a two-level, demand-allocated byte array.
//
// This is the byte-granularity sibling of RangeBitmap (the paper's §4.2
// dynamically-allocated bitmap structure): level 1 is a dense directory of
// chunk pointers, level 2 is fixed 4 KiB chunks allocated on first write to
// their range and freed as soon as every byte in them returns to zero.
// Reads of unallocated ranges return 0; access is O(1) (one indirection).
//
// Duet uses one of these per session to hold the per-page notification flag
// byte (four pending-event bits + reported-state/queued bookkeeping), keyed
// by the page's descriptor-arena slot — the simulator's stand-in for the
// kernel's global page number. Memory is reported exactly so the §6.4
// memory-overhead experiment stays honest.
#ifndef SRC_UTIL_CHUNKED_BYTES_H_
#define SRC_UTIL_CHUNKED_BYTES_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace duet {

class ChunkedByteMap {
 public:
  // 4096 payload bytes per chunk, matching the allocation granularity a
  // kernel implementation would use (and RangeBitmap's 32768-bit chunks).
  static constexpr uint64_t kChunkBytes = 4096;

  ChunkedByteMap() = default;

  // Returns the byte at `index` (0 when its chunk was never written).
  uint8_t Get(uint64_t index) const {
    uint64_t ci = index / kChunkBytes;
    if (ci >= chunks_.size() || chunks_[ci] == nullptr) {
      return 0;
    }
    return chunks_[ci]->bytes[index % kChunkBytes];
  }

  // Sets the byte at `index`, allocating its chunk on demand and freeing the
  // chunk when its last nonzero byte is cleared. Inline: the Duet hook path
  // updates one flag byte per delivered event.
  void Set(uint64_t index, uint8_t value) {
    uint64_t ci = index / kChunkBytes;
    uint64_t off = index % kChunkBytes;
    if (ci >= chunks_.size()) {
      if (value == 0) {
        return;  // clearing an unallocated byte is a no-op
      }
      chunks_.resize(ci + 1);
    }
    Chunk* chunk = chunks_[ci].get();
    if (chunk == nullptr) {
      if (value == 0) {
        return;
      }
      chunks_[ci] = std::make_unique<Chunk>();
      chunk = chunks_[ci].get();
      ++live_chunks_;
    }
    uint8_t& byte = chunk->bytes[off];
    if (byte == 0 && value != 0) {
      ++chunk->nonzero;
      ++nonzero_;
    } else if (byte != 0 && value == 0) {
      --chunk->nonzero;
      --nonzero_;
    }
    byte = value;
    if (chunk->nonzero == 0 && value == 0) {
      chunks_[ci].reset();
      --live_chunks_;
    }
  }

  // Drops every chunk; all bytes become 0.
  void Reset();

  uint64_t nonzero_count() const { return nonzero_; }
  uint64_t chunk_count() const { return live_chunks_; }

  // Exact heap footprint: allocated chunks plus the directory.
  uint64_t MemoryBytes() const {
    return live_chunks_ * sizeof(Chunk) +
           chunks_.capacity() * sizeof(std::unique_ptr<Chunk>);
  }

 private:
  struct Chunk {
    uint32_t nonzero = 0;  // bytes in this chunk with a nonzero value
    uint8_t bytes[kChunkBytes] = {};
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  uint64_t nonzero_ = 0;
  uint64_t live_chunks_ = 0;
};

}  // namespace duet

#endif  // SRC_UTIL_CHUNKED_BYTES_H_
