#include "src/util/crc32c.h"

#include <array>
#include <cstdlib>
#include <cstring>

namespace duet {
namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC32C polynomial

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

// Slice-by-8 tables: kSlice[j][b] is the CRC contribution of byte value `b`
// positioned j+1 bytes before the end of an 8-byte group, so eight table
// lookups advance the CRC over eight input bytes at once.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeSliceTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  tables[0] = MakeTable();
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (int j = 1; j < 8; ++j) {
      crc = tables[0][crc & 0xff] ^ (crc >> 8);
      tables[j][i] = crc;
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kSlice = MakeSliceTables();

uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));  // little-endian hosts only (x86/arm64)
  return v;
}

}  // namespace

uint32_t Crc32cScalar(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32cSlice8(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Align to 8 bytes so the wide loads below stay on natural boundaries.
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = kTable[(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --len;
  }
  while (len >= 8) {
    uint64_t word = LoadLe64(p) ^ crc;
    crc = kSlice[7][word & 0xff] ^ kSlice[6][(word >> 8) & 0xff] ^
          kSlice[5][(word >> 16) & 0xff] ^ kSlice[4][(word >> 24) & 0xff] ^
          kSlice[3][(word >> 32) & 0xff] ^ kSlice[2][(word >> 40) & 0xff] ^
          kSlice[1][(word >> 48) & 0xff] ^ kSlice[0][word >> 56];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = kTable[(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --len;
  }
  return ~crc;
}

#if !defined(DUET_CRC32C_FORCE_SCALAR) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DUET_CRC32C_HAVE_HW 1

bool Crc32cHwAvailable() { return __builtin_cpu_supports("sse4.2"); }

__attribute__((target("sse4.2"))) uint32_t Crc32cHw(const void* data, size_t len,
                                                    uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --len;
  }
  uint64_t crc64 = crc;
  while (len >= 8) {
    crc64 = __builtin_ia32_crc32di(crc64, LoadLe64(p));
    p += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (len > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --len;
  }
  return ~crc;
}

#else

bool Crc32cHwAvailable() { return false; }
uint32_t Crc32cHw(const void* data, size_t len, uint32_t seed) {
  return Crc32cSlice8(data, len, seed);
}

#endif

namespace {

using Crc32cFn = uint32_t (*)(const void*, size_t, uint32_t);

struct Dispatch {
  Crc32cFn fn;
  const char* name;
};

Dispatch ResolveDispatch() {
#if defined(DUET_CRC32C_FORCE_SCALAR)
  return {Crc32cScalar, "scalar"};
#else
  if (const char* force = std::getenv("DUET_CRC32C")) {
    if (std::strcmp(force, "scalar") == 0) {
      return {Crc32cScalar, "scalar"};
    }
    if (std::strcmp(force, "slice8") == 0) {
      return {Crc32cSlice8, "slice8"};
    }
    if (std::strcmp(force, "hw") == 0 && Crc32cHwAvailable()) {
      return {Crc32cHw, "hw"};
    }
    // Unknown value or unavailable kernel: fall through to auto-detection.
  }
  if (Crc32cHwAvailable()) {
    return {Crc32cHw, "hw"};
  }
  return {Crc32cSlice8, "slice8"};
#endif
}

const Dispatch& CurrentDispatch() {
  static const Dispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  return CurrentDispatch().fn(data, len, seed);
}

const char* Crc32cImplName() { return CurrentDispatch().name; }

}  // namespace duet
