#include "src/util/chunked_bytes.h"

namespace duet {

void ChunkedByteMap::Reset() {
  chunks_.clear();
  nonzero_ = 0;
  live_chunks_ = 0;
}

}  // namespace duet
