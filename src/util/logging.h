// Minimal leveled logging to stderr. The simulation is single-threaded, so
// no synchronization is needed. Default level is kWarning to keep bench
// output clean; tests and examples may lower it.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdio>

#include "src/util/format.h"

namespace duet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

LogLevel& GlobalLogLevel();

inline void SetLogLevel(LogLevel level) { GlobalLogLevel() = level; }

DUET_PRINTF_LIKE(2, 3)
inline void LogAt(LogLevel level, const char* fmt, ...) {
  if (level < GlobalLogLevel()) {
    return;
  }
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  va_list args;
  va_start(args, fmt);
  std::string msg = StrFormatV(fmt, args);
  va_end(args);
  fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)], msg.c_str());
}

#define DUET_LOG_DEBUG(...) ::duet::LogAt(::duet::LogLevel::kDebug, __VA_ARGS__)
#define DUET_LOG_INFO(...) ::duet::LogAt(::duet::LogLevel::kInfo, __VA_ARGS__)
#define DUET_LOG_WARN(...) ::duet::LogAt(::duet::LogLevel::kWarning, __VA_ARGS__)
#define DUET_LOG_ERROR(...) ::duet::LogAt(::duet::LogLevel::kError, __VA_ARGS__)

}  // namespace duet

#endif  // SRC_UTIL_LOGGING_H_
