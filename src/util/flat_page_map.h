// Open-addressed hash index mapping a (inode, page-index) key to a 32-bit
// slot in a caller-owned arena.
//
// This is the flat replacement for the nested/std unordered maps that used
// to sit on the two hottest lookup paths (the page cache's page index and
// Duet's item-descriptor table): one contiguous cell array, linear probing,
// backward-shift deletion (no tombstones), and a power-of-two capacity kept
// at <= 70% load. A lookup is one hash plus a short linear scan of 24-byte
// cells — no per-node allocation, no bucket chains.
//
// The table stores only the key -> slot mapping; the arena entries
// themselves (descriptors, cached pages) live in packed vectors owned by the
// caller and are recycled through freelists. Iteration order over the table
// is never exposed: callers that need ordered traversal keep their own
// intrusive chains, which keeps every observable iteration deterministic.
#ifndef SRC_UTIL_FLAT_PAGE_MAP_H_
#define SRC_UTIL_FLAT_PAGE_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace duet {

class FlatPageMap {
 public:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  FlatPageMap() = default;

  // Returns the slot stored for (hi, lo), or kNoSlot. Defined inline: a
  // hook dispatch performs several probes and the call overhead across
  // translation units showed up as the single largest line in the hot-path
  // profile.
  uint32_t Find(uint64_t hi, uint64_t lo) const {
    if (cells_.empty()) {
      return kNoSlot;
    }
    const Cell* cells = cells_.data();
    uint64_t i = Hash(hi, lo) & mask_;
    while (true) {
      const Cell& c = cells[i];
      if (c.slot == kNoSlot) {
        return kNoSlot;
      }
      if (c.hi == hi && c.lo == lo) {
        return c.slot;
      }
      i = (i + 1) & mask_;
    }
  }

  // Inserts (hi, lo) -> slot. The key must not already be present.
  void Insert(uint64_t hi, uint64_t lo, uint32_t slot) {
    assert(slot != kNoSlot);
    if (cells_.empty() || (size_ + 1) * 10 > cells_.size() * 7) {
      Grow();
    }
    Cell* cells = cells_.data();
    uint64_t i = Hash(hi, lo) & mask_;
    while (cells[i].slot != kNoSlot) {
      assert(!(cells[i].hi == hi && cells[i].lo == lo));  // no duplicate keys
      i = (i + 1) & mask_;
    }
    cells[i] = Cell{hi, lo, slot};
    ++size_;
  }

  // Single-probe lookup-or-insert: returns the existing slot for (hi, lo),
  // or inserts `slot` and returns it. Callers that allocate an arena entry
  // speculatively (peek the freelist, commit only on insertion) use this to
  // halve the probes on the create path.
  uint32_t FindOrInsert(uint64_t hi, uint64_t lo, uint32_t slot) {
    assert(slot != kNoSlot);
    if (cells_.empty() || (size_ + 1) * 10 > cells_.size() * 7) {
      Grow();
    }
    Cell* cells = cells_.data();
    uint64_t i = Hash(hi, lo) & mask_;
    while (true) {
      Cell& c = cells[i];
      if (c.slot == kNoSlot) {
        c = Cell{hi, lo, slot};
        ++size_;
        return slot;
      }
      if (c.hi == hi && c.lo == lo) {
        return c.slot;
      }
      i = (i + 1) & mask_;
    }
  }

  // Removes (hi, lo). Returns the stored slot, or kNoSlot if absent.
  uint32_t Erase(uint64_t hi, uint64_t lo) {
    if (cells_.empty()) {
      return kNoSlot;
    }
    Cell* cells = cells_.data();
    uint64_t i = Hash(hi, lo) & mask_;
    while (true) {
      const Cell& c = cells[i];
      if (c.slot == kNoSlot) {
        return kNoSlot;
      }
      if (c.hi == hi && c.lo == lo) {
        break;
      }
      i = (i + 1) & mask_;
    }
    uint32_t slot = cells[i].slot;
    // Backward-shift deletion: close the probe chain so no tombstones
    // accumulate and lookups stay short under churn.
    uint64_t hole = i;
    uint64_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      Cell& c = cells[j];
      if (c.slot == kNoSlot) {
        break;
      }
      uint64_t home = Hash(c.hi, c.lo) & mask_;
      // Move c into the hole if its home position does not lie (cyclically)
      // strictly after the hole — i.e. probing from home would pass the hole.
      uint64_t dist_home_to_hole = (hole - home) & mask_;
      uint64_t dist_home_to_j = (j - home) & mask_;
      if (dist_home_to_hole <= dist_home_to_j) {
        cells[hole] = c;
        c.slot = kNoSlot;
        hole = j;
      }
    }
    cells[hole].slot = kNoSlot;
    --size_;
    return slot;
  }

  // Pre-sizes the table for `n` keys without rehashing along the way.
  void Reserve(size_t n);

  void Clear();

  size_t size() const { return size_; }
  uint64_t MemoryBytes() const { return cells_.capacity() * sizeof(Cell); }

 private:
  struct Cell {
    uint64_t hi = 0;
    uint64_t lo = 0;
    uint32_t slot = kNoSlot;  // kNoSlot marks an empty cell
  };

  static uint64_t Hash(uint64_t hi, uint64_t lo) {
    // splitmix64-style mix of both words; the low bits must be well mixed
    // because the table masks rather than mods.
    uint64_t x = hi * 0x9e3779b97f4a7c15ULL + lo;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void Grow();

  std::vector<Cell> cells_;
  size_t size_ = 0;
  uint64_t mask_ = 0;  // cells_.size() - 1; table is always a power of two
};

}  // namespace duet

#endif  // SRC_UTIL_FLAT_PAGE_MAP_H_
