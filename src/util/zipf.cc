#include "src/util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace duet {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return n_ - 1;
  }
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::CumulativeProbability(uint64_t k) const {
  if (k == 0) {
    return 0;
  }
  return cdf_[std::min(k, n_) - 1];
}

}  // namespace duet
