// Dense fixed-size bitmap with word-at-a-time scan helpers.
#ifndef SRC_UTIL_BITMAP_H_
#define SRC_UTIL_BITMAP_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace duet {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint64_t num_bits);

  void Resize(uint64_t num_bits);

  uint64_t size() const { return num_bits_; }

  void Set(uint64_t bit);
  void Clear(uint64_t bit);
  bool Test(uint64_t bit) const;

  // Sets or clears [begin, end).
  void SetRange(uint64_t begin, uint64_t end);
  void ClearRange(uint64_t begin, uint64_t end);

  // Number of set bits in the whole bitmap.
  uint64_t Count() const;
  // Number of set bits in [begin, end).
  uint64_t CountRange(uint64_t begin, uint64_t end) const;

  // First set (or clear) bit at or after `from`, or nullopt.
  std::optional<uint64_t> FindNextSet(uint64_t from) const;
  std::optional<uint64_t> FindNextClear(uint64_t from) const;

  bool AllClear() const;
  bool AllSet() const;

  void Reset();  // clears every bit

  // Approximate heap usage in bytes (for the memory-overhead experiments).
  uint64_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  uint64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace duet

#endif  // SRC_UTIL_BITMAP_H_
