#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace duet {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ConfidenceInterval95() const {
  if (count_ < 2) {
    return 0;
  }
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(double lo, double hi, uint64_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::Add(double x) {
  double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<uint64_t>(idx)];
  ++total_;
}

double Histogram::Percentile(double p) const {
  assert(p >= 0 && p <= 100);
  if (total_ == 0) {
    return lo_;
  }
  auto target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total_)));
  target = std::max<uint64_t>(target, 1);
  uint64_t seen = 0;
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (uint64_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return lo_ + width * static_cast<double>(i + 1);
    }
  }
  return hi_;
}

}  // namespace duet
