// Fundamental type aliases shared across the Duet simulation stack.
#ifndef SRC_UTIL_TYPES_H_
#define SRC_UTIL_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace duet {

// Logical block number on a block device. Blocks and pages share one size.
using BlockNo = uint64_t;

// Inode number within a file system. 0 is reserved as "invalid".
using InodeNo = uint64_t;

// Byte offset within a file or device.
using ByteOff = uint64_t;

// Page index within a file (byte offset / kPageSize).
using PageIdx = uint64_t;

// Size of a page, and of a file-system/device block. The paper's Duet
// operates at the Linux page granularity; we fix both to 4 KiB.
inline constexpr uint64_t kPageSize = 4096;

inline constexpr InodeNo kInvalidInode = 0;
inline constexpr BlockNo kInvalidBlock = ~0ULL;

// Converts a byte count to the number of pages that cover it.
constexpr uint64_t PagesForBytes(uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

}  // namespace duet

#endif  // SRC_UTIL_TYPES_H_
