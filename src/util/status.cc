#include "src/util/status.h"

namespace duet {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kExists:
      return "EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNoSpace:
      return "NO_SPACE";
    case StatusCode::kBusy:
      return "BUSY";
    case StatusCode::kLimit:
      return "LIMIT";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kPermission:
      return "PERMISSION";
    case StatusCode::kNotSupported:
      return "NOT_SUPPORTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kBusy;
}

}  // namespace duet
