// CRC32C (Castagnoli), the checksum Btrfs uses for data blocks. The cowfs
// scrubber verifies these checksums on every read, as the paper's Btrfs
// scrubber does, and logfs stamps every live block with one — making this
// the single hottest non-simulated computation in the stack.
//
// Three interchangeable kernels compute the same function:
//  * scalar   — byte-at-a-time table walk; the reference implementation.
//  * slice8   — slice-by-8: eight parallel tables fold 8 input bytes per
//               step, ~5-6x the scalar throughput with no special hardware.
//  * hw       — SSE4.2 `crc32` instruction (8 bytes/cycle-ish), selected at
//               runtime via CPUID; compiled with a per-function target
//               attribute so the binary still runs on non-SSE4.2 hosts.
//
// `Crc32c()` dispatches once (first call) to the fastest available kernel.
// The choice can be pinned for testing/CI:
//  * environment `DUET_CRC32C=scalar|slice8|hw` (checked at dispatch time);
//  * compile definition `DUET_CRC32C_FORCE_SCALAR` (removes the accelerated
//    paths entirely — the forced-scalar CI build).
// All kernels return identical values for identical input, so the choice
// never affects simulation results or trace fingerprints.
#ifndef SRC_UTIL_CRC32C_H_
#define SRC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace duet {

// Computes the CRC32C of `data[0..len)` starting from `seed` (pass 0 for a
// fresh checksum). Extending a checksum: pass the previous result as seed.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

// The individual kernels, exposed for the equivalence test and benchmarks.
uint32_t Crc32cScalar(const void* data, size_t len, uint32_t seed = 0);
uint32_t Crc32cSlice8(const void* data, size_t len, uint32_t seed = 0);

// True when this build and CPU can run the SSE4.2 kernel.
bool Crc32cHwAvailable();
// SSE4.2 kernel. Must only be called when Crc32cHwAvailable() is true.
uint32_t Crc32cHw(const void* data, size_t len, uint32_t seed = 0);

// Name of the kernel Crc32c() currently dispatches to ("scalar", "slice8",
// "hw"); resolves the dispatch if it has not run yet.
const char* Crc32cImplName();

}  // namespace duet

#endif  // SRC_UTIL_CRC32C_H_
