// Software CRC32C (Castagnoli), the checksum Btrfs uses for data blocks.
// The cowfs scrubber verifies these checksums on every read, as the paper's
// Btrfs scrubber does.
#ifndef SRC_UTIL_CRC32C_H_
#define SRC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace duet {

// Computes the CRC32C of `data[0..len)` starting from `seed` (pass 0 for a
// fresh checksum). Extending a checksum: pass the previous result as seed.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace duet

#endif  // SRC_UTIL_CRC32C_H_
