#include "src/util/range_bitmap.h"

#include <algorithm>
#include <cassert>

namespace duet {

void RangeBitmap::Resize(uint64_t num_bits) {
  num_bits_ = num_bits;
  // Drop chunks that now lie entirely beyond the end.
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->first * kChunkBits >= num_bits) {
      set_count_ -= it->second.Count();
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
}

Bitmap& RangeBitmap::ChunkFor(uint64_t bit) {
  uint64_t idx = bit / kChunkBits;
  auto it = chunks_.find(idx);
  if (it == chunks_.end()) {
    it = chunks_.emplace(idx, Bitmap(kChunkBits)).first;
  }
  return it->second;
}

void RangeBitmap::MaybeFree(uint64_t chunk_idx) {
  auto it = chunks_.find(chunk_idx);
  if (it != chunks_.end() && it->second.AllClear()) {
    chunks_.erase(it);
  }
}

void RangeBitmap::Set(uint64_t bit) {
  assert(bit < num_bits_);
  Bitmap& chunk = ChunkFor(bit);
  uint64_t off = bit % kChunkBits;
  if (!chunk.Test(off)) {
    chunk.Set(off);
    ++set_count_;
  }
}

void RangeBitmap::Clear(uint64_t bit) {
  assert(bit < num_bits_);
  auto it = chunks_.find(bit / kChunkBits);
  if (it == chunks_.end()) {
    return;
  }
  uint64_t off = bit % kChunkBits;
  if (it->second.Test(off)) {
    it->second.Clear(off);
    --set_count_;
    MaybeFree(bit / kChunkBits);
  }
}

bool RangeBitmap::Test(uint64_t bit) const {
  assert(bit < num_bits_);
  auto it = chunks_.find(bit / kChunkBits);
  return it != chunks_.end() && it->second.Test(bit % kChunkBits);
}

void RangeBitmap::SetRange(uint64_t begin, uint64_t end) {
  assert(begin <= end && end <= num_bits_);
  while (begin < end) {
    uint64_t chunk_idx = begin / kChunkBits;
    uint64_t chunk_end = std::min(end, (chunk_idx + 1) * kChunkBits);
    Bitmap& chunk = ChunkFor(begin);
    uint64_t lo = begin % kChunkBits;
    uint64_t hi = chunk_end - chunk_idx * kChunkBits;
    uint64_t before = chunk.CountRange(lo, hi);
    chunk.SetRange(lo, hi);
    set_count_ += (hi - lo) - before;
    begin = chunk_end;
  }
}

void RangeBitmap::ClearRange(uint64_t begin, uint64_t end) {
  assert(begin <= end && end <= num_bits_);
  while (begin < end) {
    uint64_t chunk_idx = begin / kChunkBits;
    uint64_t chunk_end = std::min(end, (chunk_idx + 1) * kChunkBits);
    auto it = chunks_.find(chunk_idx);
    if (it != chunks_.end()) {
      uint64_t lo = begin % kChunkBits;
      uint64_t hi = chunk_end - chunk_idx * kChunkBits;
      uint64_t before = it->second.CountRange(lo, hi);
      it->second.ClearRange(lo, hi);
      set_count_ -= before;
      MaybeFree(chunk_idx);
    }
    begin = chunk_end;
  }
}

std::optional<uint64_t> RangeBitmap::FindNextSet(uint64_t from) const {
  if (from >= num_bits_) {
    return std::nullopt;
  }
  for (auto it = chunks_.lower_bound(from / kChunkBits); it != chunks_.end(); ++it) {
    uint64_t base = it->first * kChunkBits;
    uint64_t start = (from > base) ? from - base : 0;
    if (auto bit = it->second.FindNextSet(start)) {
      uint64_t abs = base + *bit;
      if (abs < num_bits_) {
        return abs;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void RangeBitmap::Reset() {
  chunks_.clear();
  set_count_ = 0;
}

uint64_t RangeBitmap::MemoryBytes() const {
  // Chunk payload plus an estimate of the tree-node overhead (3 pointers,
  // color, key — round to 48 bytes, typical for std::map nodes on LP64).
  uint64_t bytes = 0;
  for (const auto& [idx, chunk] : chunks_) {
    (void)idx;
    bytes += chunk.MemoryBytes() + 48;
  }
  return bytes;
}

}  // namespace duet
