// Deterministic pseudo-random number generation for the simulation.
//
// Every stochastic component (workload pickers, file sizes, data payloads)
// draws from an explicitly seeded Rng so experiments are reproducible.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace duet {

// xoshiro256** 1.0 — small, fast, high-quality; state is seeded via
// splitmix64 so any 64-bit seed works well.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Bernoulli trial.
  bool Chance(double probability);

 private:
  uint64_t s_[4];
};

}  // namespace duet

#endif  // SRC_UTIL_RNG_H_
