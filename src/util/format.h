// printf-style string formatting (GCC 12 lacks std::format).
#ifndef SRC_UTIL_FORMAT_H_
#define SRC_UTIL_FORMAT_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace duet {

#if defined(__GNUC__)
#define DUET_PRINTF_LIKE(fmt_idx, args_idx) \
  __attribute__((format(printf, fmt_idx, args_idx)))
#else
#define DUET_PRINTF_LIKE(fmt_idx, args_idx)
#endif

inline std::string StrFormatV(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) {
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

DUET_PRINTF_LIKE(1, 2)
inline std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = StrFormatV(fmt, args);
  va_end(args);
  return out;
}

}  // namespace duet

#endif  // SRC_UTIL_FORMAT_H_
