// Small statistics helpers for experiment reporting: running mean/variance,
// 95% confidence intervals (paper reports these for latency and cleaning
// time), and a simple fixed-bucket histogram.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace duet {

// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance (n-1); 0 if count < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  // Half-width of the 95% confidence interval of the mean, using the normal
  // approximation (z = 1.96). Returns 0 for fewer than 2 samples.
  double ConfidenceInterval95() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Histogram over [lo, hi) with uniform bucket width; out-of-range samples
// clamp into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, uint64_t buckets);

  void Add(double x);

  uint64_t TotalCount() const { return total_; }
  double Percentile(double p) const;  // p in [0, 100]
  const std::vector<uint64_t>& buckets() const { return counts_; }

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace duet

#endif  // SRC_UTIL_STATS_H_
