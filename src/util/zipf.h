// Zipf-like sampler used to model the skewed Microsoft Production Build
// Server file-access distributions (paper Fig. 1). The paper shows that a
// small fraction of files absorbs the vast majority of accesses on the MS
// trace devices; a Zipf(s) law over file ranks reproduces that shape.
#ifndef SRC_UTIL_ZIPF_H_
#define SRC_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace duet {

class ZipfSampler {
 public:
  // Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^s.
  // s = 0 degenerates to uniform; the MS traces are matched by s ≈ 1.1.
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // Cumulative probability of the top `k` ranks; used to regenerate Fig. 1.
  double CumulativeProbability(uint64_t k) const;

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace duet

#endif  // SRC_UTIL_ZIPF_H_
