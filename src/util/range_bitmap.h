// Sparse bitmap backed by a red-black tree of fixed-size chunks.
//
// This mirrors the Duet paper (§4.2): "We use a red-black tree to dynamically
// allocate portions of the relevant and done bitmaps, to represent ranges
// that have marked bits, and deallocate them when all their bits are
// unmarked". Memory usage is reported so the §6.4 memory-overhead experiment
// can be reproduced.
#ifndef SRC_UTIL_RANGE_BITMAP_H_
#define SRC_UTIL_RANGE_BITMAP_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/util/bitmap.h"

namespace duet {

class RangeBitmap {
 public:
  // Bits covered per allocated chunk. 32768 bits = 4 KiB of payload per
  // chunk, matching the granularity a kernel implementation would allocate.
  static constexpr uint64_t kChunkBits = 32768;

  RangeBitmap() = default;
  // `num_bits` is the logical size of the bitmap (e.g. blocks on the device
  // or inodes in the file system). All bits start unset.
  explicit RangeBitmap(uint64_t num_bits) : num_bits_(num_bits) {}

  uint64_t size() const { return num_bits_; }
  void Resize(uint64_t num_bits);

  void Set(uint64_t bit);
  void Clear(uint64_t bit);
  bool Test(uint64_t bit) const;

  void SetRange(uint64_t begin, uint64_t end);
  void ClearRange(uint64_t begin, uint64_t end);

  uint64_t Count() const { return set_count_; }

  // First set bit at or after `from`, or nullopt. Skips unallocated chunks.
  std::optional<uint64_t> FindNextSet(uint64_t from) const;

  // Drops every chunk; all bits become unset.
  void Reset();

  // Number of currently allocated chunks and their total heap footprint.
  uint64_t chunk_count() const { return chunks_.size(); }
  uint64_t MemoryBytes() const;

 private:
  uint64_t num_bits_ = 0;
  uint64_t set_count_ = 0;
  // Keyed by chunk index (bit / kChunkBits). std::map is a red-black tree in
  // every mainstream implementation, matching the paper's structure.
  std::map<uint64_t, Bitmap> chunks_;

  Bitmap& ChunkFor(uint64_t bit);
  void MaybeFree(uint64_t chunk_idx);
};

}  // namespace duet

#endif  // SRC_UTIL_RANGE_BITMAP_H_
