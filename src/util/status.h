// Lightweight status / result types used at module boundaries.
//
// The Duet API in the paper mirrors POSIX syscalls (int return codes). We keep
// that flavour for the public Duet calls but use StatusCode/Result internally
// so call sites cannot ignore failure modes accidentally.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace duet {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // object does not exist (ENOENT)
  kExists,          // object already exists (EEXIST)
  kInvalidArgument, // bad parameter (EINVAL)
  kNoSpace,         // device or table full (ENOSPC)
  kBusy,            // resource busy (EBUSY)
  kLimit,           // a configured limit was reached
  kCorruption,      // checksum mismatch or invariant violation detected
  kPermission,      // access denied (EACCES)
  kNotSupported,    // operation not implemented for this object
  kIoError,         // device-level I/O failure (EIO), e.g. latent sector error
};

class Status;

// True for failures that a bounded retry-with-backoff may clear (transient
// device conditions), as opposed to hard errors like corruption.
bool IsTransient(const Status& status);

// Human-readable name for a status code, for logs and test failures.
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is either a value or an error status. Accessing the value of an
// error result is a programming bug (asserted).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "ok status requires a value");
  }
  Result(StatusCode code) : status_(code) {  // NOLINT
    assert(code != StatusCode::kOk && "ok status requires a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace duet

#endif  // SRC_UTIL_STATUS_H_
