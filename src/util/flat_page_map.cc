#include "src/util/flat_page_map.h"

#include <cassert>

namespace duet {

namespace {
constexpr size_t kMinCapacity = 16;
}  // namespace

void FlatPageMap::Reserve(size_t n) {
  size_t want = kMinCapacity;
  while (n * 10 > want * 7) {
    want *= 2;
  }
  if (want > cells_.size()) {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(want, Cell{});
    mask_ = want - 1;
    size_ = 0;
    for (const Cell& c : old) {
      if (c.slot != kNoSlot) {
        Insert(c.hi, c.lo, c.slot);
      }
    }
  }
}

void FlatPageMap::Grow() {
  size_t want = cells_.empty() ? kMinCapacity : cells_.size() * 2;
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(want, Cell{});
  mask_ = want - 1;
  size_ = 0;
  for (const Cell& c : old) {
    if (c.slot != kNoSlot) {
      Insert(c.hi, c.lo, c.slot);
    }
  }
}

void FlatPageMap::Clear() {
  cells_.clear();
  size_ = 0;
  mask_ = 0;
}

}  // namespace duet
