#include "src/tasks/gc_task.h"

#include <cassert>

#include "src/duet/duet_library.h"

namespace duet {

GcTask::GcTask(LogFs* fs, DuetCore* duet, GcConfig config)
    : fs_(fs), duet_(duet), config_(config) {
  assert(fs_ != nullptr);
  assert(!config_.use_duet || duet_ != nullptr);
  cached_.assign(fs_->segment_count(), 0);
}

GcTask::~GcTask() { Stop(); }

void GcTask::Start() {
  assert(!running_);
  running_ = true;
  stats_ = TaskStats{};
  stats_.started_at = fs_->loop().now();
  tobs_.Started(stats_.started_at);
  if (config_.use_duet) {
    Result<SessionId> sid =
        duet_->RegisterBlockTask(kDuetPageExists | kDuetPageFlushed);
    assert(sid.ok());
    sid_ = *sid;
  }
  tick_event_ = fs_->loop().ScheduleAfter(config_.wake_interval, [this] { Tick(); });
}

void GcTask::Stop() {
  if (running_) {
    tobs_.Finished(fs_->loop().now(), stats_.work_done);
  }
  running_ = false;
  if (tick_event_ != kInvalidEvent) {
    fs_->loop().Cancel(tick_event_);
    tick_event_ = kInvalidEvent;
  }
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
}

void GcTask::DrainDuetEvents() {
  tobs_.FetchCall();
  DrainEvents(*duet_, sid_, [this](const DuetItem& item) {
    SegmentNo seg = fs_->SegmentOf(item.id);
    if (seg >= cached_.size()) {
      return;
    }
    // Resolve the owning page through the back references (F2fs's SSA), so
    // a page that moved segments adjusts both counters (§5.4).
    Result<FileSystem::BlockOwner> owner = fs_->Rmap(item.id);
    if (!owner.ok()) {
      return;
    }
    std::pair<InodeNo, PageIdx> key{owner->ino, owner->idx};
    auto counted = counted_.find(key);
    if (item.has(kDuetPageRemoved)) {
      // Page left the cache.
      if (counted != counted_.end()) {
        if (cached_[counted->second] > 0) {
          --cached_[counted->second];
        }
        counted_.erase(counted);
      }
      return;
    }
    if (item.has(kDuetPageExists) || item.has(kDuetPageFlushed)) {
      // Page is cached and currently backed by `seg`. Move the count if it
      // was attributed to another segment (the block was relocated).
      if (counted != counted_.end()) {
        if (counted->second == seg) {
          return;
        }
        if (cached_[counted->second] > 0) {
          --cached_[counted->second];
        }
        counted->second = seg;
      } else {
        counted_.emplace(key, seg);
      }
      ++cached_[seg];
    }
  }, config_.fetch_batch);
}

double GcTask::VictimCost(SegmentNo seg, const SegmentInfo& info) const {
  SimTime now = fs_->loop().now();
  if (!config_.use_duet) {
    return GcCostBaseline(info, fs_->segment_blocks(), now);
  }
  int64_t cached = cached_[seg];
  if (cached < 0) {
    cached = 0;
  }
  uint64_t capped = std::min<uint64_t>(static_cast<uint64_t>(cached), info.valid);
  return GcCostDuet(info, fs_->segment_blocks(), now, capped);
}

void GcTask::Tick() {
  tick_event_ = kInvalidEvent;
  if (!running_) {
    return;
  }
  auto reschedule = [this] {
    if (running_) {
      tick_event_ =
          fs_->loop().ScheduleAfter(config_.wake_interval, [this] { Tick(); });
    }
  };
  if (config_.use_duet) {
    DrainDuetEvents();
  }
  // Run only when the device has been idle for a while (background GC) and
  // cleaning is actually needed.
  SimTime now = fs_->loop().now();
  SimTime last_activity = fs_->device().last_best_effort_activity();
  bool idle = !fs_->device().busy() && now - last_activity >= config_.idle_threshold;
  bool needed = config_.free_watermark == 0 ||
                fs_->free_segments() < config_.free_watermark;
  if (!idle || !needed || cleaning_) {
    reschedule();
    return;
  }
  std::optional<SegmentNo> victim = fs_->SelectVictim(
      window_cursor_, config_.window_segments,
      [this](SegmentNo seg, const SegmentInfo& info) { return VictimCost(seg, info); });
  window_cursor_ = (window_cursor_ + config_.window_segments) % fs_->segment_count();
  if (!victim.has_value()) {
    reschedule();
    return;
  }
  cleaning_ = true;
  tobs_.ChunkStarted(now, *victim, 0);
  fs_->CleanSegment(*victim, config_.io_class, [this, reschedule](const CleanResult& r) {
    cleaning_ = false;
    tobs_.ChunkFinished(fs_->loop().now(), r.segment, r.blocks_moved);
    if (r.status.ok() && r.blocks_moved > 0) {
      ++segments_cleaned_;
      cleaning_time_ms_.Add(ToMillis(r.duration));
      stats_.work_done += r.blocks_moved;
      stats_.io_read_pages += r.blocks_read_disk;
      stats_.saved_read_pages += r.blocks_from_cache;
      // Counters for the cleaned segment are stale now; reset them.
      if (r.segment < cached_.size()) {
        cached_[r.segment] = 0;
      }
    }
    reschedule();
  });
}

}  // namespace duet
