// Background garbage collector for logfs (paper §5.4), modeled on the F2fs
// cleaner: it wakes periodically, and if the device has been idle it scans a
// window of segments, picks the victim with the minimum cost, and cleans it.
//
// Opportunistic mode registers a Duet block task for Exists ∨ Flushed and
// maintains per-segment counters of cached valid blocks from the events; the
// cost function charges `valid - cached/2` blocks for the move instead of
// `valid` (reads and writes weighed equally; cached blocks save the read).
// The done primitives are not used — a segment can always become dirty again.
#ifndef SRC_TASKS_GC_TASK_H_
#define SRC_TASKS_GC_TASK_H_

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/duet/duet_core.h"
#include "src/logfs/logfs.h"
#include "src/tasks/task_obs.h"
#include "src/tasks/task_stats.h"
#include "src/util/stats.h"

namespace duet {

struct GcConfig {
  bool use_duet = false;
  SimDuration wake_interval = Millis(500);   // cleaner wake-up period
  SimDuration idle_threshold = Millis(50);   // device idle time before running
  uint64_t window_segments = 4096;           // victim-search window (§5.4)
  // Clean only when free segments drop below this watermark (0 = always).
  uint64_t free_watermark = 0;
  // F2fs gates *when* the cleaner runs on idleness, but its reads are
  // ordinary kernel I/O, not idle-class.
  IoClass io_class = IoClass::kBestEffort;
  size_t fetch_batch = 256;
};

class GcTask {
 public:
  GcTask(LogFs* fs, DuetCore* duet, GcConfig config);
  ~GcTask();

  void Start();
  void Stop();

  const TaskStats& stats() const { return stats_; }
  // Per-segment cleaning time distribution (paper Table 6).
  const RunningStats& cleaning_time_ms() const { return cleaning_time_ms_; }
  uint64_t segments_cleaned() const { return segments_cleaned_; }
  // Ground-truth check of the event-maintained counters (tests).
  int64_t CachedCounter(SegmentNo seg) const { return cached_[seg]; }

 private:
  void Tick();
  void DrainDuetEvents();
  double VictimCost(SegmentNo seg, const SegmentInfo& info) const;

  LogFs* fs_;
  DuetCore* duet_;
  GcConfig config_;
  SessionId sid_ = kInvalidSession;
  bool running_ = false;
  bool cleaning_ = false;
  EventId tick_event_ = kInvalidEvent;
  SegmentNo window_cursor_ = 0;
  std::vector<int64_t> cached_;  // per-segment cached-valid-block counters
  // Which segment each cached page was last counted against, so moves adjust
  // both the old and the new segment's counters (§5.4).
  struct PageKeyHash {
    size_t operator()(const std::pair<InodeNo, PageIdx>& k) const {
      return std::hash<uint64_t>()(k.first * 0x9e3779b97f4a7c15ULL ^ k.second);
    }
  };
  std::unordered_map<std::pair<InodeNo, PageIdx>, SegmentNo, PageKeyHash> counted_;
  uint64_t segments_cleaned_ = 0;
  RunningStats cleaning_time_ms_;
  TaskObs tobs_{"gc", TaskTag::kGc};
  TaskStats stats_;
};

}  // namespace duet

#endif  // SRC_TASKS_GC_TASK_H_
