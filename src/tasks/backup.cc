#include "src/tasks/backup.h"

#include <cassert>

#include "src/duet/duet_library.h"
#include "src/fs/meta_codec.h"

namespace duet {

Backup::Backup(CowFs* fs, DuetCore* duet, BackupConfig config)
    : fs_(fs), duet_(duet), config_(config) {
  assert(fs_ != nullptr);
  assert(!config_.use_duet || duet_ != nullptr);
}

Backup::~Backup() { Stop(); }

void Backup::EnableCursorPersistence(DurableImage* image, std::string key) {
  cursor_image_ = image;
  cursor_key_ = std::move(key);
}

void Backup::SaveCursor(InodeNo done_up_to) {
  if (cursor_image_ != nullptr) {
    PutCursorMeta(cursor_image_, cursor_key_, {snapshot_, done_up_to});
  }
}

void Backup::Start(std::function<void()> on_finish) {
  assert(!running_);
  on_finish_ = std::move(on_finish);
  running_ = true;
  stats_ = TaskStats{};
  stats_.started_at = fs_->loop().now();
  tobs_.Started(stats_.started_at);
  resumed_ = false;
  resumed_pages_ = 0;
  if (cursor_image_ != nullptr) {
    std::optional<std::vector<uint64_t>> saved =
        GetCursorMeta(*cursor_image_, cursor_key_);
    if (saved.has_value() && saved->size() == 2 &&
        fs_->GetSnapshot((*saved)[0]) != nullptr) {
      // The snapshot an interrupted run streamed from survived the crash
      // (it was part of the committed superblock): pick up where it left
      // off instead of snapshotting and streaming everything again.
      snapshot_ = (*saved)[0];
      resumed_ = true;
      BeginStreaming((*saved)[1]);
      return;
    }
  }
  fs_->CreateSnapshotAsync([this](Result<SnapshotId> snap) {
    if (!snap.ok() || !running_) {
      running_ = false;
      return;
    }
    snapshot_ = *snap;
    SaveCursor(0);
    BeginStreaming(0);
  });
}

void Backup::BeginStreaming(InodeNo resume_after) {
  const CowFs::Snapshot* s = fs_->GetSnapshot(snapshot_);
  for (const auto& [ino, file] : s->files) {
    bool already_sent = ino <= resume_after;
    sent_.emplace(ino, std::vector<bool>(file.blocks.size(), already_sent));
    if (already_sent) {
      resumed_pages_ += file.blocks.size();
    } else {
      stats_.work_total += file.blocks.size();
    }
  }
  file_it_ = s->files.upper_bound(resume_after);
  if (config_.use_duet) {
    Result<SessionId> sid = duet_->RegisterBlockTask(kDuetPageExists);
    assert(sid.ok());
    sid_ = *sid;
    poll_event_ =
        fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
  }
  ProcessNextFile();
}

void Backup::PollTick() {
  poll_event_ = kInvalidEvent;
  if (!running_) {
    return;
  }
  DrainDuetEvents();
  if (pages_sent_ >= stats_.work_total) {
    FinishRun();  // everything was copied opportunistically
    return;
  }
  poll_event_ =
      fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
}

void Backup::Stop() {
  running_ = false;
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (snapshot_ != 0) {
    (void)fs_->DeleteSnapshot(snapshot_);
    snapshot_ = 0;
  }
}

bool Backup::MarkSent(InodeNo ino, PageIdx idx) {
  auto it = sent_.find(ino);
  if (it == sent_.end() || idx >= it->second.size() || it->second[idx]) {
    return false;
  }
  it->second[idx] = true;
  ++pages_sent_;
  return true;
}

void Backup::DrainDuetEvents() {
  tobs_.FetchCall();
  const CowFs::Snapshot* snap = fs_->GetSnapshot(snapshot_);
  DrainEvents(*duet_, sid_, [this, snap](const DuetItem& item) {
    if (!item.has(kDuetPageExists)) {
      return;  // ¬exists notifications are uninteresting here
    }
    BlockNo block = item.id;
    Result<FileSystem::BlockOwner> owner = fs_->Rmap(block);
    if (!owner.ok()) {
      return;
    }
    auto file_entry = snap->files.find(owner->ino);
    if (file_entry == snap->files.end() ||
        owner->idx >= file_entry->second.blocks.size() ||
        file_entry->second.blocks[owner->idx] != block) {
      return;  // not part of the snapshot, or modified since
    }
    // "Lock the page, check that it is not dirty, copy it out" (§5.2).
    const CachedPage* page = fs_->cache().Peek(owner->ino, owner->idx);
    if (page == nullptr || page->dirty) {
      return;  // hint went stale or content is in flux — back out
    }
    if (MarkSent(owner->ino, owner->idx)) {
      ++stats_.work_done;
      ++stats_.saved_read_pages;
      ++stats_.opportunistic_units;
      (void)duet_->SetDone(sid_, block);
    }
  }, config_.fetch_batch);
}

void Backup::FinishRun() {
  stats_.finished = true;
  stats_.finished_at = fs_->loop().now();
  tobs_.Finished(stats_.finished_at, stats_.work_done);
  running_ = false;
  if (cursor_image_ != nullptr) {
    // Run complete: the next backup snapshots afresh.
    PutCursorMeta(cursor_image_, cursor_key_, {0, 0});
  }
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (on_finish_) {
    on_finish_();
  }
}

void Backup::ProcessNextFile() {
  if (!running_) {
    return;
  }
  if (config_.use_duet) {
    DrainDuetEvents();
  }
  const CowFs::Snapshot* snap = fs_->GetSnapshot(snapshot_);
  if (file_it_ == snap->files.end()) {
    FinishRun();
    return;
  }
  ProcessFileChunk(file_it_->first, 0);
}

void Backup::ProcessFileChunk(InodeNo ino, PageIdx next_page) {
  if (!running_) {
    return;
  }
  if (config_.use_duet) {
    DrainDuetEvents();
  }
  const CowFs::Snapshot* snap = fs_->GetSnapshot(snapshot_);
  auto file_entry = snap->files.find(ino);
  assert(file_entry != snap->files.end());
  const CowFs::SnapshotFile& file = file_entry->second;
  const std::vector<bool>& sent = sent_.at(ino);

  // Find the next unsent page of this file.
  PageIdx p = next_page;
  while (p < file.blocks.size() && sent[p]) {
    ++p;
  }
  if (p >= file.blocks.size()) {
    // The in-order stream is past every file up to and including this one;
    // an interrupted run can resume from here.
    SaveCursor(ino);
    ++file_it_;
    // Hop through the event loop: long runs of fully-sent files must not
    // recurse on the stack.
    fs_->loop().ScheduleAfter(0, [this] { ProcessNextFile(); });
    return;
  }

  // Build a run of unsent pages with the same sharing category.
  bool shared = fs_->SharedWithSnapshot(snapshot_, ino, p);
  PageIdx end = p;
  while (end < file.blocks.size() && !sent[end] && end - p < config_.chunk_pages &&
         fs_->SharedWithSnapshot(snapshot_, ino, end) == shared) {
    ++end;
  }
  uint64_t count = end - p;

  tobs_.ChunkStarted(fs_->loop().now(), ino, count);
  auto complete = [this, ino, p, end](uint64_t read_pages, uint64_t cached_pages) {
    if (!running_) {
      return;  // the run finished (opportunistically) or was stopped
    }
    for (PageIdx q = p; q < end; ++q) {
      if (MarkSent(ino, q)) {
        ++stats_.work_done;
      }
    }
    stats_.io_read_pages += read_pages;
    stats_.saved_read_pages += cached_pages;
    tobs_.ChunkFinished(fs_->loop().now(), ino, end - p);
    ProcessFileChunk(ino, end);
  };

  if (shared) {
    // Unmodified since the snapshot: read through the live file (this
    // populates the page cache — visible to other Duet tasks).
    fs_->Read(ino, p * kPageSize, count * kPageSize, config_.io_class,
              [complete](const FsIoResult& result) {
                complete(result.pages_from_disk, result.pages_from_cache);
              });
  } else {
    // Modified since the snapshot: stream the preserved old blocks.
    std::vector<BlockNo> blocks(file.blocks.begin() + static_cast<long>(p),
                                file.blocks.begin() + static_cast<long>(end));
    fs_->ReadBlocks(std::move(blocks), config_.io_class,
                    [complete](const RawReadResult& result) {
                      complete(result.blocks_read, 0);
                    });
  }
}

bool Backup::AllPagesSentOnce() const {
  for (const auto& [ino, pages] : sent_) {
    for (bool sent : pages) {
      if (!sent) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace duet
