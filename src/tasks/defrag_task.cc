#include "src/tasks/defrag_task.h"

#include <algorithm>
#include <cassert>

namespace duet {

DefragTask::DefragTask(CowFs* fs, DuetCore* duet, DefragConfig config)
    : fs_(fs), duet_(duet), config_(config) {
  assert(fs_ != nullptr);
  assert(!config_.use_duet || duet_ != nullptr);
}

DefragTask::~DefragTask() { Stop(); }

void DefragTask::Start(std::function<void()> on_finish) {
  assert(!running_);
  on_finish_ = std::move(on_finish);
  running_ = true;
  stats_ = TaskStats{};
  stats_.started_at = fs_->loop().now();
  tobs_.Started(stats_.started_at);

  // Collect fragmented files in inode order (the baseline processing order,
  // Table 3). Work units are pages: each fragmented file costs read+write of
  // all its pages.
  Result<InodeNo> root = fs_->ns().Resolve(config_.root);
  assert(root.ok());
  std::vector<const Inode*> files;
  fs_->ns().WalkDepthFirst(*root, [&](const Inode& inode) {
    if (!inode.is_dir() && fs_->ExtentCount(inode.ino) > config_.extent_threshold) {
      files.push_back(&inode);
    }
    return true;
  });
  std::sort(files.begin(), files.end(),
            [](const Inode* a, const Inode* b) { return a->ino < b->ino; });
  for (const Inode* f : files) {
    targets_.push_back(f->ino);
    stats_.work_total += 2 * f->PageCount();  // read + write
  }
  cursor_ = 0;

  if (config_.use_duet) {
    // Priority: fraction of the file's pages in memory relative to its size
    // (§5.3).
    queue_ = std::make_unique<InodePriorityQueue>(
        [this](InodeNo ino, uint64_t pages) {
          const Inode* inode = fs_->ns().Get(ino);
          if (inode == nullptr || inode->PageCount() == 0) {
            return 0.0;
          }
          return static_cast<double>(pages) /
                 static_cast<double>(inode->PageCount());
        });
    Result<SessionId> sid = duet_->RegisterFileTask(config_.root, kDuetPageExists);
    assert(sid.ok());
    sid_ = *sid;
  }
  ProcessNext();
}

void DefragTask::Stop() {
  running_ = false;
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
}

void DefragTask::DrainDuetEvents() {
  tobs_.FetchCall();
  DrainEvents(*duet_, sid_, *queue_, config_.fetch_batch);
}

bool DefragTask::ShouldProcess(InodeNo ino) const {
  if (config_.use_duet && duet_->CheckDone(sid_, ino)) {
    return false;
  }
  const Inode* inode = fs_->ns().Get(ino);
  // A COW overwrite may have defragmented (or deleted) the file meanwhile —
  // the task can simply skip it (§3.1).
  return inode != nullptr && fs_->ExtentCount(ino) > config_.extent_threshold;
}

void DefragTask::FinishRun() {
  stats_.finished = true;
  stats_.finished_at = fs_->loop().now();
  tobs_.Finished(stats_.finished_at, stats_.work_done);
  running_ = false;
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (on_finish_) {
    on_finish_();
  }
}

void DefragTask::ProcessNext() {
  if (!running_) {
    return;
  }
  // Opportunistic phase: drain events and process the hottest queued file.
  if (config_.use_duet) {
    DrainDuetEvents();
    while (std::optional<InodeNo> hot = queue_->Dequeue()) {
      if (ShouldProcess(*hot)) {
        DefragOne(*hot, /*opportunistic=*/true);
        return;
      }
    }
  }
  // Normal order: next fragmented file by inode number.
  while (cursor_ < targets_.size()) {
    InodeNo ino = targets_[cursor_++];
    if (ShouldProcess(ino)) {
      DefragOne(ino, /*opportunistic=*/false);
      return;
    }
    if (config_.use_duet && duet_->CheckDone(sid_, ino)) {
      continue;  // processed opportunistically; already credited there
    }
    // Defragmented by a COW overwrite or deleted by the workload: the
    // obligation is discharged without I/O.
    const Inode* inode = fs_->ns().Get(ino);
    stats_.work_done += 2 * (inode != nullptr ? inode->PageCount() : 0);
  }
  FinishRun();
}

void DefragTask::DefragOne(InodeNo ino, bool opportunistic) {
  tobs_.ChunkStarted(fs_->loop().now(), ino, 0);
  fs_->DefragFile(ino, config_.io_class, [this, ino,
                                          opportunistic](const DefragResult& result) {
    tobs_.ChunkFinished(fs_->loop().now(), ino, result.pages);
    if (result.status.ok()) {
      ++files_defragmented_;
      stats_.work_done += 2 * result.pages;
      stats_.io_read_pages += result.pages_read_disk;
      stats_.io_write_pages += result.pages_written;
      stats_.saved_read_pages += result.pages_from_cache;
      // Pages the workload had already dirtied would have been written back
      // anyway — their writeback is work the system saves (§6.2).
      stats_.saved_write_pages += result.dirty_pages;
      if (opportunistic) {
        stats_.opportunistic_units += 2 * result.pages;
      }
    }
    if (config_.use_duet) {
      (void)duet_->SetDone(sid_, ino);
      queue_->Erase(ino);
    }
    if (running_) {
      fs_->loop().ScheduleAfter(0, [this] { ProcessNext(); });
    }
  });
}

}  // namespace duet
