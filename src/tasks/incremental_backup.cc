#include "src/tasks/incremental_backup.h"

#include <algorithm>
#include <cassert>

#include "src/duet/duet_library.h"

namespace duet {

IncrementalBackup::IncrementalBackup(CowFs* fs, DuetCore* duet,
                                     IncrementalBackupConfig config)
    : fs_(fs), duet_(duet), config_(config) {
  assert(fs_ != nullptr);
  assert(!config_.use_duet || duet_ != nullptr);
}

IncrementalBackup::~IncrementalBackup() { Stop(); }

void IncrementalBackup::BeginEpoch() {
  assert(!epoch_open_);
  epoch_open_ = true;
  running_ = true;
  stats_ = TaskStats{};
  stats_.started_at = fs_->loop().now();
  tobs_.Started(stats_.started_at);
  captured_.clear();
  fs_->CreateSnapshotAsync([this](Result<SnapshotId> snap) {
    assert(snap.ok());
    base_snapshot_ = *snap;
    if (config_.use_duet) {
      // Modified-state notifications: an item arrives when a page's dirty
      // status changes; ¬Modified (Flushed polarity) means the cached page
      // now matches the on-disk block — safe to capture.
      Result<SessionId> sid = duet_->RegisterBlockTask(kDuetPageModified);
      assert(sid.ok());
      sid_ = *sid;
      poll_event_ =
          fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
    }
  });
}

void IncrementalBackup::DrainDuetEvents() {
  tobs_.FetchCall();
  DrainEvents(*duet_, sid_, [this](const DuetItem& item) {
    if (!item.has(kDuetPageFlushed)) {
      return;  // page became dirty: content still in flux
    }
    Result<FileSystem::BlockOwner> owner = fs_->Rmap(item.id);
    if (!owner.ok()) {
      return;
    }
    const CachedPage* page = fs_->cache().Peek(owner->ino, owner->idx);
    if (page == nullptr || page->dirty) {
      return;  // hint went stale
    }
    // Copy the just-flushed content from memory — the read the paper's §1
    // example saves.
    captured_[PageKey{owner->ino, owner->idx}] = page->data;
    ++stats_.opportunistic_units;
  }, config_.fetch_batch);
}

void IncrementalBackup::PollTick() {
  poll_event_ = kInvalidEvent;
  if (!running_ || sid_ == kInvalidSession) {
    return;
  }
  DrainDuetEvents();
  poll_event_ =
      fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
}

void IncrementalBackup::EndEpoch(std::function<void()> on_finish) {
  assert(epoch_open_);
  on_finish_ = std::move(on_finish);
  // Flush everything so the end snapshot and the captured pages agree with
  // the on-disk state, then cut the snapshot and catch up on the diff.
  fs_->CreateSnapshotAsync([this](Result<SnapshotId> snap) {
    assert(snap.ok());
    end_snapshot_ = *snap;
    if (config_.use_duet && sid_ != kInvalidSession) {
      DrainDuetEvents();  // final flush events from the sync above
      if (poll_event_ != kInvalidEvent) {
        fs_->loop().Cancel(poll_event_);
        poll_event_ = kInvalidEvent;
      }
      (void)duet_->Deregister(sid_);
      sid_ = kInvalidSession;
    }
    // Build the diff worklist.
    const CowFs::Snapshot* base = fs_->GetSnapshot(base_snapshot_);
    const CowFs::Snapshot* end = fs_->GetSnapshot(end_snapshot_);
    pending_reads_.clear();
    pending_cursor_ = 0;
    for (const auto& [ino, end_file] : end->files) {
      const CowFs::SnapshotFile* base_file = nullptr;
      auto base_it = base->files.find(ino);
      if (base_it != base->files.end()) {
        base_file = &base_it->second;
      }
      for (PageIdx p = 0; p < end_file.blocks.size(); ++p) {
        BlockNo end_block = end_file.blocks[p];
        if (end_block == kInvalidBlock) {
          continue;
        }
        bool changed = base_file == nullptr || p >= base_file->blocks.size() ||
                       base_file->blocks[p] != end_block;
        if (!changed) {
          continue;
        }
        ++stats_.work_total;
        PageKey key{ino, p};
        auto captured = captured_.find(key);
        if (captured != captured_.end() &&
            captured->second == fs_->DiskToken(end_block)) {
          // Already captured from memory: read saved.
          ++stats_.saved_read_pages;
          ++stats_.work_done;
          continue;
        }
        pending_reads_.emplace_back(key, end_block);
      }
    }
    ProcessDiff();
  });
}

void IncrementalBackup::ProcessDiff() {
  if (!running_) {
    return;
  }
  if (pending_cursor_ >= pending_reads_.size()) {
    stats_.finished = true;
    stats_.finished_at = fs_->loop().now();
    tobs_.Finished(stats_.finished_at, stats_.work_done);
    epoch_open_ = false;
    if (on_finish_) {
      on_finish_();
    }
    return;
  }
  size_t end = std::min(pending_reads_.size(),
                        pending_cursor_ + config_.chunk_pages);
  std::vector<BlockNo> blocks;
  blocks.reserve(end - pending_cursor_);
  for (size_t i = pending_cursor_; i < end; ++i) {
    blocks.push_back(pending_reads_[i].second);
  }
  size_t first = pending_cursor_;
  pending_cursor_ = end;
  tobs_.ChunkStarted(fs_->loop().now(), first, end - first);
  fs_->ReadBlocks(std::move(blocks), config_.io_class,
                  [this, first, end](const RawReadResult& result) {
                    if (!running_) {
                      return;
                    }
                    stats_.io_read_pages += result.blocks_read;
                    if (IsTransient(result.status) &&
                        batch_retry_ < config_.max_retries) {
                      // Device busy window: retry the batch with backoff.
                      ++batch_retry_;
                      tobs_.Retry(fs_->loop().now(), first, batch_retry_);
                      pending_cursor_ = first;
                      fs_->loop().ScheduleAfter(
                          config_.retry_backoff * (SimDuration{1} << (batch_retry_ - 1)),
                          [this] { ProcessDiff(); });
                      return;
                    }
                    batch_retry_ = 0;
                    tobs_.ChunkFinished(fs_->loop().now(), first, end - first);
                    for (size_t i = first; i < end; ++i) {
                      // Blocks that failed to read or verify are not
                      // captured; the next increment retries them.
                      if (std::binary_search(result.bad_blocks.begin(),
                                             result.bad_blocks.end(),
                                             pending_reads_[i].second)) {
                        continue;
                      }
                      captured_[pending_reads_[i].first] =
                          fs_->DiskToken(pending_reads_[i].second);
                      ++stats_.work_done;
                    }
                    ProcessDiff();
                  });
}

void IncrementalBackup::Stop() {
  running_ = false;
  epoch_open_ = false;
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (base_snapshot_ != 0) {
    (void)fs_->DeleteSnapshot(base_snapshot_);
    base_snapshot_ = 0;
  }
  if (end_snapshot_ != 0) {
    (void)fs_->DeleteSnapshot(end_snapshot_);
    end_snapshot_ = 0;
  }
}

bool IncrementalBackup::IncrementComplete() const {
  const CowFs::Snapshot* base = fs_->GetSnapshot(base_snapshot_);
  const CowFs::Snapshot* end = fs_->GetSnapshot(end_snapshot_);
  if (base == nullptr || end == nullptr) {
    return false;
  }
  for (const auto& [ino, end_file] : end->files) {
    const CowFs::SnapshotFile* base_file = nullptr;
    auto base_it = base->files.find(ino);
    if (base_it != base->files.end()) {
      base_file = &base_it->second;
    }
    for (PageIdx p = 0; p < end_file.blocks.size(); ++p) {
      BlockNo end_block = end_file.blocks[p];
      if (end_block == kInvalidBlock) {
        continue;
      }
      bool changed = base_file == nullptr || p >= base_file->blocks.size() ||
                     base_file->blocks[p] != end_block;
      if (!changed) {
        continue;
      }
      auto captured = captured_.find(PageKey{ino, p});
      if (captured == captured_.end() ||
          captured->second != fs_->DiskToken(end_block)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace duet
