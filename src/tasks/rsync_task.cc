#include "src/tasks/rsync_task.h"

#include <algorithm>
#include <cassert>

namespace duet {
namespace {

// Joins base and relative paths with exactly one slash.
std::string JoinPath(const std::string& base, const std::string& rel) {
  std::string out = base;
  if (!out.empty() && out.back() == '/') {
    out.pop_back();
  }
  if (!rel.empty() && rel.front() != '/') {
    out += '/';
  }
  out += rel;
  return out.empty() ? "/" : out;
}

}  // namespace

RsyncTask::RsyncTask(FileSystem* src, FileSystem* dst, DuetCore* duet,
                     RsyncConfig config)
    : src_(src), dst_(dst), duet_(duet), config_(config) {
  assert(src_ != nullptr && dst_ != nullptr);
  if (config_.use_duet) {
    config_.hints = RsyncHints::kDuet;
  }
  assert(config_.hints != RsyncHints::kDuet || duet_ != nullptr);
  config_.use_duet = config_.hints == RsyncHints::kDuet;
}

RsyncTask::~RsyncTask() { Stop(); }

void RsyncTask::Start(std::function<void()> on_finish) {
  assert(!running_);
  on_finish_ = std::move(on_finish);
  running_ = true;
  stats_ = TaskStats{};
  stats_.started_at = src_->loop().now();
  tobs_.Started(stats_.started_at);

  Result<InodeNo> root = src_->ns().Resolve(config_.source_dir);
  assert(root.ok());
  src_->ns().WalkDepthFirst(*root, [&](const Inode& inode) {
    if (!inode.is_dir()) {
      worklist_.push_back(inode.ino);
      stats_.work_total += 2 * inode.PageCount();  // read + write
    }
    return true;
  });
  cursor_ = 0;

  if (config_.hints == RsyncHints::kDuet) {
    // Priority: absolute number of pages in memory (§5.5).
    queue_ = std::make_unique<InodePriorityQueue>(
        [](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
    Result<SessionId> sid =
        duet_->RegisterFileTask(config_.source_dir, kDuetPageExists);
    assert(sid.ok());
    sid_ = *sid;
  } else if (config_.hints == RsyncHints::kInotify) {
    // One watch per directory, recursively — the setup cost Duet avoids
    // with a single registration (§3.3).
    inotify_ = std::make_unique<Inotify>(src_);
    Result<InodeNo> watch_root = src_->ns().Resolve(config_.source_dir);
    assert(watch_root.ok());
    Result<uint64_t> created =
        inotify_->AddWatchRecursive(*watch_root, kInAccess | kInModify);
    watches_created_ = created.ok() ? *created : 0;
  }
  ProcessNext();
}

void RsyncTask::Stop() {
  running_ = false;
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
}

void RsyncTask::DrainDuetEvents() {
  tobs_.FetchCall();
  DrainEvents(*duet_, sid_, *queue_, config_.fetch_batch);
}

void RsyncTask::FinishRun() {
  stats_.finished = true;
  stats_.finished_at = src_->loop().now();
  tobs_.Finished(stats_.finished_at, stats_.work_done);
  running_ = false;
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (on_finish_) {
    on_finish_();
  }
}

void RsyncTask::ProcessNext() {
  if (!running_) {
    return;
  }
  if (config_.hints == RsyncHints::kDuet) {
    DrainDuetEvents();
    while (std::optional<InodeNo> hot = queue_->Dequeue()) {
      if (synced_.count(*hot) > 0) {
        continue;
      }
      // The path lookup is the truth for the hint (§3.2): back out if the
      // file's pages are gone or it left the registered directory.
      if (!duet_->GetPath(sid_, *hot).ok()) {
        continue;
      }
      SyncFile(*hot, /*opportunistic=*/true);
      return;
    }
  } else if (config_.hints == RsyncHints::kInotify) {
    // File-level hints only: most-recently-touched first, with no idea how
    // much of the file is still cached (or whether it was evicted).
    for (const InotifyEvent& event : inotify_->ReadEvents(config_.fetch_batch)) {
      recent_.push_back(event.ino);
    }
    while (!recent_.empty()) {
      InodeNo hot = recent_.back();
      recent_.pop_back();
      if (synced_.count(hot) > 0 || !src_->ns().Exists(hot)) {
        continue;
      }
      SyncFile(hot, /*opportunistic=*/true);
      return;
    }
  }
  while (cursor_ < worklist_.size()) {
    InodeNo ino = worklist_[cursor_++];
    if (synced_.count(ino) > 0) {
      continue;  // sent opportunistically; metadata goes out exactly once
    }
    if (!src_->ns().Exists(ino)) {
      continue;  // deleted since the walk
    }
    SyncFile(ino, /*opportunistic=*/false);
    return;
  }
  FinishRun();
}

void RsyncTask::SyncFile(InodeNo src_ino, bool opportunistic) {
  synced_.insert(src_ino);
  const Inode* inode = src_->ns().Get(src_ino);
  if (inode == nullptr) {
    src_->loop().ScheduleAfter(0, [this] { ProcessNext(); });
    return;
  }
  // Sender transmits the file metadata; receiver creates the file (and any
  // missing parent directories).
  Result<std::string> src_path = src_->ns().PathOf(src_ino);
  assert(src_path.ok());
  std::string rel = *src_path;
  Result<InodeNo> src_root = src_->ns().Resolve(config_.source_dir);
  Result<std::string> base = src_->ns().PathOf(*src_root);
  if (base.ok() && *base != "/") {
    rel = rel.substr(base->size());
  }
  std::string dst_path = JoinPath(config_.dest_dir, rel);
  // Ensure the destination directory chain exists.
  auto parts = SplitPath(dst_path);
  std::string prefix;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    prefix += '/';
    prefix += parts[i];
    Result<InodeNo> made = dst_->Mkdir(prefix);
    (void)made;  // kExists is fine
  }
  Result<InodeNo> dst_ino = dst_->ns().Resolve(dst_path);
  if (!dst_ino.ok()) {
    dst_ino = dst_->CreateFile(dst_path);
  }
  if (!dst_ino.ok()) {
    src_->loop().ScheduleAfter(0, [this] { ProcessNext(); });
    return;
  }
  if (opportunistic) {
    stats_.opportunistic_units += 2 * inode->PageCount();
  }
  CopyChunk(src_ino, *dst_ino, 0, inode->size, opportunistic);
}

void RsyncTask::CopyChunk(InodeNo src_ino, InodeNo dst_ino, PageIdx next_page,
                          uint64_t src_size, bool opportunistic) {
  if (!running_) {
    return;
  }
  if (config_.hints == RsyncHints::kDuet) {
    DrainDuetEvents();  // keep the queue fresh while a large file streams
  }
  uint64_t total_pages = PagesForBytes(src_size);
  if (next_page >= total_pages) {
    ++files_synced_;
    src_->loop().ScheduleAfter(0, [this] { ProcessNext(); });
    return;
  }
  uint64_t count = std::min<uint64_t>(config_.chunk_pages, total_pages - next_page);
  ByteOff off = next_page * kPageSize;
  uint64_t len = std::min<uint64_t>(count * kPageSize, src_size - off);
  tobs_.ChunkStarted(src_->loop().now(), src_ino, count);
  src_->Read(src_ino, off, len, config_.io_class,
             [this, src_ino, dst_ino, next_page, count, src_size, off, len,
              opportunistic](const FsIoResult& read) {
               stats_.io_read_pages += read.pages_from_disk;
               stats_.saved_read_pages += read.pages_from_cache;
               stats_.work_done += read.pages_requested;
               // Receiver writes the chunk contents to the destination.
               std::vector<uint64_t> tokens;
               tokens.reserve(count);
               for (PageIdx q = next_page; q < next_page + count; ++q) {
                 Result<uint64_t> content = src_->PageContent(src_ino, q);
                 tokens.push_back(content.ok() ? *content : 0);
               }
               dst_->CopyIn(dst_ino, off, len, std::move(tokens), config_.io_class,
                            [this, src_ino, dst_ino, next_page, count, src_size,
                             opportunistic](const FsIoResult& write) {
                              stats_.io_write_pages += write.pages_requested;
                              stats_.work_done += write.pages_requested;
                              tobs_.ChunkFinished(src_->loop().now(), src_ino, count);
                              CopyChunk(src_ino, dst_ino, next_page + count,
                                        src_size, opportunistic);
                            });
             });
}

bool RsyncTask::DestinationMatchesSource() const {
  Result<InodeNo> root = src_->ns().Resolve(config_.source_dir);
  if (!root.ok()) {
    return false;
  }
  bool match = true;
  src_->ns().WalkDepthFirst(*root, [&](const Inode& inode) {
    if (inode.is_dir()) {
      return true;
    }
    Result<std::string> src_path = src_->ns().PathOf(inode.ino);
    std::string rel = *src_path;
    Result<std::string> base = src_->ns().PathOf(*root);
    if (base.ok() && *base != "/") {
      rel = rel.substr(base->size());
    }
    Result<InodeNo> dst_ino = dst_->ns().Resolve(JoinPath(config_.dest_dir, rel));
    if (!dst_ino.ok()) {
      match = false;
      return false;
    }
    const Inode* dst_inode = dst_->ns().Get(*dst_ino);
    if (dst_inode->size != inode.size) {
      match = false;
      return false;
    }
    for (PageIdx p = 0; p < inode.PageCount(); ++p) {
      Result<uint64_t> src_content = src_->PageContent(inode.ino, p);
      Result<uint64_t> dst_content = dst_->PageContent(*dst_ino, p);
      if (!src_content.ok() || !dst_content.ok() || *src_content != *dst_content) {
        match = false;
        return false;
      }
    }
    return true;
  });
  return match;
}

}  // namespace duet
