// File-system scrubber (paper §5.1), modeled on the Btrfs scrubber: reads
// every allocated block sequentially and verifies it against its checksum.
//
// Opportunistic mode registers a Duet block task for Added ∨ Dirtied:
//  * Added  — the page was just read through the file system, and cowfs
//    verifies checksums on every read, so the block is marked scrubbed;
//  * Dirtied — the block's content changed; its (new) block must be
//    re-verified, so the done bit is cleared.
// The sequential scan then skips blocks already marked done, which is where
// the I/O savings come from.
#ifndef SRC_TASKS_SCRUBBER_H_
#define SRC_TASKS_SCRUBBER_H_

#include <functional>
#include <string>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/tasks/task_obs.h"
#include "src/tasks/task_stats.h"

namespace duet {

struct ScrubberConfig {
  bool use_duet = false;
  uint32_t chunk_blocks = 256;            // blocks per scan request (1 MiB)
  // Minimum run of already-verified blocks worth skipping. Breaking the scan
  // at every done block shatters it into tiny requests, and on disk one
  // repositioning (~1.7 ms) costs as much as reading ~64 blocks — short
  // verified runs are cheaper to read through than to seek around. The
  // default sits just under that crossover to bias toward more frequent
  // re-coverage of unverified data.
  uint32_t skip_run_blocks = 48;
  IoClass io_class = IoClass::kIdle;      // maintenance runs at idle priority
  size_t fetch_batch = 256;
  // Independent event-poll period (§6.4: tasks fetch many times a second).
  // Keeps hints flowing even when the scan's idle-class I/O is starved.
  SimDuration fetch_interval = Millis(20);
  // Surface scrub reads to the page cache so concurrent tasks can use the
  // same pass (§6.3: scrub and backup accesses benefit each other).
  bool populate_cache = true;
  // Error handling: rewrite bad blocks from an intact copy (cached page or
  // the cowfs DUP mirror), and retry chunks that fail transiently (device
  // busy / latency spike) with exponential backoff before skipping them.
  bool repair = true;
  uint32_t max_retries = 3;
  SimDuration retry_backoff = Millis(10);  // doubles per consecutive retry
};

class Scrubber {
 public:
  // `duet` may be null when use_duet is false.
  Scrubber(CowFs* fs, DuetCore* duet, ScrubberConfig config);
  ~Scrubber();

  // Starts scrubbing; `on_finish` fires when the scan pass completes.
  void Start(std::function<void()> on_finish = nullptr);
  // Stops early (e.g. end of the experiment window).
  void Stop();

  // ---- Crash resume ----
  // Persists the scan cursor into a named region of the durable image after
  // every completed chunk; a Start() after a crash and remount resumes the
  // pass there instead of re-reading prior coverage from block 0. Finishing
  // a pass clears the cursor so the next pass scans from the start again.
  void EnableCursorPersistence(DurableImage* image,
                               std::string key = "cursor.scrub");
  // Cursor the current pass started from (nonzero only when resumed).
  BlockNo resume_start() const { return resume_start_; }

  const TaskStats& stats() const { return stats_; }
  uint64_t checksum_errors() const { return checksum_errors_; }
  uint64_t read_errors() const { return read_errors_; }
  uint64_t blocks_repaired() const { return blocks_repaired_; }
  uint64_t blocks_unrecoverable() const { return blocks_unrecoverable_; }
  uint64_t transient_retries() const { return transient_retries_; }

 private:
  void ProcessNextChunk();
  void DrainDuetEvents();
  void PollTick();
  void Finish();
  // Derives saved/completed work from the done bitmap (Duet mode).
  void FinalizeAccounting();

  void SaveCursor();

  CowFs* fs_;
  DuetCore* duet_;
  ScrubberConfig config_;
  SessionId sid_ = kInvalidSession;
  BlockNo cursor_ = 0;
  DurableImage* cursor_image_ = nullptr;
  std::string cursor_key_;
  BlockNo resume_start_ = 0;
  bool running_ = false;
  // Pass generation. A pass can finish (via the done bitmap) while a chunk
  // read is still queued at idle priority; if the next pass has started by
  // the time that completion arrives, `running_` alone would let the stale
  // callback resume the old cursor and fork a second scan chain. Callbacks
  // capture the epoch they were issued in and are dropped on mismatch.
  uint64_t epoch_ = 0;
  bool accounting_final_ = false;
  EventId poll_event_ = kInvalidEvent;
  uint64_t checksum_errors_ = 0;
  uint64_t read_errors_ = 0;
  uint64_t blocks_repaired_ = 0;
  uint64_t blocks_unrecoverable_ = 0;
  uint64_t transient_retries_ = 0;
  uint32_t chunk_retry_ = 0;  // consecutive transient retries of this chunk
  TaskObs tobs_{"scrub", TaskTag::kScrub};
  TaskStats stats_;
  std::function<void()> on_finish_;
};

}  // namespace duet

#endif  // SRC_TASKS_SCRUBBER_H_
