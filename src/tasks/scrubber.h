// File-system scrubber (paper §5.1), modeled on the Btrfs scrubber: reads
// every allocated block sequentially and verifies it against its checksum.
//
// Opportunistic mode registers a Duet block task for Added ∨ Dirtied:
//  * Added  — the page was just read through the file system, and cowfs
//    verifies checksums on every read, so the block is marked scrubbed;
//  * Dirtied — the block's content changed; its (new) block must be
//    re-verified, so the done bit is cleared.
// The sequential scan then skips blocks already marked done, which is where
// the I/O savings come from.
#ifndef SRC_TASKS_SCRUBBER_H_
#define SRC_TASKS_SCRUBBER_H_

#include <functional>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/tasks/task_stats.h"

namespace duet {

struct ScrubberConfig {
  bool use_duet = false;
  uint32_t chunk_blocks = 256;            // blocks per scan request (1 MiB)
  IoClass io_class = IoClass::kIdle;      // maintenance runs at idle priority
  size_t fetch_batch = 256;
  // Independent event-poll period (§6.4: tasks fetch many times a second).
  // Keeps hints flowing even when the scan's idle-class I/O is starved.
  SimDuration fetch_interval = Millis(20);
  // Surface scrub reads to the page cache so concurrent tasks can use the
  // same pass (§6.3: scrub and backup accesses benefit each other).
  bool populate_cache = true;
};

class Scrubber {
 public:
  // `duet` may be null when use_duet is false.
  Scrubber(CowFs* fs, DuetCore* duet, ScrubberConfig config);
  ~Scrubber();

  // Starts scrubbing; `on_finish` fires when the scan pass completes.
  void Start(std::function<void()> on_finish = nullptr);
  // Stops early (e.g. end of the experiment window).
  void Stop();

  const TaskStats& stats() const { return stats_; }
  uint64_t checksum_errors() const { return checksum_errors_; }

 private:
  void ProcessNextChunk();
  void DrainDuetEvents();
  void PollTick();
  void Finish();
  // Derives saved/completed work from the done bitmap (Duet mode).
  void FinalizeAccounting();

  CowFs* fs_;
  DuetCore* duet_;
  ScrubberConfig config_;
  SessionId sid_ = kInvalidSession;
  BlockNo cursor_ = 0;
  bool running_ = false;
  bool accounting_final_ = false;
  EventId poll_event_ = kInvalidEvent;
  uint64_t checksum_errors_ = 0;
  TaskStats stats_;
  std::function<void()> on_finish_;
};

}  // namespace duet

#endif  // SRC_TASKS_SCRUBBER_H_
