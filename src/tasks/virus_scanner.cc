#include "src/tasks/virus_scanner.h"

#include <algorithm>
#include <cassert>

namespace duet {

VirusScanner::VirusScanner(FileSystem* fs, DuetCore* duet, VirusScannerConfig config)
    : fs_(fs), duet_(duet), config_(config) {
  assert(fs_ != nullptr);
  assert(!config_.use_duet || duet_ != nullptr);
}

VirusScanner::~VirusScanner() { Stop(); }

void VirusScanner::Start(std::function<void()> on_finish) {
  assert(!running_);
  on_finish_ = std::move(on_finish);
  running_ = true;
  stats_ = TaskStats{};
  stats_.started_at = fs_->loop().now();
  tobs_.Started(stats_.started_at);
  files_scanned_ = 0;
  infected_.clear();

  Result<InodeNo> root = fs_->ns().Resolve(config_.root);
  assert(root.ok());
  fs_->ns().WalkDepthFirst(*root, [&](const Inode& inode) {
    if (!inode.is_dir()) {
      worklist_.push_back(inode.ino);
      stats_.work_total += inode.PageCount();  // scans are read-only
    }
    return true;
  });
  cursor_ = 0;

  if (config_.use_duet) {
    queue_ = std::make_unique<InodePriorityQueue>(
        [](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
    Result<SessionId> sid = duet_->RegisterFileTask(config_.root, kDuetPageExists);
    assert(sid.ok());
    sid_ = *sid;
    poll_event_ =
        fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
  }
  ProcessNext();
}

void VirusScanner::Stop() {
  running_ = false;
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
}

void VirusScanner::DrainDuetEvents() {
  tobs_.FetchCall();
  DrainEvents(*duet_, sid_, *queue_, config_.fetch_batch);
}

void VirusScanner::PollTick() {
  poll_event_ = kInvalidEvent;
  if (!running_) {
    return;
  }
  DrainDuetEvents();
  poll_event_ =
      fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
}

void VirusScanner::FinishRun() {
  stats_.finished = true;
  stats_.finished_at = fs_->loop().now();
  tobs_.Finished(stats_.finished_at, stats_.work_done);
  running_ = false;
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (on_finish_) {
    on_finish_();
  }
}

void VirusScanner::ProcessNext() {
  if (!running_) {
    return;
  }
  if (config_.use_duet) {
    DrainDuetEvents();
    while (std::optional<InodeNo> hot = queue_->Dequeue()) {
      if (duet_->CheckDone(sid_, *hot)) {
        continue;  // already scanned
      }
      if (!duet_->GetPath(sid_, *hot).ok()) {
        continue;  // hint went stale
      }
      ScanFile(*hot, /*opportunistic=*/true);
      return;
    }
  }
  while (cursor_ < worklist_.size()) {
    InodeNo ino = worklist_[cursor_++];
    if (config_.use_duet && duet_->CheckDone(sid_, ino)) {
      continue;
    }
    if (!fs_->ns().Exists(ino)) {
      continue;  // deleted since the walk
    }
    ScanFile(ino, /*opportunistic=*/false);
    return;
  }
  FinishRun();
}

void VirusScanner::ScanFile(InodeNo ino, bool opportunistic) {
  if (config_.use_duet) {
    (void)duet_->SetDone(sid_, ino);
    queue_->Erase(ino);
  }
  const Inode* inode = fs_->ns().Get(ino);
  if (inode == nullptr) {
    fs_->loop().ScheduleAfter(0, [this] { ProcessNext(); });
    return;
  }
  if (opportunistic) {
    stats_.opportunistic_units += inode->PageCount();
  }
  ScanChunk(ino, 0, inode->size, opportunistic);
}

void VirusScanner::ScanChunk(InodeNo ino, PageIdx next_page, uint64_t size,
                             bool opportunistic) {
  if (!running_) {
    return;
  }
  uint64_t total_pages = PagesForBytes(size);
  if (next_page >= total_pages) {
    ++files_scanned_;
    fs_->loop().ScheduleAfter(0, [this] { ProcessNext(); });
    return;
  }
  uint64_t count = std::min<uint64_t>(config_.chunk_pages, total_pages - next_page);
  ByteOff off = next_page * kPageSize;
  uint64_t len = std::min<uint64_t>(count * kPageSize, size - off);
  tobs_.ChunkStarted(fs_->loop().now(), ino, count);
  fs_->Read(ino, off, len, config_.io_class,
            [this, ino, next_page, count, size, opportunistic](const FsIoResult& read) {
              if (!running_) {
                return;
              }
              stats_.io_read_pages += read.pages_from_disk;
              stats_.saved_read_pages += read.pages_from_cache;
              stats_.work_done += read.pages_requested;
              tobs_.ChunkFinished(fs_->loop().now(), ino, count);
              // Match each page's content against the signature set.
              for (PageIdx q = next_page; q < next_page + count; ++q) {
                Result<uint64_t> content = fs_->PageContent(ino, q);
                if (content.ok() && signatures_.count(*content) > 0) {
                  if (infected_.empty() || infected_.back() != ino) {
                    infected_.push_back(ino);
                  }
                }
              }
              ScanChunk(ino, next_page + count, size, opportunistic);
            });
}

}  // namespace duet
