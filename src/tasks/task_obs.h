// Per-task observability: registry counters under tasks.<name>.* plus trace
// helpers that stamp every event with a stable numeric task tag. Each
// maintenance task owns one TaskObs; construction captures the ambient
// ObsContext, so a task built under an ObsScope keeps reporting into that
// scope's context for its whole lifetime.
#ifndef SRC_TASKS_TASK_OBS_H_
#define SRC_TASKS_TASK_OBS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/obs.h"
#include "src/sim/time.h"
#include "src/util/types.h"

namespace duet {

// Trace payload tags (wire format; do not renumber existing entries).
enum class TaskTag : uint64_t {
  kScrub = 1,
  kBackup = 2,
  kIncBackup = 3,
  kDefrag = 4,
  kGc = 5,
  kRsync = 6,
  kVirusScan = 7,
};

class TaskObs {
 public:
  TaskObs(std::string_view name, TaskTag tag)
      : obs_(obs::CurrentObs()), tag_(static_cast<uint64_t>(tag)) {
    std::string prefix = "tasks.";
    prefix += name;
    prefix += '.';
    started_ = obs_->metrics.GetCounter(prefix + "started");
    finished_ = obs_->metrics.GetCounter(prefix + "finished");
    chunks_ = obs_->metrics.GetCounter(prefix + "chunks");
    repairs_ = obs_->metrics.GetCounter(prefix + "repairs");
    retries_ = obs_->metrics.GetCounter(prefix + "retries");
    fetch_calls_ = obs_->metrics.GetCounter(prefix + "fetch_calls");
  }

  void Started(SimTime at) {
    started_->Add();
    obs_->trace.Emit(at, obs::TraceLayer::kTask, obs::TraceKind::kTaskStarted,
                     tag_);
  }
  void Finished(SimTime at, uint64_t work_done) {
    finished_->Add();
    obs_->trace.Emit(at, obs::TraceLayer::kTask, obs::TraceKind::kTaskFinished,
                     tag_, work_done);
  }
  void ChunkStarted(SimTime at, uint64_t start, uint64_t count) {
    obs_->trace.Emit(at, obs::TraceLayer::kTask, obs::TraceKind::kChunkStarted,
                     tag_, start, count);
  }
  void ChunkFinished(SimTime at, uint64_t start, uint64_t count) {
    chunks_->Add();
    obs_->trace.Emit(at, obs::TraceLayer::kTask, obs::TraceKind::kChunkFinished,
                     tag_, start, count);
  }
  // One repair round: `repaired` blocks rewritten, `unrecoverable` left bad.
  void Repairs(SimTime at, uint64_t repaired, uint64_t unrecoverable) {
    repairs_->Add(repaired);
    obs_->trace.Emit(at, obs::TraceLayer::kTask, obs::TraceKind::kRepair, tag_,
                     repaired, unrecoverable);
  }
  void Retry(SimTime at, uint64_t start, uint64_t attempt) {
    retries_->Add();
    obs_->trace.Emit(at, obs::TraceLayer::kTask, obs::TraceKind::kRetry, tag_,
                     start, attempt);
  }
  void FetchCall() { fetch_calls_->Add(); }

  uint64_t tag() const { return tag_; }

 private:
  obs::ObsContext* obs_;
  uint64_t tag_;
  obs::Counter* started_;
  obs::Counter* finished_;
  obs::Counter* chunks_;
  obs::Counter* repairs_;
  obs::Counter* retries_;
  obs::Counter* fetch_calls_;
};

}  // namespace duet

#endif  // SRC_TASKS_TASK_OBS_H_
