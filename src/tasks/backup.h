// Snapshot-based backup (paper §5.2), modeled on the Btrfs backup tool: a
// read-only snapshot is taken at start, and files are streamed to backup
// storage in inode order, each file read fully before the next.
//
// Opportunistic mode registers a Duet block task for Exists state
// notifications. Each reported block is translated through back references
// to its (file, page); if the page is clean in the cache and still shares
// its block with the snapshot (i.e. unmodified since), it is copied to the
// backup stream out of order, saving the read.
#ifndef SRC_TASKS_BACKUP_H_
#define SRC_TASKS_BACKUP_H_

#include <functional>
#include <map>
#include <string>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/tasks/task_obs.h"
#include "src/tasks/task_stats.h"

namespace duet {

struct BackupConfig {
  bool use_duet = false;
  uint32_t chunk_pages = 16;          // 64 KiB reads, as the paper's tool issues
  IoClass io_class = IoClass::kIdle;
  size_t fetch_batch = 256;
  // Independent event-poll period (§6.4): opportunistic copying continues
  // even while the stream's idle-class I/O is starved.
  SimDuration fetch_interval = Millis(20);
};

class Backup {
 public:
  Backup(CowFs* fs, DuetCore* duet, BackupConfig config);
  ~Backup();

  // Takes the snapshot (syncing first) and starts streaming.
  void Start(std::function<void()> on_finish = nullptr);
  void Stop();

  // ---- Crash resume ----
  // Persists {snapshot id, last fully-streamed inode} after every completed
  // file. A Start() after a crash and remount reuses the persisted snapshot
  // (snapshots are part of the committed superblock) and skips files already
  // streamed; the file in flight at the crash is re-streamed from its first
  // page. Falls back to a fresh snapshot when the persisted one did not
  // survive (no superblock commit covered it).
  void EnableCursorPersistence(DurableImage* image,
                               std::string key = "cursor.backup");
  bool resumed() const { return resumed_; }
  // Pages skipped on resume because a previous run already streamed them.
  uint64_t resumed_pages() const { return resumed_pages_; }

  const TaskStats& stats() const { return stats_; }
  // Bytes "sent" to backup storage (both in-order and opportunistic).
  uint64_t bytes_sent() const { return pages_sent_ * kPageSize; }

  // Verifies that every page of the snapshot was sent exactly once, with
  // snapshot-consistent content (test hook).
  bool AllPagesSentOnce() const;

 private:
  // Builds the sent-page maps (pre-marking files streamed before a crash)
  // and starts the in-order stream after `resume_after`.
  void BeginStreaming(InodeNo resume_after);
  void SaveCursor(InodeNo done_up_to);
  void ProcessNextFile();
  void ProcessFileChunk(InodeNo ino, PageIdx next_page);
  void DrainDuetEvents();
  void PollTick();
  void FinishRun();
  // Records a page as sent; returns false if it was sent before.
  bool MarkSent(InodeNo ino, PageIdx idx);

  CowFs* fs_;
  DuetCore* duet_;
  BackupConfig config_;
  SessionId sid_ = kInvalidSession;
  SnapshotId snapshot_ = 0;
  DurableImage* cursor_image_ = nullptr;
  std::string cursor_key_;
  bool resumed_ = false;
  uint64_t resumed_pages_ = 0;
  bool running_ = false;
  EventId poll_event_ = kInvalidEvent;
  uint64_t pages_sent_ = 0;
  std::map<InodeNo, CowFs::SnapshotFile>::const_iterator file_it_;
  // Per file: bitmap of sent pages (tracked outside Duet so completion can
  // be verified independently of the hint layer).
  std::map<InodeNo, std::vector<bool>> sent_;
  TaskObs tobs_{"backup", TaskTag::kBackup};
  TaskStats stats_;
  std::function<void()> on_finish_;
};

}  // namespace duet

#endif  // SRC_TASKS_BACKUP_H_
