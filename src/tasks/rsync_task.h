// Rsync-style directory synchronization (paper §5.5): copies a source
// directory tree to a destination file system (a separate device), as when
// rsync runs locally between two disks. The sender walks the source tree
// depth-first; the generator/receiver side checksums existing destination
// files and writes updated data. With an initially empty destination, every
// file is read once at the source and written once at the destination.
//
// Opportunistic mode registers a Duet file task for Exists notifications and
// prioritizes files with the most pages in memory (Algorithm 1). File
// metadata is sent exactly once, whether a file is processed in DFS order or
// out of order. Unlike the in-kernel tasks, rsync runs at *normal* I/O
// priority (§6.2), so it competes with the foreground workload.
#ifndef SRC_TASKS_RSYNC_TASK_H_
#define SRC_TASKS_RSYNC_TASK_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/duet/duet_core.h"
#include "src/duet/duet_library.h"
#include "src/duet/inotify.h"
#include "src/fs/file_system.h"
#include "src/tasks/task_obs.h"
#include "src/tasks/task_stats.h"

namespace duet {

// Hint source for opportunistic processing (§3.3 compares Duet's page-level
// hints with Inotify's file-level ones).
enum class RsyncHints { kNone, kDuet, kInotify };

struct RsyncConfig {
  bool use_duet = false;            // shorthand for hints = kDuet
  RsyncHints hints = RsyncHints::kNone;
  std::string source_dir = "/";
  std::string dest_dir = "/";
  uint32_t chunk_pages = 8;  // rsync processes files in 32 KiB chunks (§5.6)
  IoClass io_class = IoClass::kBestEffort;  // normal priority
  size_t fetch_batch = 256;
};

class RsyncTask {
 public:
  // Source and destination are distinct file systems on distinct devices.
  RsyncTask(FileSystem* src, FileSystem* dst, DuetCore* duet, RsyncConfig config);
  ~RsyncTask();

  void Start(std::function<void()> on_finish = nullptr);
  void Stop();

  const TaskStats& stats() const { return stats_; }
  uint64_t files_synced() const { return files_synced_; }
  // Inotify mode: number of per-directory watches that had to be created.
  uint64_t watches_created() const { return watches_created_; }

  // Verifies every source file exists at the destination with identical
  // content (test hook; call after the destination has been synced).
  bool DestinationMatchesSource() const;

 private:
  void ProcessNext();
  void SyncFile(InodeNo src_ino, bool opportunistic);
  void CopyChunk(InodeNo src_ino, InodeNo dst_ino, PageIdx next_page,
                 uint64_t src_size, bool opportunistic);
  void DrainDuetEvents();
  void FinishRun();

  FileSystem* src_;
  FileSystem* dst_;
  DuetCore* duet_;
  RsyncConfig config_;
  SessionId sid_ = kInvalidSession;
  bool running_ = false;
  std::vector<InodeNo> worklist_;  // DFS order (metadata pass)
  size_t cursor_ = 0;
  std::unordered_set<InodeNo> synced_;  // metadata sent exactly once
  std::unique_ptr<InodePriorityQueue> queue_;
  // Inotify mode: recency list of files with recent activity (no page
  // counts, no eviction knowledge — the information gap vs Duet).
  std::unique_ptr<Inotify> inotify_;
  std::deque<InodeNo> recent_;
  uint64_t watches_created_ = 0;
  uint64_t files_synced_ = 0;
  TaskObs tobs_{"rsync", TaskTag::kRsync};
  TaskStats stats_;
  std::function<void()> on_finish_;
};

}  // namespace duet

#endif  // SRC_TASKS_RSYNC_TASK_H_
