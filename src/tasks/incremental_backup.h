// Incremental backup: the paper's §1 motivating example — "a block modified
// by the workload can be used by an incremental backup task, avoiding an
// additional read".
//
// The task copies to backup storage every block modified since a previous
// snapshot (epoch). Baseline: at the end of the backup window it diffs the
// current snapshot against the base snapshot and reads every changed block
// from disk. Opportunistic mode subscribes to Modified state notifications:
// when the workload dirties a block, the task copies the page straight from
// memory (after it is flushed, so the backup matches on-disk state), before
// it can be evicted — turning the end-of-window read pass into a trickle of
// free copies.
#ifndef SRC_TASKS_INCREMENTAL_BACKUP_H_
#define SRC_TASKS_INCREMENTAL_BACKUP_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/tasks/task_obs.h"
#include "src/tasks/task_stats.h"

namespace duet {

struct IncrementalBackupConfig {
  bool use_duet = false;
  uint32_t chunk_pages = 16;
  IoClass io_class = IoClass::kIdle;
  size_t fetch_batch = 256;
  SimDuration fetch_interval = Millis(20);
  // Bounded retry with exponential backoff for transiently-failed batch
  // reads (device busy windows).
  uint32_t max_retries = 3;
  SimDuration retry_backoff = Millis(10);
};

class IncrementalBackup {
 public:
  IncrementalBackup(CowFs* fs, DuetCore* duet, IncrementalBackupConfig config);
  ~IncrementalBackup();

  // Takes the *base* snapshot; changes after this instant belong to the
  // increment.
  void BeginEpoch();

  // Ends the epoch: takes the end snapshot, then copies every page whose
  // content differs from the base snapshot (reading from disk whatever was
  // not already captured opportunistically). `on_finish` fires when the
  // increment is fully captured.
  void EndEpoch(std::function<void()> on_finish = nullptr);

  void Stop();

  const TaskStats& stats() const { return stats_; }
  uint64_t pages_captured() const { return captured_.size(); }

  // Test hook: true if every page that differs between the base and end
  // snapshots was captured with its end-snapshot content.
  bool IncrementComplete() const;

 private:
  struct PageKey {
    InodeNo ino;
    PageIdx idx;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return std::hash<uint64_t>()(k.ino * 0x9e3779b97f4a7c15ULL ^ k.idx);
    }
  };

  void PollTick();
  void DrainDuetEvents();
  void ProcessDiff();  // end-of-epoch catch-up pass

  CowFs* fs_;
  DuetCore* duet_;
  IncrementalBackupConfig config_;
  SessionId sid_ = kInvalidSession;
  SnapshotId base_snapshot_ = 0;
  SnapshotId end_snapshot_ = 0;
  bool epoch_open_ = false;
  bool running_ = false;
  EventId poll_event_ = kInvalidEvent;
  // Captured increment: page -> content token at capture time.
  std::unordered_map<PageKey, uint64_t, PageKeyHash> captured_;
  // Diff worklist for the catch-up pass.
  std::vector<std::pair<PageKey, BlockNo>> pending_reads_;
  size_t pending_cursor_ = 0;
  uint32_t batch_retry_ = 0;  // consecutive transient retries of this batch
  TaskObs tobs_{"inc_backup", TaskTag::kIncBackup};
  TaskStats stats_;
  std::function<void()> on_finish_;
};

}  // namespace duet

#endif  // SRC_TASKS_INCREMENTAL_BACKUP_H_
