// Counters shared by all maintenance tasks, supporting the paper's metrics
// (Table 4): I/O saved, work completed, and completion time.
#ifndef SRC_TASKS_TASK_STATS_H_
#define SRC_TASKS_TASK_STATS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace duet {

struct TaskStats {
  uint64_t work_total = 0;      // units (pages/blocks) the task must process
  uint64_t work_done = 0;       // units processed (normally or opportunistically)
  uint64_t io_read_pages = 0;   // device read I/O the task performed
  uint64_t io_write_pages = 0;  // device write I/O the task performed
  uint64_t saved_read_pages = 0;   // reads avoided thanks to cached data
  uint64_t saved_write_pages = 0;  // writes avoided (already-dirty pages)
  uint64_t opportunistic_units = 0;  // units processed out of order
  bool finished = false;
  SimTime started_at = 0;
  SimTime finished_at = 0;

  double CompletionFraction() const {
    if (work_total == 0) {
      return 1.0;
    }
    double f = static_cast<double>(work_done) / static_cast<double>(work_total);
    return f > 1.0 ? 1.0 : f;
  }
  uint64_t TotalIoPages() const { return io_read_pages + io_write_pages; }
  SimDuration Runtime() const {
    return finished ? finished_at - started_at : 0;
  }
};

}  // namespace duet

#endif  // SRC_TASKS_TASK_STATS_H_
