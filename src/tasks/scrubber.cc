#include "src/tasks/scrubber.h"

#include <algorithm>
#include <cassert>

#include "src/duet/duet_library.h"
#include "src/fs/meta_codec.h"

namespace duet {

Scrubber::Scrubber(CowFs* fs, DuetCore* duet, ScrubberConfig config)
    : fs_(fs), duet_(duet), config_(config) {
  assert(fs_ != nullptr);
  assert(!config_.use_duet || duet_ != nullptr);
}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::EnableCursorPersistence(DurableImage* image, std::string key) {
  cursor_image_ = image;
  cursor_key_ = std::move(key);
}

void Scrubber::SaveCursor() {
  if (cursor_image_ != nullptr) {
    PutCursorMeta(cursor_image_, cursor_key_, {cursor_});
  }
}

void Scrubber::Start(std::function<void()> on_finish) {
  assert(!running_);
  on_finish_ = std::move(on_finish);
  running_ = true;
  ++epoch_;
  stats_ = TaskStats{};
  stats_.started_at = fs_->loop().now();
  stats_.work_total = fs_->allocated_blocks();
  tobs_.Started(stats_.started_at);
  cursor_ = 0;
  resume_start_ = 0;
  if (cursor_image_ != nullptr) {
    // Resume an interrupted pass where it left off (btrfs scrub's progress
    // checkpoint). A pass that finished cleanly cleared the cursor.
    std::optional<std::vector<uint64_t>> saved =
        GetCursorMeta(*cursor_image_, cursor_key_);
    if (saved.has_value() && saved->size() == 1 &&
        (*saved)[0] < fs_->capacity_blocks()) {
      cursor_ = (*saved)[0];
      resume_start_ = cursor_;
    }
  }
  accounting_final_ = false;
  if (config_.use_duet) {
    Result<SessionId> sid =
        duet_->RegisterBlockTask(kDuetPageAdded | kDuetPageDirtied);
    assert(sid.ok());
    sid_ = *sid;
    poll_event_ =
        fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
  }
  ProcessNextChunk();
}

void Scrubber::Stop() {
  running_ = false;
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  FinalizeAccounting();
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
}

void Scrubber::FinalizeAccounting() {
  if (sid_ == kInvalidSession || accounting_final_) {
    return;
  }
  accounting_final_ = true;
  // Blocks marked done that the scan did not read were verified for free by
  // other parties' reads — the I/O Duet saved. Done bits also measure how
  // much scrubbing work is complete, whether or not the scan pass finished.
  uint64_t done = duet_->DoneCount(sid_);
  uint64_t by_io = stats_.io_read_pages;
  stats_.saved_read_pages = done > by_io ? done - by_io : 0;
  stats_.work_done = std::min(std::max(done, by_io), stats_.work_total);
}

void Scrubber::Finish() {
  if (!running_) {
    return;
  }
  stats_.finished = true;
  stats_.finished_at = fs_->loop().now();
  running_ = false;
  if (cursor_image_ != nullptr) {
    // Pass complete: the next pass scans from the start again.
    PutCursorMeta(cursor_image_, cursor_key_, {0});
  }
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  if (config_.use_duet) {
    FinalizeAccounting();
  } else {
    stats_.work_done = stats_.io_read_pages;
  }
  tobs_.Finished(stats_.finished_at, stats_.work_done);
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (on_finish_) {
    on_finish_();
  }
}

void Scrubber::DrainDuetEvents() {
  tobs_.FetchCall();
  DrainEvents(*duet_, sid_, [this](const DuetItem& item) {
    if (item.has(kDuetPageDirtied)) {
      // Content changed: the (possibly relocated) block needs re-verifying.
      (void)duet_->UnsetDone(sid_, item.id);
      return;
    }
    if (item.has(kDuetPageAdded)) {
      // The read path verified this block's checksum; mark it scrubbed.
      if (!duet_->CheckDone(sid_, item.id)) {
        (void)duet_->SetDone(sid_, item.id);
      }
    }
  }, config_.fetch_batch);
}

void Scrubber::PollTick() {
  poll_event_ = kInvalidEvent;
  if (!running_) {
    return;
  }
  DrainDuetEvents();
  // The whole device may have been verified by other parties' reads even if
  // the scan's own idle-priority I/O is starved.
  if (duet_->DoneCount(sid_) >= stats_.work_total) {
    Finish();
    return;
  }
  poll_event_ =
      fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
}

void Scrubber::ProcessNextChunk() {
  if (!running_) {
    return;
  }
  if (config_.use_duet) {
    DrainDuetEvents();
  }
  // Find the next block that still needs scrubbing. Blocks already marked
  // done were verified by someone else's read; the scan skips them without
  // I/O (accounted in FinalizeAccounting).
  std::optional<BlockNo> next = fs_->NextAllocated(cursor_);
  while (next.has_value() && config_.use_duet && duet_->CheckDone(sid_, *next)) {
    next = fs_->NextAllocated(*next + 1);
  }
  if (!next.has_value()) {
    Finish();
    return;
  }
  // Scrub a chunk starting at `next`. Done blocks end the chunk only when a
  // long verified run follows: skipping it saves more transfer time than the
  // repositioning it costs, while short verified runs are read through to
  // keep the scan's requests large and sequential.
  BlockNo start = *next;
  uint32_t count = 0;
  BlockNo b = start;
  while (count < config_.chunk_blocks && b < fs_->capacity_blocks()) {
    if (config_.use_duet && duet_->CheckDone(sid_, b)) {
      BlockNo run_end = b;
      while (run_end < fs_->capacity_blocks() &&
             run_end - b < config_.skip_run_blocks &&
             duet_->CheckDone(sid_, run_end)) {
        ++run_end;
      }
      if (run_end - b >= config_.skip_run_blocks) {
        break;
      }
      count += static_cast<uint32_t>(run_end - b);
      b = run_end;
      continue;
    }
    ++count;
    ++b;
  }
  const uint64_t epoch = epoch_;
  tobs_.ChunkStarted(fs_->loop().now(), start, count);
  fs_->ReadRawBlocks(start, count, config_.io_class, config_.populate_cache,
                     [this, start, count, epoch](const RawReadResult& result) {
                       if (!running_ || epoch != epoch_) {
                         return;
                       }
                       stats_.io_read_pages += result.blocks_read;
                       if (IsTransient(result.status)) {
                         if (chunk_retry_ < config_.max_retries) {
                           // Transient (busy window): retry the same chunk
                           // after an exponentially growing backoff.
                           SimDuration backoff =
                               config_.retry_backoff * (SimDuration{1} << chunk_retry_);
                           ++chunk_retry_;
                           ++transient_retries_;
                           tobs_.Retry(fs_->loop().now(), start, chunk_retry_);
                           fs_->loop().ScheduleAfter(backoff, [this, epoch] {
                             if (epoch == epoch_) {
                               ProcessNextChunk();
                             }
                           });
                           return;
                         }
                         // Retry budget exhausted: skip the chunk this pass.
                         chunk_retry_ = 0;
                         cursor_ = start + count;
                         SaveCursor();
                         ProcessNextChunk();
                         return;
                       }
                       chunk_retry_ = 0;
                       checksum_errors_ += result.checksum_errors;
                       read_errors_ += result.read_errors;
                       stats_.work_done += result.blocks_read;
                       cursor_ = start + count;
                       SaveCursor();
                       tobs_.ChunkFinished(fs_->loop().now(), start, count);
                       auto resume = [this, start, count, epoch] {
                         if (!running_ || epoch != epoch_) {
                           return;
                         }
                         if (config_.use_duet) {
                           // Mark verified blocks so events for them are muted.
                           for (BlockNo v = start; v < start + count; ++v) {
                             if (fs_->IsAllocated(v)) {
                               (void)duet_->SetDone(sid_, v);
                             }
                           }
                         }
                         ProcessNextChunk();
                       };
                       if (config_.repair && !result.bad_blocks.empty()) {
                         // Rewrite each bad block from an intact copy; blocks
                         // with no intact copy are reported unrecoverable.
                         fs_->RepairBlocks(
                             result.bad_blocks, config_.io_class,
                             [this, resume](const CowFs::RepairResult& r) {
                               blocks_repaired_ += r.repaired();
                               blocks_unrecoverable_ += r.unrecoverable;
                               tobs_.Repairs(fs_->loop().now(), r.repaired(),
                                             r.unrecoverable);
                               stats_.io_read_pages += r.device_reads;
                               stats_.io_write_pages += r.device_writes;
                               resume();
                             });
                         return;
                       }
                       resume();
                     });
}

}  // namespace duet
