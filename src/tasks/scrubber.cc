#include "src/tasks/scrubber.h"

#include <algorithm>
#include <cassert>

#include "src/duet/duet_library.h"

namespace duet {

Scrubber::Scrubber(CowFs* fs, DuetCore* duet, ScrubberConfig config)
    : fs_(fs), duet_(duet), config_(config) {
  assert(fs_ != nullptr);
  assert(!config_.use_duet || duet_ != nullptr);
}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start(std::function<void()> on_finish) {
  assert(!running_);
  on_finish_ = std::move(on_finish);
  running_ = true;
  stats_ = TaskStats{};
  stats_.started_at = fs_->loop().now();
  stats_.work_total = fs_->allocated_blocks();
  cursor_ = 0;
  accounting_final_ = false;
  if (config_.use_duet) {
    Result<SessionId> sid =
        duet_->RegisterBlockTask(kDuetPageAdded | kDuetPageDirtied);
    assert(sid.ok());
    sid_ = *sid;
    poll_event_ =
        fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
  }
  ProcessNextChunk();
}

void Scrubber::Stop() {
  running_ = false;
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  FinalizeAccounting();
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
}

void Scrubber::FinalizeAccounting() {
  if (sid_ == kInvalidSession || accounting_final_) {
    return;
  }
  accounting_final_ = true;
  // Blocks marked done that the scan did not read were verified for free by
  // other parties' reads — the I/O Duet saved. Done bits also measure how
  // much scrubbing work is complete, whether or not the scan pass finished.
  uint64_t done = duet_->DoneCount(sid_);
  uint64_t by_io = stats_.io_read_pages;
  stats_.saved_read_pages = done > by_io ? done - by_io : 0;
  stats_.work_done = std::min(std::max(done, by_io), stats_.work_total);
}

void Scrubber::Finish() {
  if (!running_) {
    return;
  }
  stats_.finished = true;
  stats_.finished_at = fs_->loop().now();
  running_ = false;
  if (poll_event_ != kInvalidEvent) {
    fs_->loop().Cancel(poll_event_);
    poll_event_ = kInvalidEvent;
  }
  if (config_.use_duet) {
    FinalizeAccounting();
  } else {
    stats_.work_done = stats_.io_read_pages;
  }
  if (sid_ != kInvalidSession) {
    (void)duet_->Deregister(sid_);
    sid_ = kInvalidSession;
  }
  if (on_finish_) {
    on_finish_();
  }
}

void Scrubber::DrainDuetEvents() {
  ++stats_.fetch_calls;
  DrainEvents(*duet_, sid_, [this](const DuetItem& item) {
    if (item.has(kDuetPageDirtied)) {
      // Content changed: the (possibly relocated) block needs re-verifying.
      (void)duet_->UnsetDone(sid_, item.id);
      return;
    }
    if (item.has(kDuetPageAdded)) {
      // The read path verified this block's checksum; mark it scrubbed.
      if (!duet_->CheckDone(sid_, item.id)) {
        (void)duet_->SetDone(sid_, item.id);
      }
    }
  }, config_.fetch_batch);
}

void Scrubber::PollTick() {
  poll_event_ = kInvalidEvent;
  if (!running_) {
    return;
  }
  DrainDuetEvents();
  // The whole device may have been verified by other parties' reads even if
  // the scan's own idle-priority I/O is starved.
  if (duet_->DoneCount(sid_) >= stats_.work_total) {
    Finish();
    return;
  }
  poll_event_ =
      fs_->loop().ScheduleAfter(config_.fetch_interval, [this] { PollTick(); });
}

void Scrubber::ProcessNextChunk() {
  if (!running_) {
    return;
  }
  if (config_.use_duet) {
    DrainDuetEvents();
  }
  // Find the next block that still needs scrubbing. Blocks already marked
  // done were verified by someone else's read; the scan skips them without
  // I/O (accounted in FinalizeAccounting).
  std::optional<BlockNo> next = fs_->NextAllocated(cursor_);
  while (next.has_value() && config_.use_duet && duet_->CheckDone(sid_, *next)) {
    next = fs_->NextAllocated(*next + 1);
  }
  if (!next.has_value()) {
    Finish();
    return;
  }
  // Scrub a chunk starting at `next`, stopping early at done blocks so we
  // do not re-read data that was already verified.
  BlockNo start = *next;
  uint32_t count = 0;
  BlockNo b = start;
  while (count < config_.chunk_blocks && b < fs_->capacity_blocks()) {
    if (config_.use_duet && duet_->CheckDone(sid_, b)) {
      break;
    }
    ++count;
    ++b;
  }
  fs_->ReadRawBlocks(start, count, config_.io_class, config_.populate_cache,
                     [this, start, count](const RawReadResult& result) {
                       if (!running_) {
                         return;
                       }
                       checksum_errors_ += result.checksum_errors;
                       stats_.io_read_pages += result.blocks_read;
                       stats_.work_done += result.blocks_read;
                       cursor_ = start + count;
                       if (config_.use_duet) {
                         // Mark verified blocks so events for them are muted.
                         for (BlockNo v = start; v < start + count; ++v) {
                           if (fs_->IsAllocated(v)) {
                             (void)duet_->SetDone(sid_, v);
                           }
                         }
                       }
                       ProcessNextChunk();
                     });
}

}  // namespace duet
