// On-demand virus scanner (the paper's §1-§2 motivation lists AV scans as a
// canonical maintenance task: full scans in virtual machines cause I/O
// storms). The scanner reads every file under a directory and matches its
// content against a signature set.
//
// Baseline order: depth-first directory traversal (how scanners walk a
// tree). Opportunistic mode registers a Duet file task for Exists
// notifications and scans files with the most cached pages first — data
// brought in by the workload or by other maintenance tasks is scanned
// without touching the device.
#ifndef SRC_TASKS_VIRUS_SCANNER_H_
#define SRC_TASKS_VIRUS_SCANNER_H_

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/duet/duet_core.h"
#include "src/duet/duet_library.h"
#include "src/fs/file_system.h"
#include "src/tasks/task_obs.h"
#include "src/tasks/task_stats.h"

namespace duet {

struct VirusScannerConfig {
  bool use_duet = false;
  std::string root = "/";
  uint32_t chunk_pages = 32;          // 128 KiB scan buffers
  IoClass io_class = IoClass::kIdle;  // background scan
  size_t fetch_batch = 256;
  SimDuration fetch_interval = Millis(20);
};

class VirusScanner {
 public:
  VirusScanner(FileSystem* fs, DuetCore* duet, VirusScannerConfig config);
  ~VirusScanner();

  // Content tokens considered "infected" (failure-injection hook: write a
  // token into a file, add it here, and the scan must flag that file).
  void AddSignature(uint64_t token) { signatures_.insert(token); }

  void Start(std::function<void()> on_finish = nullptr);
  void Stop();

  const TaskStats& stats() const { return stats_; }
  uint64_t files_scanned() const { return files_scanned_; }
  const std::vector<InodeNo>& infected() const { return infected_; }

 private:
  void ProcessNext();
  void ScanFile(InodeNo ino, bool opportunistic);
  void ScanChunk(InodeNo ino, PageIdx next_page, uint64_t size, bool opportunistic);
  void DrainDuetEvents();
  void PollTick();
  void FinishRun();

  FileSystem* fs_;
  DuetCore* duet_;
  VirusScannerConfig config_;
  SessionId sid_ = kInvalidSession;
  bool running_ = false;
  EventId poll_event_ = kInvalidEvent;
  std::vector<InodeNo> worklist_;  // DFS order
  size_t cursor_ = 0;
  std::unique_ptr<InodePriorityQueue> queue_;
  std::unordered_set<uint64_t> signatures_;
  std::vector<InodeNo> infected_;
  uint64_t files_scanned_ = 0;
  TaskObs tobs_{"virus_scan", TaskTag::kVirusScan};
  TaskStats stats_;
  std::function<void()> on_finish_;
};

}  // namespace duet

#endif  // SRC_TASKS_VIRUS_SCANNER_H_
