// Whole-file-system defragmentation task (paper §5.3), modeled on the
// in-kernel Btrfs defragmenter the authors built: walks files in inode-number
// order and rewrites fragmented files into contiguous extents.
//
// Opportunistic mode registers a Duet file task for Exists notifications and
// keeps a priority queue of files ordered by the fraction of their pages in
// memory (Algorithm 1); queued files are defragmented first, saving their
// cached reads, and pages already dirtied by the workload count as saved
// writes (they would have been written back anyway).
#ifndef SRC_TASKS_DEFRAG_TASK_H_
#define SRC_TASKS_DEFRAG_TASK_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/duet/duet_library.h"
#include "src/tasks/task_obs.h"
#include "src/tasks/task_stats.h"

namespace duet {

struct DefragConfig {
  bool use_duet = false;
  // Only files with more than this many extents are rewritten.
  uint64_t extent_threshold = 3;
  IoClass io_class = IoClass::kIdle;
  size_t fetch_batch = 256;
  std::string root = "/";
};

class DefragTask {
 public:
  DefragTask(CowFs* fs, DuetCore* duet, DefragConfig config);
  ~DefragTask();

  void Start(std::function<void()> on_finish = nullptr);
  void Stop();

  const TaskStats& stats() const { return stats_; }
  uint64_t files_defragmented() const { return files_defragmented_; }

 private:
  void ProcessNext();
  // Defragments `ino` then continues with ProcessNext.
  void DefragOne(InodeNo ino, bool opportunistic);
  void DrainDuetEvents();
  bool ShouldProcess(InodeNo ino) const;
  void FinishRun();

  CowFs* fs_;
  DuetCore* duet_;
  DefragConfig config_;
  SessionId sid_ = kInvalidSession;
  bool running_ = false;
  std::vector<InodeNo> targets_;  // inode order (the baseline order)
  size_t cursor_ = 0;
  std::unique_ptr<InodePriorityQueue> queue_;
  uint64_t files_defragmented_ = 0;
  TaskObs tobs_{"defrag", TaskTag::kDefrag};
  TaskStats stats_;
  std::function<void()> on_finish_;
};

}  // namespace duet

#endif  // SRC_TASKS_DEFRAG_TASK_H_
