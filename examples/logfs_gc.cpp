// Log-structured GC: an F2fs-like file system under a write-heavy
// fileserver workload, cleaned by the background garbage collector (paper
// §5.4). The Duet-enabled cleaner tracks which segments have cached valid
// blocks and prefers them, cutting the synchronous reads per cleaned
// segment.
//
// Build & run:  ./build/examples/logfs_gc

#include <cstdio>

#include "src/harness/rig.h"
#include "src/tasks/gc_task.h"

using namespace duet;

int main() {
  StackConfig stack = QuickStackConfig();
  printf("logfs GC: fileserver workload (skewed), background cleaning\n\n");

  for (bool use_duet : {false, true}) {
    WorkloadConfig workload = MakeWorkloadConfig(stack, Personality::kFileserver,
                                                 1.0, /*skewed=*/true,
                                                 /*ops_per_sec=*/120, 13);
    LogRig rig(stack, workload);
    GcConfig config;
    config.use_duet = use_duet;
    config.wake_interval = Millis(100);
    config.idle_threshold = Millis(10);
    GcTask gc(&rig.fs(), &rig.duet(), config);
    gc.Start();
    rig.workload().Start();
    rig.loop().RunUntil(stack.window);
    rig.workload().Stop();

    printf("--- %s ---\n", use_duet ? "with Duet" : "baseline");
    printf("  segments cleaned: %llu, free segments now: %llu\n",
           static_cast<unsigned long long>(gc.segments_cleaned()),
           static_cast<unsigned long long>(rig.fs().free_segments()));
    if (gc.cleaning_time_ms().count() > 0) {
      printf("  avg cleaning time: %.1f ms (+/- %.1f)\n",
             gc.cleaning_time_ms().mean(),
             gc.cleaning_time_ms().ConfidenceInterval95());
    }
    printf("  cleaning reads: %llu from disk, %llu saved by the cache\n\n",
           static_cast<unsigned long long>(gc.stats().io_read_pages),
           static_cast<unsigned long long>(gc.stats().saved_read_pages));
    gc.Stop();
  }
  return 0;
}
