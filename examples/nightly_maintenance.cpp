// Nightly maintenance: the two extension tasks collaborating. An
// incremental backup epoch is open while the fileserver workload churns;
// meanwhile a virus scan walks the tree. With Duet, the scan's reads feed
// the page cache, the workload's flushes feed the incremental backup, and
// both finish with far less device I/O.
//
// Build & run:  ./build/examples/nightly_maintenance

#include <cstdio>

#include "src/harness/rig.h"
#include "src/tasks/incremental_backup.h"
#include "src/tasks/virus_scanner.h"

using namespace duet;

int main() {
  StackConfig stack = QuickStackConfig();
  printf("Nightly maintenance: incremental backup epoch + virus scan, "
         "fileserver churning\n\n");

  for (bool use_duet : {false, true}) {
    WorkloadConfig workload = MakeWorkloadConfig(stack, Personality::kFileserver,
                                                 1.0, /*skewed=*/false,
                                                 /*ops_per_sec=*/80, 21);
    CowRig rig(stack, workload);

    IncrementalBackupConfig inc_config;
    inc_config.use_duet = use_duet;
    IncrementalBackup inc(&rig.fs(), &rig.duet(), inc_config);
    inc.BeginEpoch();
    rig.loop().RunUntil(Millis(50));

    VirusScannerConfig scan_config;
    scan_config.root = "/data";
    scan_config.use_duet = use_duet;
    VirusScanner scanner(&rig.fs(), &rig.duet(), scan_config);
    scanner.Start();

    rig.workload().Start();
    rig.loop().RunUntil(stack.window);
    rig.workload().Stop();

    bool inc_done = false;
    inc.EndEpoch([&] { inc_done = true; });
    rig.loop().Run();

    printf("--- %s ---\n", use_duet ? "with Duet" : "baseline");
    printf("  scan: %llu files (%s), %llu pages read, %llu saved\n",
           static_cast<unsigned long long>(scanner.files_scanned()),
           scanner.stats().finished ? "finished" : "window ended",
           static_cast<unsigned long long>(scanner.stats().io_read_pages),
           static_cast<unsigned long long>(scanner.stats().saved_read_pages));
    printf("  incremental backup: %s; %llu changed pages, %llu read from disk, "
           "%llu captured from memory\n",
           inc_done && inc.IncrementComplete() ? "complete and consistent"
                                               : "INCOMPLETE (bug!)",
           static_cast<unsigned long long>(inc.stats().work_total),
           static_cast<unsigned long long>(inc.stats().io_read_pages),
           static_cast<unsigned long long>(inc.stats().saved_read_pages));
    printf("\n");
    scanner.Stop();
    inc.Stop();
  }
  return 0;
}
