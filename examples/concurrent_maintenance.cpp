// Concurrent maintenance: the paper's headline scenario (§6.3). Scrubbing,
// backup, and defragmentation run together with a webserver workload that
// keeps the device ~50% busy. With Duet the three tasks implicitly
// collaborate through the page cache: one pass over shared data serves all
// of them, and workload reads verify/copy data for free.
//
// Build & run:  ./build/examples/concurrent_maintenance

#include <cstdio>

#include "src/harness/calibrate.h"
#include "src/harness/runner.h"

using namespace duet;

int main() {
  StackConfig stack = QuickStackConfig();
  printf("Concurrent maintenance: scrub + backup + defrag, webserver @ ~50%% util\n\n");

  WorkloadConfig base = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                           false, 0, 7);
  base.fragmented_fraction = 0.1;  // an aged, ~10% fragmented file system
  CalibratedRate rate = CalibrateRate(stack, base, 0.5);

  for (bool use_duet : {false, true}) {
    MaintenanceRunConfig config;
    config.stack = stack;
    config.personality = Personality::kWebserver;
    config.target_util = 0.5;
    config.ops_per_sec = rate.unthrottled ? 0 : rate.ops_per_sec;
    config.unthrottled = rate.unthrottled;
    config.tasks = {MaintKind::kScrub, MaintKind::kBackup, MaintKind::kDefrag};
    config.use_duet = use_duet;
    config.fragmented_fraction = 0.1;
    config.seed = 7;
    MaintenanceRunResult result = RunMaintenance(config);

    printf("--- %s ---\n", use_duet ? "with Duet" : "baseline");
    for (size_t i = 0; i < config.tasks.size(); ++i) {
      const TaskStats& s = result.task_stats[i];
      printf("  %-7s %s: %5.1f%% done, %llu pages of I/O, %llu saved\n",
             MaintKindName(config.tasks[i]),
             s.finished ? "finished" : "unfinished",
             100.0 * s.CompletionFraction(),
             static_cast<unsigned long long>(s.TotalIoPages()),
             static_cast<unsigned long long>(s.saved_read_pages + s.saved_write_pages));
    }
    printf("  combined: %.0f%% of maintenance I/O saved, %.0f%% of work completed\n",
           100 * result.IoSavedFraction(), 100 * result.WorkCompletedFraction());
    printf("  workload: %llu ops at %.0f%% measured utilization\n\n",
           static_cast<unsigned long long>(result.workload_ops),
           100 * result.measured_util);
  }
  return 0;
}
