// Quickstart: build a simulated storage stack, run a webserver workload at
// ~50% device utilization, and scrub the file system with and without Duet.
//
// Demonstrates the core API surface:
//   StackConfig / CowRig       — the simulated stack
//   CalibrateRate              — dialing in a target device utilization
//   DuetCore + Scrubber        — a maintenance task in baseline & Duet modes
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/harness/calibrate.h"
#include "src/harness/runner.h"
#include "src/harness/stack_config.h"

using namespace duet;

int main() {
  StackConfig stack = QuickStackConfig();

  printf("Duet quickstart\n");
  printf("  device: %s, %llu blocks; cache: %llu pages; window: %.0f s\n\n",
         stack.device == DeviceKind::kHdd ? "hdd" : "ssd",
         static_cast<unsigned long long>(stack.capacity_blocks),
         static_cast<unsigned long long>(stack.cache_pages),
         ToSeconds(stack.window));

  // Calibrate the webserver personality to ~50% device utilization, as the
  // paper does before every experiment (§6.1.2).
  WorkloadConfig base = MakeWorkloadConfig(stack, Personality::kWebserver,
                                           /*coverage=*/1.0, /*skewed=*/false,
                                           /*ops_per_sec=*/0, /*seed=*/1);
  CalibratedRate rate = CalibrateRate(stack, base, 0.5);
  printf("calibrated webserver rate: %.1f ops/s (achieved %.0f%% util)\n\n",
         rate.ops_per_sec, rate.achieved_util * 100);

  for (bool use_duet : {false, true}) {
    MaintenanceRunConfig config;
    config.stack = stack;
    config.personality = Personality::kWebserver;
    config.target_util = 0.5;
    config.ops_per_sec = rate.ops_per_sec;
    config.unthrottled = rate.unthrottled;
    config.tasks = {MaintKind::kScrub};
    config.use_duet = use_duet;
    MaintenanceRunResult result = RunMaintenance(config);
    const TaskStats& scrub = result.task_stats[0];
    printf("%s scrubber:\n", use_duet ? "duet" : "baseline");
    printf("  util during run: %.0f%%  workload ops: %llu\n",
           result.measured_util * 100,
           static_cast<unsigned long long>(result.workload_ops));
    printf("  scrub: %llu/%llu blocks done (%s), read I/O %llu, saved %llu\n",
           static_cast<unsigned long long>(scrub.work_done),
           static_cast<unsigned long long>(scrub.work_total),
           scrub.finished ? "finished" : "NOT finished",
           static_cast<unsigned long long>(scrub.io_read_pages),
           static_cast<unsigned long long>(scrub.saved_read_pages));
    printf("  I/O saved vs baseline total: %.0f%%\n\n",
           result.IoSavedFraction() * 100);
  }
  return 0;
}
