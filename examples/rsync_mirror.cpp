// Rsync mirror: synchronize a directory tree from one simulated disk to
// another while a foreground workload hammers the source (paper §5.5).
// Demonstrates the file-task side of the Duet API: GetPath as the hint
// truth, priority by pages-in-memory, and exactly-once metadata.
//
// Build & run:  ./build/examples/rsync_mirror

#include <cstdio>

#include "src/harness/rig.h"
#include "src/tasks/rsync_task.h"

using namespace duet;

int main() {
  StackConfig stack = QuickStackConfig();
  printf("Rsync mirror: /data -> second disk /backup, webserver running\n\n");

  for (bool use_duet : {false, true}) {
    WorkloadConfig workload =
        MakeWorkloadConfig(stack, Personality::kWebserver, 1.0, false, 0, 11);
    CowRig rig(stack, workload);

    BlockDevice dst_device(&rig.loop(), MakeDiskModel(stack), MakeScheduler(stack));
    CowFs dst_fs(&rig.loop(), &dst_device, stack.cache_pages);
    if (!dst_fs.Mkdir("/backup").ok()) {
      return 1;
    }

    RsyncConfig config;
    config.use_duet = use_duet;
    config.source_dir = "/data";
    config.dest_dir = "/backup";
    RsyncTask task(&rig.fs(), &dst_fs, &rig.duet(), config);

    bool finished = false;
    task.Start([&] { finished = true; });
    rig.workload().Start();
    while (!finished && rig.loop().now() < Minutes(30)) {
      rig.loop().RunUntil(rig.loop().now() + Seconds(1));
    }
    rig.workload().Stop();

    printf("--- %s ---\n", use_duet ? "with Duet" : "baseline");
    printf("  synced %llu files in %.1f s (%llu pages read from disk, %llu from "
           "cache)\n",
           static_cast<unsigned long long>(task.files_synced()),
           ToSeconds(task.stats().Runtime()),
           static_cast<unsigned long long>(task.stats().io_read_pages),
           static_cast<unsigned long long>(task.stats().saved_read_pages));
    printf("  destination matches source: %s\n\n",
           task.DestinationMatchesSource() ? "yes" : "NO (bug!)");
    task.Stop();
  }
  return 0;
}
