#include "src/duet/inotify.h"

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "src/util/format.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class InotifyTest : public ::testing::Test {
 protected:
  InotifyTest()
      : rig_(100'000), fs_(&rig_.loop, &rig_.device, 256), inotify_(&fs_) {}

  void ReadSync(InodeNo ino, ByteOff off, uint64_t len) {
    fs_.Read(ino, off, len, IoClass::kBestEffort, nullptr);
    rig_.loop.RunUntil(rig_.loop.now() + Millis(200));
  }

  SimRig rig_;
  CowFs fs_;
  Inotify inotify_;
};

TEST_F(InotifyTest, WatchRequiresDirectory) {
  InodeNo f = *fs_.PopulateFile("/f", kPageSize);
  EXPECT_FALSE(inotify_.AddWatch(f, kInAccess).ok());
  EXPECT_TRUE(inotify_.AddWatch(fs_.ns().root(), kInAccess).ok());
}

TEST_F(InotifyTest, AccessEventForWatchedDirectory) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  InodeNo f = *fs_.PopulateFile("/d/f", 4 * kPageSize);
  int wd = *inotify_.AddWatch(*fs_.ns().Resolve("/d"), kInAccess | kInModify);
  ReadSync(f, 0, 4 * kPageSize);
  auto events = inotify_.ReadEvents(100);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].wd, wd);
  EXPECT_EQ(events[0].ino, f);
  EXPECT_EQ(events[0].mask, kInAccess);
}

TEST_F(InotifyTest, EventsAreFileLevelAndCoalesced) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  InodeNo f = *fs_.PopulateFile("/d/f", 8 * kPageSize);
  (void)*inotify_.AddWatch(*fs_.ns().Resolve("/d"), kInAccess);
  ReadSync(f, 0, 8 * kPageSize);  // 8 page events
  auto events = inotify_.ReadEvents(100);
  // Consecutive identical file-level events coalesce into one.
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(InotifyTest, ModifyEvents) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  InodeNo f = *fs_.PopulateFile("/d/f", 2 * kPageSize);
  (void)*inotify_.AddWatch(*fs_.ns().Resolve("/d"), kInModify);
  fs_.Write(f, 0, kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(100));
  auto events = inotify_.ReadEvents(100);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].mask, kInModify);
}

TEST_F(InotifyTest, NoEvictionOrWritebackVisibility) {
  // The information gap vs Duet: flush and eviction produce nothing.
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  InodeNo f = *fs_.PopulateFile("/d/f", 2 * kPageSize);
  (void)*inotify_.AddWatch(*fs_.ns().Resolve("/d"), kInAccess | kInModify);
  fs_.Write(f, 0, kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(100));
  (void)inotify_.ReadEvents(100);  // drain the modify event
  fs_.writeback().Sync(nullptr);   // flush
  rig_.loop.Run();
  fs_.cache().RemoveInode(f);      // evict
  EXPECT_TRUE(inotify_.ReadEvents(100).empty());
}

TEST_F(InotifyTest, WatchesAreNotRecursive) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.Mkdir("/d/sub").ok());
  InodeNo deep = *fs_.PopulateFile("/d/sub/f", 2 * kPageSize);
  (void)*inotify_.AddWatch(*fs_.ns().Resolve("/d"), kInAccess);
  ReadSync(deep, 0, 2 * kPageSize);
  // /d is watched but /d/sub is not: no events for the nested file.
  EXPECT_TRUE(inotify_.ReadEvents(100).empty());
}

TEST_F(InotifyTest, RecursiveSetupCreatesWatchPerDirectory) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_.Mkdir(StrFormat("/d/sub%d", i)).ok());
  }
  Result<uint64_t> created =
      inotify_.AddWatchRecursive(*fs_.ns().Resolve("/d"), kInAccess);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, 6u);  // /d plus five subdirectories
  EXPECT_EQ(inotify_.watches(), 6u);
}

TEST_F(InotifyTest, RemoveWatchStopsEvents) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  InodeNo f = *fs_.PopulateFile("/d/f", kPageSize);
  int wd = *inotify_.AddWatch(*fs_.ns().Resolve("/d"), kInAccess);
  ASSERT_TRUE(inotify_.RemoveWatch(wd).ok());
  EXPECT_FALSE(inotify_.RemoveWatch(wd).ok());
  ReadSync(f, 0, kPageSize);
  EXPECT_TRUE(inotify_.ReadEvents(100).empty());
}

TEST_F(InotifyTest, QueueOverflowDropsEvents) {
  SimRig rig(100'000);
  CowFs fs(&rig.loop, &rig.device, 4096);
  Inotify small(&fs, /*queue_limit=*/4);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::vector<InodeNo> files;
  for (int i = 0; i < 10; ++i) {
    files.push_back(*fs.PopulateFile(StrFormat("/d/f%d", i), kPageSize));
  }
  (void)*small.AddWatch(*fs.ns().Resolve("/d"), kInAccess);
  for (InodeNo f : files) {
    fs.Read(f, 0, kPageSize, IoClass::kBestEffort, nullptr);
  }
  rig.loop.RunUntil(Millis(500));
  EXPECT_EQ(small.ReadEvents(100).size(), 4u);
  EXPECT_GT(small.events_dropped(), 0u);
}

}  // namespace
}  // namespace duet
