#include "src/duet/duet_library.h"

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

DuetItem Exists(InodeNo ino, ByteOff offset) {
  DuetItem item;
  item.id = ino;
  item.offset = offset;
  item.flags = kDuetPageExists;
  return item;
}

DuetItem Gone(InodeNo ino, ByteOff offset) {
  DuetItem item;
  item.id = ino;
  item.offset = offset;
  item.flags = kDuetPageRemoved;
  return item;
}

TEST(InodePriorityQueueTest, OrdersByScore) {
  InodePriorityQueue q([](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
  q.Update({Exists(1, 0), Exists(2, 0), Exists(2, kPageSize), Exists(3, 0),
            Exists(3, kPageSize), Exists(3, 2 * kPageSize)});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Dequeue(), 3u);  // 3 pages
  EXPECT_EQ(q.Dequeue(), 2u);  // 2 pages
  EXPECT_EQ(q.Dequeue(), 1u);
  EXPECT_EQ(q.Dequeue(), std::nullopt);
}

TEST(InodePriorityQueueTest, RemovalLowersPriority) {
  InodePriorityQueue q([](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
  q.Update({Exists(1, 0), Exists(1, kPageSize), Exists(2, 0)});
  q.Update({Gone(1, 0), Gone(1, kPageSize)});
  EXPECT_EQ(q.PagesInMemory(1), 0u);
  EXPECT_EQ(q.Dequeue(), 2u);
}

TEST(InodePriorityQueueTest, RemovalsClampAtZero) {
  InodePriorityQueue q([](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
  q.Update({Gone(5, 0), Gone(5, 0)});
  EXPECT_EQ(q.PagesInMemory(5), 0u);
}

TEST(InodePriorityQueueTest, DequeueRemovesUntilNextUpdate) {
  InodePriorityQueue q([](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
  q.Update({Exists(1, 0)});
  EXPECT_EQ(q.Dequeue(), 1u);
  EXPECT_TRUE(q.empty());
  // A later event re-queues it.
  q.Update({Exists(1, kPageSize)});
  EXPECT_EQ(q.Dequeue(), 1u);
  EXPECT_EQ(q.PagesInMemory(1), 2u);
}

TEST(InodePriorityQueueTest, EraseDropsInode) {
  InodePriorityQueue q([](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
  q.Update({Exists(1, 0), Exists(2, 0)});
  q.Erase(2);
  EXPECT_EQ(q.Dequeue(), 1u);
  EXPECT_EQ(q.Dequeue(), std::nullopt);
}

TEST(InodePriorityQueueTest, CustomScoreFunction) {
  // Prefer *smaller* inodes regardless of page count.
  InodePriorityQueue q([](InodeNo ino, uint64_t) { return -static_cast<double>(ino); });
  q.Update({Exists(9, 0), Exists(3, 0), Exists(5, 0)});
  EXPECT_EQ(q.Dequeue(), 3u);
  EXPECT_EQ(q.Dequeue(), 5u);
  EXPECT_EQ(q.Dequeue(), 9u);
}

TEST(DrainEventsTest, DrainsEverythingThroughQueue) {
  SimRig rig(100'000);
  CowFs fs(&rig.loop, &rig.device, 256);
  DuetCore duet(&fs);
  ASSERT_TRUE(fs.Mkdir("/w").ok());
  InodeNo ino = *fs.PopulateFile("/w/f", 10 * kPageSize);
  SessionId sid = *duet.RegisterFileTask("/w", kDuetPageExists);
  fs.Read(ino, 0, 10 * kPageSize, IoClass::kBestEffort, nullptr);
  rig.loop.Run();
  InodePriorityQueue q([](InodeNo, uint64_t pages) { return static_cast<double>(pages); });
  uint64_t fetched = DrainEvents(duet, sid, q, /*batch=*/3);
  EXPECT_EQ(fetched, 10u);
  EXPECT_EQ(q.PagesInMemory(ino), 10u);
  EXPECT_EQ(DrainEvents(duet, sid, q), 0u);
}

TEST(DrainEventsTest, RawCallbackVariant) {
  SimRig rig(100'000);
  CowFs fs(&rig.loop, &rig.device, 256);
  DuetCore duet(&fs);
  InodeNo ino = *fs.PopulateFile("/f", 5 * kPageSize);
  SessionId sid = *duet.RegisterBlockTask(kDuetPageAdded);
  fs.Read(ino, 0, 5 * kPageSize, IoClass::kBestEffort, nullptr);
  rig.loop.Run();
  uint64_t seen = 0;
  uint64_t fetched = DrainEvents(duet, sid, [&](const DuetItem& item) {
    EXPECT_TRUE(item.has(kDuetPageAdded));
    ++seen;
  });
  EXPECT_EQ(fetched, 5u);
  EXPECT_EQ(seen, 5u);
}

}  // namespace
}  // namespace duet
