// Shared test fixtures: event loop + block device + file system plumbing.
#ifndef TESTS_SIM_FIXTURE_H_
#define TESTS_SIM_FIXTURE_H_

#include <memory>

#include "src/block/block_device.h"
#include "src/block/disk_model.h"
#include "src/block/io_scheduler.h"
#include "src/sim/event_loop.h"

namespace duet {

// Deterministic fixed-latency disk for logic-focused tests.
class FixedLatencyModel : public DiskModel {
 public:
  explicit FixedLatencyModel(SimDuration latency = Millis(1),
                             uint64_t capacity = 1'000'000)
      : latency_(latency), capacity_(capacity) {}
  SimDuration ServiceTime(BlockNo, uint32_t, IoDir, BlockNo) const override {
    return latency_;
  }
  uint64_t capacity_blocks() const override { return capacity_; }
  const char* name() const override { return "fixed"; }

 private:
  SimDuration latency_;
  uint64_t capacity_;
};

struct SimRig {
  explicit SimRig(uint64_t capacity_blocks = 1'000'000,
                  SimDuration latency = Millis(1))
      : device(&loop, std::make_unique<FixedLatencyModel>(latency, capacity_blocks),
               std::make_unique<CfqScheduler>(Millis(2))) {}

  EventLoop loop;
  BlockDevice device;
};

}  // namespace duet

#endif  // TESTS_SIM_FIXTURE_H_
