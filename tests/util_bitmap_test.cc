#include "src/util/bitmap.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace duet {
namespace {

TEST(BitmapTest, StartsEmpty) {
  Bitmap bm(1000);
  EXPECT_EQ(bm.size(), 1000u);
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_TRUE(bm.AllClear());
  EXPECT_FALSE(bm.AllSet());
  EXPECT_FALSE(bm.Test(0));
  EXPECT_FALSE(bm.Test(999));
}

TEST(BitmapTest, SetClearTest) {
  Bitmap bm(130);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.Count(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.Count(), 3u);
}

TEST(BitmapTest, SetIsIdempotent) {
  Bitmap bm(10);
  bm.Set(5);
  bm.Set(5);
  EXPECT_EQ(bm.Count(), 1u);
  bm.Clear(5);
  bm.Clear(5);
  EXPECT_EQ(bm.Count(), 0u);
}

TEST(BitmapTest, SetRangeWithinWord) {
  Bitmap bm(64);
  bm.SetRange(3, 9);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(bm.Test(i), i >= 3 && i < 9) << i;
  }
}

TEST(BitmapTest, SetRangeAcrossWords) {
  Bitmap bm(256);
  bm.SetRange(60, 200);
  EXPECT_EQ(bm.Count(), 140u);
  EXPECT_FALSE(bm.Test(59));
  EXPECT_TRUE(bm.Test(60));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_FALSE(bm.Test(200));
}

TEST(BitmapTest, EmptyRangeIsNoop) {
  Bitmap bm(100);
  bm.SetRange(10, 10);
  EXPECT_EQ(bm.Count(), 0u);
  bm.SetRange(0, 100);
  bm.ClearRange(50, 50);
  EXPECT_EQ(bm.Count(), 100u);
}

TEST(BitmapTest, ClearRange) {
  Bitmap bm(256);
  bm.SetRange(0, 256);
  bm.ClearRange(100, 130);
  EXPECT_EQ(bm.Count(), 256u - 30u);
  EXPECT_TRUE(bm.Test(99));
  EXPECT_FALSE(bm.Test(100));
  EXPECT_FALSE(bm.Test(129));
  EXPECT_TRUE(bm.Test(130));
}

TEST(BitmapTest, CountRange) {
  Bitmap bm(300);
  bm.SetRange(10, 290);
  EXPECT_EQ(bm.CountRange(0, 300), 280u);
  EXPECT_EQ(bm.CountRange(0, 10), 0u);
  EXPECT_EQ(bm.CountRange(10, 11), 1u);
  EXPECT_EQ(bm.CountRange(100, 200), 100u);
  EXPECT_EQ(bm.CountRange(285, 300), 5u);
  EXPECT_EQ(bm.CountRange(150, 150), 0u);
}

TEST(BitmapTest, FindNextSet) {
  Bitmap bm(200);
  EXPECT_EQ(bm.FindNextSet(0), std::nullopt);
  bm.Set(5);
  bm.Set(70);
  bm.Set(199);
  EXPECT_EQ(bm.FindNextSet(0), 5u);
  EXPECT_EQ(bm.FindNextSet(5), 5u);
  EXPECT_EQ(bm.FindNextSet(6), 70u);
  EXPECT_EQ(bm.FindNextSet(71), 199u);
  EXPECT_EQ(bm.FindNextSet(200), std::nullopt);
}

TEST(BitmapTest, FindNextClear) {
  Bitmap bm(100);
  bm.SetRange(0, 100);
  EXPECT_EQ(bm.FindNextClear(0), std::nullopt);
  bm.Clear(42);
  EXPECT_EQ(bm.FindNextClear(0), 42u);
  EXPECT_EQ(bm.FindNextClear(43), std::nullopt);
}

TEST(BitmapTest, AllSetAllClear) {
  Bitmap bm(65);
  EXPECT_TRUE(bm.AllClear());
  bm.SetRange(0, 65);
  EXPECT_TRUE(bm.AllSet());
  bm.Clear(64);
  EXPECT_FALSE(bm.AllSet());
  bm.Reset();
  EXPECT_TRUE(bm.AllClear());
}

// Property test: random operations against a reference std::vector<bool>.
class BitmapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitmapPropertyTest, MatchesReferenceModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const uint64_t n = 1 + rng.Uniform(2000);
  Bitmap bm(n);
  std::vector<bool> ref(n, false);

  for (int step = 0; step < 500; ++step) {
    switch (rng.Uniform(5)) {
      case 0: {
        uint64_t b = rng.Uniform(n);
        bm.Set(b);
        ref[b] = true;
        break;
      }
      case 1: {
        uint64_t b = rng.Uniform(n);
        bm.Clear(b);
        ref[b] = false;
        break;
      }
      case 2: {
        uint64_t lo = rng.Uniform(n + 1);
        uint64_t hi = lo + rng.Uniform(n + 1 - lo);
        bm.SetRange(lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          ref[i] = true;
        }
        break;
      }
      case 3: {
        uint64_t lo = rng.Uniform(n + 1);
        uint64_t hi = lo + rng.Uniform(n + 1 - lo);
        bm.ClearRange(lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          ref[i] = false;
        }
        break;
      }
      case 4: {
        uint64_t lo = rng.Uniform(n + 1);
        uint64_t hi = lo + rng.Uniform(n + 1 - lo);
        uint64_t expected = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          expected += ref[i] ? 1 : 0;
        }
        ASSERT_EQ(bm.CountRange(lo, hi), expected);
        break;
      }
    }
  }

  uint64_t expected_count = 0;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(bm.Test(i), ref[i]) << "bit " << i;
    expected_count += ref[i] ? 1 : 0;
  }
  EXPECT_EQ(bm.Count(), expected_count);

  // FindNextSet agrees with a linear scan from several anchors.
  for (uint64_t anchor = 0; anchor < n; anchor += 1 + n / 7) {
    std::optional<uint64_t> expected;
    for (uint64_t i = anchor; i < n; ++i) {
      if (ref[i]) {
        expected = i;
        break;
      }
    }
    EXPECT_EQ(bm.FindNextSet(anchor), expected) << "anchor " << anchor;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---- Word-boundary seams ----
// The word-at-a-time fast paths (SetRange/ClearRange/CountRange/FindNext*)
// switch between masked partial words and full-word operations exactly at
// multiples of 64; off-by-ones there silently corrupt neighbouring bits.

TEST(BitmapTest, SetClearAtEveryWordSeam) {
  Bitmap b(64 * 4 + 1);
  for (uint64_t seam = 64; seam <= 256; seam += 64) {
    for (int64_t d = -1; d <= 1; ++d) {
      uint64_t bit = seam + d;
      if (bit >= b.size()) continue;
      b.Set(bit);
      EXPECT_TRUE(b.Test(bit)) << bit;
    }
  }
  EXPECT_EQ(b.Count(), 3u * 3u + 2u);  // seams 64,128,192 full; 256 has -1,0
  for (uint64_t seam = 64; seam <= 256; seam += 64) {
    for (int64_t d = -1; d <= 1; ++d) {
      uint64_t bit = seam + d;
      if (bit >= b.size()) continue;
      b.Clear(bit);
      EXPECT_FALSE(b.Test(bit)) << bit;
    }
  }
  EXPECT_TRUE(b.AllClear());
}

TEST(BitmapTest, RangesHittingWordSeamsExactly) {
  // Every combination of begin/end landing on, just before, and just after a
  // word seam, checked against per-bit ground truth.
  const uint64_t kBits = 64 * 5;
  const uint64_t edges[] = {0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 255, 256, 319, 320};
  for (uint64_t begin : edges) {
    for (uint64_t end : edges) {
      if (end < begin) continue;
      Bitmap b(kBits);
      b.SetRange(begin, end);
      EXPECT_EQ(b.Count(), end - begin) << begin << ".." << end;
      for (uint64_t i = 0; i < kBits; ++i) {
        EXPECT_EQ(b.Test(i), i >= begin && i < end) << i;
      }
      EXPECT_EQ(b.CountRange(begin, end), end - begin);
      b.ClearRange(begin, end);
      EXPECT_TRUE(b.AllClear()) << begin << ".." << end;
    }
  }
}

TEST(BitmapTest, FindNextAcrossWordSeams) {
  Bitmap b(64 * 4);
  b.Set(63);
  b.Set(64);
  b.Set(191);
  EXPECT_EQ(b.FindNextSet(0), std::optional<uint64_t>(63));
  EXPECT_EQ(b.FindNextSet(64), std::optional<uint64_t>(64));
  EXPECT_EQ(b.FindNextSet(65), std::optional<uint64_t>(191));
  EXPECT_EQ(b.FindNextSet(192), std::nullopt);
  Bitmap full(130);
  full.SetRange(0, 130);
  EXPECT_EQ(full.FindNextClear(0), std::nullopt);
  full.Clear(128);
  EXPECT_EQ(full.FindNextClear(64), std::optional<uint64_t>(128));
}

TEST(BitmapTest, NonWordMultipleSizeTailBitsStayClean) {
  // A size not divisible by 64 leaves slack bits in the last word; range and
  // scan operations must never observe them.
  Bitmap b(100);
  b.SetRange(0, 100);
  EXPECT_TRUE(b.AllSet());
  EXPECT_EQ(b.Count(), 100u);
  EXPECT_EQ(b.FindNextClear(0), std::nullopt);
  b.ClearRange(99, 100);
  EXPECT_EQ(b.FindNextClear(0), std::optional<uint64_t>(99));
}

}  // namespace
}  // namespace duet
