// Property test of the Duet notification algebra (paper §3.2 / Table 2)
// against an executable reference model.
//
// For one page, a random interleaving of cache operations and fetches is
// generated. The reference model tracks, per session:
//  * which event types occurred since the last fetch (event subscriptions);
//  * the page state at the last fetch vs now (state subscriptions).
// The real DuetCore must report exactly what the model predicts: accumulated
// event bits, state items only on net change, with current polarity.

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/util/rng.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

struct ReferenceModel {
  // Page state in the (modeled) cache.
  bool exists = false;
  bool modified = false;
  // Accumulated-but-unfetched event bits.
  uint8_t pending_events = 0;
  // State snapshot at the last fetch.
  bool reported_exists = false;
  bool reported_modified = false;

  void Apply(PageEventType type) {
    switch (type) {
      case PageEventType::kAdded:
        exists = true;
        pending_events |= kDuetPageAdded;
        break;
      case PageEventType::kRemoved:
        exists = false;
        modified = false;
        pending_events |= kDuetPageRemoved;
        break;
      case PageEventType::kDirtied:
        modified = true;
        pending_events |= kDuetPageDirtied;
        break;
      case PageEventType::kFlushed:
        modified = false;
        pending_events |= kDuetPageFlushed;
        break;
    }
  }

  // Expected item flags for a session with `mask`; 0 = no item.
  uint8_t ExpectedFlags(uint8_t mask) {
    uint8_t out = pending_events & mask & kDuetEventMask;
    if ((mask & kDuetPageExists) != 0 && reported_exists != exists) {
      out |= exists ? kDuetPageExists : kDuetPageRemoved;
    }
    if ((mask & kDuetPageModified) != 0 && reported_modified != modified) {
      out |= modified ? kDuetPageModified : kDuetPageFlushed;
    }
    return out;
  }

  void MarkFetched() {
    pending_events = 0;
    reported_exists = exists;
    reported_modified = modified;
  }
};

class DuetSemanticsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DuetSemanticsPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  SimRig rig(100'000);
  CowFs fs(&rig.loop, &rig.device, 64);
  DuetCore duet(&fs);
  InodeNo ino = *fs.PopulateFile("/f", kPageSize);
  uint64_t token = 1000;

  // A random subscription mask (at least one bit).
  uint8_t mask = 0;
  while (mask == 0) {
    mask = static_cast<uint8_t>(rng.Uniform(64));
  }
  SessionId sid = *duet.RegisterBlockTask(mask);
  ReferenceModel model;  // page not cached at registration: model in sync

  for (int step = 0; step < 300; ++step) {
    uint64_t action = rng.Uniform(6);
    switch (action) {
      case 0:  // add (insert clean) — only when absent
        if (!model.exists) {
          fs.cache().Insert(ino, 0, ++token, false);
          model.Apply(PageEventType::kAdded);
        }
        break;
      case 1:  // remove — only when present and clean (LRU never evicts dirty)
        if (model.exists && !model.modified) {
          ASSERT_TRUE(fs.cache().Remove(ino, 0));
          model.Apply(PageEventType::kRemoved);
        }
        break;
      case 2:  // dirty
        if (model.exists && !model.modified) {
          ASSERT_TRUE(fs.cache().MarkDirty(ino, 0, ++token));
          model.Apply(PageEventType::kDirtied);
        }
        break;
      case 3:  // flush
        if (model.exists && model.modified) {
          ASSERT_TRUE(fs.cache().MarkClean(ino, 0));
          model.Apply(PageEventType::kFlushed);
        }
        break;
      default: {  // fetch
        uint8_t expected = model.ExpectedFlags(mask);
        Result<std::vector<DuetItem>> items = duet.Fetch(sid, 16);
        ASSERT_TRUE(items.ok());
        if (expected == 0) {
          ASSERT_TRUE(items->empty())
              << "step " << step << ": expected no item, got flags "
              << int((*items)[0].flags);
        } else {
          ASSERT_EQ(items->size(), 1u) << "step " << step;
          EXPECT_EQ((*items)[0].flags, expected) << "step " << step;
          EXPECT_EQ((*items)[0].id, *fs.Bmap(ino, 0));
        }
        model.MarkFetched();
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuetSemanticsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14, 15, 16));

}  // namespace
}  // namespace duet
