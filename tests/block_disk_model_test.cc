#include "src/block/disk_model.h"

#include <gtest/gtest.h>

namespace duet {
namespace {

TEST(HddModelTest, SequentialHasNoPositioningCost) {
  HddModel hdd;
  SimDuration seq = hdd.ServiceTime(100, 16, IoDir::kRead, 100);
  SimDuration rand = hdd.ServiceTime(1'000'000, 16, IoDir::kRead, 100);
  EXPECT_LT(seq, rand);
  // Sequential 64 KiB at 150 MB/s is ~0.44 ms.
  EXPECT_NEAR(ToMillis(seq), 0.44, 0.05);
}

TEST(HddModelTest, RandomReadMatchesPaperCalibration) {
  // The paper reports ~21 MB/s for 64 KiB random reads on both devices.
  HddModel hdd;
  double total_ms = 0;
  BlockNo head = 0;
  // Average over a spread of seek distances.
  for (BlockNo target = 500'000; target < 12'000'000; target += 1'000'000) {
    total_ms += ToMillis(hdd.ServiceTime(target, 16, IoDir::kRead, head));
    head = target + 16;
  }
  double avg_ms = total_ms / 12.0;
  double mbps = 64.0 / 1024.0 / (avg_ms / 1000.0);
  EXPECT_GT(mbps, 12.0);
  EXPECT_LT(mbps, 30.0);
}

TEST(HddModelTest, SeekCostGrowsWithDistance) {
  HddModel hdd;
  SimDuration near = hdd.ServiceTime(1000, 1, IoDir::kRead, 0);
  SimDuration far = hdd.ServiceTime(12'000'000, 1, IoDir::kRead, 0);
  EXPECT_LT(near, far);
}

TEST(HddModelTest, LargerTransfersTakeLonger) {
  HddModel hdd;
  EXPECT_LT(hdd.ServiceTime(0, 1, IoDir::kRead, 0),
            hdd.ServiceTime(0, 256, IoDir::kRead, 0));
}

TEST(SsdModelTest, SequentialMuchFasterThanHddRandom) {
  SsdModel ssd;
  HddModel hdd;
  // 1 MiB sequential read.
  SimDuration ssd_seq = ssd.ServiceTime(100, 256, IoDir::kRead, 100);
  SimDuration hdd_rand = hdd.ServiceTime(6'000'000, 256, IoDir::kRead, 0);
  EXPECT_LT(ssd_seq, hdd_rand);
  // ~265 MB/s → 1 MiB in ~3.96 ms.
  EXPECT_NEAR(ToMillis(ssd_seq), 3.96, 0.3);
}

TEST(SsdModelTest, RandomReadPenaltyIsDistanceIndependent) {
  SsdModel ssd;
  SimDuration near = ssd.ServiceTime(200, 16, IoDir::kRead, 100);
  SimDuration far = ssd.ServiceTime(10'000'000, 16, IoDir::kRead, 100);
  EXPECT_EQ(near, far);
}

TEST(SsdModelTest, RandomReadRoughlySimilarToHdd) {
  // §6.5: "the random read performance of our Intel 510 SSD and our
  // enterprise 10K hard drive is roughly similar, about 21 MB/s" (64 KiB).
  SsdModel ssd;
  SimDuration t = ssd.ServiceTime(5'000'000, 16, IoDir::kRead, 0);
  double mbps = 64.0 / 1024.0 / ToSeconds(t);
  EXPECT_GT(mbps, 15.0);
  EXPECT_LT(mbps, 30.0);
}

TEST(SsdModelTest, WritesCheaperPenaltyThanReads) {
  SsdModel ssd;
  EXPECT_LT(ssd.ServiceTime(5'000'000, 16, IoDir::kWrite, 0),
            ssd.ServiceTime(5'000'000, 16, IoDir::kRead, 0));
}

}  // namespace
}  // namespace duet
