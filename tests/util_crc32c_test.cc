#include "src/util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/util/rng.h"

namespace duet {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);

  uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);

  uint8_t ones[32];
  memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62a8ab43u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  std::string a = "the quick brown fox";
  std::string b = "the quick brown foy";
  EXPECT_NE(Crc32c(a.data(), a.size()), Crc32c(b.data(), b.size()));
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  Rng rng(99);
  uint8_t buf[4096];
  for (auto& byte : buf) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  uint32_t original = Crc32c(buf, sizeof(buf));
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t bit = rng.Uniform(sizeof(buf) * 8);
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32c(buf, sizeof(buf)), original) << "bit " << bit;
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));  // restore
  }
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), original);
}

TEST(Crc32cTest, SeedChainingMatchesOneShot) {
  std::string data = "abcdefghijklmnopqrstuvwxyz0123456789";
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t first = Crc32c(data.data(), 10);
  uint32_t chained = Crc32c(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(chained, whole);
}

}  // namespace
}  // namespace duet
