#include "src/util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/util/rng.h"

namespace duet {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);

  uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);

  uint8_t ones[32];
  memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62a8ab43u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  std::string a = "the quick brown fox";
  std::string b = "the quick brown foy";
  EXPECT_NE(Crc32c(a.data(), a.size()), Crc32c(b.data(), b.size()));
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  Rng rng(99);
  uint8_t buf[4096];
  for (auto& byte : buf) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  uint32_t original = Crc32c(buf, sizeof(buf));
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t bit = rng.Uniform(sizeof(buf) * 8);
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32c(buf, sizeof(buf)), original) << "bit " << bit;
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));  // restore
  }
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), original);
}

TEST(Crc32cTest, SeedChainingMatchesOneShot) {
  std::string data = "abcdefghijklmnopqrstuvwxyz0123456789";
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t first = Crc32c(data.data(), 10);
  uint32_t chained = Crc32c(data.data() + 10, data.size() - 10, first);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32cTest, KernelsAgreeOnKnownVectors) {
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32cScalar(digits, 9), 0xe3069283u);
  EXPECT_EQ(Crc32cSlice8(digits, 9), 0xe3069283u);
  if (Crc32cHwAvailable()) {
    EXPECT_EQ(Crc32cHw(digits, 9), 0xe3069283u);
  }
}

// The dispatch contract: every kernel computes the same function, for any
// length, any alignment of the input buffer, and any seed — so the runtime
// choice can never affect checksums, traces, or fingerprints.
TEST(Crc32cTest, KernelsEquivalentAcrossLengthsAlignmentsSeeds) {
  Rng rng(2024);
  std::vector<uint8_t> pool(8192 + 64);
  for (auto& byte : pool) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  // Lengths straddle every slice-by-8 boundary case: sub-word, exact words,
  // word +/- 1, and multi-KiB runs.
  const size_t lengths[] = {0,  1,  2,  3,   7,   8,   9,    15,  16,
                            17, 63, 64, 65,  255, 256, 257,  511, 512,
                            513, 4095, 4096, 4097, 8192};
  for (size_t len : lengths) {
    for (size_t align = 0; align < 9; ++align) {
      uint32_t seed = static_cast<uint32_t>(rng.Next());
      const uint8_t* p = pool.data() + align;
      uint32_t scalar = Crc32cScalar(p, len, seed);
      EXPECT_EQ(Crc32cSlice8(p, len, seed), scalar)
          << "slice8 len=" << len << " align=" << align << " seed=" << seed;
      if (Crc32cHwAvailable()) {
        EXPECT_EQ(Crc32cHw(p, len, seed), scalar)
            << "hw len=" << len << " align=" << align << " seed=" << seed;
      }
      EXPECT_EQ(Crc32c(p, len, seed), scalar)
          << "dispatch len=" << len << " align=" << align;
    }
  }
}

TEST(Crc32cTest, KernelsEquivalentOnRandomLengths) {
  Rng rng(7);
  std::vector<uint8_t> pool(1 << 16);
  for (auto& byte : pool) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.Uniform(pool.size());
    size_t off = rng.Uniform(pool.size() - len);
    uint32_t seed = static_cast<uint32_t>(rng.Next());
    uint32_t scalar = Crc32cScalar(pool.data() + off, len, seed);
    EXPECT_EQ(Crc32cSlice8(pool.data() + off, len, seed), scalar);
    if (Crc32cHwAvailable()) {
      EXPECT_EQ(Crc32cHw(pool.data() + off, len, seed), scalar);
    }
  }
}

TEST(Crc32cTest, DispatchReportsAKnownKernel) {
  std::string name = Crc32cImplName();
  EXPECT_TRUE(name == "scalar" || name == "slice8" || name == "hw") << name;
}

}  // namespace
}  // namespace duet
