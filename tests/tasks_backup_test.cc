#include "src/tasks/backup.h"

#include <gtest/gtest.h>

#include "src/duet/duet_core.h"
#include "src/util/format.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class BackupTest : public ::testing::Test {
 protected:
  BackupTest()
      : rig_(1'000'000, Micros(100)),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/512),
        duet_(&fs_) {}

  void Populate(int files, uint64_t pages_each) {
    for (int i = 0; i < files; ++i) {
      ASSERT_TRUE(fs_.PopulateFile(StrFormat("/f%d", i), pages_each * kPageSize).ok());
    }
  }

  SimRig rig_;
  CowFs fs_;
  DuetCore duet_;
};

TEST_F(BackupTest, BaselineSendsEveryPageOnce) {
  Populate(8, 32);
  Backup backup(&fs_, nullptr, BackupConfig{});
  bool finished = false;
  backup.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_TRUE(backup.AllPagesSentOnce());
  EXPECT_EQ(backup.bytes_sent(), 8 * 32 * kPageSize);
  EXPECT_EQ(backup.stats().work_done, backup.stats().work_total);
}

TEST_F(BackupTest, SnapshotVersionIsBackedUpDespiteOverwrites) {
  Populate(2, 64);
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  BackupConfig config;
  config.chunk_pages = 8;
  Backup backup(&fs_, nullptr, config);
  bool finished = false;
  backup.Start([&] { finished = true; });
  // Overwrite f0 heavily while the backup streams.
  for (int i = 1; i <= 10; ++i) {
    rig_.loop.ScheduleAt(Millis(static_cast<uint64_t>(i)), [this, f0] {
      fs_.Write(f0, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
    });
  }
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_TRUE(backup.AllPagesSentOnce());
}

TEST_F(BackupTest, DuetOpportunisticallyCopiesCachedPages) {
  Populate(8, 32);
  BackupConfig config;
  config.use_duet = true;
  config.chunk_pages = 4;  // slow the stream so the reads below overlap it
  Backup backup(&fs_, &duet_, config);
  bool finished = false;
  backup.Start([&] { finished = true; });
  // Foreground reads bring shared pages into the cache during the backup.
  for (int i = 4; i < 8; ++i) {
    InodeNo ino = *fs_.ns().Resolve(StrFormat("/f%d", i));
    rig_.loop.ScheduleAt(Micros(static_cast<uint64_t>(200 * i)), [this, ino] {
      fs_.Read(ino, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
    });
  }
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_TRUE(backup.AllPagesSentOnce());
  EXPECT_GT(backup.stats().opportunistic_units, 0u);
  EXPECT_GT(backup.stats().saved_read_pages, 0u);
  EXPECT_LT(backup.stats().io_read_pages, backup.stats().work_total);
  EXPECT_EQ(backup.stats().work_done, backup.stats().work_total);
}

TEST_F(BackupTest, DuetDoesNotCopyPagesModifiedSinceSnapshot) {
  Populate(2, 32);
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  BackupConfig config;
  config.use_duet = true;
  config.chunk_pages = 4;
  Backup backup(&fs_, &duet_, config);
  bool finished = false;
  backup.Start([&] { finished = true; });
  // Immediately dirty f0 (after the snapshot is cut at t≈0) and then read
  // it back: the cached pages no longer share blocks with the snapshot, so
  // the opportunistic path must not send them.
  rig_.loop.ScheduleAt(Millis(1), [this, f0] {
    fs_.Write(f0, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
  });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  // Still complete and consistent: the preserved blocks were read instead.
  EXPECT_TRUE(backup.AllPagesSentOnce());
}

TEST_F(BackupTest, StopReleasesSnapshot) {
  Populate(4, 64);
  uint64_t blocks_before = fs_.allocated_blocks();
  Backup backup(&fs_, nullptr, BackupConfig{});
  backup.Start();
  rig_.loop.RunUntil(Millis(2));
  backup.Stop();
  rig_.loop.Run();
  EXPECT_EQ(fs_.allocated_blocks(), blocks_before);  // snapshot refs dropped
}

TEST_F(BackupTest, BackupReadsPopulateCacheForOtherTasks) {
  Populate(4, 32);
  Backup backup(&fs_, nullptr, BackupConfig{});
  bool finished = false;
  backup.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  // Shared (unmodified) pages were read through the page cache.
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  EXPECT_GT(fs_.cache().CachedPagesOfInode(f0), 0u);
}

}  // namespace
}  // namespace duet
