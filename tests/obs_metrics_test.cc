#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include "src/obs/obs.h"

namespace duet {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterRegistersOnceAndShares) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("cache.evictions");
  Counter* b = registry.GetCounter("cache.evictions");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same name -> same handle
  a->Add();
  b->Add(4);
  EXPECT_EQ(registry.CounterValue("cache.evictions"), 5u);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(MetricsRegistryTest, AbsentCounterReadsZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("never.registered"), 0u);
  EXPECT_EQ(registry.FindCounter("never.registered"), nullptr);
}

TEST(MetricsRegistryTest, KindClashReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("block.submits"), nullptr);
  EXPECT_EQ(registry.GetGauge("block.submits"), nullptr);
  EXPECT_EQ(registry.GetHistogram("block.submits"), nullptr);
  EXPECT_EQ(registry.FindGauge("block.submits"), nullptr);
  // The original registration is untouched.
  EXPECT_NE(registry.FindCounter("block.submits"), nullptr);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("cache.resident_pages");
  ASSERT_NE(g, nullptr);
  g->Set(100);
  g->Add(-25);
  EXPECT_EQ(g->value(), 75);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.GaugeValue("cache.resident_pages"), 75);
  EXPECT_EQ(snap.GaugeValue("missing.gauge"), 0);
}

TEST(LogHistogramTest, SingleSampleStats) {
  LogHistogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);
  // All percentiles of a single sample are that sample (clamped to min/max).
  EXPECT_DOUBLE_EQ(h.P50(), 100.0);
  EXPECT_DOUBLE_EQ(h.P99(), 100.0);
}

TEST(LogHistogramTest, EmptyHistogramIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.P50(), 0.0);
}

TEST(LogHistogramTest, PercentilesAreOrderedAndBounded) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  double p50 = h.P50();
  double p95 = h.P95();
  double p99 = h.P99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, static_cast<double>(h.min()));
  EXPECT_LE(p99, static_cast<double>(h.max()));
  // Log2 bucketing bounds the error by the 2x bucket ratio.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(LogHistogramTest, ZeroSampleLandsInFirstBucket) {
  LogHistogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.P50(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotCopiesScalars) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(7);
  registry.GetGauge("b.level")->Set(-3);
  registry.GetHistogram("c.latency")->Record(10);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("a.count"), 7u);
  EXPECT_EQ(snap.GaugeValue("b.level"), -3);
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  // Mutations after the snapshot do not leak into the copy.
  registry.GetCounter("a.count")->Add(100);
  EXPECT_EQ(snap.Value("a.count"), 7u);
}

TEST(MetricsRegistryTest, DumpTextIsNameOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(1);
  registry.GetCounter("a.first")->Add(2);
  registry.GetGauge("m.middle")->Set(3);
  std::string dump = registry.DumpText();
  size_t pos_a = dump.find("a.first");
  size_t pos_m = dump.find("m.middle");
  size_t pos_z = dump.find("z.last");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_m, std::string::npos);
  ASSERT_NE(pos_z, std::string::npos);
  EXPECT_LT(pos_a, pos_m);
  EXPECT_LT(pos_m, pos_z);
}

TEST(MetricsRegistryTest, DumpJsonMentionsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("x.count")->Add(1);
  registry.GetHistogram("y.latency")->Record(5);
  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"x.count\""), std::string::npos);
  EXPECT_NE(json.find("\"y.latency\""), std::string::npos);
}

TEST(ObsContextTest, CurrentObsNeverNullAndScopesNest) {
  ObsContext* def = CurrentObs();
  ASSERT_NE(def, nullptr);
  ObsContext outer;
  {
    ObsScope outer_scope(&outer);
    EXPECT_EQ(CurrentObs(), &outer);
    ObsContext inner;
    {
      ObsScope inner_scope(&inner);
      EXPECT_EQ(CurrentObs(), &inner);
    }
    EXPECT_EQ(CurrentObs(), &outer);
  }
  EXPECT_EQ(CurrentObs(), def);
}

}  // namespace
}  // namespace obs
}  // namespace duet
