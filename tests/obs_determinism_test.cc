// Golden-trace determinism: the structured trace (and therefore its FNV-1a
// fingerprint) must be a pure function of the simulation inputs. Two runs of
// the full stack with identical configuration and seeds must produce
// byte-identical event streams; changing any seed must diverge them.

#include <gtest/gtest.h>

#include "src/harness/crash_rig.h"
#include "src/harness/runner.h"
#include "src/obs/obs.h"

namespace duet {
namespace {

StackConfig TinyStack() {
  StackConfig stack;
  stack.capacity_blocks = 40'960;           // 160 MiB device
  stack.data_bytes = 128ull * 1024 * 1024;  // 128 MiB data
  stack.cache_pages = 656;                  // ~2%
  stack.window = Seconds(6);
  stack.mean_file_size = 256 * 1024;
  return stack;
}

MaintenanceRunConfig BaseConfig() {
  MaintenanceRunConfig config;
  config.stack = TinyStack();
  config.tasks = {MaintKind::kScrub};
  config.use_duet = true;
  config.target_util = 0.3;
  config.ops_per_sec = 40;  // fixed rate: no calibration runs
  config.seed = 42;
  return config;
}

TEST(GoldenTraceTest, SameSeedSameFingerprint) {
  MaintenanceRunResult first = RunMaintenance(BaseConfig());
  MaintenanceRunResult second = RunMaintenance(BaseConfig());
  EXPECT_NE(first.trace_fingerprint, 0u);
  EXPECT_EQ(first.trace_fingerprint, second.trace_fingerprint);
  // The registry snapshot is part of the determinism contract too.
  EXPECT_EQ(first.metrics.counters, second.metrics.counters);
  EXPECT_EQ(first.metrics.gauges, second.metrics.gauges);
}

TEST(GoldenTraceTest, DifferentSeedDivergesFingerprint) {
  MaintenanceRunConfig config = BaseConfig();
  MaintenanceRunResult first = RunMaintenance(config);
  config.seed = 43;
  MaintenanceRunResult second = RunMaintenance(config);
  EXPECT_NE(first.trace_fingerprint, second.trace_fingerprint);
}

TEST(GoldenTraceTest, CallerContextAccumulatesAcrossRuns) {
  obs::ObsContext ctx;
  MaintenanceRunConfig config = BaseConfig();
  config.obs = &ctx;
  MaintenanceRunResult first = RunMaintenance(config);
  uint64_t after_one = ctx.trace.Fingerprint();
  EXPECT_EQ(first.trace_fingerprint, after_one);
  MaintenanceRunResult second = RunMaintenance(config);
  // The shared context keeps folding: the second result's fingerprint covers
  // both runs and differs from the single-run value.
  EXPECT_NE(second.trace_fingerprint, after_one);
  EXPECT_EQ(second.trace_fingerprint, ctx.trace.Fingerprint());
  EXPECT_GE(ctx.metrics.Snapshot().Value("tasks.total.work"),
            first.metrics.Value("tasks.total.work") * 2);
}

TEST(GoldenTraceTest, FaultSeedReplayIsByteIdentical) {
  MaintenanceRunConfig config = BaseConfig();
  config.fault.faults_per_second = 1.0;
  config.fault.kinds = kFaultLatent | kFaultBitRot;
  config.fault_seed = 7;
  MaintenanceRunResult first = RunMaintenance(config);
  MaintenanceRunResult second = RunMaintenance(config);
  ASSERT_EQ(first.fault_fingerprint, second.fault_fingerprint);
  EXPECT_EQ(first.trace_fingerprint, second.trace_fingerprint);

  // A different fault schedule diverges the trace even though the workload
  // seed is unchanged.
  config.fault_seed = 8;
  MaintenanceRunResult third = RunMaintenance(config);
  EXPECT_NE(third.fault_fingerprint, first.fault_fingerprint);
  EXPECT_NE(third.trace_fingerprint, first.trace_fingerprint);
}

TEST(GoldenTraceTest, CrashRecoveryReplaysByteIdentical) {
  // A crash/recover cycle — workload, plug pull, remount, replay — must be as
  // deterministic as any other run: same config, same trace, same metrics.
  // This is what lets a failing torture point be replayed in isolation.
  for (CrashFsKind fs : {CrashFsKind::kCow, CrashFsKind::kLog}) {
    CrashRunConfig config;
    config.fs = fs;
    config.seed = 77;
    config.crash_at_time = Millis(333);

    obs::ObsContext a;
    {
      obs::ObsScope scope(&a);
      RunCrashRecovery(config);
    }
    obs::ObsContext b;
    {
      obs::ObsScope scope(&b);
      RunCrashRecovery(config);
    }
    EXPECT_NE(a.trace.Fingerprint(), obs::Tracer::kFnvOffset);  // events flowed
    EXPECT_EQ(a.trace.Fingerprint(), b.trace.Fingerprint());
    obs::MetricsSnapshot sa = a.metrics.Snapshot();
    obs::MetricsSnapshot sb = b.metrics.Snapshot();
    EXPECT_EQ(sa.counters, sb.counters);
    EXPECT_EQ(sa.gauges, sb.gauges);

    // A different workload seed must diverge the trace: the fingerprint is
    // sensitive, not vacuously stable.
    config.seed = 78;
    obs::ObsContext c;
    {
      obs::ObsScope scope(&c);
      RunCrashRecovery(config);
    }
    EXPECT_NE(c.trace.Fingerprint(), a.trace.Fingerprint());
  }
}

TEST(GoldenTraceTest, RsyncAndGcRunnersAreDeterministic) {
  StackConfig stack = TinyStack();
  obs::ObsContext a;
  RunRsync(stack, Personality::kWebserver, 1.0, false, true, 42, &a);
  obs::ObsContext b;
  RunRsync(stack, Personality::kWebserver, 1.0, false, true, 42, &b);
  EXPECT_EQ(a.trace.Fingerprint(), b.trace.Fingerprint());

  obs::ObsContext c;
  RunGc(stack, /*target_util=*/0.3, true, 42, /*ops_per_sec=*/40, false, false, &c);
  obs::ObsContext d;
  RunGc(stack, /*target_util=*/0.3, true, 42, /*ops_per_sec=*/40, false, false, &d);
  EXPECT_EQ(c.trace.Fingerprint(), d.trace.Fingerprint());
  EXPECT_NE(c.trace.Fingerprint(), obs::Tracer::kFnvOffset);  // events flowed
}

}  // namespace
}  // namespace duet
