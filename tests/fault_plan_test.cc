#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

namespace duet {
namespace {

FaultPlanConfig BaseConfig() {
  FaultPlanConfig config;
  config.kinds = kFaultAllKinds;
  config.faults_per_second = 5.0;
  config.window = Seconds(20);
  config.rot_both_copies_fraction = 0.25;
  return config;
}

TEST(FaultPlanTest, SameSeedSameConfigIsByteIdentical) {
  FaultPlanConfig config = BaseConfig();
  FaultPlan a = FaultPlan::Generate(123, config, 100'000);
  FaultPlan b = FaultPlan::Generate(123, config, 100'000);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_FALSE(a.empty());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]) << "event " << i;
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultPlanConfig config = BaseConfig();
  FaultPlan a = FaultPlan::Generate(1, config, 100'000);
  FaultPlan b = FaultPlan::Generate(2, config, 100'000);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(FaultPlanTest, ConfigChangesDiverge) {
  FaultPlanConfig config = BaseConfig();
  FaultPlan a = FaultPlan::Generate(7, config, 100'000);
  config.kinds = kFaultLatent;
  FaultPlan b = FaultPlan::Generate(7, config, 100'000);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(FaultPlanTest, EventsAreTimeOrderedWithinWindow) {
  FaultPlanConfig config = BaseConfig();
  FaultPlan plan = FaultPlan::Generate(99, config, 100'000);
  ASSERT_FALSE(plan.empty());
  SimTime prev = 0;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.at, prev);
    EXPECT_LT(e.at, static_cast<SimTime>(config.window));
    prev = e.at;
  }
}

TEST(FaultPlanTest, RespectsKindMask) {
  FaultPlanConfig config = BaseConfig();
  config.kinds = kFaultLatent | kFaultTransient;
  FaultPlan plan = FaultPlan::Generate(5, config, 100'000);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_TRUE(e.kind == kFaultLatent || e.kind == kFaultTransient);
  }
}

TEST(FaultPlanTest, RespectsBlockRange) {
  FaultPlanConfig config = BaseConfig();
  config.kinds = kFaultLatent | kFaultBitRot;  // point faults only
  config.range_lo = 1'000;
  config.range_hi = 2'000;
  FaultPlan plan = FaultPlan::Generate(11, config, 100'000);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.block, 1'000u);
    EXPECT_LT(e.block, 2'000u);
  }
}

TEST(FaultPlanTest, HotFractionDrawsFromHotSet) {
  FaultPlanConfig config = BaseConfig();
  config.kinds = kFaultBitRot;
  config.hot_blocks = {10, 20, 30};
  config.hot_fraction = 1.0;
  FaultPlan plan = FaultPlan::Generate(3, config, 100'000);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan.events()) {
    EXPECT_TRUE(e.block == 10 || e.block == 20 || e.block == 30);
  }
}

TEST(FaultPlanTest, ZeroRateYieldsEmptyPlan) {
  FaultPlanConfig config = BaseConfig();
  config.faults_per_second = 0;
  FaultPlan plan = FaultPlan::Generate(42, config, 100'000);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.Fingerprint(), 0u);
}

TEST(FaultPlanTest, FromEventsSortsByTime) {
  FaultPlanConfig config = BaseConfig();
  std::vector<FaultEvent> events = {
      {.at = Seconds(3), .kind = kFaultLatent, .block = 7},
      {.at = Seconds(1), .kind = kFaultBitRot, .block = 9},
  };
  FaultPlan plan = FaultPlan::FromEvents(config, std::move(events));
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].block, 9u);
  EXPECT_EQ(plan.events()[1].block, 7u);
}

}  // namespace
}  // namespace duet
