// Tests for the shared FileSystem data path, instantiated through CowFs.
#include "src/fs/file_system.h"

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() : rig_(100'000), fs_(&rig_.loop, &rig_.device, /*cache_pages=*/64) {}

  InodeNo MakeFile(const char* path, uint64_t bytes) {
    Result<InodeNo> ino = fs_.PopulateFile(path, bytes);
    EXPECT_TRUE(ino.ok()) << ino.status().ToString();
    return *ino;
  }

  FsIoResult ReadSync(InodeNo ino, ByteOff off, uint64_t len,
                      IoClass io_class = IoClass::kBestEffort) {
    FsIoResult out;
    bool done = false;
    fs_.Read(ino, off, len, io_class, [&](const FsIoResult& r) {
      out = r;
      done = true;
    });
    rig_.loop.RunUntil(rig_.loop.now() + Millis(500));
    EXPECT_TRUE(done);
    return out;
  }

  FsIoResult WriteSync(InodeNo ino, ByteOff off, uint64_t len) {
    FsIoResult out;
    bool done = false;
    fs_.Write(ino, off, len, IoClass::kBestEffort, [&](const FsIoResult& r) {
      out = r;
      done = true;
    });
    rig_.loop.RunUntil(rig_.loop.now() + Millis(500));
    EXPECT_TRUE(done);
    return out;
  }

  SimRig rig_;
  CowFs fs_;
};

TEST_F(FileSystemTest, PopulateAllocatesAndMaps) {
  InodeNo ino = MakeFile("/f", 10 * kPageSize);
  EXPECT_EQ(fs_.ns().Get(ino)->size, 10 * kPageSize);
  EXPECT_EQ(fs_.allocated_blocks(), 10u);
  for (PageIdx p = 0; p < 10; ++p) {
    Result<BlockNo> block = fs_.Bmap(ino, p);
    ASSERT_TRUE(block.ok());
    Result<FileSystem::BlockOwner> owner = fs_.Rmap(*block);
    ASSERT_TRUE(owner.ok());
    EXPECT_EQ(owner->ino, ino);
    EXPECT_EQ(owner->idx, p);
  }
}

TEST_F(FileSystemTest, ReadMissGoesToDiskAndCaches) {
  InodeNo ino = MakeFile("/f", 8 * kPageSize);
  FsIoResult first = ReadSync(ino, 0, 8 * kPageSize);
  EXPECT_TRUE(first.status.ok());
  EXPECT_EQ(first.pages_requested, 8u);
  EXPECT_EQ(first.pages_from_disk, 8u);
  EXPECT_EQ(first.pages_from_cache, 0u);
  EXPECT_EQ(first.device_ops, 1u);  // contiguous file -> one coalesced read

  FsIoResult second = ReadSync(ino, 0, 8 * kPageSize);
  EXPECT_EQ(second.pages_from_cache, 8u);
  EXPECT_EQ(second.pages_from_disk, 0u);
  EXPECT_EQ(second.device_ops, 0u);
}

TEST_F(FileSystemTest, PartialReadTouchesOnlyItsPages) {
  InodeNo ino = MakeFile("/f", 10 * kPageSize);
  FsIoResult r = ReadSync(ino, 3 * kPageSize, 2 * kPageSize);
  EXPECT_EQ(r.pages_requested, 2u);
  EXPECT_TRUE(fs_.cache().Contains(ino, 3));
  EXPECT_TRUE(fs_.cache().Contains(ino, 4));
  EXPECT_FALSE(fs_.cache().Contains(ino, 0));
}

TEST_F(FileSystemTest, ReadBeyondEofIsEmpty) {
  InodeNo ino = MakeFile("/f", 4 * kPageSize);
  FsIoResult r = ReadSync(ino, 10 * kPageSize, kPageSize);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.pages_requested, 0u);
}

TEST_F(FileSystemTest, ReadClampsToFileSize) {
  InodeNo ino = MakeFile("/f", 3 * kPageSize);
  FsIoResult r = ReadSync(ino, 0, 100 * kPageSize);
  EXPECT_EQ(r.pages_requested, 3u);
}

TEST_F(FileSystemTest, WriteCreatesDirtyPagesWithoutDeviceIo) {
  InodeNo ino = MakeFile("/f", 4 * kPageSize);
  uint64_t ops_before = rig_.device.stats().TotalOps(IoClass::kBestEffort);
  FsIoResult w = WriteSync(ino, 0, 2 * kPageSize);
  EXPECT_TRUE(w.status.ok());
  EXPECT_EQ(w.pages_requested, 2u);
  EXPECT_EQ(fs_.cache().DirtyCount(), 2u);
  // Writes complete in memory; flusher I/O happens later.
  EXPECT_EQ(rig_.device.stats().TotalOps(IoClass::kBestEffort), ops_before);
}

TEST_F(FileSystemTest, AppendExtendsFile) {
  InodeNo ino = MakeFile("/f", kPageSize);
  bool done = false;
  fs_.Append(ino, 3 * kPageSize, IoClass::kBestEffort, [&](const FsIoResult& r) {
    EXPECT_TRUE(r.status.ok());
    done = true;
  });
  rig_.loop.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(fs_.ns().Get(ino)->size, 4 * kPageSize);
  EXPECT_TRUE(fs_.Bmap(ino, 3).ok());
}

TEST_F(FileSystemTest, WritebackPersistsTokensToDisk) {
  InodeNo ino = MakeFile("/f", 2 * kPageSize);
  WriteSync(ino, 0, 2 * kPageSize);
  uint64_t cached0 = fs_.cache().Peek(ino, 0)->data;
  bool synced = false;
  fs_.writeback().Sync([&] { synced = true; });
  rig_.loop.Run();
  ASSERT_TRUE(synced);
  EXPECT_EQ(fs_.cache().DirtyCount(), 0u);
  Result<BlockNo> block = fs_.Bmap(ino, 0);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(fs_.DiskToken(*block), cached0);
  // Flusher I/O was performed at best-effort priority.
  EXPECT_GT(rig_.device.stats().ops[static_cast<int>(IoClass::kBestEffort)]
                                   [static_cast<int>(IoDir::kWrite)], 0u);
}

TEST_F(FileSystemTest, PageContentPrefersCache) {
  InodeNo ino = MakeFile("/f", kPageSize);
  Result<BlockNo> block = fs_.Bmap(ino, 0);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(*fs_.PageContent(ino, 0), fs_.DiskToken(*block));
  WriteSync(ino, 0, kPageSize);  // dirty page, disk now stale
  EXPECT_EQ(*fs_.PageContent(ino, 0), fs_.cache().Peek(ino, 0)->data);
  EXPECT_NE(*fs_.PageContent(ino, 0), fs_.DiskToken(*block));
}

TEST_F(FileSystemTest, DeleteFileReleasesEverything) {
  InodeNo ino = MakeFile("/f", 5 * kPageSize);
  ReadSync(ino, 0, 5 * kPageSize);
  EXPECT_EQ(fs_.cache().CachedPagesOfInode(ino), 5u);
  ASSERT_TRUE(fs_.DeleteFile(ino).ok());
  EXPECT_EQ(fs_.cache().CachedPagesOfInode(ino), 0u);
  EXPECT_EQ(fs_.allocated_blocks(), 0u);
  EXPECT_FALSE(fs_.ns().Exists(ino));
  EXPECT_FALSE(fs_.Bmap(ino, 0).ok());
}

TEST_F(FileSystemTest, DeleteDirectoryFails) {
  InodeNo dir = *fs_.Mkdir("/d");
  EXPECT_EQ(fs_.DeleteFile(dir).code(), StatusCode::kInvalidArgument);
}

TEST_F(FileSystemTest, ReadOfMissingInodeFails) {
  FsIoResult r = ReadSync(12345, 0, kPageSize);
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
}

TEST_F(FileSystemTest, ReadAtIdleClassUsesIdleQueue) {
  InodeNo ino = MakeFile("/f", 4 * kPageSize);
  FsIoResult r = ReadSync(ino, 0, 4 * kPageSize, IoClass::kIdle);
  EXPECT_TRUE(r.status.ok());
  EXPECT_GT(rig_.device.stats().TotalOps(IoClass::kIdle), 0u);
  EXPECT_EQ(rig_.device.stats().TotalOps(IoClass::kBestEffort), 0u);
}

TEST_F(FileSystemTest, RedirtiedPageSurvivesWritebackRace) {
  InodeNo ino = MakeFile("/f", kPageSize);
  WriteSync(ino, 0, kPageSize);
  // Start a sync, then re-dirty the page while the flush I/O is in flight.
  bool synced = false;
  fs_.writeback().Sync([&] { synced = true; });
  fs_.Write(ino, 0, kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.Run();
  EXPECT_TRUE(synced);
  // The final content must end up on disk eventually.
  bool synced2 = false;
  fs_.writeback().Sync([&] { synced2 = true; });
  rig_.loop.Run();
  ASSERT_TRUE(synced2);
  EXPECT_EQ(fs_.cache().DirtyCount(), 0u);
  Result<BlockNo> block = fs_.Bmap(ino, 0);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(fs_.DiskToken(*block), fs_.cache().Peek(ino, 0)->data);
}

}  // namespace
}  // namespace duet
