// Property tests for the I/O schedulers against reference models, under
// randomized arrival/completion interleavings.

#include <gtest/gtest.h>

#include <deque>

#include "src/block/block_device.h"
#include "src/block/io_scheduler.h"
#include "src/util/rng.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

struct Completion {
  uint64_t tag;
  IoClass io_class;
  SimTime at;
};

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, CfqInvariantsHold) {
  Rng rng(GetParam());
  EventLoop loop;
  SimDuration grace = Millis(1 + rng.Uniform(8));
  BlockDevice dev(&loop, std::make_unique<FixedLatencyModel>(Micros(200), 1'000'000),
                  std::make_unique<CfqScheduler>(grace));

  std::vector<Completion> completions;
  std::deque<uint64_t> submitted_be;  // submission order of best-effort tags
  uint64_t tag = 0;
  SimTime t = 0;
  for (int i = 0; i < 200; ++i) {
    t += Micros(rng.Uniform(2000));
    IoClass io_class = rng.Chance(0.6) ? IoClass::kBestEffort : IoClass::kIdle;
    uint64_t my_tag = tag++;
    if (io_class == IoClass::kBestEffort) {
      submitted_be.push_back(my_tag);
    }
    loop.ScheduleAt(t, [&dev, &loop, &completions, my_tag, io_class] {
      IoRequest req;
      req.block = my_tag % 1000;
      req.count = 1;
      req.dir = IoDir::kRead;
      req.io_class = io_class;
      req.done = [&completions, &loop, my_tag, io_class](const IoResult&) {
        completions.push_back(Completion{my_tag, io_class, loop.now()});
      };
      dev.Submit(std::move(req));
    });
  }
  loop.Run();

  // 1. Everything completes.
  ASSERT_EQ(completions.size(), 200u);

  // 2. Best-effort requests complete in FIFO submission order.
  std::deque<uint64_t> be_completed;
  for (const Completion& c : completions) {
    if (c.io_class == IoClass::kBestEffort) {
      be_completed.push_back(c.tag);
    }
  }
  EXPECT_EQ(be_completed, submitted_be);

  // 3. An idle completion implies the device had no best-effort work queued
  //    when it was dispatched — check the weaker, externally-visible form:
  //    between an idle request's dispatch (completion - service) and the
  //    previous best-effort activity there was at least the grace period,
  //    OR the idle request was already in flight when new work arrived.
  //    Verified structurally by the dedicated CfqDeviceTest cases; here we
  //    just assert that total busy time never exceeds elapsed time.
  EXPECT_LE(dev.stats().TotalBusy(), loop.now());
}

TEST_P(SchedulerPropertyTest, DeadlineIsPureFifo) {
  Rng rng(GetParam() + 1000);
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedLatencyModel>(Micros(300), 1'000'000),
                  std::make_unique<DeadlineScheduler>());
  std::vector<uint64_t> completed;
  std::vector<uint64_t> submitted;
  SimTime t = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    t += Micros(rng.Uniform(1000));
    submitted.push_back(i);
    loop.ScheduleAt(t, [&dev, &loop, &completed, i, &rng] {
      IoRequest req;
      req.block = i;
      req.count = 1;
      req.dir = rng.Chance(0.5) ? IoDir::kRead : IoDir::kWrite;
      req.io_class = rng.Chance(0.5) ? IoClass::kBestEffort : IoClass::kIdle;
      req.done = [&completed, i](const IoResult&) { completed.push_back(i); };
      dev.Submit(std::move(req));
    });
  }
  loop.Run();
  // With a single queue and no prioritization, completion order must match
  // submission order regardless of class, when submissions are distinct in
  // time. (Same-time submissions keep scheduling order via the event loop.)
  EXPECT_EQ(completed, submitted);
}

TEST_P(SchedulerPropertyTest, IdleStarvationUnderConstantLoad) {
  // With best-effort inter-arrival gaps always below the grace period, no
  // idle request may ever be serviced.
  Rng rng(GetParam() + 2000);
  EventLoop loop;
  SimDuration grace = Millis(5);
  BlockDevice dev(&loop, std::make_unique<FixedLatencyModel>(Micros(500), 1'000'000),
                  std::make_unique<CfqScheduler>(grace));
  bool idle_completed = false;
  IoRequest idle_req;
  idle_req.block = 1;
  idle_req.count = 1;
  idle_req.dir = IoDir::kRead;
  idle_req.io_class = IoClass::kIdle;
  idle_req.done = [&](const IoResult&) { idle_completed = true; };
  dev.Submit(std::move(idle_req));
  // Best-effort arrivals every 1-3 ms for 200 ms (gap always < 5 ms grace).
  SimTime t = 0;
  while (t < Millis(200)) {
    t += Millis(1 + rng.Uniform(3));
    loop.ScheduleAt(t, [&dev] {
      IoRequest req;
      req.block = 0;
      req.count = 1;
      req.dir = IoDir::kRead;
      req.io_class = IoClass::kBestEffort;
      dev.Submit(std::move(req));
    });
  }
  loop.RunUntil(Millis(200));
  EXPECT_FALSE(idle_completed);
  loop.Run();  // arrivals stop: the idle request finally gets through
  EXPECT_TRUE(idle_completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace duet
