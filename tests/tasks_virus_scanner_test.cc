#include "src/tasks/virus_scanner.h"

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/util/format.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class VirusScannerTest : public ::testing::Test {
 protected:
  VirusScannerTest()
      : rig_(1'000'000, Micros(100)),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/512),
        duet_(&fs_) {}

  void Populate(int files, uint64_t pages_each) {
    ASSERT_TRUE(fs_.Mkdir("/scan").ok());
    for (int i = 0; i < files; ++i) {
      ASSERT_TRUE(
          fs_.PopulateFile(StrFormat("/scan/f%d", i), pages_each * kPageSize).ok());
    }
  }

  SimRig rig_;
  CowFs fs_;
  DuetCore duet_;
};

TEST_F(VirusScannerTest, BaselineScansEveryFile) {
  Populate(10, 16);
  VirusScannerConfig config;
  config.root = "/scan";
  VirusScanner scanner(&fs_, nullptr, config);
  bool finished = false;
  scanner.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(scanner.files_scanned(), 10u);
  EXPECT_EQ(scanner.stats().work_done, 160u);
  EXPECT_TRUE(scanner.infected().empty());
}

TEST_F(VirusScannerTest, DetectsPlantedSignature) {
  Populate(4, 8);
  InodeNo victim = *fs_.ns().Resolve("/scan/f2");
  uint64_t bad_token = *fs_.PageContent(victim, 5);
  VirusScannerConfig config;
  config.root = "/scan";
  VirusScanner scanner(&fs_, nullptr, config);
  scanner.AddSignature(bad_token);
  scanner.Start();
  rig_.loop.Run();
  ASSERT_EQ(scanner.infected().size(), 1u);
  EXPECT_EQ(scanner.infected()[0], victim);
}

TEST_F(VirusScannerTest, DuetScansCachedFilesWithoutIo) {
  Populate(10, 16);
  // Warm three files.
  for (int i = 4; i < 7; ++i) {
    InodeNo ino = *fs_.ns().Resolve(StrFormat("/scan/f%d", i));
    fs_.Read(ino, 0, 16 * kPageSize, IoClass::kBestEffort, nullptr);
  }
  rig_.loop.RunUntil(Millis(500));
  VirusScannerConfig config;
  config.root = "/scan";
  config.use_duet = true;
  VirusScanner scanner(&fs_, &duet_, config);
  bool finished = false;
  scanner.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(scanner.files_scanned(), 10u);
  EXPECT_GE(scanner.stats().saved_read_pages, 48u);  // the 3 warm files
  EXPECT_GT(scanner.stats().opportunistic_units, 0u);
  EXPECT_EQ(scanner.stats().work_done, scanner.stats().work_total);
}

TEST_F(VirusScannerTest, DuetStillDetectsInfectionsOutOfOrder) {
  Populate(6, 8);
  InodeNo victim = *fs_.ns().Resolve("/scan/f5");
  uint64_t bad_token = *fs_.PageContent(victim, 0);
  // Warm the infected file so it is scanned opportunistically, first.
  fs_.Read(victim, 0, 8 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));
  VirusScannerConfig config;
  config.root = "/scan";
  config.use_duet = true;
  VirusScanner scanner(&fs_, &duet_, config);
  scanner.AddSignature(bad_token);
  scanner.Start();
  rig_.loop.Run();
  ASSERT_EQ(scanner.infected().size(), 1u);
  EXPECT_EQ(scanner.infected()[0], victim);
}

TEST_F(VirusScannerTest, ScansEachFileOnceDespiteRepeatedHints) {
  Populate(4, 8);
  VirusScannerConfig config;
  config.root = "/scan";
  config.use_duet = true;
  VirusScanner scanner(&fs_, &duet_, config);
  bool finished = false;
  scanner.Start([&] { finished = true; });
  // Touch the same file repeatedly while the scan runs.
  InodeNo hot = *fs_.ns().Resolve("/scan/f0");
  for (int i = 0; i < 10; ++i) {
    rig_.loop.ScheduleAt(Micros(static_cast<uint64_t>(100 * i)), [this, hot] {
      fs_.Read(hot, 0, 8 * kPageSize, IoClass::kBestEffort, nullptr);
    });
  }
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(scanner.files_scanned(), 4u);  // exactly once each
}

}  // namespace
}  // namespace duet
