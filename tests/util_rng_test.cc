#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/zipf.h"

namespace duet {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.Uniform(kBuckets)];
  }
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets / 10.0);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.Chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfSampler zipf(100, 0.0);
  Rng rng(13);
  int counts[100] = {};
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (int k = 0; k < 100; ++k) {
    EXPECT_NEAR(counts[k], 1000, 250) << "rank " << k;
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfSampler zipf(1000, 1.1);
  Rng rng(17);
  uint64_t top10 = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) {
      ++top10;
    }
  }
  // With s=1.1 over 1000 ranks, the top-1% of files should absorb far more
  // than 1% of accesses — the skew the paper's Fig. 1 shows for MS traces.
  EXPECT_GT(top10, kSamples / 3);
  EXPECT_NEAR(zipf.CumulativeProbability(10),
              static_cast<double>(top10) / kSamples, 0.02);
}

TEST(ZipfTest, CumulativeProbabilityMonotone) {
  ZipfSampler zipf(50, 0.8);
  double prev = 0;
  for (uint64_t k = 1; k <= 50; ++k) {
    double c = zipf.CumulativeProbability(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

}  // namespace
}  // namespace duet
