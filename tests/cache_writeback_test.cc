#include "src/cache/writeback.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/event_loop.h"

namespace duet {
namespace {

// Target that "writes" pages after a fixed delay and cleans them.
class FakeTarget : public WritebackTarget {
 public:
  FakeTarget(EventLoop* loop, PageCache* cache, SimDuration delay)
      : loop_(loop), cache_(cache), delay_(delay) {}

  void WritebackPages(std::vector<PageCache::DirtyPageRef> pages,
                      std::function<void()> done) override {
    ++passes;
    pages_flushed += pages.size();
    loop_->ScheduleAfter(delay_, [this, pages = std::move(pages),
                                  done = std::move(done)] {
      for (const auto& ref : pages) {
        cache_->MarkClean(ref.ino, ref.idx);
      }
      done();
    });
  }

  uint64_t passes = 0;
  uint64_t pages_flushed = 0;

 private:
  EventLoop* loop_;
  PageCache* cache_;
  SimDuration delay_;
};

class WritebackTest : public ::testing::Test {
 protected:
  WritebackTest()
      : cache_(100, [this] { return loop_.now(); }),
        target_(&loop_, &cache_, Millis(5)) {}

  void MakeWriteback(WritebackParams params) {
    wb_ = std::make_unique<Writeback>(&loop_, &cache_, &target_, params);
  }

  EventLoop loop_;
  PageCache cache_;
  FakeTarget target_;
  std::unique_ptr<Writeback> wb_;
};

TEST_F(WritebackTest, PeriodicFlushRespectsDirtyExpiry) {
  WritebackParams params;
  params.period = Seconds(5);
  params.dirty_expire = Seconds(10);
  MakeWriteback(params);
  wb_->Start();
  cache_.Insert(1, 0, 42, true);  // dirtied at t=0
  // First tick at 5 s: page is only 5 s old -> not flushed.
  loop_.RunUntil(Seconds(6));
  EXPECT_EQ(cache_.DirtyCount(), 1u);
  // Second tick at 10 s: page is 10 s old -> flushed.
  loop_.RunUntil(Seconds(11));
  EXPECT_EQ(cache_.DirtyCount(), 0u);
  EXPECT_EQ(target_.pages_flushed, 1u);
}

TEST_F(WritebackTest, MaybeKickFlushesWhenRatioHigh) {
  WritebackParams params;
  params.dirty_ratio = 0.10;  // 10 pages of 100
  MakeWriteback(params);
  wb_->Start();
  for (PageIdx p = 0; p < 9; ++p) {
    cache_.Insert(1, p, p, true);
  }
  wb_->MaybeKick();  // 9% < 10%: no flush
  loop_.RunUntil(Millis(100));
  EXPECT_EQ(cache_.DirtyCount(), 9u);
  cache_.Insert(1, 9, 9, true);
  wb_->MaybeKick();  // 10%: flush everything regardless of age
  loop_.RunUntil(Millis(200));
  EXPECT_EQ(cache_.DirtyCount(), 0u);
}

TEST_F(WritebackTest, SyncDrainsAllDirtyPages) {
  MakeWriteback(WritebackParams());
  for (PageIdx p = 0; p < 30; ++p) {
    cache_.Insert(2, p, p, true);
  }
  bool done = false;
  wb_->Sync([&] { done = true; });
  loop_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cache_.DirtyCount(), 0u);
  EXPECT_EQ(target_.pages_flushed, 30u);
}

TEST_F(WritebackTest, SyncOnCleanCacheCompletesImmediately) {
  MakeWriteback(WritebackParams());
  bool done = false;
  wb_->Sync([&] { done = true; });
  EXPECT_TRUE(done);  // no dirty pages: synchronous completion
}

TEST_F(WritebackTest, BatchLimitSplitsLargeFlush) {
  WritebackParams params;
  params.batch_pages = 10;
  MakeWriteback(params);
  for (PageIdx p = 0; p < 25; ++p) {
    cache_.Insert(3, p, p, true);
  }
  bool done = false;
  wb_->Sync([&] { done = true; });
  loop_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cache_.DirtyCount(), 0u);
  EXPECT_GE(target_.passes, 3u);  // 25 pages / 10 per pass
}

TEST_F(WritebackTest, StopCancelsPeriodicTicks) {
  WritebackParams params;
  params.period = Seconds(5);
  params.dirty_expire = 0;
  MakeWriteback(params);
  wb_->Start();
  wb_->Stop();
  cache_.Insert(1, 0, 1, true);
  loop_.RunUntil(Seconds(60));
  EXPECT_EQ(cache_.DirtyCount(), 1u);
  EXPECT_EQ(target_.passes, 0u);
}

}  // namespace
}  // namespace duet
