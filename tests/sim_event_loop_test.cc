#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace duet {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  loop.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), Millis(30));
}

TEST(EventLoopTest, SameTimeEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired_at = 0;
  loop.ScheduleAt(Millis(10), [&] {
    loop.ScheduleAfter(Millis(5), [&] { fired_at = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(EventLoopTest, PastTimesClampToNow) {
  EventLoop loop;
  SimTime fired_at = 1;
  loop.ScheduleAt(Millis(10), [&] {
    loop.ScheduleAt(Millis(1), [&] { fired_at = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(fired_at, Millis(10));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.ScheduleAt(Millis(10), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // second cancel fails
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.executed_count(), 0u);
}

TEST(EventLoopTest, CancelAfterRunFails) {
  EventLoop loop;
  EventId id = loop.ScheduleAt(Millis(1), [] {});
  loop.Run();
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAt(Millis(30), [&] { order.push_back(2); });
  loop.RunUntil(Millis(20));
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_EQ(loop.now(), Millis(20));
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.RunUntil(Seconds(5));
  EXPECT_EQ(loop.now(), Seconds(5));
}

TEST(EventLoopTest, RunUntilSkipsCancelledHead) {
  // Regression: a cancelled event at the heap top must not let an event past
  // the deadline run.
  EventLoop loop;
  bool late_ran = false;
  EventId head = loop.ScheduleAt(Millis(10), [] {});
  loop.ScheduleAt(Millis(100), [&] { late_ran = true; });
  loop.Cancel(head);
  loop.RunUntil(Millis(50));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(loop.now(), Millis(50));
}

TEST(EventLoopTest, PendingCountTracksCancellation) {
  EventLoop loop;
  EventId a = loop.ScheduleAt(Millis(1), [] {});
  loop.ScheduleAt(Millis(2), [] {});
  EXPECT_EQ(loop.pending_count(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending_count(), 1u);
  loop.Run();
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_EQ(loop.executed_count(), 1u);
}

TEST(EventLoopTest, EventsCanScheduleChains) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) {
      loop.ScheduleAfter(Millis(1), tick);
    }
  };
  loop.ScheduleAfter(Millis(1), tick);
  loop.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), Millis(10));
}

}  // namespace
}  // namespace duet
