#include "src/block/block_device.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/block/disk_model.h"
#include "src/block/io_scheduler.h"
#include "src/sim/event_loop.h"

namespace duet {
namespace {

// Fixed-latency model for deterministic scheduler tests.
class FixedModel : public DiskModel {
 public:
  explicit FixedModel(SimDuration latency) : latency_(latency) {}
  SimDuration ServiceTime(BlockNo, uint32_t, IoDir, BlockNo) const override {
    return latency_;
  }
  uint64_t capacity_blocks() const override { return 1'000'000; }
  const char* name() const override { return "fixed"; }

 private:
  SimDuration latency_;
};

IoRequest MakeRequest(BlockNo block, IoClass io_class, std::function<void()> done,
                      IoDir dir = IoDir::kRead, uint32_t count = 1) {
  IoRequest r;
  r.block = block;
  r.count = count;
  r.dir = dir;
  r.io_class = io_class;
  r.done = [done = std::move(done)](const IoResult&) {
    if (done) {
      done();
    }
  };
  return r;
}

TEST(BlockDeviceTest, CompletesSingleRequest) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(5)),
                  std::make_unique<NoopScheduler>());
  bool done = false;
  dev.Submit(MakeRequest(10, IoClass::kBestEffort, [&] { done = true; }));
  loop.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(loop.now(), Millis(5));
  EXPECT_EQ(dev.stats().TotalOps(IoClass::kBestEffort), 1u);
  EXPECT_EQ(dev.stats().busy[0], Millis(5));
}

TEST(BlockDeviceTest, ServicesOneAtATime) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(5)),
                  std::make_unique<NoopScheduler>());
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    dev.Submit(MakeRequest(static_cast<BlockNo>(i), IoClass::kBestEffort,
                           [&] { completions.push_back(loop.now()); }));
  }
  loop.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{Millis(5), Millis(10), Millis(15)}));
}

TEST(BlockDeviceTest, AccountsPerClassBusyTime) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(2)),
                  std::make_unique<NoopScheduler>());
  dev.Submit(MakeRequest(1, IoClass::kBestEffort, nullptr));
  dev.Submit(MakeRequest(2, IoClass::kIdle, nullptr, IoDir::kWrite));
  loop.Run();
  EXPECT_EQ(dev.stats().busy[static_cast<int>(IoClass::kBestEffort)], Millis(2));
  EXPECT_EQ(dev.stats().busy[static_cast<int>(IoClass::kIdle)], Millis(2));
  EXPECT_EQ(dev.stats().ops[1][1], 1u);  // idle write
}

TEST(CfqDeviceTest, BestEffortAlwaysBeatsIdle) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(1)),
                  std::make_unique<CfqScheduler>(Millis(2)));
  std::vector<int> order;
  dev.Submit(MakeRequest(1, IoClass::kIdle, [&] { order.push_back(1); }));
  dev.Submit(MakeRequest(2, IoClass::kBestEffort, [&] { order.push_back(2); }));
  dev.Submit(MakeRequest(3, IoClass::kBestEffort, [&] { order.push_back(3); }));
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(CfqDeviceTest, IdleRequestWaitsForGracePeriod) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(1)),
                  std::make_unique<CfqScheduler>(Millis(10)));
  SimTime idle_done = 0;
  dev.Submit(MakeRequest(1, IoClass::kBestEffort, nullptr));
  dev.Submit(MakeRequest(2, IoClass::kIdle, [&] { idle_done = loop.now(); }));
  loop.Run();
  // Best-effort completes at 1 ms; idle becomes eligible at 1 + 10 = 11 ms,
  // and takes 1 ms to service.
  EXPECT_EQ(idle_done, Millis(12));
}

TEST(CfqDeviceTest, ForegroundArrivalsKeepDeferringIdle) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(1)),
                  std::make_unique<CfqScheduler>(Millis(5)));
  SimTime idle_done = 0;
  dev.Submit(MakeRequest(1, IoClass::kIdle, [&] { idle_done = loop.now(); }));
  // Best-effort arrivals every 3 ms keep the gap below the 5 ms grace.
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(Millis(static_cast<uint64_t>(3 * i)),
                    [&dev, i] { dev.Submit(MakeRequest(static_cast<BlockNo>(10 + i),
                                                       IoClass::kBestEffort, nullptr)); });
  }
  loop.Run();
  // Last best-effort submitted at 12 ms completes at 13 ms; idle eligible at
  // 18 ms, done at 19 ms.
  EXPECT_EQ(idle_done, Millis(19));
}

TEST(CfqDeviceTest, InFlightIdleIsNotPreempted) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(4)),
                  std::make_unique<CfqScheduler>(Millis(1)));
  std::vector<int> order;
  dev.Submit(MakeRequest(1, IoClass::kIdle, [&] { order.push_back(1); }));
  // Idle dispatches at 1 ms (grace from t=0), finishes at 5 ms. A foreground
  // request arriving at 2 ms must wait for it.
  loop.ScheduleAt(Millis(2), [&] {
    dev.Submit(MakeRequest(2, IoClass::kBestEffort, [&] { order.push_back(2); }));
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), Millis(9));  // idle till 5, then 4 ms of service
}

TEST(DeadlineDeviceTest, NoPrioritization) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(1)),
                  std::make_unique<DeadlineScheduler>());
  std::vector<int> order;
  dev.Submit(MakeRequest(1, IoClass::kIdle, [&] { order.push_back(1); }));
  dev.Submit(MakeRequest(2, IoClass::kBestEffort, [&] { order.push_back(2); }));
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // FIFO: idle goes first
}

TEST(BlockDeviceTest, UtilizationMeasurement) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<FixedModel>(Millis(10)),
                  std::make_unique<CfqScheduler>());
  dev.Submit(MakeRequest(1, IoClass::kBestEffort, nullptr));
  loop.RunUntil(Millis(100));
  // 10 ms busy out of 100 ms elapsed.
  EXPECT_NEAR(dev.BestEffortUtilizationSince(0, 0), 0.10, 1e-9);
}

TEST(BlockDeviceTest, HeadPositionMakesBackToBackSequentialCheap) {
  EventLoop loop;
  BlockDevice dev(&loop, std::make_unique<HddModel>(),
                  std::make_unique<NoopScheduler>());
  SimTime first_done = 0;
  SimTime second_done = 0;
  dev.Submit(MakeRequest(1000, IoClass::kBestEffort, [&] { first_done = loop.now(); },
                         IoDir::kRead, 16));
  // Continues exactly where the first left off: no seek.
  dev.Submit(MakeRequest(1016, IoClass::kBestEffort, [&] { second_done = loop.now(); },
                         IoDir::kRead, 16));
  loop.Run();
  // First pays a seek; second is pure transfer, so it is much shorter.
  EXPECT_LT(second_done - first_done, first_done);
}

}  // namespace
}  // namespace duet
