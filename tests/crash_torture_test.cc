// Crash-torture sweep: run the crash rig at many deterministic crash points
// (sim-time and device-op based) on both file systems and require, for every
// single point, a clean mount, a clean fsck, and zero loss of
// acknowledged-durable data. Targeted tests below the sweeps pin down the
// individual contracts: cowfs rollback, logfs roll-forward, torn-flush
// discard, checkpoint atomicity, maintenance-cursor resume, and bit-for-bit
// determinism of a replayed crash point.
//
// The sweeps default to a bounded point count so they fit in the tier-1 run;
// CI's sanitizer job sets CRASH_TORTURE_POINTS for the full sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/harness/crash_rig.h"
#include "src/obs/obs.h"

namespace duet {
namespace {

// Crash points per (file system, trigger kind) sweep. Four sweeps run, so the
// default gives each file system 200 points (100 time- + 100 op-addressed);
// CRASH_TORTURE_POINTS scales each sweep.
uint64_t SweepPoints() {
  const char* env = std::getenv("CRASH_TORTURE_POINTS");
  if (env != nullptr) {
    return static_cast<uint64_t>(std::max(1L, std::atol(env)));
  }
  return 100;
}

std::string PointLabel(const CrashRunConfig& config) {
  std::string label =
      config.fs == CrashFsKind::kCow ? "cowfs" : "logfs";
  if (config.crash_at_time != 0) {
    label += " crash_at_time=" + std::to_string(config.crash_at_time);
  }
  if (config.crash_at_op != 0) {
    label += " crash_at_op=" + std::to_string(config.crash_at_op);
  }
  label += " seed=" + std::to_string(config.seed);
  return label;
}

void ExpectPointOk(const CrashRunConfig& config, const CrashRunResult& r) {
  EXPECT_TRUE(r.mount.status.ok())
      << PointLabel(config) << ": mount failed: " << r.mount.status.message();
  EXPECT_EQ(r.fsck.structural_errors, 0u)
      << PointLabel(config) << ": first bad block " << r.fsck.first_bad_block;
  EXPECT_EQ(r.fsck.checksum_errors, 0u)
      << PointLabel(config) << ": first bad block " << r.fsck.first_bad_block;
  EXPECT_EQ(r.lost_pages, 0u)
      << PointLabel(config) << ": acknowledged-durable data lost ("
      << r.verified_pages << "/" << r.acked_pages << " verified, "
      << r.syncs_completed << " syncs, " << r.checkpoints_completed
      << " checkpoints before the crash)";
}

// Sweeps `n` sim-time crash points evenly across the workload window (plus a
// pre-workload point and a post-workload plug-pull).
void TimeSweep(CrashFsKind fs, uint64_t n) {
  uint64_t crashed = 0;
  uint64_t rolled_back = 0;
  for (uint64_t i = 0; i < n; ++i) {
    CrashRunConfig config;
    config.fs = fs;
    config.seed = 1 + i;  // vary the workload along with the crash point
    const SimTime window = config.writes * config.write_gap;
    config.crash_at_time = 1 + (i * window) / (n - 1 > 0 ? n - 1 : 1);
    CrashRunResult r = RunCrashRecovery(config);
    ExpectPointOk(config, r);
    crashed += r.crashed ? 1 : 0;
    rolled_back += r.rolled_back_pages;
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping sweep at failing point: " << PointLabel(config);
    }
  }
  // The sweep must actually exercise mid-run crashes and observable rollback
  // of unacknowledged writes, or it is testing nothing.
  EXPECT_GT(crashed, n / 2);
  EXPECT_GT(rolled_back, 0u);
}

// Sweeps `n` device-op crash points: small strides catch mid-flush and
// mid-commit teardowns that time-based points step over.
void OpSweep(CrashFsKind fs, uint64_t n) {
  // Probe the op budget first: an uncrashed run reports how many device ops
  // the workload dispatches, so the points can spread across the whole run.
  // Assuming a fixed op density would mis-scale logfs, which coalesces its
  // log tail into far fewer (larger) writes than cowfs issues.
  CrashRunConfig probe;
  probe.fs = fs;
  probe.seed = 101;
  const uint64_t total_ops = RunCrashRecovery(probe).ops_before_crash;
  ASSERT_GT(total_ops, 1u);
  uint64_t crashed = 0;
  for (uint64_t i = 0; i < n; ++i) {
    CrashRunConfig config;
    config.fs = fs;
    config.seed = 101 + i;
    config.crash_at_op = 1 + (i * (total_ops - 2)) / (n - 1 > 0 ? n - 1 : 1);
    CrashRunResult r = RunCrashRecovery(config);
    ExpectPointOk(config, r);
    crashed += r.crashed ? 1 : 0;
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping sweep at failing point: " << PointLabel(config);
    }
  }
  EXPECT_GT(crashed, n / 2);
}

TEST(CrashTortureTest, CowTimeSweep) { TimeSweep(CrashFsKind::kCow, SweepPoints()); }

TEST(CrashTortureTest, LogTimeSweep) { TimeSweep(CrashFsKind::kLog, SweepPoints()); }

TEST(CrashTortureTest, CowOpSweep) { OpSweep(CrashFsKind::kCow, SweepPoints()); }

TEST(CrashTortureTest, LogOpSweep) { OpSweep(CrashFsKind::kLog, SweepPoints()); }

// No crash trigger at all: the plug is pulled after the workload window, by
// which point the final checkpoint has committed everything.
TEST(CrashTortureTest, PlugPullAfterQuietWindowLosesNothing) {
  for (CrashFsKind fs : {CrashFsKind::kCow, CrashFsKind::kLog}) {
    CrashRunConfig config;
    config.fs = fs;
    CrashRunResult r = RunCrashRecovery(config);
    EXPECT_FALSE(r.crashed);
    ExpectPointOk(config, r);
    EXPECT_EQ(r.verified_pages, r.acked_pages);
  }
}

// cowfs semantics: a crash rolls back to the last committed superblock. With
// sync barriers but no mid-run superblock commit, every post-setup rewrite
// must roll back — and none of them counts as lost, because bare fsync does
// not promise crash durability on a tree that only commits via superblocks.
TEST(CrashTortureTest, CowRollsBackToLastCommittedSuperblock) {
  CrashRunConfig config;
  config.fs = CrashFsKind::kCow;
  config.checkpoint_every = Seconds(10);  // never fires mid-run
  config.crash_at_time = Millis(400);
  CrashRunResult r = RunCrashRecovery(config);
  ASSERT_TRUE(r.crashed);
  ExpectPointOk(config, r);
  EXPECT_EQ(r.checkpoints_completed, 0u);
  EXPECT_GT(r.syncs_completed, 0u);
  EXPECT_GT(r.rolled_back_pages, 0u);
  EXPECT_EQ(r.mount.generation, 1u);  // the setup commit
  EXPECT_EQ(r.mount.blocks_replayed, 0u);  // rollback never rolls forward
}

// logfs semantics: a sync barrier makes the synced records crash-durable via
// roll-forward replay, even with no checkpoint after setup. The mount must
// replay a nonempty log tail from the generation-1 checkpoint.
TEST(CrashTortureTest, LogRollsForwardSyncedTail) {
  CrashRunConfig config;
  config.fs = CrashFsKind::kLog;
  config.checkpoint_every = Seconds(10);  // never fires mid-run
  config.crash_at_time = Millis(400);
  CrashRunResult r = RunCrashRecovery(config);
  ASSERT_TRUE(r.crashed);
  ExpectPointOk(config, r);
  EXPECT_EQ(r.checkpoints_completed, 0u);
  EXPECT_GT(r.syncs_completed, 0u);
  EXPECT_EQ(r.mount.generation, 1u);
  EXPECT_GT(r.mount.blocks_replayed, 0u);
  // Replay restored synced versions the superblock-less cowfs would have
  // rolled back: some pages must be verified beyond version zero.
  EXPECT_GT(r.acked_pages, 0u);
}

// A checkpoint mid-run advances the recovered generation past the setup
// commit and shrinks the replayed tail to the post-checkpoint writes.
TEST(CrashTortureTest, CheckpointAdvancesRecoveryPoint) {
  CrashRunConfig config;
  config.fs = CrashFsKind::kLog;
  config.crash_at_time = Millis(450);  // after ~2 checkpoint ticks
  CrashRunResult r = RunCrashRecovery(config);
  ASSERT_TRUE(r.crashed);
  ExpectPointOk(config, r);
  ASSERT_GT(r.checkpoints_completed, 0u);
  EXPECT_GE(r.mount.generation, 2u);
}

// Determinism: the same config must reproduce the same crash and the same
// recovery, field for field. This is what makes a failing sweep point
// replayable in isolation.
TEST(CrashTortureTest, SameConfigReplaysIdentically) {
  for (CrashFsKind fs : {CrashFsKind::kCow, CrashFsKind::kLog}) {
    CrashRunConfig config;
    config.fs = fs;
    config.seed = 77;
    config.crash_at_time = Millis(333);
    CrashRunResult a = RunCrashRecovery(config);
    CrashRunResult b = RunCrashRecovery(config);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.ops_before_crash, b.ops_before_crash);
    EXPECT_EQ(a.writes_issued, b.writes_issued);
    EXPECT_EQ(a.syncs_completed, b.syncs_completed);
    EXPECT_EQ(a.checkpoints_completed, b.checkpoints_completed);
    EXPECT_EQ(a.mount.generation, b.mount.generation);
    EXPECT_EQ(a.mount.blocks_restored, b.mount.blocks_restored);
    EXPECT_EQ(a.mount.blocks_replayed, b.mount.blocks_replayed);
    EXPECT_EQ(a.mount.blocks_discarded, b.mount.blocks_discarded);
    EXPECT_EQ(a.mount.duration, b.mount.duration);
    EXPECT_EQ(a.fsck.blocks_checked, b.fsck.blocks_checked);
    EXPECT_EQ(a.verified_pages, b.verified_pages);
    EXPECT_EQ(a.rolled_back_pages, b.rolled_back_pages);
  }
}

// Crash-at-op points land inside multi-op sequences (flush barriers,
// checkpoint commits); a handful of consecutive ops must all recover.
TEST(CrashTortureTest, ConsecutiveOpPointsAroundABarrier) {
  for (uint64_t op = 20; op < 40; ++op) {
    CrashRunConfig config;
    config.fs = CrashFsKind::kLog;
    config.seed = 9;
    config.crash_at_op = op;
    CrashRunResult r = RunCrashRecovery(config);
    ExpectPointOk(config, r);
  }
}

// Maintenance resume: sweep crash points with the scrubber and backup running
// over a larger file set. Across the sweep, at least one point must catch the
// scrubber mid-pass (nonzero persisted cursor restored on restart) and at
// least one must catch the backup mid-stream after a superblock commit
// preserved its snapshot (resume with pages skipped). Every point must still
// satisfy the durability oracle, with the maintenance I/O in the mix.
TEST(CrashTortureTest, MaintenanceTasksResumeFromPersistedCursors) {
  bool scrub_resumed = false;
  bool backup_resumed = false;
  uint64_t backup_resumed_pages = 0;
  // Early points land inside the scrubber's single pass (it finishes within
  // ~tens of ms); the 70-100 ms band lands after the first superblock commit
  // but before the backup finishes streaming; the tail covers late crashes.
  const SimTime kPoints[] = {Millis(14),  Millis(22),  Millis(30),  Millis(38),
                             Millis(70),  Millis(78),  Millis(86),  Millis(94),
                             Millis(130), Millis(200), Millis(280), Millis(360)};
  for (uint64_t i = 0; i < 12; ++i) {
    CrashRunConfig config;
    config.fs = CrashFsKind::kCow;
    config.run_tasks = true;
    config.seed = 301 + i;
    config.files = 24;
    config.file_pages = 32;
    config.capacity_blocks = 8192;
    config.writes = 192;
    config.write_gap = Millis(2);
    config.checkpoint_every = Millis(60);
    config.crash_at_time = kPoints[i];
    CrashRunResult r = RunCrashRecovery(config);
    ExpectPointOk(config, r);
    scrub_resumed |= r.scrub_resume_cursor > 0;
    backup_resumed |= r.backup_resumed;
    backup_resumed_pages = std::max(backup_resumed_pages, r.backup_resumed_pages);
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping sweep at failing point: " << PointLabel(config);
    }
  }
  EXPECT_TRUE(scrub_resumed) << "no sweep point caught the scrubber mid-pass";
  EXPECT_TRUE(backup_resumed) << "no sweep point resumed the backup snapshot";
  EXPECT_GT(backup_resumed_pages, 0u)
      << "backup resume never skipped already-streamed pages";
}

}  // namespace
}  // namespace duet
