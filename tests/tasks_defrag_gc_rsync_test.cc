#include <gtest/gtest.h>

#include "src/duet/duet_core.h"
#include "src/tasks/defrag_task.h"
#include "src/tasks/gc_task.h"
#include "src/tasks/rsync_task.h"
#include "src/util/format.h"
#include "src/workload/filebench.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

// ---- Defragmentation ----

class DefragTaskTest : public ::testing::Test {
 protected:
  DefragTaskTest()
      : rig_(1'000'000, Micros(100)),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/512),
        duet_(&fs_),
        rng_(3) {}

  void PopulateFragmented(int files, uint64_t pages_each, double break_prob) {
    for (int i = 0; i < files; ++i) {
      ASSERT_TRUE(fs_.PopulateFragmentedFile(StrFormat("/f%d", i),
                                             pages_each * kPageSize, break_prob, rng_)
                      .ok());
    }
  }

  SimRig rig_;
  CowFs fs_;
  DuetCore duet_;
  Rng rng_;
};

TEST_F(DefragTaskTest, BaselineDefragmentsAllFragmentedFiles) {
  PopulateFragmented(6, 32, 0.5);
  DefragTask task(&fs_, nullptr, DefragConfig{});
  bool finished = false;
  task.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(task.files_defragmented(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_LE(fs_.ExtentCount(*fs_.ns().Resolve(StrFormat("/f%d", i))), 2u);
  }
  EXPECT_EQ(task.stats().work_done, task.stats().work_total);
}

TEST_F(DefragTaskTest, SkipsAlreadyContiguousFiles) {
  ASSERT_TRUE(fs_.PopulateFile("/contig", 64 * kPageSize).ok());
  PopulateFragmented(2, 16, 0.5);
  DefragTask task(&fs_, nullptr, DefragConfig{});
  task.Start();
  rig_.loop.Run();
  EXPECT_EQ(task.files_defragmented(), 2u);
}

TEST_F(DefragTaskTest, DuetPrioritizesCachedFilesAndSavesReads) {
  PopulateFragmented(6, 32, 0.5);
  // Warm file 5 fully into the cache.
  InodeNo hot = *fs_.ns().Resolve("/f5");
  fs_.Read(hot, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));

  DefragConfig config;
  config.use_duet = true;
  DefragTask task(&fs_, &duet_, config);
  bool finished = false;
  task.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(task.files_defragmented(), 6u);
  EXPECT_GT(task.stats().opportunistic_units, 0u);
  EXPECT_GE(task.stats().saved_read_pages, 32u);  // the hot file's reads
}

TEST_F(DefragTaskTest, DuetCountsDirtyPagesAsSavedWrites) {
  PopulateFragmented(2, 32, 0.5);
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  fs_.Write(f0, 0, 8 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));
  DefragConfig config;
  config.use_duet = true;
  DefragTask task(&fs_, &duet_, config);
  task.Start();
  rig_.loop.Run();
  EXPECT_GE(task.stats().saved_write_pages, 8u);
}

// ---- Garbage collection ----

class GcTaskTest : public ::testing::Test {
 protected:
  GcTaskTest()
      : rig_(16'384, Micros(100)),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/256, /*segment_blocks=*/64),
        duet_(&fs_) {}

  SimRig rig_;
  LogFs fs_;
  DuetCore duet_;
};

TEST_F(GcTaskTest, CleansInvalidatedSegmentsWhenIdle) {
  // Two files fill segments; overwriting one leaves mostly-invalid segments.
  InodeNo a = *fs_.PopulateFile("/a", 128 * kPageSize);
  ASSERT_TRUE(fs_.PopulateFile("/b", 128 * kPageSize).ok());
  fs_.Write(a, 0, 120 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));

  GcConfig config;
  config.wake_interval = Millis(100);
  config.idle_threshold = Millis(10);
  GcTask gc(&fs_, nullptr, config);
  gc.Start();
  rig_.loop.RunUntil(Seconds(30));
  gc.Stop();
  rig_.loop.Run();
  EXPECT_GT(gc.segments_cleaned(), 0u);
  EXPECT_GT(gc.cleaning_time_ms().count(), 0u);
}

TEST_F(GcTaskTest, DoesNotRunWhileDeviceBusy) {
  InodeNo a = *fs_.PopulateFile("/a", 128 * kPageSize);
  fs_.Write(a, 0, 120 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));
  GcConfig config;
  config.wake_interval = Millis(100);
  config.idle_threshold = Seconds(10);  // effectively never idle enough
  GcTask gc(&fs_, nullptr, config);
  gc.Start();
  // Steady foreground reads keep last-activity fresh.
  for (int i = 0; i < 50; ++i) {
    rig_.loop.ScheduleAt(Millis(static_cast<uint64_t>(500 + 100 * i)), [this, a] {
      fs_.Read(a, 0, 4 * kPageSize, IoClass::kBestEffort, nullptr);
    });
  }
  rig_.loop.RunUntil(Seconds(6));
  gc.Stop();
  EXPECT_EQ(gc.segments_cleaned(), 0u);
}

TEST_F(GcTaskTest, DuetCountersTrackCachedBlocks) {
  InodeNo a = *fs_.PopulateFile("/a", 64 * kPageSize);  // exactly segment 0
  GcConfig config;
  config.use_duet = true;
  config.wake_interval = Millis(100);
  GcTask gc(&fs_, &duet_, config);
  gc.Start();
  fs_.Read(a, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Seconds(1));
  gc.Stop();
  // 32 pages of segment 0 were cached; the counter should be close.
  EXPECT_GE(gc.CachedCounter(0), 24);
  EXPECT_LE(gc.CachedCounter(0), 32);
}

TEST_F(GcTaskTest, DuetPrefersCachedVictims) {
  // Segments 0 and 1: same validity and age; warm segment 1's blocks.
  InodeNo a = *fs_.PopulateFile("/a", 64 * kPageSize);  // segment 0
  InodeNo b = *fs_.PopulateFile("/b", 64 * kPageSize);  // segment 1
  // Invalidate half of each so both are GC candidates.
  fs_.Write(a, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
  fs_.Write(b, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));

  GcConfig config;
  config.use_duet = true;
  config.wake_interval = Millis(200);
  config.idle_threshold = Millis(10);
  GcTask gc(&fs_, &duet_, config);
  gc.Start();
  // Warm the remaining valid pages of b (pages 32..63, still in segment 1).
  fs_.Read(b, 32 * kPageSize, 32 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Seconds(2));
  gc.Stop();
  ASSERT_GT(gc.segments_cleaned(), 0u);
  // The first cleaned segment should have used cached blocks.
  EXPECT_GT(gc.stats().saved_read_pages, 0u);
}

// ---- Rsync ----

class RsyncTest : public ::testing::Test {
 protected:
  RsyncTest()
      : src_rig_(1'000'000, Micros(100)),
        src_fs_(&src_rig_.loop, &src_rig_.device, 512),
        dst_device_(&src_rig_.loop, std::make_unique<FixedLatencyModel>(Micros(100), 1'000'000),
                    std::make_unique<CfqScheduler>()),
        dst_fs_(&src_rig_.loop, &dst_device_, 512),
        duet_(&src_fs_) {}

  void Populate(int files) {
    ASSERT_TRUE(src_fs_.Mkdir("/src").ok());
    ASSERT_TRUE(src_fs_.Mkdir("/src/sub").ok());
    for (int i = 0; i < files; ++i) {
      const char* dir = (i % 3 == 0) ? "/src/sub" : "/src";
      ASSERT_TRUE(
          src_fs_.PopulateFile(StrFormat("%s/f%d", dir, i), (8 + i % 5) * kPageSize)
              .ok());
    }
  }

  RsyncConfig Config(bool use_duet) {
    RsyncConfig config;
    config.use_duet = use_duet;
    config.source_dir = "/src";
    config.dest_dir = "/dst";
    return config;
  }

  SimRig src_rig_;
  CowFs src_fs_;
  BlockDevice dst_device_;
  CowFs dst_fs_;
  DuetCore duet_;
};

TEST_F(RsyncTest, BaselineCopiesEverythingCorrectly) {
  Populate(12);
  RsyncTask task(&src_fs_, &dst_fs_, nullptr, Config(false));
  bool finished = false;
  task.Start([&] { finished = true; });
  src_rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(task.files_synced(), 12u);
  EXPECT_TRUE(task.DestinationMatchesSource());
  EXPECT_EQ(task.stats().work_done, task.stats().work_total);
}

TEST_F(RsyncTest, DuetCopiesEverythingAndSavesCachedReads) {
  Populate(12);
  // Warm a few files.
  for (int i = 0; i < 4; ++i) {
    const char* dir = (i % 3 == 0) ? "/src/sub" : "/src";
    InodeNo ino = *src_fs_.ns().Resolve(StrFormat("%s/f%d", dir, i));
    src_fs_.Read(ino, 0, 64 * kPageSize, IoClass::kBestEffort, nullptr);
  }
  src_rig_.loop.RunUntil(Millis(500));
  RsyncTask task(&src_fs_, &dst_fs_, &duet_, Config(true));
  bool finished = false;
  task.Start([&] { finished = true; });
  src_rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(task.files_synced(), 12u);
  EXPECT_TRUE(task.DestinationMatchesSource());
  EXPECT_GT(task.stats().saved_read_pages, 0u);
  EXPECT_GT(task.stats().opportunistic_units, 0u);
}

TEST_F(RsyncTest, MetadataSentExactlyOncePerFile) {
  Populate(9);
  RsyncConfig config = Config(true);
  RsyncTask task(&src_fs_, &dst_fs_, &duet_, config);
  bool finished = false;
  task.Start([&] { finished = true; });
  // Touch files mid-run so they enter the priority queue after the DFS walk
  // may already have queued them.
  for (int i = 0; i < 9; ++i) {
    const char* dir = (i % 3 == 0) ? "/src/sub" : "/src";
    InodeNo ino = *src_fs_.ns().Resolve(StrFormat("%s/f%d", dir, i));
    src_rig_.loop.ScheduleAt(Millis(static_cast<uint64_t>(1 + i)), [this, ino] {
      src_fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort, nullptr);
    });
  }
  src_rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(task.files_synced(), 9u);  // exactly once each
  EXPECT_TRUE(task.DestinationMatchesSource());
}

TEST_F(RsyncTest, RunsAtNormalPriority) {
  Populate(6);
  RsyncTask task(&src_fs_, &dst_fs_, nullptr, Config(false));
  task.Start();
  src_rig_.loop.Run();
  EXPECT_GT(src_rig_.device.stats().TotalOps(IoClass::kBestEffort), 0u);
  EXPECT_EQ(src_rig_.device.stats().TotalOps(IoClass::kIdle), 0u);
}

}  // namespace
}  // namespace duet
