#include <gtest/gtest.h>

#include "src/cache/page_cache.h"
#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

TEST(EvictionAdvisorTest, AdvisedPagesEvictBeforeColderOnes) {
  PageCache cache(4, [] { return SimTime{0}; });
  // Inode 3's pages are marked processed (good victims).
  cache.SetEvictionAdvisor([](InodeNo ino, PageIdx) { return ino == 3; });
  cache.Insert(1, 0, 1, false);  // coldest, NOT advised
  cache.Insert(2, 0, 2, false);
  cache.Insert(3, 0, 3, false);  // advised, middle of the LRU
  cache.Insert(4, 0, 4, false);
  cache.Insert(5, 0, 5, false);  // overflow
  // Plain LRU would evict ino 1 (coldest); the advisor redirects to ino 3.
  EXPECT_FALSE(cache.Contains(3, 0));
  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(2, 0));
  EXPECT_TRUE(cache.Contains(4, 0));
  EXPECT_TRUE(cache.Contains(5, 0));
}

TEST(EvictionAdvisorTest, FallsBackToLruWhenNothingAdvised) {
  PageCache cache(2, [] { return SimTime{0}; });
  cache.SetEvictionAdvisor([](InodeNo, PageIdx) { return false; });
  cache.Insert(1, 0, 1, false);
  cache.Insert(2, 0, 2, false);
  cache.Insert(3, 0, 3, false);
  EXPECT_FALSE(cache.Contains(1, 0));  // plain LRU victim
  EXPECT_TRUE(cache.Contains(2, 0));
  EXPECT_TRUE(cache.Contains(3, 0));
}

TEST(EvictionAdvisorTest, ClearRestoresPlainLru) {
  PageCache cache(2, [] { return SimTime{0}; });
  cache.SetEvictionAdvisor([](InodeNo ino, PageIdx) { return ino == 2; });
  cache.ClearEvictionAdvisor();
  cache.Insert(1, 0, 1, false);
  cache.Insert(2, 0, 2, false);
  cache.Insert(3, 0, 3, false);
  EXPECT_FALSE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(2, 0));
}

TEST(EvictionAdvisorTest, DirtyPagesNeverAdvisedAway) {
  PageCache cache(2, [] { return SimTime{0}; });
  cache.SetEvictionAdvisor([](InodeNo, PageIdx) { return true; });
  cache.Insert(1, 0, 1, true);  // dirty
  cache.Insert(2, 0, 2, false);
  cache.Insert(3, 0, 3, false);
  EXPECT_TRUE(cache.Contains(1, 0));  // dirty survives even though advised
}

TEST(EvictionAdvisorTest, DuetProcessedByAllSessions) {
  SimRig rig(100'000);
  CowFs fs(&rig.loop, &rig.device, 256);
  DuetCore duet(&fs);
  InodeNo ino = *fs.PopulateFile("/f", 2 * kPageSize);
  BlockNo b0 = *fs.Bmap(ino, 0);
  // No sessions tracking completion: nothing is "processed".
  EXPECT_FALSE(duet.ProcessedByAllSessions(ino, 0));
  SessionId a = *duet.RegisterBlockTask(kDuetPageAdded);
  SessionId b = *duet.RegisterBlockTask(kDuetPageAdded);
  ASSERT_TRUE(duet.SetDone(a, b0).ok());
  // Session b tracks nothing yet (zero done bits): only a votes.
  EXPECT_TRUE(duet.ProcessedByAllSessions(ino, 0));
  // Once b starts tracking, it must also mark the block.
  ASSERT_TRUE(duet.SetDone(b, *fs.Bmap(ino, 1)).ok());
  EXPECT_FALSE(duet.ProcessedByAllSessions(ino, 0));
  ASSERT_TRUE(duet.SetDone(b, b0).ok());
  EXPECT_TRUE(duet.ProcessedByAllSessions(ino, 0));
  // Page 1 is done for b but not a.
  EXPECT_FALSE(duet.ProcessedByAllSessions(ino, 1));
}

}  // namespace
}  // namespace duet
