#include "src/fs/namespace.h"

#include <gtest/gtest.h>

#include <vector>

namespace duet {
namespace {

class RecordingObserver : public VfsObserver {
 public:
  void OnRename(InodeNo ino, InodeNo old_parent, InodeNo new_parent,
                bool is_dir) override {
    renames.push_back({ino, old_parent, new_parent, is_dir});
  }
  void OnUnlink(InodeNo ino) override { unlinks.push_back(ino); }
  void OnCreate(InodeNo ino) override { creates.push_back(ino); }

  struct RenameEvent {
    InodeNo ino, old_parent, new_parent;
    bool is_dir;
  };
  std::vector<RenameEvent> renames;
  std::vector<InodeNo> unlinks;
  std::vector<InodeNo> creates;
};

TEST(SplitPathTest, Variants) {
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("").empty());
  auto parts = SplitPath("/a/b/c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(SplitPath("//a//b/").size(), 2u);
  EXPECT_EQ(SplitPath("a/b").size(), 2u);  // relative treated as root-based
}

TEST(NamespaceTest, RootExists) {
  Namespace ns;
  ASSERT_TRUE(ns.Resolve("/").ok());
  EXPECT_EQ(*ns.Resolve("/"), Namespace::kRootIno);
  EXPECT_EQ(*ns.PathOf(Namespace::kRootIno), "/");
}

TEST(NamespaceTest, CreateResolvePath) {
  Namespace ns;
  ASSERT_TRUE(ns.Create("/dir", FileType::kDirectory).ok());
  Result<InodeNo> file = ns.Create("/dir/file.txt", FileType::kRegular);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(*ns.Resolve("/dir/file.txt"), *file);
  EXPECT_EQ(*ns.PathOf(*file), "/dir/file.txt");
}

TEST(NamespaceTest, CreateFailsWithoutParent) {
  Namespace ns;
  EXPECT_EQ(ns.Create("/no/such/file", FileType::kRegular).status().code(),
            StatusCode::kNotFound);
}

TEST(NamespaceTest, CreateDuplicateFails) {
  Namespace ns;
  ASSERT_TRUE(ns.Create("/f", FileType::kRegular).ok());
  EXPECT_EQ(ns.Create("/f", FileType::kRegular).status().code(), StatusCode::kExists);
}

TEST(NamespaceTest, CreateThroughFileFails) {
  Namespace ns;
  ASSERT_TRUE(ns.Create("/f", FileType::kRegular).ok());
  EXPECT_FALSE(ns.Create("/f/child", FileType::kRegular).ok());
}

TEST(NamespaceTest, UnlinkFile) {
  Namespace ns;
  InodeNo ino = *ns.Create("/f", FileType::kRegular);
  EXPECT_TRUE(ns.Unlink(ino).ok());
  EXPECT_FALSE(ns.Resolve("/f").ok());
  EXPECT_FALSE(ns.Exists(ino));
}

TEST(NamespaceTest, UnlinkNonEmptyDirFails) {
  Namespace ns;
  InodeNo dir = *ns.Create("/d", FileType::kDirectory);
  ASSERT_TRUE(ns.Create("/d/f", FileType::kRegular).ok());
  EXPECT_EQ(ns.Unlink(dir).code(), StatusCode::kBusy);
}

TEST(NamespaceTest, UnlinkRootFails) {
  Namespace ns;
  EXPECT_FALSE(ns.Unlink(Namespace::kRootIno).ok());
}

TEST(NamespaceTest, IsUnder) {
  Namespace ns;
  InodeNo a = *ns.Create("/a", FileType::kDirectory);
  InodeNo b = *ns.Create("/a/b", FileType::kDirectory);
  InodeNo f = *ns.Create("/a/b/f", FileType::kRegular);
  InodeNo other = *ns.Create("/other", FileType::kRegular);
  EXPECT_TRUE(ns.IsUnder(f, a));
  EXPECT_TRUE(ns.IsUnder(f, b));
  EXPECT_TRUE(ns.IsUnder(f, Namespace::kRootIno));
  EXPECT_TRUE(ns.IsUnder(a, a));  // inclusive
  EXPECT_FALSE(ns.IsUnder(other, a));
  EXPECT_FALSE(ns.IsUnder(a, f));
}

TEST(NamespaceTest, RenameMovesSubtree) {
  Namespace ns;
  InodeNo src = *ns.Create("/src", FileType::kDirectory);
  InodeNo dst = *ns.Create("/dst", FileType::kDirectory);
  InodeNo dir = *ns.Create("/src/dir", FileType::kDirectory);
  InodeNo f = *ns.Create("/src/dir/f", FileType::kRegular);
  ASSERT_TRUE(ns.Rename(dir, dst, "moved").ok());
  EXPECT_EQ(*ns.PathOf(f), "/dst/moved/f");
  EXPECT_TRUE(ns.IsUnder(f, dst));
  EXPECT_FALSE(ns.IsUnder(f, src));
}

TEST(NamespaceTest, RenameIntoOwnSubtreeFails) {
  Namespace ns;
  InodeNo a = *ns.Create("/a", FileType::kDirectory);
  InodeNo b = *ns.Create("/a/b", FileType::kDirectory);
  EXPECT_EQ(ns.Rename(a, b, "x").code(), StatusCode::kInvalidArgument);
}

TEST(NamespaceTest, RenameOntoExistingNameFails) {
  Namespace ns;
  InodeNo f = *ns.Create("/f", FileType::kRegular);
  ASSERT_TRUE(ns.Create("/g", FileType::kRegular).ok());
  EXPECT_EQ(ns.Rename(f, Namespace::kRootIno, "g").code(), StatusCode::kExists);
}

TEST(NamespaceTest, WalkDepthFirstIsNameOrderedAndComplete) {
  Namespace ns;
  ASSERT_TRUE(ns.Create("/b", FileType::kDirectory).ok());
  ASSERT_TRUE(ns.Create("/a", FileType::kDirectory).ok());
  ASSERT_TRUE(ns.Create("/a/z", FileType::kRegular).ok());
  ASSERT_TRUE(ns.Create("/a/y", FileType::kRegular).ok());
  ASSERT_TRUE(ns.Create("/b/x", FileType::kRegular).ok());
  std::vector<std::string> names;
  ns.WalkDepthFirst(ns.root(), [&](const Inode& inode) {
    names.push_back(inode.name);
    return true;
  });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "y", "z", "b", "x"}));
}

TEST(NamespaceTest, WalkStopsWhenCallbackReturnsFalse) {
  Namespace ns;
  for (char c = 'a'; c <= 'e'; ++c) {
    ASSERT_TRUE(ns.Create(std::string("/") + c, FileType::kRegular).ok());
  }
  int visited = 0;
  ns.WalkDepthFirst(ns.root(), [&](const Inode&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(NamespaceTest, ObserverSeesCreateUnlinkRename) {
  Namespace ns;
  RecordingObserver obs;
  ns.AddObserver(&obs);
  InodeNo dir = *ns.Create("/d", FileType::kDirectory);
  InodeNo f = *ns.Create("/f", FileType::kRegular);
  ASSERT_TRUE(ns.Rename(f, dir, "f2").ok());
  ASSERT_TRUE(ns.Unlink(f).ok());
  ASSERT_EQ(obs.creates.size(), 2u);
  ASSERT_EQ(obs.renames.size(), 1u);
  EXPECT_EQ(obs.renames[0].ino, f);
  EXPECT_EQ(obs.renames[0].old_parent, Namespace::kRootIno);
  EXPECT_EQ(obs.renames[0].new_parent, dir);
  EXPECT_FALSE(obs.renames[0].is_dir);
  ASSERT_EQ(obs.unlinks.size(), 1u);
  EXPECT_EQ(obs.unlinks[0], f);
}

TEST(NamespaceTest, MaxInoGrowsMonotonically) {
  Namespace ns;
  InodeNo before = ns.max_ino();
  InodeNo f = *ns.Create("/f", FileType::kRegular);
  EXPECT_GE(ns.max_ino(), f);
  EXPECT_GT(ns.max_ino(), before);
  ASSERT_TRUE(ns.Unlink(f).ok());
  EXPECT_GT(ns.max_ino(), f);  // numbers are never reused
}

}  // namespace
}  // namespace duet
