#include "src/duet/duet_core.h"

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class DuetCoreTest : public ::testing::Test {
 protected:
  DuetCoreTest()
      : rig_(100'000),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/256),
        duet_(&fs_) {}

  InodeNo MakeFile(const char* path, uint64_t pages) {
    return *fs_.PopulateFile(path, pages * kPageSize);
  }

  void ReadSync(InodeNo ino, ByteOff off, uint64_t len) {
    fs_.Read(ino, off, len, IoClass::kBestEffort, nullptr);
    rig_.loop.RunUntil(rig_.loop.now() + Millis(500));
  }

  void WriteSync(InodeNo ino, ByteOff off, uint64_t len) {
    fs_.Write(ino, off, len, IoClass::kBestEffort, nullptr);
    rig_.loop.RunUntil(rig_.loop.now() + Millis(500));
  }

  std::vector<DuetItem> FetchAll(SessionId sid) {
    std::vector<DuetItem> all;
    while (true) {
      Result<std::vector<DuetItem>> batch = duet_.Fetch(sid, 64);
      EXPECT_TRUE(batch.ok());
      if (!batch.ok() || batch->empty()) {
        return all;
      }
      all.insert(all.end(), batch->begin(), batch->end());
    }
  }

  SimRig rig_;
  CowFs fs_;
  DuetCore duet_;
};

TEST_F(DuetCoreTest, RegisterRequiresMask) {
  EXPECT_FALSE(duet_.RegisterBlockTask(0).ok());
}

TEST_F(DuetCoreTest, RegisterFileTaskRequiresDirectory) {
  InodeNo f = MakeFile("/f", 1);
  (void)f;
  EXPECT_FALSE(duet_.RegisterFileTask("/f", kDuetPageExists).ok());
  EXPECT_FALSE(duet_.RegisterFileTask("/nope", kDuetPageExists).ok());
  EXPECT_TRUE(duet_.RegisterFileTask("/", kDuetPageExists).ok());
}

TEST_F(DuetCoreTest, SessionLimitEnforced) {
  DuetConfig config;
  config.max_sessions = 2;
  DuetCore small(&fs_, config);
  ASSERT_TRUE(small.RegisterBlockTask(kDuetPageAdded).ok());
  ASSERT_TRUE(small.RegisterBlockTask(kDuetPageAdded).ok());
  EXPECT_EQ(small.RegisterBlockTask(kDuetPageAdded).status().code(), StatusCode::kLimit);
  EXPECT_EQ(small.active_sessions(), 2u);
}

TEST_F(DuetCoreTest, DeregisterFreesSlotAndState) {
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded);
  InodeNo ino = MakeFile("/f", 4);
  ReadSync(ino, 0, 4 * kPageSize);
  EXPECT_GT(duet_.PendingCount(sid), 0u);
  ASSERT_TRUE(duet_.Deregister(sid).ok());
  EXPECT_FALSE(duet_.Fetch(sid, 10).ok());
  EXPECT_EQ(duet_.descriptor_count(), 0u);
  EXPECT_TRUE(duet_.RegisterBlockTask(kDuetPageAdded).ok());  // slot reusable
}

TEST_F(DuetCoreTest, BlockTaskSeesAddedEventsAsBlockNumbers) {
  InodeNo ino = MakeFile("/f", 4);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded);
  ReadSync(ino, 0, 4 * kPageSize);
  std::vector<DuetItem> items = FetchAll(sid);
  ASSERT_EQ(items.size(), 4u);
  for (const DuetItem& item : items) {
    EXPECT_TRUE(item.has(kDuetPageAdded));
    Result<FileSystem::BlockOwner> owner = fs_.Rmap(item.id);
    ASSERT_TRUE(owner.ok());
    EXPECT_EQ(owner->ino, ino);
  }
}

TEST_F(DuetCoreTest, FileTaskSeesInodeAndOffset) {
  ASSERT_TRUE(fs_.Mkdir("/watched").ok());
  InodeNo ino = MakeFile("/watched/f", 3);
  SessionId sid = *duet_.RegisterFileTask("/watched", kDuetPageExists);
  ReadSync(ino, kPageSize, kPageSize);  // page 1 only
  std::vector<DuetItem> items = FetchAll(sid);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].id, ino);
  EXPECT_EQ(items[0].offset, kPageSize);
  EXPECT_TRUE(items[0].has(kDuetPageExists));
}

TEST_F(DuetCoreTest, FileTaskIgnoresFilesOutsideRegisteredDir) {
  ASSERT_TRUE(fs_.Mkdir("/watched").ok());
  InodeNo inside = MakeFile("/watched/in", 2);
  InodeNo outside = MakeFile("/out", 2);
  SessionId sid = *duet_.RegisterFileTask("/watched", kDuetPageExists);
  ReadSync(inside, 0, 2 * kPageSize);
  ReadSync(outside, 0, 2 * kPageSize);
  std::vector<DuetItem> items = FetchAll(sid);
  ASSERT_EQ(items.size(), 2u);
  for (const DuetItem& item : items) {
    EXPECT_EQ(item.id, inside);
  }
  // Irrelevant files are marked done so the path walk happens only once.
  uint64_t checks = duet_.stats().relevance_checks;
  ReadSync(outside, 0, 2 * kPageSize);
  EXPECT_EQ(duet_.stats().relevance_checks, checks);
}

TEST_F(DuetCoreTest, InitialScanReportsPreexistingPages) {
  InodeNo ino = MakeFile("/f", 8);
  ReadSync(ino, 0, 8 * kPageSize);  // cache before registering
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded);
  std::vector<DuetItem> items = FetchAll(sid);
  EXPECT_EQ(items.size(), 8u);  // scan made them immediately available
}

TEST_F(DuetCoreTest, InitialScanMarksDirtyPages) {
  InodeNo ino = MakeFile("/f", 2);
  WriteSync(ino, 0, kPageSize);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded | kDuetPageDirtied);
  std::vector<DuetItem> items = FetchAll(sid);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].has(kDuetPageDirtied));
}

TEST_F(DuetCoreTest, EventMaskFiltersNotifications) {
  InodeNo ino = MakeFile("/f", 2);
  SessionId dirty_only = *duet_.RegisterBlockTask(kDuetPageDirtied);
  ReadSync(ino, 0, 2 * kPageSize);  // Added events: not subscribed
  EXPECT_TRUE(FetchAll(dirty_only).empty());
  WriteSync(ino, 0, kPageSize);
  std::vector<DuetItem> items = FetchAll(dirty_only);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].has(kDuetPageDirtied));
}

TEST_F(DuetCoreTest, EventSemanticsAccumulateAcrossFetches) {
  // §3.2's example: page added, fetch, page removed -> the next fetch
  // returns the item with only the Removed bit set.
  InodeNo ino = MakeFile("/f", 1);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded | kDuetPageRemoved);
  ReadSync(ino, 0, kPageSize);
  std::vector<DuetItem> first = FetchAll(sid);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].has(kDuetPageAdded));
  EXPECT_FALSE(first[0].has(kDuetPageRemoved));
  fs_.cache().Remove(ino, 0);
  std::vector<DuetItem> second = FetchAll(sid);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].has(kDuetPageRemoved));
  EXPECT_FALSE(second[0].has(kDuetPageAdded));
}

TEST_F(DuetCoreTest, StateNotificationsCancelOut) {
  // §3.2: registered for Exists; a page removed and re-added between two
  // fetches reverts to the same state -> no event on the next fetch.
  InodeNo ino = MakeFile("/f", 1);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageExists);
  ReadSync(ino, 0, kPageSize);
  std::vector<DuetItem> first = FetchAll(sid);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].has(kDuetPageExists));
  // Remove and re-add between fetches.
  uint64_t token = fs_.cache().Peek(ino, 0)->data;
  fs_.cache().Remove(ino, 0);
  fs_.cache().Insert(ino, 0, token, false);
  EXPECT_TRUE(FetchAll(sid).empty());
}

TEST_F(DuetCoreTest, StateNotificationReportsCurrentPolarity) {
  InodeNo ino = MakeFile("/f", 1);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageExists);
  ReadSync(ino, 0, kPageSize);
  ASSERT_EQ(FetchAll(sid).size(), 1u);
  fs_.cache().Remove(ino, 0);
  std::vector<DuetItem> gone = FetchAll(sid);
  ASSERT_EQ(gone.size(), 1u);
  EXPECT_TRUE(gone[0].has(kDuetPageRemoved));  // ¬Exists polarity
  EXPECT_FALSE(gone[0].has(kDuetPageExists));
}

TEST_F(DuetCoreTest, ModifiedStateTracksDirtyFlush) {
  InodeNo ino = MakeFile("/f", 1);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageModified);
  WriteSync(ino, 0, kPageSize);
  std::vector<DuetItem> dirty = FetchAll(sid);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_TRUE(dirty[0].has(kDuetPageModified));
  fs_.writeback().Sync(nullptr);
  rig_.loop.Run();
  std::vector<DuetItem> clean = FetchAll(sid);
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_TRUE(clean[0].has(kDuetPageFlushed));  // ¬Modified polarity
}

TEST_F(DuetCoreTest, DirtyFlushCancelsForModifiedSubscriber) {
  InodeNo ino = MakeFile("/f", 1);
  ReadSync(ino, 0, kPageSize);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageModified);
  (void)FetchAll(sid);
  WriteSync(ino, 0, kPageSize);
  fs_.writeback().Sync(nullptr);
  rig_.loop.Run();
  // Dirty then flushed between fetches: net modification state unchanged.
  // (The block changed due to COW, so fetch may translate to a new block,
  // but no *state* item should surface for the old state.)
  for (const DuetItem& item : FetchAll(sid)) {
    EXPECT_FALSE(item.has(kDuetPageModified));
  }
}

TEST_F(DuetCoreTest, SetDoneSuppressesFutureEvents) {
  InodeNo ino = MakeFile("/f", 2);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded);
  BlockNo b0 = *fs_.Bmap(ino, 0);
  ASSERT_TRUE(duet_.SetDone(sid, b0).ok());
  EXPECT_TRUE(duet_.CheckDone(sid, b0));
  ReadSync(ino, 0, 2 * kPageSize);
  std::vector<DuetItem> items = FetchAll(sid);
  ASSERT_EQ(items.size(), 1u);  // only page 1's block
  EXPECT_EQ(items[0].id, *fs_.Bmap(ino, 1));
}

TEST_F(DuetCoreTest, UnsetDoneReenablesEvents) {
  InodeNo ino = MakeFile("/f", 1);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded);
  BlockNo b = *fs_.Bmap(ino, 0);
  ASSERT_TRUE(duet_.SetDone(sid, b).ok());
  ASSERT_TRUE(duet_.UnsetDone(sid, b).ok());
  EXPECT_FALSE(duet_.CheckDone(sid, b));
  ReadSync(ino, 0, kPageSize);
  EXPECT_EQ(FetchAll(sid).size(), 1u);
}

TEST_F(DuetCoreTest, FileTaskSetDoneSuppressesWholeFile) {
  ASSERT_TRUE(fs_.Mkdir("/w").ok());
  InodeNo a = MakeFile("/w/a", 2);
  InodeNo b = MakeFile("/w/b", 2);
  SessionId sid = *duet_.RegisterFileTask("/w", kDuetPageExists);
  ASSERT_TRUE(duet_.SetDone(sid, a).ok());
  ReadSync(a, 0, 2 * kPageSize);
  ReadSync(b, 0, 2 * kPageSize);
  std::vector<DuetItem> items = FetchAll(sid);
  ASSERT_EQ(items.size(), 2u);
  for (const DuetItem& item : items) {
    EXPECT_EQ(item.id, b);
  }
}

TEST_F(DuetCoreTest, SetDoneClearsAlreadyQueuedNotifications) {
  ASSERT_TRUE(fs_.Mkdir("/w").ok());
  InodeNo a = MakeFile("/w/a", 4);
  SessionId sid = *duet_.RegisterFileTask("/w", kDuetPageExists);
  ReadSync(a, 0, 4 * kPageSize);
  EXPECT_GT(duet_.PendingCount(sid), 0u);
  ASSERT_TRUE(duet_.SetDone(sid, a).ok());
  EXPECT_TRUE(FetchAll(sid).empty());
}

TEST_F(DuetCoreTest, GetPathTranslatesAndValidates) {
  ASSERT_TRUE(fs_.Mkdir("/w").ok());
  ASSERT_TRUE(fs_.Mkdir("/w/sub").ok());
  InodeNo ino = MakeFile("/w/sub/file", 2);
  SessionId sid = *duet_.RegisterFileTask("/w", kDuetPageExists);
  // No cached pages: the hint "truth" fails.
  EXPECT_FALSE(duet_.GetPath(sid, ino).ok());
  ReadSync(ino, 0, kPageSize);
  Result<std::string> path = duet_.GetPath(sid, ino);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/sub/file");
  // Outside inode fails.
  InodeNo out = MakeFile("/other", 1);
  ReadSync(out, 0, kPageSize);
  EXPECT_FALSE(duet_.GetPath(sid, out).ok());
}

TEST_F(DuetCoreTest, GetPathFailsAfterEviction) {
  ASSERT_TRUE(fs_.Mkdir("/w").ok());
  InodeNo ino = MakeFile("/w/f", 1);
  SessionId sid = *duet_.RegisterFileTask("/w", kDuetPageExists);
  ReadSync(ino, 0, kPageSize);
  ASSERT_TRUE(duet_.GetPath(sid, ino).ok());
  fs_.cache().RemoveInode(ino);
  EXPECT_FALSE(duet_.GetPath(sid, ino).ok());
}

TEST_F(DuetCoreTest, FileMovedIntoWatchedDirGeneratesEvents) {
  ASSERT_TRUE(fs_.Mkdir("/w").ok());
  InodeNo ino = MakeFile("/outside", 3);
  SessionId sid = *duet_.RegisterFileTask("/w", kDuetPageExists);
  ReadSync(ino, 0, 3 * kPageSize);
  EXPECT_TRUE(FetchAll(sid).empty());  // outside: no events
  ASSERT_TRUE(fs_.ns().Rename(ino, *fs_.ns().Resolve("/w"), "moved").ok());
  std::vector<DuetItem> items = FetchAll(sid);
  EXPECT_EQ(items.size(), 3u);  // cached pages surfaced like a fresh scan
  for (const DuetItem& item : items) {
    EXPECT_EQ(item.id, ino);
    EXPECT_TRUE(item.has(kDuetPageExists));
  }
}

TEST_F(DuetCoreTest, FileMovedOutGeneratesRemovalsAndDone) {
  ASSERT_TRUE(fs_.Mkdir("/w").ok());
  InodeNo ino = MakeFile("/w/f", 2);
  SessionId sid = *duet_.RegisterFileTask("/w", kDuetPageExists);
  ReadSync(ino, 0, 2 * kPageSize);
  (void)FetchAll(sid);
  ASSERT_TRUE(fs_.ns().Rename(ino, fs_.ns().root(), "gone").ok());
  std::vector<DuetItem> items = FetchAll(sid);
  ASSERT_EQ(items.size(), 2u);
  for (const DuetItem& item : items) {
    EXPECT_TRUE(item.has(kDuetPageRemoved));
  }
  EXPECT_TRUE(duet_.CheckDone(sid, ino));
  // Future activity on the file is ignored.
  ReadSync(ino, 0, 2 * kPageSize);
  EXPECT_TRUE(FetchAll(sid).empty());
}

TEST_F(DuetCoreTest, DirectoryRenameResetsUnprocessedFiles) {
  ASSERT_TRUE(fs_.Mkdir("/w").ok());
  ASSERT_TRUE(fs_.Mkdir("/w/d").ok());
  InodeNo processed = MakeFile("/w/d/done", 1);
  InodeNo pending = MakeFile("/w/d/pending", 1);
  SessionId sid = *duet_.RegisterFileTask("/w", kDuetPageExists);
  ReadSync(processed, 0, kPageSize);
  ReadSync(pending, 0, kPageSize);
  (void)FetchAll(sid);
  ASSERT_TRUE(duet_.SetDone(sid, processed).ok());
  InodeNo d = *fs_.ns().Resolve("/w/d");
  ASSERT_TRUE(fs_.ns().Rename(d, *fs_.ns().Resolve("/w"), "renamed").ok());
  // Processed file (relevant+done) still done; pending file relevance reset
  // but events flow again on next access.
  EXPECT_TRUE(duet_.CheckDone(sid, processed));
  fs_.cache().RemoveInode(pending);
  // Consume the ¬exists notification so the re-read below is a fresh state
  // change (a remove + re-add between fetches would cancel out, §3.2).
  (void)FetchAll(sid);
  ReadSync(pending, 0, kPageSize);
  std::vector<DuetItem> items = FetchAll(sid);
  bool saw_pending = false;
  for (const DuetItem& item : items) {
    if (item.id == pending) {
      saw_pending = true;
    }
    EXPECT_NE(item.id, processed);
  }
  EXPECT_TRUE(saw_pending);
}

TEST_F(DuetCoreTest, DescriptorLimitDropsEventOnlySessions) {
  DuetConfig config;
  config.max_pending_per_session = 4;
  DuetCore limited(&fs_, config);
  InodeNo ino = MakeFile("/big", 16);
  SessionId sid = *limited.RegisterBlockTask(kDuetPageAdded);
  ReadSync(ino, 0, 16 * kPageSize);
  EXPECT_LE(limited.PendingCount(sid), 4u);
  EXPECT_GT(limited.stats().events_dropped, 0u);
  std::vector<DuetItem> items;
  while (true) {
    auto batch = limited.Fetch(sid, 64);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) {
      break;
    }
    items.insert(items.end(), batch->begin(), batch->end());
  }
  EXPECT_EQ(items.size(), 4u);
}

TEST_F(DuetCoreTest, StateSessionsAreNotSubjectToDropLimit) {
  DuetConfig config;
  config.max_pending_per_session = 4;
  DuetCore limited(&fs_, config);
  InodeNo ino = MakeFile("/big", 16);
  SessionId sid = *limited.RegisterBlockTask(kDuetPageExists);
  ReadSync(ino, 0, 16 * kPageSize);
  uint64_t fetched = 0;
  while (true) {
    auto batch = limited.Fetch(sid, 64);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) {
      break;
    }
    fetched += batch->size();
  }
  EXPECT_EQ(fetched, 16u);
  EXPECT_EQ(limited.stats().events_dropped, 0u);
}

TEST_F(DuetCoreTest, DescriptorsFreeOnceUpToDateAndEvicted) {
  InodeNo ino = MakeFile("/f", 4);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageAdded);
  ReadSync(ino, 0, 4 * kPageSize);
  EXPECT_EQ(duet_.descriptor_count(), 4u);
  (void)FetchAll(sid);
  // Event-only session: descriptors freed as soon as they are up to date.
  EXPECT_EQ(duet_.descriptor_count(), 0u);
}

TEST_F(DuetCoreTest, StateDescriptorsBoundedByCachedPages) {
  InodeNo ino = MakeFile("/f", 4);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageExists);
  ReadSync(ino, 0, 4 * kPageSize);
  (void)FetchAll(sid);
  // Pages still cached: descriptors stay (reported state is live context).
  EXPECT_EQ(duet_.descriptor_count(), 4u);
  fs_.cache().RemoveInode(ino);
  (void)FetchAll(sid);  // consume the ¬exists notifications
  EXPECT_EQ(duet_.descriptor_count(), 0u);
}

TEST_F(DuetCoreTest, MemoryAccountingExposed) {
  InodeNo ino = MakeFile("/f", 8);
  SessionId sid = *duet_.RegisterBlockTask(kDuetPageExists);
  ReadSync(ino, 0, 8 * kPageSize);
  // Accounting is sizeof-accurate (arena capacity + freelist + page table),
  // so it must at least cover one 32-byte descriptor per live page and stay
  // within a sane constant envelope of that floor.
  EXPECT_EQ(duet_.descriptor_count(), 8u);
  EXPECT_GE(duet_.DescriptorMemoryBytes(), duet_.descriptor_count() * 32);
  ASSERT_TRUE(duet_.SetDone(sid, *fs_.Bmap(ino, 0)).ok());
  EXPECT_GT(duet_.SessionBitmapBytes(sid), 0u);
}

TEST_F(DuetCoreTest, TwoSessionsSeeIndependentStreams) {
  InodeNo ino = MakeFile("/f", 2);
  SessionId a = *duet_.RegisterBlockTask(kDuetPageAdded);
  SessionId b = *duet_.RegisterBlockTask(kDuetPageAdded);
  ReadSync(ino, 0, 2 * kPageSize);
  EXPECT_EQ(FetchAll(a).size(), 2u);
  EXPECT_EQ(FetchAll(a).size(), 0u);  // a's stream drained
  EXPECT_EQ(FetchAll(b).size(), 2u);  // b unaffected by a's fetches
}

TEST_F(DuetCoreTest, DoneIsPerSession) {
  InodeNo ino = MakeFile("/f", 1);
  SessionId a = *duet_.RegisterBlockTask(kDuetPageAdded);
  SessionId b = *duet_.RegisterBlockTask(kDuetPageAdded);
  BlockNo block = *fs_.Bmap(ino, 0);
  ASSERT_TRUE(duet_.SetDone(a, block).ok());
  ReadSync(ino, 0, kPageSize);
  EXPECT_TRUE(FetchAll(a).empty());
  EXPECT_EQ(FetchAll(b).size(), 1u);
}

}  // namespace
}  // namespace duet
