#include "src/util/range_bitmap.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/util/rng.h"

namespace duet {
namespace {

constexpr uint64_t kChunk = RangeBitmap::kChunkBits;

TEST(RangeBitmapTest, StartsEmptyAndAllocatesNothing) {
  RangeBitmap bm(10 * kChunk);
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_EQ(bm.chunk_count(), 0u);
  EXPECT_EQ(bm.MemoryBytes(), 0u);
  EXPECT_FALSE(bm.Test(0));
  EXPECT_FALSE(bm.Test(10 * kChunk - 1));
}

TEST(RangeBitmapTest, SetAllocatesOneChunk) {
  RangeBitmap bm(10 * kChunk);
  bm.Set(5);
  EXPECT_TRUE(bm.Test(5));
  EXPECT_EQ(bm.Count(), 1u);
  EXPECT_EQ(bm.chunk_count(), 1u);
  EXPECT_GT(bm.MemoryBytes(), 0u);
}

TEST(RangeBitmapTest, ChunkFreedWhenAllBitsCleared) {
  // Mirrors §4.2: portions are deallocated when all their bits are unmarked.
  RangeBitmap bm(10 * kChunk);
  bm.Set(100);
  bm.Set(200);
  EXPECT_EQ(bm.chunk_count(), 1u);
  bm.Clear(100);
  EXPECT_EQ(bm.chunk_count(), 1u);
  bm.Clear(200);
  EXPECT_EQ(bm.chunk_count(), 0u);
  EXPECT_EQ(bm.MemoryBytes(), 0u);
}

TEST(RangeBitmapTest, SparseSetsUseSparseChunks) {
  RangeBitmap bm(100 * kChunk);
  bm.Set(0);
  bm.Set(50 * kChunk);
  bm.Set(99 * kChunk);
  EXPECT_EQ(bm.chunk_count(), 3u);
  EXPECT_EQ(bm.Count(), 3u);
}

TEST(RangeBitmapTest, ClearOnUnallocatedChunkIsNoop) {
  RangeBitmap bm(10 * kChunk);
  bm.Clear(12345);
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_EQ(bm.chunk_count(), 0u);
}

TEST(RangeBitmapTest, SetRangeSpanningChunks) {
  RangeBitmap bm(4 * kChunk);
  bm.SetRange(kChunk - 10, 2 * kChunk + 10);
  EXPECT_EQ(bm.Count(), kChunk + 20);
  EXPECT_EQ(bm.chunk_count(), 3u);
  EXPECT_FALSE(bm.Test(kChunk - 11));
  EXPECT_TRUE(bm.Test(kChunk - 10));
  EXPECT_TRUE(bm.Test(2 * kChunk + 9));
  EXPECT_FALSE(bm.Test(2 * kChunk + 10));
}

TEST(RangeBitmapTest, ClearRangeFreesEmptiedChunks) {
  RangeBitmap bm(4 * kChunk);
  bm.SetRange(0, 3 * kChunk);
  EXPECT_EQ(bm.chunk_count(), 3u);
  bm.ClearRange(0, 2 * kChunk);
  EXPECT_EQ(bm.chunk_count(), 1u);
  EXPECT_EQ(bm.Count(), kChunk);
}

TEST(RangeBitmapTest, FindNextSetSkipsUnallocatedChunks) {
  RangeBitmap bm(100 * kChunk);
  EXPECT_EQ(bm.FindNextSet(0), std::nullopt);
  bm.Set(70 * kChunk + 7);
  EXPECT_EQ(bm.FindNextSet(0), 70 * kChunk + 7);
  EXPECT_EQ(bm.FindNextSet(70 * kChunk + 7), 70 * kChunk + 7);
  EXPECT_EQ(bm.FindNextSet(70 * kChunk + 8), std::nullopt);
}

TEST(RangeBitmapTest, ResetDropsEverything) {
  RangeBitmap bm(10 * kChunk);
  bm.SetRange(0, 5 * kChunk);
  bm.Reset();
  EXPECT_EQ(bm.Count(), 0u);
  EXPECT_EQ(bm.chunk_count(), 0u);
}

TEST(RangeBitmapTest, ResizeDropsOutOfRangeChunks) {
  RangeBitmap bm(10 * kChunk);
  bm.Set(1);
  bm.Set(9 * kChunk + 1);
  bm.Resize(2 * kChunk);
  EXPECT_EQ(bm.Count(), 1u);
  EXPECT_TRUE(bm.Test(1));
}

TEST(RangeBitmapTest, MemoryMatchesPaperScale) {
  // §6.4: for 50 GB of data (one bit per 4 KiB block), the worst-case
  // done-bitmap estimate is ~1.56 MB. Fully populating our bitmap at that
  // scale must land in the same ballpark (chunk payloads alone are 1.5625 MB
  // plus small per-chunk tree overhead).
  const uint64_t blocks = 50ULL * 1024 * 1024 * 1024 / 4096;
  RangeBitmap bm(blocks);
  bm.SetRange(0, blocks);
  double mb = static_cast<double>(bm.MemoryBytes()) / (1024.0 * 1024.0);
  EXPECT_GT(mb, 1.4);
  EXPECT_LT(mb, 1.8);
}

class RangeBitmapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeBitmapPropertyTest, MatchesDenseBitmap) {
  Rng rng(GetParam());
  const uint64_t n = kChunk * 3 + rng.Uniform(kChunk);
  RangeBitmap sparse(n);
  Bitmap dense(n);

  for (int step = 0; step < 400; ++step) {
    switch (rng.Uniform(4)) {
      case 0: {
        uint64_t b = rng.Uniform(n);
        sparse.Set(b);
        dense.Set(b);
        break;
      }
      case 1: {
        uint64_t b = rng.Uniform(n);
        sparse.Clear(b);
        dense.Clear(b);
        break;
      }
      case 2: {
        uint64_t lo = rng.Uniform(n + 1);
        uint64_t hi = lo + rng.Uniform(n + 1 - lo);
        sparse.SetRange(lo, hi);
        dense.SetRange(lo, hi);
        break;
      }
      case 3: {
        uint64_t lo = rng.Uniform(n + 1);
        uint64_t hi = lo + rng.Uniform(n + 1 - lo);
        sparse.ClearRange(lo, hi);
        dense.ClearRange(lo, hi);
        break;
      }
    }
    ASSERT_EQ(sparse.Count(), dense.Count()) << "step " << step;
  }

  for (uint64_t anchor = 0; anchor < n; anchor += 997) {
    ASSERT_EQ(sparse.FindNextSet(anchor), dense.FindNextSet(anchor));
  }
  for (uint64_t b = 0; b < n; b += 509) {
    ASSERT_EQ(sparse.Test(b), dense.Test(b));
  }

  // Invariant: no allocated chunk is entirely clear.
  sparse.ClearRange(0, n);
  EXPECT_EQ(sparse.chunk_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeBitmapPropertyTest,
                         ::testing::Values(7, 11, 17, 23, 31, 41));

// ---- Chunk-boundary seams ----
// Operations that straddle the 32768-bit chunk granularity exercise the
// allocate/deallocate seams of the red-black-tree chunk store.

TEST(RangeBitmapTest, SetClearAtChunkSeams) {
  RangeBitmap b(kChunk * 4);
  for (uint64_t seam = kChunk; seam <= 3 * kChunk; seam += kChunk) {
    b.Set(seam - 1);
    b.Set(seam);
    EXPECT_TRUE(b.Test(seam - 1));
    EXPECT_TRUE(b.Test(seam));
  }
  EXPECT_EQ(b.Count(), 6u);
  EXPECT_EQ(b.chunk_count(), 4u);  // chunks 0,1,2,3 each hold a seam bit
  for (uint64_t seam = kChunk; seam <= 3 * kChunk; seam += kChunk) {
    b.Clear(seam - 1);
    b.Clear(seam);
  }
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.chunk_count(), 0u);  // all chunks freed once emptied
}

TEST(RangeBitmapTest, RangeStraddlingThreeChunks) {
  RangeBitmap b(kChunk * 4);
  // Partial first chunk, full middle chunk, partial last chunk.
  uint64_t begin = kChunk - 7;
  uint64_t end = 2 * kChunk + 9;
  b.SetRange(begin, end);
  EXPECT_EQ(b.Count(), end - begin);
  EXPECT_EQ(b.chunk_count(), 3u);
  EXPECT_FALSE(b.Test(begin - 1));
  EXPECT_TRUE(b.Test(begin));
  EXPECT_TRUE(b.Test(end - 1));
  EXPECT_FALSE(b.Test(end));
  // Clearing just the middle chunk's span frees exactly that chunk.
  b.ClearRange(kChunk, 2 * kChunk);
  EXPECT_EQ(b.chunk_count(), 2u);
  EXPECT_EQ(b.Count(), 7u + 9u);
  b.ClearRange(begin, end);
  EXPECT_EQ(b.chunk_count(), 0u);
}

TEST(RangeBitmapTest, FindNextSetAcrossChunkSeam) {
  RangeBitmap b(kChunk * 3);
  b.Set(kChunk - 1);
  b.Set(2 * kChunk);
  EXPECT_EQ(b.FindNextSet(0), std::optional<uint64_t>(kChunk - 1));
  // From exactly the seam: must skip the unallocated middle chunk.
  EXPECT_EQ(b.FindNextSet(kChunk), std::optional<uint64_t>(2 * kChunk));
  EXPECT_EQ(b.FindNextSet(2 * kChunk + 1), std::nullopt);
}

}  // namespace
}  // namespace duet
