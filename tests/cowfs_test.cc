#include "src/cowfs/cowfs.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class CowFsTest : public ::testing::Test {
 protected:
  CowFsTest() : rig_(100'000), fs_(&rig_.loop, &rig_.device, /*cache_pages=*/128) {}

  InodeNo MakeFile(const char* path, uint64_t pages) {
    return *fs_.PopulateFile(path, pages * kPageSize);
  }

  void WriteSync(InodeNo ino, ByteOff off, uint64_t len) {
    fs_.Write(ino, off, len, IoClass::kBestEffort, nullptr);
    rig_.loop.RunUntil(rig_.loop.now() + Millis(500));
  }

  void SyncAll() {
    fs_.writeback().Sync(nullptr);
    rig_.loop.Run();
  }

  SimRig rig_;
  CowFs fs_;
};

TEST_F(CowFsTest, ChecksumsValidAfterPopulate) {
  InodeNo ino = MakeFile("/f", 16);
  for (PageIdx p = 0; p < 16; ++p) {
    EXPECT_TRUE(fs_.BlockChecksumOk(*fs_.Bmap(ino, p)));
  }
}

TEST_F(CowFsTest, CorruptionDetectedOnRead) {
  InodeNo ino = MakeFile("/f", 4);
  BlockNo victim = *fs_.Bmap(ino, 2);
  fs_.CorruptBlock(victim);
  EXPECT_FALSE(fs_.BlockChecksumOk(victim));
  Status status;
  fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort,
           [&](const FsIoResult& r) { status = r.status; });
  rig_.loop.Run();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(fs_.checksum_errors_detected(), 1u);
}

TEST_F(CowFsTest, CorruptionDetectedByRawRead) {
  InodeNo ino = MakeFile("/f", 8);
  fs_.CorruptBlock(*fs_.Bmap(ino, 5));
  RawReadResult result;
  bool done = false;
  fs_.ReadRawBlocks(0, 1000, IoClass::kIdle, false, [&](const RawReadResult& r) {
    result = r;
    done = true;
  });
  rig_.loop.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.blocks_read, 8u);
  EXPECT_EQ(result.checksum_errors, 1u);
  EXPECT_EQ(result.status.code(), StatusCode::kCorruption);
}

TEST_F(CowFsTest, RawReadSkipsUnallocatedBlocks) {
  MakeFile("/f", 4);
  bool done = false;
  RawReadResult result;
  // Range far beyond any allocation.
  fs_.ReadRawBlocks(50'000, 1000, IoClass::kIdle, false, [&](const RawReadResult& r) {
    result = r;
    done = true;
  });
  rig_.loop.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.blocks_read, 0u);
  EXPECT_EQ(result.device_ops, 0u);
}

TEST_F(CowFsTest, CowWriteRelocatesBlock) {
  InodeNo ino = MakeFile("/f", 2);
  BlockNo before = *fs_.Bmap(ino, 0);
  WriteSync(ino, 0, kPageSize);
  BlockNo after = *fs_.Bmap(ino, 0);
  EXPECT_NE(before, after);
  EXPECT_FALSE(fs_.IsAllocated(before));  // old copy freed (no snapshot)
}

TEST_F(CowFsTest, RewriteOfUnflushedPageReusesBlock) {
  InodeNo ino = MakeFile("/f", 1);
  WriteSync(ino, 0, kPageSize);
  BlockNo first_cow = *fs_.Bmap(ino, 0);
  WriteSync(ino, 0, kPageSize);  // still dirty, not snapshot-shared
  EXPECT_EQ(*fs_.Bmap(ino, 0), first_cow);
}

TEST_F(CowFsTest, SnapshotPreservesOldBlocks) {
  InodeNo ino = MakeFile("/f", 4);
  BlockNo old_block = *fs_.Bmap(ino, 1);
  uint64_t old_token = fs_.DiskToken(old_block);
  Result<SnapshotId> snap = fs_.CreateSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(fs_.SharedWithSnapshot(*snap, ino, 1));

  WriteSync(ino, kPageSize, kPageSize);  // overwrite page 1
  SyncAll();

  // Sharing broken; snapshot still references the preserved old block.
  EXPECT_FALSE(fs_.SharedWithSnapshot(*snap, ino, 1));
  EXPECT_TRUE(fs_.IsAllocated(old_block));
  EXPECT_EQ(fs_.DiskToken(old_block), old_token);
  EXPECT_NE(*fs_.Bmap(ino, 1), old_block);
  const CowFs::Snapshot* s = fs_.GetSnapshot(*snap);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->files.at(ino).blocks[1], old_block);
}

TEST_F(CowFsTest, DeleteSnapshotFreesPreservedBlocks) {
  InodeNo ino = MakeFile("/f", 2);
  BlockNo old_block = *fs_.Bmap(ino, 0);
  SnapshotId snap = *fs_.CreateSnapshot();
  WriteSync(ino, 0, kPageSize);
  EXPECT_TRUE(fs_.IsAllocated(old_block));  // kept alive by the snapshot
  ASSERT_TRUE(fs_.DeleteSnapshot(snap).ok());
  EXPECT_FALSE(fs_.IsAllocated(old_block));
  EXPECT_FALSE(fs_.DeleteSnapshot(snap).ok());  // double delete
}

TEST_F(CowFsTest, DeletedFileBlocksSurviveViaSnapshot) {
  InodeNo ino = MakeFile("/f", 3);
  BlockNo b0 = *fs_.Bmap(ino, 0);
  SnapshotId snap = *fs_.CreateSnapshot();
  ASSERT_TRUE(fs_.DeleteFile(ino).ok());
  EXPECT_TRUE(fs_.IsAllocated(b0));
  const CowFs::Snapshot* s = fs_.GetSnapshot(snap);
  EXPECT_EQ(s->files.at(ino).blocks.size(), 3u);
  ASSERT_TRUE(fs_.DeleteSnapshot(snap).ok());
  EXPECT_FALSE(fs_.IsAllocated(b0));
}

TEST_F(CowFsTest, SnapshotAsyncSyncsFirst) {
  InodeNo ino = MakeFile("/f", 2);
  WriteSync(ino, 0, 2 * kPageSize);
  ASSERT_GT(fs_.cache().DirtyCount(), 0u);
  bool done = false;
  fs_.CreateSnapshotAsync([&](Result<SnapshotId> snap) {
    EXPECT_TRUE(snap.ok());
    done = true;
  });
  rig_.loop.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(fs_.cache().DirtyCount(), 0u);
}

TEST_F(CowFsTest, ExtentCountOnContiguousAndFragmentedFiles) {
  InodeNo contiguous = MakeFile("/c", 32);
  EXPECT_EQ(fs_.ExtentCount(contiguous), 1u);
  Rng rng(5);
  Result<InodeNo> frag = fs_.PopulateFragmentedFile("/frag", 32 * kPageSize, 0.5, rng);
  ASSERT_TRUE(frag.ok());
  EXPECT_GT(fs_.ExtentCount(*frag), 8u);
}

TEST_F(CowFsTest, DefragProducesContiguousFile) {
  Rng rng(7);
  InodeNo ino = *fs_.PopulateFragmentedFile("/frag", 64 * kPageSize, 0.5, rng);
  uint64_t before = fs_.ExtentCount(ino);
  ASSERT_GT(before, 4u);
  std::vector<uint64_t> tokens;
  for (PageIdx p = 0; p < 64; ++p) {
    tokens.push_back(*fs_.PageContent(ino, p));
  }
  DefragResult result;
  bool done = false;
  fs_.DefragFile(ino, IoClass::kIdle, [&](const DefragResult& r) {
    result = r;
    done = true;
  });
  rig_.loop.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.extents_before, before);
  EXPECT_LT(result.extents_after, before);
  EXPECT_LE(result.extents_after, 2u);
  EXPECT_EQ(result.pages, 64u);
  EXPECT_EQ(result.pages_written, 64u);
  // Content is preserved.
  for (PageIdx p = 0; p < 64; ++p) {
    EXPECT_EQ(*fs_.PageContent(ino, p), tokens[p]) << "page " << p;
  }
  // Old blocks freed, new ones checksummed.
  for (PageIdx p = 0; p < 64; ++p) {
    EXPECT_TRUE(fs_.BlockChecksumOk(*fs_.Bmap(ino, p)));
  }
}

TEST_F(CowFsTest, DefragSavesCachedReads) {
  Rng rng(9);
  InodeNo ino = *fs_.PopulateFragmentedFile("/frag", 32 * kPageSize, 0.4, rng);
  // Warm half the file into the cache.
  fs_.Read(ino, 0, 16 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.Run();
  DefragResult result;
  fs_.DefragFile(ino, IoClass::kIdle, [&](const DefragResult& r) { result = r; });
  rig_.loop.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.pages_from_cache, 16u);
  EXPECT_EQ(result.pages_read_disk, 16u);
}

TEST_F(CowFsTest, DefragCountsDirtyPagesAsSavedWrites) {
  InodeNo ino = MakeFile("/f", 8);
  WriteSync(ino, 0, 4 * kPageSize);  // 4 dirty pages
  DefragResult result;
  fs_.DefragFile(ino, IoClass::kIdle, [&](const DefragResult& r) { result = r; });
  rig_.loop.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.dirty_pages, 4u);
  // After defrag the file's pages are clean (transaction flushed them).
  EXPECT_EQ(fs_.cache().DirtyCount(), 0u);
}

TEST_F(CowFsTest, NextAllocatedScansPhysicalOrder) {
  InodeNo a = MakeFile("/a", 4);
  BlockNo first = *fs_.Bmap(a, 0);
  EXPECT_EQ(fs_.NextAllocated(0), first);
  EXPECT_EQ(fs_.NextAllocated(first + 100), std::nullopt);
}

TEST_F(CowFsTest, RefcountsTrackSharing) {
  InodeNo ino = MakeFile("/f", 1);
  BlockNo b = *fs_.Bmap(ino, 0);
  EXPECT_EQ(fs_.BlockRefcount(b), 1u);
  SnapshotId s1 = *fs_.CreateSnapshot();
  EXPECT_EQ(fs_.BlockRefcount(b), 2u);
  SnapshotId s2 = *fs_.CreateSnapshot();
  EXPECT_EQ(fs_.BlockRefcount(b), 3u);
  ASSERT_TRUE(fs_.DeleteSnapshot(s1).ok());
  ASSERT_TRUE(fs_.DeleteSnapshot(s2).ok());
  EXPECT_EQ(fs_.BlockRefcount(b), 1u);
}

// Regression: corrupting the disk copy of a page that is currently cached
// must not be masked forever. The cached (clean) copy may serve reads while
// it lives, but once evicted the next read goes to disk and must detect the
// corruption — and the failed read must not re-populate the cache.
TEST_F(CowFsTest, CorruptionOfCachedBlockDetectedAfterEviction) {
  InodeNo ino = MakeFile("/f", 4);
  // Warm the cache with the whole file.
  fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.Run();
  ASSERT_TRUE(fs_.cache().Contains(ino, 2));

  BlockNo victim = *fs_.Bmap(ino, 2);
  fs_.CorruptBlock(victim);

  // While cached, reads are served from the intact in-memory copy.
  Status cached_read;
  fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort,
           [&](const FsIoResult& r) { cached_read = r.status; });
  rig_.loop.Run();
  EXPECT_TRUE(cached_read.ok());
  EXPECT_EQ(fs_.checksum_errors_detected(), 0u);

  // Evict, then re-read: the disk copy must fail verification.
  ASSERT_TRUE(fs_.cache().Remove(ino, 2));
  Status disk_read;
  fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort,
           [&](const FsIoResult& r) { disk_read = r.status; });
  rig_.loop.Run();
  EXPECT_EQ(disk_read.code(), StatusCode::kCorruption);
  EXPECT_EQ(fs_.checksum_errors_detected(), 1u);
  // The corrupt content must not have been cached.
  EXPECT_FALSE(fs_.cache().Contains(ino, 2));

  // Still detectable on every later read (nothing laundered the fault).
  Status third_read;
  fs_.Read(ino, 2 * kPageSize, kPageSize, IoClass::kBestEffort,
           [&](const FsIoResult& r) { third_read = r.status; });
  rig_.loop.Run();
  EXPECT_EQ(third_read.code(), StatusCode::kCorruption);
  EXPECT_EQ(fs_.checksum_errors_detected(), 2u);
}

// RepairBlocks rewrites a corrupt block from the DUP mirror when no clean
// cached copy exists, and reports unrecoverable when both copies rotted.
TEST_F(CowFsTest, RepairBlocksUsesMirrorThenReportsUnrecoverable) {
  InodeNo ino = MakeFile("/f", 4);
  BlockNo fixable = *fs_.Bmap(ino, 1);
  BlockNo doomed = *fs_.Bmap(ino, 3);
  fs_.CorruptBlock(fixable);                     // mirror stays intact
  fs_.CorruptBlock(doomed, /*also_mirror=*/true);

  CowFs::RepairResult result;
  bool done = false;
  fs_.RepairBlocks({fixable, doomed}, IoClass::kBestEffort,
                   [&](const CowFs::RepairResult& r) {
                     result = r;
                     done = true;
                   });
  rig_.loop.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.attempted, 2u);
  EXPECT_EQ(result.repaired_from_mirror, 1u);
  EXPECT_EQ(result.unrecoverable, 1u);
  EXPECT_TRUE(fs_.BlockChecksumOk(fixable));
  EXPECT_FALSE(fs_.BlockChecksumOk(doomed));
}

}  // namespace
}  // namespace duet
