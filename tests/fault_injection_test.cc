// End-to-end error path: FaultInjector → BlockDevice → CowFs → Scrubber.
//
// Directed single-fault schedules (FaultPlan::FromEvents) pin down each leg
// of the fault lifecycle — injection, detection, repair, masking — and a
// replayed harness run checks that identical (seed, plan) inputs produce
// identical end-of-run counters.
#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "src/fault/fault_injector.h"
#include "src/harness/runner.h"
#include "src/tasks/scrubber.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : rig_(100'000, Micros(100)),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/128) {}

  InodeNo MakeFile(const char* path, uint64_t pages) {
    return *fs_.PopulateFile(path, pages * kPageSize);
  }

  // Builds an injector for a hand-authored schedule and wires it into the
  // stack (device consultation + corruption sink + allocation filter).
  void Arm(std::vector<FaultEvent> events, FaultPlanConfig config = {}) {
    injector_ = std::make_unique<FaultInjector>(
        &rig_.loop, FaultPlan::FromEvents(config, std::move(events)));
    fs_.AttachFaultInjector(injector_.get());
    injector_->Start();
  }

  void Scrub(ScrubberConfig config = {}) {
    Scrubber scrub(&fs_, nullptr, config);
    bool finished = false;
    scrub.Start([&] { finished = true; });
    rig_.loop.Run();
    ASSERT_TRUE(finished);
    scrub_repaired_ = scrub.blocks_repaired();
    scrub_unrecoverable_ = scrub.blocks_unrecoverable();
    scrub_retries_ = scrub.transient_retries();
    scrub_read_errors_ = scrub.read_errors();
    scrub_checksum_errors_ = scrub.checksum_errors();
  }

  SimRig rig_;
  CowFs fs_;
  std::unique_ptr<FaultInjector> injector_;
  uint64_t scrub_repaired_ = 0;
  uint64_t scrub_unrecoverable_ = 0;
  uint64_t scrub_retries_ = 0;
  uint64_t scrub_read_errors_ = 0;
  uint64_t scrub_checksum_errors_ = 0;
};

TEST_F(FaultInjectionTest, LatentErrorDetectedAndRepairedByScrub) {
  InodeNo ino = MakeFile("/f", 8);
  BlockNo victim = *fs_.Bmap(ino, 3);
  Arm({{.at = Millis(1), .kind = kFaultLatent, .block = victim}});
  rig_.loop.RunUntil(Millis(2));
  EXPECT_EQ(injector_->stats().injected, 1u);
  EXPECT_TRUE(injector_->HasActiveFault(victim));

  Scrub();
  const FaultStats& stats = injector_->stats();
  EXPECT_EQ(stats.detected, 1u);
  EXPECT_EQ(stats.repaired, 1u);  // the injected fault became "repaired"
  EXPECT_EQ(stats.unrecoverable, 0u);
  EXPECT_EQ(stats.Undetected(), 0u);
  EXPECT_GT(stats.read_errors, 0u);
  EXPECT_GT(stats.MeanTimeToDetectSeconds(), 0.0);
  EXPECT_EQ(scrub_repaired_, 1u);
  EXPECT_EQ(scrub_read_errors_, 1u);
  EXPECT_FALSE(injector_->HasActiveFault(victim));
  // The repaired block reads clean again.
  EXPECT_TRUE(fs_.BlockChecksumOk(victim));
}

TEST_F(FaultInjectionTest, BitRotCaughtByChecksumAndRepairedFromMirror) {
  InodeNo ino = MakeFile("/f", 8);
  BlockNo victim = *fs_.Bmap(ino, 5);
  Arm({{.at = Millis(1), .kind = kFaultBitRot, .block = victim}});
  Scrub();
  const FaultStats& stats = injector_->stats();
  EXPECT_EQ(stats.injected, 1u);
  EXPECT_EQ(stats.detected, 1u);
  EXPECT_EQ(stats.repaired, 1u);
  EXPECT_EQ(stats.read_errors, 0u);  // silent corruption: the device read "succeeded"
  EXPECT_EQ(scrub_checksum_errors_, 1u);
  EXPECT_EQ(scrub_repaired_, 1u);
  EXPECT_TRUE(fs_.BlockChecksumOk(victim));
}

TEST_F(FaultInjectionTest, RotOfBothCopiesIsUnrecoverable) {
  InodeNo ino = MakeFile("/f", 8);
  BlockNo victim = *fs_.Bmap(ino, 2);
  Arm({{.at = Millis(1), .kind = kFaultBitRot, .block = victim,
        .both_copies = true}});
  Scrub();
  const FaultStats& stats = injector_->stats();
  EXPECT_EQ(stats.detected, 1u);
  EXPECT_EQ(stats.repaired, 0u);
  EXPECT_EQ(stats.unrecoverable, 1u);
  EXPECT_EQ(scrub_unrecoverable_, 1u);
  EXPECT_TRUE(injector_->HasActiveFault(victim));
}

TEST_F(FaultInjectionTest, TornWriteAppliedOnRewriteAndRepairedByScrub) {
  InodeNo ino = MakeFile("/f", 4);
  BlockNo victim = *fs_.Bmap(ino, 0);
  Arm({{.at = Millis(1), .kind = kFaultTornWrite, .block = victim}});
  rig_.loop.RunUntil(Millis(2));
  EXPECT_EQ(injector_->stats().torn_armed, 1u);
  EXPECT_EQ(injector_->stats().injected, 0u);  // armed, nothing applied yet

  // The tear fires on the next device write that covers the armed sector.
  // (A COW overwrite relocates the page, so drive the rewrite at the device
  // layer — firmware semantics are physical-block, not file-offset.)
  IoRequest rewrite;
  rewrite.block = victim;
  rewrite.count = 1;
  rewrite.dir = IoDir::kWrite;
  rewrite.io_class = IoClass::kBestEffort;
  rig_.device.Submit(std::move(rewrite));
  rig_.loop.Run();
  ASSERT_EQ(injector_->stats().injected, 1u);
  // Checksum of the intended data, garbage on the platter.
  EXPECT_FALSE(fs_.BlockChecksumOk(victim));

  Scrub();
  const FaultStats& stats = injector_->stats();
  EXPECT_EQ(stats.detected, 1u);
  EXPECT_EQ(stats.repaired, 1u);
  EXPECT_EQ(scrub_repaired_, 1u);  // healed from the DUP mirror
  EXPECT_TRUE(fs_.BlockChecksumOk(victim));
}

TEST_F(FaultInjectionTest, FaultOnUnallocatedBlockIsSkipped) {
  MakeFile("/f", 4);
  Arm({{.at = Millis(1), .kind = kFaultLatent, .block = 90'000}});
  rig_.loop.RunUntil(Millis(2));
  EXPECT_EQ(injector_->stats().injected, 0u);
  EXPECT_EQ(injector_->stats().skipped, 1u);
}

TEST_F(FaultInjectionTest, FailedReadDoesNotPopulateCache) {
  InodeNo ino = MakeFile("/f", 4);
  BlockNo victim = *fs_.Bmap(ino, 1);
  Arm({{.at = Millis(1), .kind = kFaultLatent, .block = victim}});
  rig_.loop.RunUntil(Millis(2));

  FsIoResult result;
  fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort,
           [&](const FsIoResult& r) { result = r; });
  rig_.loop.Run();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.pages_failed, 1u);
  // Healthy pages are cached; the unread one must not be (a cached copy of
  // unverified content would mask the fault from every later reader).
  EXPECT_TRUE(fs_.cache().Contains(ino, 0));
  EXPECT_FALSE(fs_.cache().Contains(ino, 1));

  // The fault persists: a second read fails the same way.
  FsIoResult again;
  fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort,
           [&](const FsIoResult& r) { again = r; });
  rig_.loop.Run();
  EXPECT_FALSE(again.status.ok());
}

TEST_F(FaultInjectionTest, RewriteBeforeDetectionMasksFault) {
  InodeNo ino = MakeFile("/f", 4);
  Arm({{.at = Millis(1), .kind = kFaultBitRot, .block = *fs_.Bmap(ino, 0)}});
  rig_.loop.RunUntil(Millis(2));
  ASSERT_EQ(injector_->stats().injected, 1u);
  // Overwrite the whole page: the COW flush lands on a fresh block and frees
  // the corrupt one before anything read it.
  fs_.Write(ino, 0, kPageSize, IoClass::kBestEffort, nullptr);
  fs_.writeback().Sync(nullptr);
  rig_.loop.Run();
  const FaultStats& stats = injector_->stats();
  EXPECT_EQ(stats.masked, 1u);
  EXPECT_EQ(stats.detected, 0u);
  EXPECT_EQ(injector_->active_fault_count(), 0u);
}

TEST_F(FaultInjectionTest, TransientWindowRetriedByScrubber) {
  MakeFile("/f", 64);
  FaultPlanConfig config;
  config.transient_latency = Millis(5);
  config.transient_duration = Millis(50);
  Arm({{.at = Millis(1), .kind = kFaultTransient, .block = 0,
        .span = 100'000}},
      config);
  ScrubberConfig sc;
  sc.max_retries = 8;  // enough backoff budget to outlive the window
  Scrub(sc);
  const FaultStats& stats = injector_->stats();
  EXPECT_EQ(stats.transient_windows, 1u);
  EXPECT_GT(stats.transient_failures, 0u);
  EXPECT_GT(scrub_retries_, 0u);
  // Once the window passed, every block was read and verified clean.
  EXPECT_EQ(scrub_read_errors_, 0u);
  EXPECT_EQ(scrub_checksum_errors_, 0u);
}

// Satellite property: a full maintenance run under fault injection is a pure
// function of its seeds — replaying it yields byte-identical fault schedules
// AND identical end-of-run counters.
TEST(FaultReplayProperty, IdenticalRunsProduceIdenticalCounters) {
  MaintenanceRunConfig config;
  config.stack.capacity_blocks = 40'960;
  config.stack.data_bytes = 128ull * 1024 * 1024;
  config.stack.cache_pages = 656;
  config.stack.window = Seconds(6);
  config.stack.mean_file_size = 256 * 1024;
  config.tasks = {MaintKind::kScrub};
  config.use_duet = true;
  config.ops_per_sec = 40;  // fixed rate: skip calibration
  config.fault.kinds = kFaultAllKinds;
  config.fault.faults_per_second = 3.0;
  config.fault.rot_both_copies_fraction = 0.2;
  config.fault_seed = 99;

  MaintenanceRunResult a = RunMaintenance(config);
  MaintenanceRunResult b = RunMaintenance(config);

  EXPECT_GT(a.fault_stats.injected, 0u);
  EXPECT_GT(a.fault_stats.detected, 0u);
  EXPECT_NE(a.fault_fingerprint, 0u);
  EXPECT_EQ(a.fault_fingerprint, b.fault_fingerprint);

  EXPECT_EQ(a.fault_stats.injected, b.fault_stats.injected);
  EXPECT_EQ(a.fault_stats.skipped, b.fault_stats.skipped);
  EXPECT_EQ(a.fault_stats.torn_armed, b.fault_stats.torn_armed);
  EXPECT_EQ(a.fault_stats.transient_windows, b.fault_stats.transient_windows);
  EXPECT_EQ(a.fault_stats.detected, b.fault_stats.detected);
  EXPECT_EQ(a.fault_stats.repaired, b.fault_stats.repaired);
  EXPECT_EQ(a.fault_stats.masked, b.fault_stats.masked);
  EXPECT_EQ(a.fault_stats.unrecoverable, b.fault_stats.unrecoverable);
  EXPECT_EQ(a.fault_stats.read_errors, b.fault_stats.read_errors);
  EXPECT_EQ(a.fault_stats.transient_failures, b.fault_stats.transient_failures);
  EXPECT_EQ(a.fault_stats.total_detect_latency, b.fault_stats.total_detect_latency);
  EXPECT_EQ(a.scrub_repaired, b.scrub_repaired);
  EXPECT_EQ(a.scrub_unrecoverable, b.scrub_unrecoverable);
  EXPECT_EQ(a.workload_ops, b.workload_ops);

  // The strongest replay check: the structured traces — every injection,
  // detection, repair, I/O, and cache event, in order — are byte-identical.
  EXPECT_NE(a.trace_fingerprint, obs::Tracer::kFnvOffset);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);

  // And a different fault seed diverges the trace, not just the plan.
  config.fault_seed = 100;
  MaintenanceRunResult c = RunMaintenance(config);
  EXPECT_NE(c.fault_fingerprint, a.fault_fingerprint);
  EXPECT_NE(c.trace_fingerprint, a.trace_fingerprint);
}

// A different fault seed must change the schedule (no hidden coupling to the
// workload seed).
TEST(FaultReplayProperty, FaultSeedIndependentOfWorkloadSeed) {
  FaultPlanConfig config;
  config.kinds = kFaultAllKinds;
  config.faults_per_second = 4.0;
  config.window = Seconds(10);
  FaultPlan a = FaultPlan::Generate(1, config, 40'960);
  FaultPlan b = FaultPlan::Generate(2, config, 40'960);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

}  // namespace
}  // namespace duet
