// Stress tests for the merged-descriptor design at the configured maximum of
// 16 concurrent sessions (paper §4.2: one descriptor per page holds an
// N-byte flag array for up to N sessions).

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/util/format.h"
#include "src/util/rng.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class MultiSessionTest : public ::testing::Test {
 protected:
  MultiSessionTest()
      : rig_(200'000, Micros(50)), fs_(&rig_.loop, &rig_.device, 512), duet_(&fs_) {}

  SimRig rig_;
  CowFs fs_;
  DuetCore duet_;
};

TEST_F(MultiSessionTest, SixteenSessionsSeeTheSameEvents) {
  InodeNo ino = *fs_.PopulateFile("/f", 32 * kPageSize);
  std::vector<SessionId> sids;
  for (int i = 0; i < 16; ++i) {
    sids.push_back(*duet_.RegisterBlockTask(kDuetPageAdded));
  }
  fs_.Read(ino, 0, 32 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));
  for (SessionId sid : sids) {
    Result<std::vector<DuetItem>> items = duet_.Fetch(sid, 1024);
    ASSERT_TRUE(items.ok());
    EXPECT_EQ(items->size(), 32u) << "session " << sid;
  }
  // All notifications were carried by 32 merged descriptors, not 16x32.
  EXPECT_LE(duet_.descriptor_count(), 32u);
}

TEST_F(MultiSessionTest, MixedMasksAndGranularities) {
  ASSERT_TRUE(fs_.Mkdir("/a").ok());
  ASSERT_TRUE(fs_.Mkdir("/b").ok());
  InodeNo fa = *fs_.PopulateFile("/a/f", 8 * kPageSize);
  InodeNo fb = *fs_.PopulateFile("/b/f", 8 * kPageSize);
  SessionId block_added = *duet_.RegisterBlockTask(kDuetPageAdded);
  SessionId block_state = *duet_.RegisterBlockTask(kDuetPageExists);
  SessionId file_a = *duet_.RegisterFileTask("/a", kDuetPageExists);
  SessionId file_b = *duet_.RegisterFileTask("/b", kDuetPageDirtied);

  fs_.Read(fa, 0, 8 * kPageSize, IoClass::kBestEffort, nullptr);
  fs_.Write(fb, 0, 4 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Millis(500));

  auto count = [&](SessionId sid) {
    Result<std::vector<DuetItem>> items = duet_.Fetch(sid, 1024);
    EXPECT_TRUE(items.ok());
    return items.ok() ? items->size() : 0;
  };
  EXPECT_EQ(count(block_added), 12u);   // fa reads + fb write-inserted pages
  EXPECT_EQ(count(block_state), 12u);   // same pages, via the Exists state
  EXPECT_EQ(count(file_a), 8u);         // scoped to /a
  EXPECT_EQ(count(file_b), 4u);         // dirty events in /b only
}

TEST_F(MultiSessionTest, RandomizedConcurrentSessionsStayConsistent) {
  Rng rng(77);
  std::vector<InodeNo> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back(*fs_.PopulateFile(StrFormat("/f%d", i), 16 * kPageSize));
  }
  struct Live {
    SessionId sid;
    uint64_t fetched = 0;
  };
  std::vector<Live> sessions;
  for (int round = 0; round < 40; ++round) {
    uint64_t pick = rng.Uniform(10);
    if (pick < 3 && sessions.size() < 12) {
      uint8_t mask = static_cast<uint8_t>(1 + rng.Uniform(63));
      Result<SessionId> sid = duet_.RegisterBlockTask(mask);
      ASSERT_TRUE(sid.ok());
      sessions.push_back(Live{*sid});
    } else if (pick < 4 && !sessions.empty()) {
      size_t idx = rng.Uniform(sessions.size());
      ASSERT_TRUE(duet_.Deregister(sessions[idx].sid).ok());
      sessions[idx] = sessions.back();
      sessions.pop_back();
    } else if (pick < 7) {
      InodeNo ino = files[rng.Uniform(files.size())];
      fs_.Read(ino, 0, 16 * kPageSize, IoClass::kBestEffort, nullptr);
    } else {
      InodeNo ino = files[rng.Uniform(files.size())];
      fs_.Write(ino, 0, 4 * kPageSize, IoClass::kBestEffort, nullptr);
    }
    rig_.loop.RunUntil(rig_.loop.now() + Millis(rng.Uniform(30)));
    if (!sessions.empty()) {
      Live& s = sessions[rng.Uniform(sessions.size())];
      Result<std::vector<DuetItem>> items = duet_.Fetch(s.sid, 256);
      ASSERT_TRUE(items.ok());
      s.fetched += items->size();
      // Items must carry at least one flag bit and a mappable id.
      for (const DuetItem& item : *items) {
        EXPECT_NE(item.flags, 0);
        EXPECT_TRUE(fs_.Rmap(item.id).ok() || item.has(kDuetPageRemoved));
      }
    }
  }
  // Drain everything and deregister; no descriptors may leak.
  for (Live& s : sessions) {
    while (true) {
      Result<std::vector<DuetItem>> items = duet_.Fetch(s.sid, 1024);
      ASSERT_TRUE(items.ok());
      if (items->empty()) {
        break;
      }
    }
    ASSERT_TRUE(duet_.Deregister(s.sid).ok());
  }
  EXPECT_EQ(duet_.active_sessions(), 0u);
  EXPECT_EQ(duet_.descriptor_count(), 0u);
}

TEST_F(MultiSessionTest, SessionSlotsAreRecycled) {
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::vector<SessionId> sids;
    for (int i = 0; i < 16; ++i) {
      Result<SessionId> sid = duet_.RegisterBlockTask(kDuetPageAdded);
      ASSERT_TRUE(sid.ok()) << "cycle " << cycle << " session " << i;
      sids.push_back(*sid);
    }
    EXPECT_EQ(duet_.RegisterBlockTask(kDuetPageAdded).status().code(),
              StatusCode::kLimit);
    for (SessionId sid : sids) {
      ASSERT_TRUE(duet_.Deregister(sid).ok());
    }
  }
}

}  // namespace
}  // namespace duet
