#include "src/workload/filebench.h"

#include <gtest/gtest.h>

#include "src/cowfs/cowfs.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class FilebenchTest : public ::testing::Test {
 protected:
  FilebenchTest() : rig_(2'000'000, Micros(200)) {}

  WorkloadConfig BaseConfig(Personality p) {
    WorkloadConfig config;
    config.personality = p;
    config.file_count = 200;
    config.mean_file_size = 32 * 1024;
    config.seed = 7;
    return config;
  }

  SimRig rig_;
};

TEST_F(FilebenchTest, SetupPopulatesFileSet) {
  CowFs fs(&rig_.loop, &rig_.device, 1024);
  FilebenchWorkload wl(&fs, BaseConfig(Personality::kWebserver));
  ASSERT_TRUE(wl.Setup().ok());
  EXPECT_EQ(wl.covered_files(), 200u);
  EXPECT_GT(fs.allocated_blocks(), 200u);  // data exists on disk
  EXPECT_TRUE(fs.ns().Resolve("/data").ok());
  EXPECT_TRUE(fs.ns().Resolve("/weblog").ok());
}

TEST_F(FilebenchTest, CoverageLimitsTouchedFiles) {
  CowFs fs(&rig_.loop, &rig_.device, 1024);
  WorkloadConfig config = BaseConfig(Personality::kWebserver);
  config.coverage = 0.25;
  FilebenchWorkload wl(&fs, config);
  ASSERT_TRUE(wl.Setup().ok());
  EXPECT_EQ(wl.covered_files(), 50u);
  wl.Start();
  rig_.loop.RunUntil(Seconds(20));
  wl.Stop();
  // Only covered files (plus the log) may have cache pages.
  uint64_t files_touched = 0;
  fs.ns().WalkDepthFirst(fs.ns().root(), [&](const Inode& inode) {
    if (!inode.is_dir() && fs.cache().CachedPagesOfInode(inode.ino) > 0) {
      ++files_touched;
    }
    return true;
  });
  EXPECT_LE(files_touched, 51u);
  EXPECT_GT(wl.stats().ops_completed, 0u);
}

TEST_F(FilebenchTest, WebserverReadWriteRatio) {
  CowFs fs(&rig_.loop, &rig_.device, 1024);
  FilebenchWorkload wl(&fs, BaseConfig(Personality::kWebserver));
  ASSERT_TRUE(wl.Setup().ok());
  wl.Start();
  rig_.loop.RunUntil(Seconds(60));
  wl.Stop();
  const WorkloadStats& s = wl.stats();
  ASSERT_GT(s.write_ops, 0u);
  double ratio = static_cast<double>(s.read_ops) / static_cast<double>(s.write_ops);
  EXPECT_NEAR(ratio, 10.0, 2.5);
  EXPECT_EQ(s.creates, 0u);  // webserver never creates/deletes
  EXPECT_EQ(s.deletes, 0u);
}

TEST_F(FilebenchTest, WebproxyReadWriteRatio) {
  CowFs fs(&rig_.loop, &rig_.device, 1024);
  FilebenchWorkload wl(&fs, BaseConfig(Personality::kWebproxy));
  ASSERT_TRUE(wl.Setup().ok());
  wl.Start();
  rig_.loop.RunUntil(Seconds(60));
  wl.Stop();
  const WorkloadStats& s = wl.stats();
  ASSERT_GT(s.write_ops, 0u);
  double ratio = static_cast<double>(s.read_ops) / static_cast<double>(s.write_ops);
  EXPECT_NEAR(ratio, 4.0, 1.2);
}

TEST_F(FilebenchTest, FileserverIsWriteHeavy) {
  CowFs fs(&rig_.loop, &rig_.device, 1024);
  FilebenchWorkload wl(&fs, BaseConfig(Personality::kFileserver));
  ASSERT_TRUE(wl.Setup().ok());
  wl.Start();
  rig_.loop.RunUntil(Seconds(60));
  wl.Stop();
  const WorkloadStats& s = wl.stats();
  ASSERT_GT(s.read_ops, 0u);
  double ratio = static_cast<double>(s.write_ops) / static_cast<double>(s.read_ops);
  EXPECT_NEAR(ratio, 2.0, 0.6);
  EXPECT_GT(s.creates, 0u);
  EXPECT_GT(s.deletes, 0u);
}

TEST_F(FilebenchTest, ThrottleControlsOpRate) {
  CowFs fs(&rig_.loop, &rig_.device, 1024);
  WorkloadConfig config = BaseConfig(Personality::kWebserver);
  config.ops_per_sec = 20;
  FilebenchWorkload wl(&fs, config);
  ASSERT_TRUE(wl.Setup().ok());
  wl.Start();
  rig_.loop.RunUntil(Seconds(100));
  wl.Stop();
  double rate = static_cast<double>(wl.stats().ops_completed) / 100.0;
  EXPECT_NEAR(rate, 20.0, 4.0);
}

TEST_F(FilebenchTest, ThrottledRunsUseLessDevice) {
  CowFs fs_fast(&rig_.loop, &rig_.device, 1024);
  WorkloadConfig slow_cfg = BaseConfig(Personality::kWebserver);
  slow_cfg.ops_per_sec = 5;
  FilebenchWorkload slow(&fs_fast, slow_cfg);
  ASSERT_TRUE(slow.Setup().ok());
  slow.Start();
  rig_.loop.RunUntil(Seconds(50));
  slow.Stop();
  double util = rig_.device.BestEffortUtilizationSince(0, 0);
  EXPECT_LT(util, 0.5);
  EXPECT_GT(util, 0.0);
}

TEST_F(FilebenchTest, DeterministicForSameSeed) {
  uint64_t completed[2];
  for (int trial = 0; trial < 2; ++trial) {
    SimRig rig(2'000'000, Micros(200));
    CowFs fs(&rig.loop, &rig.device, 1024);
    FilebenchWorkload wl(&fs, BaseConfig(Personality::kFileserver));
    ASSERT_TRUE(wl.Setup().ok());
    wl.Start();
    rig.loop.RunUntil(Seconds(30));
    wl.Stop();
    completed[trial] = wl.stats().ops_completed;
  }
  EXPECT_EQ(completed[0], completed[1]);
}

TEST_F(FilebenchTest, SkewedPickerConcentratesAccesses) {
  // Run uniform and skewed configurations for the same (throttled) op
  // budget and compare how many distinct files each touches.
  uint64_t touched[2] = {0, 0};
  for (int trial = 0; trial < 2; ++trial) {
    SimRig rig(2'000'000, Micros(200));
    CowFs fs(&rig.loop, &rig.device, 8192);
    WorkloadConfig config = BaseConfig(Personality::kWebserver);
    config.skewed = trial == 1;
    config.ops_per_sec = 40;
    FilebenchWorkload wl(&fs, config);
    ASSERT_TRUE(wl.Setup().ok());
    wl.Start();
    rig.loop.RunUntil(Seconds(10));
    wl.Stop();
    fs.ns().WalkDepthFirst(fs.ns().root(), [&](const Inode& inode) {
      if (!inode.is_dir() && fs.cache().CachedPagesOfInode(inode.ino) > 0) {
        ++touched[trial];
      }
      return true;
    });
    EXPECT_GT(wl.stats().ops_completed, 200u);
  }
  // The skewed (MS-trace-like, Fig. 1) picker concentrates accesses on far
  // fewer files than the uniform default.
  EXPECT_LT(touched[1], touched[0] * 3 / 4);
}

}  // namespace
}  // namespace duet
