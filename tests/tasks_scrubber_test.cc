#include "src/tasks/scrubber.h"

#include <gtest/gtest.h>

#include "src/duet/duet_core.h"
#include "src/util/format.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class ScrubberTest : public ::testing::Test {
 protected:
  ScrubberTest()
      : rig_(1'000'000, Micros(100)),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/512),
        duet_(&fs_) {}

  void Populate(int files, uint64_t pages_each) {
    for (int i = 0; i < files; ++i) {
      ASSERT_TRUE(fs_.PopulateFile(StrFormat("/f%d", i), pages_each * kPageSize).ok());
    }
  }

  SimRig rig_;
  CowFs fs_;
  DuetCore duet_;
};

TEST_F(ScrubberTest, BaselineScrubsAllAllocatedBlocks) {
  Populate(10, 64);
  Scrubber scrub(&fs_, nullptr, ScrubberConfig{});
  bool finished = false;
  scrub.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(scrub.stats().io_read_pages, 640u);
  EXPECT_EQ(scrub.stats().work_done, 640u);
  EXPECT_EQ(scrub.stats().work_total, 640u);
  EXPECT_EQ(scrub.checksum_errors(), 0u);
  EXPECT_TRUE(scrub.stats().finished);
}

TEST_F(ScrubberTest, DetectsInjectedCorruption) {
  Populate(4, 16);
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  fs_.CorruptBlock(*fs_.Bmap(f0, 3));
  fs_.CorruptBlock(*fs_.Bmap(f0, 9));
  Scrubber scrub(&fs_, nullptr, ScrubberConfig{});
  scrub.Start();
  rig_.loop.Run();
  EXPECT_EQ(scrub.checksum_errors(), 2u);
}

TEST_F(ScrubberTest, ScrubUsesIdlePriority) {
  Populate(4, 32);
  Scrubber scrub(&fs_, nullptr, ScrubberConfig{});
  scrub.Start();
  rig_.loop.Run();
  EXPECT_GT(rig_.device.stats().TotalOps(IoClass::kIdle), 0u);
  EXPECT_EQ(rig_.device.stats().TotalOps(IoClass::kBestEffort), 0u);
}

TEST_F(ScrubberTest, DuetSkipsBlocksVerifiedByReads) {
  Populate(10, 64);
  // Warm 3 files into the cache via the read path (which verifies them).
  for (int i = 0; i < 3; ++i) {
    InodeNo ino = *fs_.ns().Resolve(StrFormat("/f%d", i));
    fs_.Read(ino, 0, 64 * kPageSize, IoClass::kBestEffort, nullptr);
  }
  rig_.loop.RunUntil(Seconds(2));

  ScrubberConfig config;
  config.use_duet = true;
  Scrubber scrub(&fs_, &duet_, config);
  bool finished = false;
  scrub.Start([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  // 3 * 64 = 192 blocks were already verified by the reads.
  EXPECT_EQ(scrub.stats().saved_read_pages, 192u);
  EXPECT_EQ(scrub.stats().io_read_pages, 640u - 192u);
  // Full coverage: every block either read by the scrubber or verified by
  // the file-system read path.
  EXPECT_EQ(scrub.stats().work_done, 640u);
}

TEST_F(ScrubberTest, DuetConcurrentReadsSaveWork) {
  Populate(20, 64);
  ScrubberConfig config;
  config.use_duet = true;
  config.chunk_blocks = 8;  // slow scan so the reads below overlap it
  Scrubber scrub(&fs_, &duet_, config);
  bool finished = false;
  scrub.Start([&] { finished = true; });
  // While scrubbing runs (idle priority), the "workload" reads files at
  // best-effort priority, verifying them ahead of the scrubber's cursor.
  for (int i = 10; i < 20; ++i) {
    InodeNo ino = *fs_.ns().Resolve(StrFormat("/f%d", i));
    rig_.loop.ScheduleAt(Micros(static_cast<uint64_t>(100 * i)), [this, ino] {
      fs_.Read(ino, 0, 64 * kPageSize, IoClass::kBestEffort, nullptr);
    });
  }
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_GT(scrub.stats().saved_read_pages, 0u);
  EXPECT_EQ(scrub.stats().work_done, scrub.stats().work_total);
  EXPECT_LT(scrub.stats().io_read_pages, scrub.stats().work_total);
}

TEST_F(ScrubberTest, DuetRescrubsDirtiedBlocksBeforeCursor) {
  Populate(2, 128);
  InodeNo f1 = *fs_.ns().Resolve("/f1");
  // Read f1 fully: all its blocks become "verified".
  fs_.Read(f1, 0, 128 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Seconds(1));
  // Dirty 16 pages of f1: their new blocks must be re-verified.
  fs_.Write(f1, 0, 16 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(Seconds(1) + Millis(500));

  ScrubberConfig config;
  config.use_duet = true;
  Scrubber scrub(&fs_, &duet_, config);
  scrub.Start();
  rig_.loop.Run();
  // 128 - 16 of f1's blocks skipped; f0's 128 and f1's 16 rewritten must be
  // read. (The rewritten blocks were dirtied before registration; the
  // registration scan marks them dirty, clearing their done state.)
  EXPECT_EQ(scrub.stats().saved_read_pages, 112u);
  EXPECT_EQ(scrub.stats().io_read_pages, 128u + 16u);
}

TEST_F(ScrubberTest, StopHaltsScan) {
  Populate(10, 256);
  ScrubberConfig config;
  config.chunk_blocks = 16;  // 160 chunks: the 5 ms window cuts the scan short
  Scrubber scrub(&fs_, nullptr, config);
  scrub.Start();
  rig_.loop.RunUntil(Millis(5));
  scrub.Stop();
  rig_.loop.Run();
  EXPECT_FALSE(scrub.stats().finished);
  EXPECT_LT(scrub.stats().work_done, scrub.stats().work_total);
}

}  // namespace
}  // namespace duet
