#include "src/tasks/incremental_backup.h"

#include <gtest/gtest.h>

#include "src/duet/duet_core.h"
#include "src/util/format.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class IncrementalBackupTest : public ::testing::Test {
 protected:
  IncrementalBackupTest()
      : rig_(1'000'000, Micros(100)),
        fs_(&rig_.loop, &rig_.device, /*cache_pages=*/512),
        duet_(&fs_) {}

  void Populate(int files, uint64_t pages_each) {
    for (int i = 0; i < files; ++i) {
      ASSERT_TRUE(fs_.PopulateFile(StrFormat("/f%d", i), pages_each * kPageSize).ok());
    }
  }

  void WriteAndSettle(InodeNo ino, ByteOff off, uint64_t len) {
    fs_.Write(ino, off, len, IoClass::kBestEffort, nullptr);
    rig_.loop.RunUntil(rig_.loop.now() + Millis(100));
  }

  void SettleAndFlush() {
    fs_.writeback().Sync(nullptr);
    rig_.loop.RunUntil(rig_.loop.now() + Seconds(1));
  }

  SimRig rig_;
  CowFs fs_;
  DuetCore duet_;
};

TEST_F(IncrementalBackupTest, BaselineCapturesExactlyTheDiff) {
  Populate(4, 16);
  IncrementalBackup inc(&fs_, nullptr, IncrementalBackupConfig{});
  inc.BeginEpoch();
  rig_.loop.RunUntil(Millis(100));
  // Modify 5 pages of f0 and 3 pages of f2.
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  InodeNo f2 = *fs_.ns().Resolve("/f2");
  WriteAndSettle(f0, 0, 5 * kPageSize);
  WriteAndSettle(f2, 4 * kPageSize, 3 * kPageSize);
  bool finished = false;
  inc.EndEpoch([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(inc.stats().work_total, 8u);
  EXPECT_EQ(inc.stats().io_read_pages, 8u);  // baseline reads every changed page
  EXPECT_EQ(inc.stats().saved_read_pages, 0u);
  EXPECT_TRUE(inc.IncrementComplete());
}

TEST_F(IncrementalBackupTest, NoChangesMeansEmptyIncrement) {
  Populate(2, 8);
  IncrementalBackup inc(&fs_, nullptr, IncrementalBackupConfig{});
  inc.BeginEpoch();
  rig_.loop.RunUntil(Millis(100));
  bool finished = false;
  inc.EndEpoch([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(inc.stats().work_total, 0u);
  EXPECT_EQ(inc.stats().io_read_pages, 0u);
  EXPECT_TRUE(inc.IncrementComplete());
}

TEST_F(IncrementalBackupTest, DuetCapturesFlushedPagesFromMemory) {
  Populate(4, 16);
  IncrementalBackupConfig config;
  config.use_duet = true;
  IncrementalBackup inc(&fs_, &duet_, config);
  inc.BeginEpoch();
  rig_.loop.RunUntil(Millis(100));
  InodeNo f1 = *fs_.ns().Resolve("/f1");
  WriteAndSettle(f1, 0, 8 * kPageSize);
  SettleAndFlush();  // flush -> ¬Modified notifications -> in-memory capture
  rig_.loop.RunUntil(rig_.loop.now() + Millis(100));  // let the poller drain
  EXPECT_GT(inc.stats().opportunistic_units, 0u);
  bool finished = false;
  inc.EndEpoch([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(inc.stats().work_total, 8u);
  EXPECT_EQ(inc.stats().saved_read_pages, 8u);  // all captured from memory
  EXPECT_EQ(inc.stats().io_read_pages, 0u);
  EXPECT_TRUE(inc.IncrementComplete());
}

TEST_F(IncrementalBackupTest, RewrittenPageCapturedWithFinalContent) {
  Populate(1, 4);
  IncrementalBackupConfig config;
  config.use_duet = true;
  IncrementalBackup inc(&fs_, &duet_, config);
  inc.BeginEpoch();
  rig_.loop.RunUntil(Millis(100));
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  // Write, flush, write again, flush again: the increment must hold the
  // final content.
  WriteAndSettle(f0, 0, kPageSize);
  SettleAndFlush();
  rig_.loop.RunUntil(rig_.loop.now() + Millis(100));
  WriteAndSettle(f0, 0, kPageSize);
  SettleAndFlush();
  rig_.loop.RunUntil(rig_.loop.now() + Millis(100));
  bool finished = false;
  inc.EndEpoch([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_TRUE(inc.IncrementComplete());
  EXPECT_EQ(inc.stats().work_total, 1u);
}

TEST_F(IncrementalBackupTest, EvictedChangesFallBackToDiskReads) {
  Populate(2, 16);
  IncrementalBackupConfig config;
  config.use_duet = true;
  IncrementalBackup inc(&fs_, &duet_, config);
  inc.BeginEpoch();
  rig_.loop.RunUntil(Millis(100));
  InodeNo f0 = *fs_.ns().Resolve("/f0");
  WriteAndSettle(f0, 0, 4 * kPageSize);
  SettleAndFlush();
  rig_.loop.RunUntil(rig_.loop.now() + Millis(100));
  // Evict everything: the opportunistic captures stand, but pretend some
  // were missed by dropping them via cache churn before the poller ran.
  fs_.cache().RemoveInode(f0);
  WriteAndSettle(f0, 8 * kPageSize, 2 * kPageSize);  // 2 more changed pages
  // Evict before flush notification can be used: force-sync then evict fast.
  fs_.writeback().Sync(nullptr);
  rig_.loop.RunUntil(rig_.loop.now() + Millis(1));
  fs_.cache().RemoveInode(f0);
  bool finished = false;
  inc.EndEpoch([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(inc.stats().work_total, 6u);
  EXPECT_TRUE(inc.IncrementComplete());  // correctness regardless of hints
}

TEST_F(IncrementalBackupTest, CreatedFileIsPartOfIncrement) {
  Populate(1, 4);
  IncrementalBackup inc(&fs_, nullptr, IncrementalBackupConfig{});
  inc.BeginEpoch();
  rig_.loop.RunUntil(Millis(100));
  InodeNo fresh = *fs_.CreateFile("/new");
  fs_.Write(fresh, 0, 6 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.RunUntil(rig_.loop.now() + Millis(100));
  bool finished = false;
  inc.EndEpoch([&] { finished = true; });
  rig_.loop.Run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(inc.stats().work_total, 6u);
  EXPECT_TRUE(inc.IncrementComplete());
}

}  // namespace
}  // namespace duet
