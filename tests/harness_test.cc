#include <gtest/gtest.h>

#include "src/harness/calibrate.h"
#include "src/harness/runner.h"

namespace duet {
namespace {

// A tiny stack so each run takes milliseconds of wall time.
StackConfig TinyStack() {
  StackConfig stack;
  stack.capacity_blocks = 40'960;               // 160 MiB device
  stack.data_bytes = 128ull * 1024 * 1024;      // 128 MiB data
  stack.cache_pages = 656;                      // ~2%
  stack.window = Seconds(6);
  stack.mean_file_size = 256 * 1024;
  return stack;
}

TEST(CalibrateTest, MeasureUtilizationRespondsToRate) {
  StackConfig stack = TinyStack();
  WorkloadConfig slow = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                           false, 20, 1);
  WorkloadConfig fast = slow;
  fast.ops_per_sec = 120;
  double u_slow = MeasureUtilization(stack, slow, Seconds(8));
  double u_fast = MeasureUtilization(stack, fast, Seconds(8));
  EXPECT_GT(u_slow, 0.0);
  EXPECT_GT(u_fast, u_slow);
  EXPECT_LE(u_fast, 1.0);
}

TEST(CalibrateTest, CalibrateRateHitsTarget) {
  StackConfig stack = TinyStack();
  WorkloadConfig base = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                           false, 0, 1);
  CalibratedRate rate = CalibrateRate(stack, base, 0.4, Seconds(8));
  ASSERT_FALSE(rate.unthrottled);
  EXPECT_NEAR(rate.achieved_util, 0.4, 0.05);
  // Verify independently.
  base.ops_per_sec = rate.ops_per_sec;
  EXPECT_NEAR(MeasureUtilization(stack, base, Seconds(8)), 0.4, 0.08);
}

TEST(CalibrateTest, ZeroTargetMeansNoWorkload) {
  StackConfig stack = TinyStack();
  WorkloadConfig base = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                           false, 0, 1);
  CalibratedRate rate = CalibrateRate(stack, base, 0.0);
  EXPECT_EQ(rate.ops_per_sec, 0);
  EXPECT_FALSE(rate.unthrottled);
}

TEST(CalibrateTest, UnreachableTargetReportsUnthrottled) {
  StackConfig stack = TinyStack();
  WorkloadConfig base = MakeWorkloadConfig(stack, Personality::kWebserver, 1.0,
                                           false, 0, 1);
  CalibratedRate rate = CalibrateRate(stack, base, 0.9999, Seconds(6));
  EXPECT_TRUE(rate.unthrottled);
  EXPECT_GT(rate.achieved_util, 0.5);
}

TEST(RunnerTest, IdleBaselineScrubCompletes) {
  MaintenanceRunConfig config;
  config.stack = TinyStack();
  config.target_util = 0;
  config.tasks = {MaintKind::kScrub};
  config.use_duet = false;
  MaintenanceRunResult result = RunMaintenance(config);
  ASSERT_EQ(result.task_stats.size(), 1u);
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.IoSavedFraction(), 0);
  EXPECT_DOUBLE_EQ(result.WorkCompletedFraction(), 1.0);
  EXPECT_EQ(result.workload_ops, 0u);
}

TEST(RunnerTest, DuetSavesUnderWorkload) {
  MaintenanceRunConfig config;
  config.stack = TinyStack();
  config.target_util = 0.5;
  config.tasks = {MaintKind::kScrub};
  config.seed = 3;

  config.use_duet = false;
  MaintenanceRunResult baseline = RunMaintenance(config);
  config.use_duet = true;
  MaintenanceRunResult with_duet = RunMaintenance(config);

  EXPECT_EQ(baseline.IoSavedFraction(), 0);
  EXPECT_GT(with_duet.IoSavedFraction(), 0.02);
  // Duet performs strictly less maintenance I/O.
  EXPECT_LT(with_duet.TotalTaskIo(), baseline.TotalTaskIo() + 1);
}

TEST(RunnerTest, ConcurrentTasksCollaborateWhenIdle) {
  MaintenanceRunConfig config;
  config.stack = TinyStack();
  config.target_util = 0;  // no foreground workload at all
  config.tasks = {MaintKind::kScrub, MaintKind::kBackup};
  config.use_duet = true;
  MaintenanceRunResult result = RunMaintenance(config);
  // One pass over the shared data serves both tasks (paper Fig. 5).
  EXPECT_GT(result.IoSavedFraction(), 0.35);
  EXPECT_TRUE(result.all_finished);
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  MaintenanceRunConfig config;
  config.stack = TinyStack();
  config.target_util = 0.3;
  config.ops_per_sec = 40;  // fixed rate: skip calibration
  config.tasks = {MaintKind::kScrub};
  config.use_duet = true;
  MaintenanceRunResult a = RunMaintenance(config);
  MaintenanceRunResult b = RunMaintenance(config);
  EXPECT_EQ(a.TotalTaskIo(), b.TotalTaskIo());
  EXPECT_EQ(a.workload_ops, b.workload_ops);
  EXPECT_EQ(a.task_stats[0].saved_read_pages, b.task_stats[0].saved_read_pages);
}

TEST(RunnerTest, RsyncDuetNoSlowerThanBaseline) {
  StackConfig stack = TinyStack();
  RsyncRunResult baseline =
      RunRsync(stack, Personality::kWebserver, 1.0, false, false, 5);
  RsyncRunResult with_duet =
      RunRsync(stack, Personality::kWebserver, 1.0, false, true, 5);
  ASSERT_TRUE(baseline.finished);
  ASSERT_TRUE(with_duet.finished);
  EXPECT_LE(with_duet.runtime, baseline.runtime);
  EXPECT_GT(with_duet.stats.saved_read_pages, 0u);
}

TEST(RunnerTest, GcRunProducesCleanings) {
  StackConfig stack = TinyStack();
  GcRunResult result = RunGc(stack, 0.5, /*use_duet=*/true, 9, /*ops_per_sec=*/60);
  EXPECT_GT(result.segments_cleaned, 0u);
  EXPECT_GT(result.cleaning_time_ms.count(), 0u);
}

TEST(RunnerTest, FindMaxUtilizationMonotoneResult) {
  MaintenanceRunConfig config;
  config.stack = TinyStack();
  config.tasks = {MaintKind::kScrub};
  config.use_duet = false;
  double base_max = FindMaxUtilization(config, /*step=*/0.25);
  EXPECT_GE(base_max, 0.0);
  EXPECT_LE(base_max, 1.0);
}

}  // namespace
}  // namespace duet
