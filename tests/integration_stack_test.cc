// Randomized full-stack churn with invariant checking: file operations,
// snapshots, defragmentation, cache pressure, and Duet sessions all running
// against one cowfs/logfs instance, with structural invariants verified
// after every burst of activity.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/cowfs/cowfs.h"
#include "src/duet/duet_core.h"
#include "src/logfs/logfs.h"
#include "src/obs/obs.h"
#include "src/tasks/scrubber.h"
#include "src/util/format.h"
#include "src/util/rng.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

// ---- cowfs invariants ----

// Every allocated block's refcount equals the number of live-file mappings
// plus snapshot references pointing at it; allocated_blocks() is consistent.
void CheckCowFsInvariants(CowFs& fs, const std::vector<SnapshotId>& snapshots) {
  std::map<BlockNo, uint32_t> expected_refs;
  fs.ns().ForEachInode([&](const Inode& inode) {
    if (inode.is_dir()) {
      return;
    }
    for (PageIdx p = 0; p < inode.PageCount(); ++p) {
      Result<BlockNo> block = fs.Bmap(inode.ino, p);
      ASSERT_TRUE(block.ok()) << "hole in live file " << inode.ino << " page " << p;
      ++expected_refs[*block];
      // Reverse map must agree with the forward map.
      Result<FileSystem::BlockOwner> owner = fs.Rmap(*block);
      ASSERT_TRUE(owner.ok());
      EXPECT_EQ(owner->ino, inode.ino);
      EXPECT_EQ(owner->idx, p);
    }
  });
  for (SnapshotId id : snapshots) {
    const CowFs::Snapshot* snap = fs.GetSnapshot(id);
    ASSERT_NE(snap, nullptr);
    for (const auto& [ino, file] : snap->files) {
      for (BlockNo block : file.blocks) {
        if (block != kInvalidBlock) {
          ++expected_refs[block];
        }
      }
    }
  }
  uint64_t allocated = 0;
  for (const auto& [block, refs] : expected_refs) {
    EXPECT_TRUE(fs.IsAllocated(block)) << "block " << block;
    EXPECT_EQ(fs.BlockRefcount(block), refs) << "block " << block;
    ++allocated;
  }
  EXPECT_EQ(fs.allocated_blocks(), allocated);
}

// After a full sync, every allocated block's checksum verifies and every
// page's content matches the disk.
void CheckChecksumIntegrity(CowFs& fs) {
  fs.ns().ForEachInode([&](const Inode& inode) {
    if (inode.is_dir()) {
      return;
    }
    for (PageIdx p = 0; p < inode.PageCount(); ++p) {
      BlockNo block = *fs.Bmap(inode.ino, p);
      EXPECT_TRUE(fs.BlockChecksumOk(block))
          << "ino " << inode.ino << " page " << p;
    }
  });
}

TEST(IntegrationStackTest, CowFsSurvivesRandomChurn) {
  Rng rng(101);
  SimRig rig(400'000, Micros(50));
  CowFs fs(&rig.loop, &rig.device, /*cache_pages=*/256);
  DuetCore duet(&fs);
  // A couple of passive sessions so hook paths run throughout.
  SessionId block_sid = *duet.RegisterBlockTask(kDuetPageExists | kDuetPageModified);
  SessionId file_sid = *duet.RegisterFileTask("/", kDuetPageAdded | kDuetPageDirtied);

  std::vector<InodeNo> files;
  std::vector<SnapshotId> snapshots;
  for (int i = 0; i < 30; ++i) {
    files.push_back(*fs.PopulateFile(StrFormat("/f%d", i),
                                     (1 + rng.Uniform(24)) * kPageSize));
  }

  for (int round = 0; round < 25; ++round) {
    // A burst of random operations.
    for (int op = 0; op < 20; ++op) {
      uint64_t pick = rng.Uniform(100);
      if (pick < 35 && !files.empty()) {  // read
        InodeNo ino = files[rng.Uniform(files.size())];
        const Inode* inode = fs.ns().Get(ino);
        fs.Read(ino, 0, inode->size, IoClass::kBestEffort, nullptr);
      } else if (pick < 65 && !files.empty()) {  // overwrite / append
        InodeNo ino = files[rng.Uniform(files.size())];
        const Inode* inode = fs.ns().Get(ino);
        uint64_t len = std::min<uint64_t>(inode->size, 4 * kPageSize);
        if (rng.Chance(0.5)) {
          fs.Write(ino, 0, std::max<uint64_t>(len, 1), IoClass::kBestEffort, nullptr);
        } else {
          fs.Append(ino, kPageSize, IoClass::kBestEffort, nullptr);
        }
      } else if (pick < 75) {  // create
        Result<InodeNo> fresh = fs.PopulateFile(
            StrFormat("/n%d_%d", round, op), (1 + rng.Uniform(8)) * kPageSize);
        if (fresh.ok()) {
          files.push_back(*fresh);
        }
      } else if (pick < 82 && files.size() > 5) {  // delete
        size_t idx = rng.Uniform(files.size());
        ASSERT_TRUE(fs.DeleteFile(files[idx]).ok());
        files[idx] = files.back();
        files.pop_back();
      } else if (pick < 88 && !files.empty()) {  // defrag
        InodeNo ino = files[rng.Uniform(files.size())];
        fs.DefragFile(ino, IoClass::kIdle, [](const DefragResult&) {});
      } else if (pick < 93 && snapshots.size() < 3) {  // snapshot
        fs.CreateSnapshotAsync([&](Result<SnapshotId> snap) {
          if (snap.ok()) {
            snapshots.push_back(*snap);
          }
        });
      } else if (!snapshots.empty()) {  // drop a snapshot
        size_t idx = rng.Uniform(snapshots.size());
        ASSERT_TRUE(fs.DeleteSnapshot(snapshots[idx]).ok());
        snapshots[idx] = snapshots.back();
        snapshots.pop_back();
      }
      rig.loop.RunUntil(rig.loop.now() + Millis(rng.Uniform(20)));
    }
    // Drain Duet sessions occasionally (keeps descriptor churn realistic).
    if (round % 3 == 0) {
      (void)duet.Fetch(block_sid, 4096);
      (void)duet.Fetch(file_sid, 4096);
    }
    rig.loop.RunUntil(rig.loop.now() + Millis(200));
    CheckCowFsInvariants(fs, snapshots);
    // Cache invariants.
    EXPECT_LE(fs.cache().DirtyCount(), fs.cache().PageCount());
  }

  // Quiesce and verify end-to-end integrity.
  fs.writeback().Sync(nullptr);
  rig.loop.Run();
  EXPECT_EQ(fs.cache().DirtyCount(), 0u);
  CheckChecksumIntegrity(fs);
  CheckCowFsInvariants(fs, snapshots);
  EXPECT_EQ(fs.checksum_errors_detected(), 0u);
}

// ---- logfs invariants ----

void CheckLogFsInvariants(LogFs& fs) {
  // Sum of per-segment valid counts equals allocated blocks, and every live
  // file mapping points at a valid block owned by that page.
  uint64_t valid_total = 0;
  for (SegmentNo s = 0; s < fs.segment_count(); ++s) {
    const SegmentInfo& info = fs.segment(s);
    EXPECT_LE(info.valid, info.written);
    EXPECT_LE(info.written, fs.segment_blocks());
    valid_total += info.valid;
    for (BlockNo b : fs.ValidBlocksOf(s)) {
      Result<FileSystem::BlockOwner> owner = fs.Rmap(b);
      ASSERT_TRUE(owner.ok()) << "valid block " << b << " without owner";
      Result<BlockNo> mapped = fs.Bmap(owner->ino, owner->idx);
      ASSERT_TRUE(mapped.ok());
      EXPECT_EQ(*mapped, b);
    }
  }
  EXPECT_EQ(valid_total, fs.allocated_blocks());
  uint64_t mapped_total = 0;
  fs.ns().ForEachInode([&](const Inode& inode) {
    if (!inode.is_dir()) {
      for (PageIdx p = 0; p < inode.PageCount(); ++p) {
        Result<BlockNo> block = fs.Bmap(inode.ino, p);
        ASSERT_TRUE(block.ok());
        EXPECT_TRUE(fs.BlockValid(*block));
        ++mapped_total;
      }
    }
  });
  EXPECT_EQ(mapped_total, valid_total);
}

TEST(IntegrationStackTest, LogFsSurvivesChurnAndCleaning) {
  Rng rng(202);
  SimRig rig(32'768, Micros(50));
  LogFs fs(&rig.loop, &rig.device, /*cache_pages=*/256, /*segment_blocks=*/64);
  std::vector<InodeNo> files;
  for (int i = 0; i < 12; ++i) {
    files.push_back(*fs.PopulateFile(StrFormat("/f%d", i), 24 * kPageSize));
  }
  // Record content so we can verify preservation across cleaning.
  auto content_of = [&](InodeNo ino) {
    std::vector<uint64_t> tokens;
    const Inode* inode = fs.ns().Get(ino);
    for (PageIdx p = 0; p < inode->PageCount(); ++p) {
      tokens.push_back(*fs.PageContent(ino, p));
    }
    return tokens;
  };

  for (int round = 0; round < 20; ++round) {
    for (int op = 0; op < 10; ++op) {
      InodeNo ino = files[rng.Uniform(files.size())];
      const Inode* inode = fs.ns().Get(ino);
      uint64_t pages = 1 + rng.Uniform(8);
      ByteOff off = rng.Uniform(inode->PageCount()) * kPageSize;
      fs.Write(ino, off, pages * kPageSize, IoClass::kBestEffort, nullptr);
      rig.loop.RunUntil(rig.loop.now() + Millis(rng.Uniform(10)));
    }
    // Clean the best victim, if any.
    auto victim = fs.SelectVictim(0, fs.segment_count(),
                                  [&](SegmentNo, const SegmentInfo& info) {
                                    return GcCostBaseline(info, fs.segment_blocks(),
                                                          rig.loop.now());
                                  });
    if (victim.has_value()) {
      std::map<InodeNo, std::vector<uint64_t>> before;
      for (InodeNo ino : files) {
        before[ino] = content_of(ino);
      }
      bool done = false;
      fs.CleanSegment(*victim, IoClass::kBestEffort, [&](const CleanResult& r) {
        EXPECT_TRUE(r.status.ok()) << r.status.ToString();
        done = true;
      });
      rig.loop.RunUntil(rig.loop.now() + Seconds(2));
      ASSERT_TRUE(done);
      // Cleaning must not change any file's content.
      for (InodeNo ino : files) {
        EXPECT_EQ(content_of(ino), before[ino]) << "ino " << ino;
      }
    }
    CheckLogFsInvariants(fs);
  }
  fs.writeback().Sync(nullptr);
  rig.loop.Run();
  CheckLogFsInvariants(fs);
}

// Registry conservation laws: after churn + a completed scrub + a full sync,
// the metric counters must balance exactly — every page added was removed or
// is still resident, every dirtying was flushed or left with its page, and
// Duet's delivery pipeline accounts for every event.
TEST(IntegrationStackTest, MetricsConservationLawsAtQuiescence) {
  obs::ObsContext ctx;
  obs::ObsScope scope(&ctx);
  Rng rng(303);
  SimRig rig(200'000, Micros(50));
  // Small cache so eviction paths run during the churn.
  CowFs fs(&rig.loop, &rig.device, /*cache_pages=*/128);
  DuetCore duet(&fs);
  SessionId sid = *duet.RegisterBlockTask(kDuetPageExists | kDuetPageModified);

  std::vector<InodeNo> files;
  for (int i = 0; i < 15; ++i) {
    files.push_back(*fs.PopulateFile(StrFormat("/f%d", i),
                                     (4 + rng.Uniform(20)) * kPageSize));
  }
  for (int op = 0; op < 150; ++op) {
    uint64_t pick = rng.Uniform(100);
    InodeNo ino = files[rng.Uniform(files.size())];
    if (pick < 45) {
      const Inode* inode = fs.ns().Get(ino);
      fs.Read(ino, 0, inode->size, IoClass::kBestEffort, nullptr);
    } else if (pick < 85) {
      fs.Write(ino, 0, 2 * kPageSize, IoClass::kBestEffort, nullptr);
    } else if (pick < 92 && files.size() > 5) {
      // Deleting dirty files exercises the removed_dirty leg of the law.
      auto it = std::find(files.begin(), files.end(), ino);
      ASSERT_TRUE(fs.DeleteFile(ino).ok());
      *it = files.back();
      files.pop_back();
    } else {
      (void)duet.Fetch(sid, 256);
    }
    rig.loop.RunUntil(rig.loop.now() + Millis(rng.Uniform(10)));
  }

  // A full Duet scrub pass, run to completion with nothing else going on.
  ScrubberConfig sc;
  sc.use_duet = true;
  Scrubber scrub(&fs, &duet, sc);
  bool finished = false;
  scrub.Start([&] { finished = true; });
  rig.loop.Run();
  ASSERT_TRUE(finished);

  // Quiesce: flush every dirty page.
  fs.writeback().Sync(nullptr);
  rig.loop.Run();
  ASSERT_EQ(fs.cache().DirtyCount(), 0u);

  obs::MetricsSnapshot snap = ctx.metrics.Snapshot();
  // Page conservation: every page ever added was removed or is resident.
  EXPECT_EQ(snap.Value("cache.added"),
            snap.Value("cache.removed") + fs.cache().PageCount());
  // Dirty conservation (no dirty residents after sync): every clean->dirty
  // transition was either flushed or carried out with its page.
  EXPECT_EQ(snap.Value("cache.dirtied"),
            snap.Value("cache.flushed") + snap.Value("cache.removed_dirty"));
  // Evictions are a subset of removals.
  EXPECT_LE(snap.Value("cache.evictions"), snap.Value("cache.removed"));
  EXPECT_GT(snap.Value("cache.evictions"), 0u);  // the small cache did evict

  // Duet pipeline accounting: the registry mirrors DuetStats exactly, drops
  // are explicit, and fetch merging can only shrink the delivered stream.
  EXPECT_EQ(snap.Value("duet.hooks"), duet.stats().hook_invocations);
  EXPECT_EQ(snap.Value("duet.events.delivered"), duet.stats().descriptor_updates);
  EXPECT_EQ(snap.Value("duet.events.dropped"), duet.stats().events_dropped);
  EXPECT_EQ(snap.Value("duet.items.fetched"), duet.stats().items_fetched);
  EXPECT_LE(snap.Value("duet.items.fetched"), snap.Value("duet.events.delivered"));

  // Scrub coverage: the finished pass verified (read or free-rode) every
  // allocated block it set out to cover.
  const TaskStats& s = scrub.stats();
  EXPECT_TRUE(s.finished);
  EXPECT_EQ(s.work_done, s.work_total);
  EXPECT_GE(s.io_read_pages + s.saved_read_pages, s.work_total);
  EXPECT_EQ(snap.Value("tasks.scrub.started"), 1u);
  EXPECT_EQ(snap.Value("tasks.scrub.finished"), 1u);
}

// Crash a churning cowfs stack mid-flight, rebuild over the surviving durable
// image, and require that every structural and quiescence invariant the
// uncrashed churn tests enforce also holds on the recovered instance — and
// keeps holding through further churn and a fresh superblock commit.
TEST(IntegrationStackTest, CowFsInvariantsHoldAfterCrashRecovery) {
  DurableImage image(100'000);
  {
    SimRig rig(100'000, Micros(50));
    CowFs fs(&rig.loop, &rig.device, /*cache_pages=*/128);
    fs.AttachDurableImage(&image);
    std::vector<InodeNo> files;
    for (int i = 0; i < 16; ++i) {
      files.push_back(*fs.PopulateFile(StrFormat("/f%d", i), 8 * kPageSize));
    }
    fs.SnapshotToDurable();
    bool committed = false;
    fs.Checkpoint([&] { committed = true; });
    rig.loop.Run();
    ASSERT_TRUE(committed);

    // Churn with a sync mid-stream, then pull the plug with writes and a
    // barrier still in flight.
    Rng rng(404);
    for (int op = 0; op < 40; ++op) {
      InodeNo ino = files[rng.Uniform(files.size())];
      fs.Write(ino, rng.Uniform(8) * kPageSize, kPageSize, IoClass::kBestEffort,
               nullptr);
      rig.loop.RunUntil(rig.loop.now() + Millis(1));
      if (op == 20) {
        fs.Sync([] {});
      }
    }
    fs.Sync([] {});
    rig.loop.RunUntil(rig.loop.now() + Micros(300));  // barrier mid-service
    rig.device.CrashFreeze();
  }

  image.Thaw();
  SimRig rig(100'000, Micros(50));
  CowFs fs(&rig.loop, &rig.device, /*cache_pages=*/128);
  fs.AttachDurableImage(&image);
  MountReport report;
  bool mounted = false;
  fs.Mount([&](const MountReport& r) {
    report = r;
    mounted = true;
  });
  rig.loop.Run();
  ASSERT_TRUE(mounted);
  ASSERT_TRUE(report.status.ok()) << report.status.message();
  FsckReport fsck = fs.CheckConsistency();
  EXPECT_EQ(fsck.structural_errors, 0u) << "first bad block " << fsck.first_bad_block;
  EXPECT_EQ(fsck.checksum_errors, 0u);
  CheckCowFsInvariants(fs, {});

  // The recovered instance must behave like a freshly built one: more churn,
  // then full quiescence with every invariant intact.
  Rng rng(505);
  std::vector<InodeNo> files;
  fs.ns().ForEachInode([&](const Inode& inode) {
    if (!inode.is_dir()) {
      files.push_back(inode.ino);
    }
  });
  ASSERT_EQ(files.size(), 16u);
  std::vector<SnapshotId> snapshots;
  for (int op = 0; op < 40; ++op) {
    InodeNo ino = files[rng.Uniform(files.size())];
    if (rng.Chance(0.3)) {
      fs.Read(ino, 0, 8 * kPageSize, IoClass::kBestEffort, nullptr);
    } else {
      fs.Write(ino, rng.Uniform(8) * kPageSize, kPageSize, IoClass::kBestEffort,
               nullptr);
    }
    rig.loop.RunUntil(rig.loop.now() + Millis(2));
  }
  fs.CreateSnapshotAsync([&](Result<SnapshotId> snap) {
    ASSERT_TRUE(snap.ok());
    snapshots.push_back(*snap);
  });
  rig.loop.Run();
  fs.writeback().Sync(nullptr);
  rig.loop.Run();
  EXPECT_EQ(fs.cache().DirtyCount(), 0u);
  CheckChecksumIntegrity(fs);
  CheckCowFsInvariants(fs, snapshots);
  EXPECT_EQ(fs.checksum_errors_detected(), 0u);

  // And a fresh superblock commit succeeds on the recovered tree.
  bool committed = false;
  fs.Checkpoint([&] { committed = true; });
  rig.loop.Run();
  EXPECT_TRUE(committed);
}

// Same shape for logfs: crash mid-log, remount (checkpoint restore plus
// roll-forward replay), then verify segment accounting and mapping invariants
// survive both the recovery and further churn to quiescence.
TEST(IntegrationStackTest, LogFsInvariantsHoldAfterCrashRecovery) {
  DurableImage image(32'768);
  {
    SimRig rig(32'768, Micros(50));
    LogFs fs(&rig.loop, &rig.device, /*cache_pages=*/128, /*segment_blocks=*/64);
    fs.AttachDurableImage(&image);
    std::vector<InodeNo> files;
    for (int i = 0; i < 12; ++i) {
      files.push_back(*fs.PopulateFile(StrFormat("/f%d", i), 8 * kPageSize));
    }
    fs.SnapshotToDurable();
    bool committed = false;
    fs.Checkpoint([&] { committed = true; });
    rig.loop.Run();
    ASSERT_TRUE(committed);

    Rng rng(606);
    for (int op = 0; op < 40; ++op) {
      InodeNo ino = files[rng.Uniform(files.size())];
      fs.Write(ino, rng.Uniform(8) * kPageSize, kPageSize, IoClass::kBestEffort,
               nullptr);
      rig.loop.RunUntil(rig.loop.now() + Millis(1));
      if (op % 10 == 9) {
        fs.Sync([] {});  // grow the synced log tail past the checkpoint
      }
    }
    rig.loop.RunUntil(rig.loop.now() + Millis(5));
    rig.device.CrashFreeze();
  }

  image.Thaw();
  SimRig rig(32'768, Micros(50));
  LogFs fs(&rig.loop, &rig.device, /*cache_pages=*/128, /*segment_blocks=*/64);
  fs.AttachDurableImage(&image);
  MountReport report;
  bool mounted = false;
  fs.Mount([&](const MountReport& r) {
    report = r;
    mounted = true;
  });
  rig.loop.Run();
  ASSERT_TRUE(mounted);
  ASSERT_TRUE(report.status.ok()) << report.status.message();
  EXPECT_GT(report.blocks_replayed, 0u);  // the synced tail rolled forward
  FsckReport fsck = fs.CheckConsistency();
  EXPECT_EQ(fsck.structural_errors, 0u) << "first bad block " << fsck.first_bad_block;
  EXPECT_EQ(fsck.checksum_errors, 0u);
  CheckLogFsInvariants(fs);

  Rng rng(707);
  std::vector<InodeNo> files;
  fs.ns().ForEachInode([&](const Inode& inode) {
    if (!inode.is_dir()) {
      files.push_back(inode.ino);
    }
  });
  ASSERT_EQ(files.size(), 12u);
  for (int op = 0; op < 40; ++op) {
    InodeNo ino = files[rng.Uniform(files.size())];
    fs.Write(ino, rng.Uniform(8) * kPageSize, kPageSize, IoClass::kBestEffort,
             nullptr);
    rig.loop.RunUntil(rig.loop.now() + Millis(2));
  }
  fs.writeback().Sync(nullptr);
  rig.loop.Run();
  EXPECT_EQ(fs.cache().DirtyCount(), 0u);
  CheckLogFsInvariants(fs);

  bool committed = false;
  fs.Checkpoint([&] { committed = true; });
  rig.loop.Run();
  EXPECT_TRUE(committed);
}

TEST(IntegrationStackTest, DeterministicEndToEnd) {
  // The same seed must produce bit-identical stack state.
  auto run = [](uint64_t seed) {
    Rng rng(seed);
    SimRig rig(200'000, Micros(50));
    CowFs fs(&rig.loop, &rig.device, 128);
    DuetCore duet(&fs);
    SessionId sid = *duet.RegisterBlockTask(kDuetPageExists);
    std::vector<InodeNo> files;
    for (int i = 0; i < 10; ++i) {
      files.push_back(*fs.PopulateFile(StrFormat("/f%d", i), 8 * kPageSize));
    }
    for (int op = 0; op < 100; ++op) {
      InodeNo ino = files[rng.Uniform(files.size())];
      if (rng.Chance(0.5)) {
        fs.Read(ino, 0, 8 * kPageSize, IoClass::kBestEffort, nullptr);
      } else {
        fs.Write(ino, 0, 2 * kPageSize, IoClass::kBestEffort, nullptr);
      }
      rig.loop.RunUntil(rig.loop.now() + Millis(5));
    }
    auto items = duet.Fetch(sid, 1 << 20);
    uint64_t signature = rig.loop.now() ^ (items.ok() ? items->size() : 0) ^
                         fs.allocated_blocks() ^ fs.cache().PageCount() ^
                         duet.stats().hook_invocations;
    return signature;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different seeds diverge
}

}  // namespace
}  // namespace duet
