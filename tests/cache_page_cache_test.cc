#include "src/cache/page_cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace duet {
namespace {

class EventRecorder : public PageEventListener {
 public:
  void OnPageEvent(const PageEvent& event) override { events.push_back(event); }
  std::vector<PageEvent> events;
};

SimTime g_now = 0;

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() : cache_(4, [] { return g_now; }) {
    g_now = 0;
    cache_.AddListener(&recorder_);
  }
  PageCache cache_;
  EventRecorder recorder_;
};

TEST_F(PageCacheTest, InsertAndLookup) {
  cache_.Insert(10, 0, 111, false);
  EXPECT_EQ(cache_.Lookup(10, 0), 111u);
  EXPECT_EQ(cache_.Lookup(10, 1), std::nullopt);
  EXPECT_EQ(cache_.PageCount(), 1u);
  EXPECT_EQ(cache_.stats().hits, 1u);
  EXPECT_EQ(cache_.stats().misses, 1u);
}

TEST_F(PageCacheTest, InsertEmitsAdded) {
  cache_.Insert(10, 0, 111, false);
  ASSERT_EQ(recorder_.events.size(), 1u);
  EXPECT_EQ(recorder_.events[0].type, PageEventType::kAdded);
  EXPECT_EQ(recorder_.events[0].ino, 10u);
  EXPECT_EQ(recorder_.events[0].idx, 0u);
}

TEST_F(PageCacheTest, DirtyInsertEmitsAddedThenDirtied) {
  cache_.Insert(10, 3, 42, true);
  ASSERT_EQ(recorder_.events.size(), 2u);
  EXPECT_EQ(recorder_.events[0].type, PageEventType::kAdded);
  EXPECT_EQ(recorder_.events[1].type, PageEventType::kDirtied);
  EXPECT_EQ(cache_.DirtyCount(), 1u);
}

TEST_F(PageCacheTest, MarkDirtyTransitionsOnce) {
  cache_.Insert(10, 0, 1, false);
  recorder_.events.clear();
  EXPECT_TRUE(cache_.MarkDirty(10, 0, 2));
  EXPECT_TRUE(cache_.MarkDirty(10, 0, 3));  // already dirty: data updates only
  ASSERT_EQ(recorder_.events.size(), 1u);
  EXPECT_EQ(recorder_.events[0].type, PageEventType::kDirtied);
  EXPECT_EQ(cache_.Peek(10, 0)->data, 3u);
  EXPECT_EQ(cache_.DirtyCount(), 1u);
}

TEST_F(PageCacheTest, MarkCleanEmitsFlushed) {
  cache_.Insert(10, 0, 1, true);
  recorder_.events.clear();
  EXPECT_TRUE(cache_.MarkClean(10, 0));
  EXPECT_FALSE(cache_.MarkClean(10, 0));  // already clean
  ASSERT_EQ(recorder_.events.size(), 1u);
  EXPECT_EQ(recorder_.events[0].type, PageEventType::kFlushed);
  EXPECT_EQ(cache_.DirtyCount(), 0u);
}

TEST_F(PageCacheTest, MarkDirtyOnMissingPageFails) {
  EXPECT_FALSE(cache_.MarkDirty(99, 0, 1));
  EXPECT_FALSE(cache_.MarkClean(99, 0));
  EXPECT_FALSE(cache_.Remove(99, 0));
}

TEST_F(PageCacheTest, LruEvictionOnOverflow) {
  for (InodeNo i = 1; i <= 5; ++i) {
    cache_.Insert(i, 0, i, false);
  }
  // Capacity 4: inode 1 (LRU) was evicted.
  EXPECT_EQ(cache_.PageCount(), 4u);
  EXPECT_FALSE(cache_.Contains(1, 0));
  EXPECT_TRUE(cache_.Contains(5, 0));
  EXPECT_EQ(cache_.stats().evictions, 1u);
}

TEST_F(PageCacheTest, LookupRefreshesLru) {
  for (InodeNo i = 1; i <= 4; ++i) {
    cache_.Insert(i, 0, i, false);
  }
  ASSERT_TRUE(cache_.Lookup(1, 0).has_value());  // 1 becomes MRU
  cache_.Insert(5, 0, 5, false);                 // evicts 2, not 1
  EXPECT_TRUE(cache_.Contains(1, 0));
  EXPECT_FALSE(cache_.Contains(2, 0));
}

TEST_F(PageCacheTest, DirtyPagesAreNotEvicted) {
  for (InodeNo i = 1; i <= 4; ++i) {
    cache_.Insert(i, 0, i, true);  // all dirty
  }
  cache_.Insert(5, 0, 5, false);
  // Nothing clean to evict: cache overshoots.
  EXPECT_EQ(cache_.PageCount(), 5u);
  // Cleaning one page lets a later MarkClean reclaim the overshoot.
  cache_.MarkClean(1, 0);
  EXPECT_EQ(cache_.PageCount(), 4u);
  EXPECT_FALSE(cache_.Contains(1, 0));
}

TEST_F(PageCacheTest, EvictionEmitsRemoved) {
  for (InodeNo i = 1; i <= 5; ++i) {
    cache_.Insert(i, 0, i, false);
  }
  bool saw_removed = false;
  for (const PageEvent& e : recorder_.events) {
    if (e.type == PageEventType::kRemoved && e.ino == 1) {
      saw_removed = true;
    }
  }
  EXPECT_TRUE(saw_removed);
}

TEST_F(PageCacheTest, RemoveInodeDropsAllItsPages) {
  cache_.Insert(7, 0, 1, false);
  cache_.Insert(7, 1, 2, true);
  cache_.Insert(8, 0, 3, false);
  cache_.RemoveInode(7);
  EXPECT_FALSE(cache_.Contains(7, 0));
  EXPECT_FALSE(cache_.Contains(7, 1));
  EXPECT_TRUE(cache_.Contains(8, 0));
  EXPECT_EQ(cache_.DirtyCount(), 0u);
  EXPECT_EQ(cache_.CachedPagesOfInode(7), 0u);
  EXPECT_EQ(cache_.CachedPagesOfInode(8), 1u);
}

TEST_F(PageCacheTest, PeekDoesNotTouchLruOrStats) {
  cache_.Insert(1, 0, 1, false);
  cache_.Insert(2, 0, 2, false);
  uint64_t hits = cache_.stats().hits;
  EXPECT_NE(cache_.Peek(1, 0), nullptr);
  EXPECT_EQ(cache_.stats().hits, hits);
  cache_.Insert(3, 0, 3, false);
  cache_.Insert(4, 0, 4, false);
  cache_.Insert(5, 0, 5, false);  // evicts LRU = 1 despite the Peek
  EXPECT_FALSE(cache_.Contains(1, 0));
}

TEST_F(PageCacheTest, CollectDirtyReturnsOldestFirst) {
  g_now = 100;
  cache_.Insert(1, 0, 1, true);
  g_now = 200;
  cache_.Insert(2, 0, 2, true);
  g_now = 300;
  auto all = cache_.CollectDirty(/*not_after=*/300, /*max=*/10);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].ino, 1u);
  EXPECT_EQ(all[1].ino, 2u);
  // Age filter: only pages dirtied at or before 150.
  auto old_only = cache_.CollectDirty(/*not_after=*/150, /*max=*/10);
  ASSERT_EQ(old_only.size(), 1u);
  EXPECT_EQ(old_only[0].ino, 1u);
  // Max cap.
  EXPECT_EQ(cache_.CollectDirty(300, 1).size(), 1u);
}

TEST_F(PageCacheTest, ForEachPageVisitsEverything) {
  cache_.Insert(1, 0, 1, false);
  cache_.Insert(1, 1, 2, true);
  cache_.Insert(2, 5, 3, false);
  uint64_t visited = 0;
  cache_.ForEachPage([&](InodeNo, PageIdx, const CachedPage&) { ++visited; });
  EXPECT_EQ(visited, 3u);
  visited = 0;
  cache_.ForEachPageOfInode(1, [&](PageIdx, const CachedPage&) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

TEST_F(PageCacheTest, RemoveListenerStopsEvents) {
  cache_.RemoveListener(&recorder_);
  cache_.Insert(1, 0, 1, false);
  EXPECT_TRUE(recorder_.events.empty());
}

TEST_F(PageCacheTest, ReinsertExistingUpdatesData) {
  cache_.Insert(1, 0, 10, false);
  recorder_.events.clear();
  cache_.Insert(1, 0, 20, false);  // overwrite, still clean
  EXPECT_TRUE(recorder_.events.empty());
  EXPECT_EQ(cache_.Peek(1, 0)->data, 20u);
  EXPECT_EQ(cache_.PageCount(), 1u);
}

}  // namespace
}  // namespace duet
