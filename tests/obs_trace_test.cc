#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace duet {
namespace obs {
namespace {

TEST(TracerTest, FreshTracerHasOffsetFingerprint) {
  Tracer tracer;
  EXPECT_EQ(tracer.Fingerprint(), Tracer::kFnvOffset);
  EXPECT_EQ(tracer.events_emitted(), 0u);
}

TEST(TracerTest, IdenticalStreamsHaveIdenticalFingerprints) {
  Tracer a;
  Tracer b;
  for (uint64_t i = 0; i < 100; ++i) {
    a.Emit(i * 1000, TraceLayer::kCache, TraceKind::kPageAdded, 7, i, 0);
    b.Emit(i * 1000, TraceLayer::kCache, TraceKind::kPageAdded, 7, i, 0);
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.events_emitted(), 100u);
}

TEST(TracerTest, AnyFieldChangeDivergesFingerprint) {
  auto fingerprint_of = [](SimTime at, TraceLayer layer, TraceKind kind,
                           uint64_t a, uint64_t b, uint64_t c) {
    Tracer t;
    t.Emit(at, layer, kind, a, b, c);
    return t.Fingerprint();
  };
  uint64_t base = fingerprint_of(1, TraceLayer::kBlock, TraceKind::kIoSubmit, 2, 3, 4);
  EXPECT_NE(base, fingerprint_of(9, TraceLayer::kBlock, TraceKind::kIoSubmit, 2, 3, 4));
  EXPECT_NE(base, fingerprint_of(1, TraceLayer::kCache, TraceKind::kIoSubmit, 2, 3, 4));
  EXPECT_NE(base, fingerprint_of(1, TraceLayer::kBlock, TraceKind::kIoComplete, 2, 3, 4));
  EXPECT_NE(base, fingerprint_of(1, TraceLayer::kBlock, TraceKind::kIoSubmit, 0, 3, 4));
  EXPECT_NE(base, fingerprint_of(1, TraceLayer::kBlock, TraceKind::kIoSubmit, 2, 0, 4));
  EXPECT_NE(base, fingerprint_of(1, TraceLayer::kBlock, TraceKind::kIoSubmit, 2, 3, 0));
}

TEST(TracerTest, EventOrderMatters) {
  Tracer ab;
  ab.Emit(1, TraceLayer::kSim, TraceKind::kEventFired, 1);
  ab.Emit(2, TraceLayer::kSim, TraceKind::kEventFired, 2);
  Tracer ba;
  ba.Emit(2, TraceLayer::kSim, TraceKind::kEventFired, 2);
  ba.Emit(1, TraceLayer::kSim, TraceKind::kEventFired, 1);
  EXPECT_NE(ab.Fingerprint(), ba.Fingerprint());
}

TEST(TracerTest, DisabledFingerprintStopsFolding) {
  Tracer tracer;
  tracer.SetFingerprintEnabled(false);
  tracer.Emit(1, TraceLayer::kSim, TraceKind::kEventFired, 1);
  EXPECT_EQ(tracer.Fingerprint(), Tracer::kFnvOffset);
  EXPECT_EQ(tracer.events_emitted(), 1u);  // emission count still advances
}

TEST(TraceRingTest, RetainsMostRecentAndCountsDrops) {
  TraceRing ring(4);
  Tracer tracer;
  tracer.AddSink(&ring);
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Emit(i, TraceLayer::kTask, TraceKind::kChunkFinished, i);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_seen(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first iteration over the retained suffix 6..9.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).a, 6 + i);
    EXPECT_EQ(ring.at(i).at, 6 + i);
  }
  uint64_t seen = 0;
  ring.ForEach([&](const TraceEvent& e) {
    EXPECT_EQ(e.a, 6 + seen);
    ++seen;
  });
  EXPECT_EQ(seen, 4u);
}

TEST(TraceRingTest, ClearResets) {
  TraceRing ring(2);
  Tracer tracer;
  tracer.AddSink(&ring);
  tracer.Emit(1, TraceLayer::kSim, TraceKind::kEventFired, 1);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_seen(), 0u);
}

TEST(TracerTest, RemoveSinkStopsDelivery) {
  TraceRing ring(8);
  Tracer tracer;
  tracer.AddSink(&ring);
  tracer.Emit(1, TraceLayer::kSim, TraceKind::kEventFired, 1);
  tracer.RemoveSink(&ring);
  tracer.Emit(2, TraceLayer::kSim, TraceKind::kEventFired, 2);
  EXPECT_EQ(ring.total_seen(), 1u);
  EXPECT_EQ(tracer.events_emitted(), 2u);
}

TEST(TraceEventTest, JsonUsesStableNames) {
  TraceEvent event{/*at=*/12, TraceLayer::kDuet, TraceKind::kItemFetched,
                   /*a=*/1, /*b=*/2, /*c=*/3};
  EXPECT_EQ(event.ToJson(),
            "{\"t\":12,\"layer\":\"duet\",\"kind\":\"item_fetched\","
            "\"a\":1,\"b\":2,\"c\":3}");
}

TEST(JsonlTraceSinkTest, WritesOneLinePerEvent) {
  std::string path = testing::TempDir() + "/obs_trace_test.jsonl";
  {
    auto sink = JsonlTraceSink::Open(path);
    ASSERT_NE(sink, nullptr);
    Tracer tracer;
    tracer.AddSink(sink.get());
    tracer.Emit(1, TraceLayer::kFault, TraceKind::kFaultInjected, 42, 1);
    tracer.Emit(2, TraceLayer::kFault, TraceKind::kFaultDetected, 42);
    EXPECT_EQ(sink->events_written(), 2u);
  }  // destructor closes the file
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line),
            "{\"t\":1,\"layer\":\"fault\",\"kind\":\"fault_injected\","
            "\"a\":42,\"b\":1,\"c\":0}\n");
  ASSERT_NE(fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(fgets(line, sizeof(line), f), nullptr);  // exactly two lines
  fclose(f);
  remove(path.c_str());
}

TEST(JsonlTraceSinkTest, UnopenablePathReturnsNull) {
  EXPECT_EQ(JsonlTraceSink::Open("/nonexistent-dir/trace.jsonl"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace duet
