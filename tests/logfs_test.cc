#include "src/logfs/logfs.h"

#include <gtest/gtest.h>

#include "src/util/format.h"
#include "tests/sim_fixture.h"

namespace duet {
namespace {

class LogFsTest : public ::testing::Test {
 protected:
  // 100 segments of 16 blocks each.
  LogFsTest()
      : rig_(1600), fs_(&rig_.loop, &rig_.device, /*cache_pages=*/64,
                        /*segment_blocks=*/16) {}

  InodeNo MakeFile(const char* path, uint64_t pages) {
    Result<InodeNo> ino = fs_.PopulateFile(path, pages * kPageSize);
    EXPECT_TRUE(ino.ok()) << ino.status().ToString();
    return *ino;
  }

  void WriteSync(InodeNo ino, ByteOff off, uint64_t len) {
    fs_.Write(ino, off, len, IoClass::kBestEffort, nullptr);
    rig_.loop.RunUntil(rig_.loop.now() + Millis(500));
  }

  CleanResult CleanSync(SegmentNo seg) {
    CleanResult result;
    bool done = false;
    fs_.CleanSegment(seg, IoClass::kIdle, [&](const CleanResult& r) {
      result = r;
      done = true;
    });
    rig_.loop.RunUntil(rig_.loop.now() + Millis(500));
    EXPECT_TRUE(done);
    return result;
  }

  SimRig rig_;
  LogFs fs_;
};

TEST_F(LogFsTest, GeometryAndInitialState) {
  EXPECT_EQ(fs_.segment_count(), 100u);
  EXPECT_EQ(fs_.segment_blocks(), 16u);
  EXPECT_EQ(fs_.SegmentOf(0), 0u);
  EXPECT_EQ(fs_.SegmentOf(16), 1u);
  EXPECT_GE(fs_.free_segments(), 99u);
}

TEST_F(LogFsTest, AppendsFillSegmentsSequentially) {
  InodeNo ino = MakeFile("/f", 20);  // spans 2 segments
  EXPECT_EQ(*fs_.Bmap(ino, 0), 0u);
  EXPECT_EQ(*fs_.Bmap(ino, 15), 15u);
  EXPECT_EQ(*fs_.Bmap(ino, 16), 16u);
  EXPECT_EQ(fs_.segment(0).valid, 16u);
  EXPECT_EQ(fs_.segment(1).valid, 4u);
}

TEST_F(LogFsTest, OverwriteInvalidatesOldBlock) {
  InodeNo ino = MakeFile("/f", 16);  // fills segment 0 exactly
  BlockNo old_block = *fs_.Bmap(ino, 1);
  WriteSync(ino, kPageSize, kPageSize);
  BlockNo new_block = *fs_.Bmap(ino, 1);
  EXPECT_NE(old_block, new_block);
  EXPECT_NE(fs_.SegmentOf(new_block), fs_.SegmentOf(old_block));
  EXPECT_FALSE(fs_.BlockValid(old_block));
  EXPECT_TRUE(fs_.BlockValid(new_block));
  EXPECT_EQ(fs_.segment(fs_.SegmentOf(old_block)).valid, 15u);
}

TEST_F(LogFsTest, DeleteInvalidatesAllBlocks) {
  InodeNo ino = MakeFile("/f", 10);
  SegmentNo seg = fs_.SegmentOf(*fs_.Bmap(ino, 0));
  ASSERT_TRUE(fs_.DeleteFile(ino).ok());
  EXPECT_EQ(fs_.segment(seg).valid, 0u);
  EXPECT_EQ(fs_.allocated_blocks(), 0u);
}

TEST_F(LogFsTest, ValidBlocksOfReportsLiveBlocks) {
  InodeNo ino = MakeFile("/f", 16);
  WriteSync(ino, 0, 4 * kPageSize);  // first 4 pages move to segment 1
  auto valid = fs_.ValidBlocksOf(0);
  EXPECT_EQ(valid.size(), 12u);
  for (BlockNo b : valid) {
    EXPECT_TRUE(fs_.BlockValid(b));
  }
}

TEST_F(LogFsTest, SelectVictimPrefersMostlyInvalidSegments) {
  // Fill two files; invalidate most of file A's segment.
  InodeNo a = MakeFile("/a", 16);  // segment 0
  MakeFile("/b", 16);              // segment 1
  WriteSync(a, 0, 14 * kPageSize); // invalidates 14 blocks of segment 0
  auto victim = fs_.SelectVictim(0, fs_.segment_count(),
                                 [&](SegmentNo, const SegmentInfo& info) {
                                   return GcCostBaseline(info, fs_.segment_blocks(),
                                                         rig_.loop.now());
                                 });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0u);
}

TEST_F(LogFsTest, SelectVictimSkipsFullyValidSegments) {
  MakeFile("/a", 16);  // segment 0, fully valid
  auto victim = fs_.SelectVictim(0, fs_.segment_count(),
                                 [&](SegmentNo, const SegmentInfo& info) {
                                   return GcCostBaseline(info, fs_.segment_blocks(),
                                                         rig_.loop.now());
                                 });
  EXPECT_FALSE(victim.has_value());
}

TEST_F(LogFsTest, CleanSegmentMovesValidBlocksAndFreesSegment) {
  InodeNo ino = MakeFile("/f", 16);
  WriteSync(ino, 0, 12 * kPageSize);  // 4 valid blocks left in segment 0
  // Drop cache so the cleaner must read from disk.
  fs_.cache().RemoveInode(ino);
  std::vector<uint64_t> tokens;
  for (PageIdx p = 12; p < 16; ++p) {
    tokens.push_back(*fs_.PageContent(ino, p));
  }
  CleanResult result = CleanSync(0);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.blocks_moved, 4u);
  EXPECT_EQ(result.blocks_read_disk, 4u);
  EXPECT_EQ(result.blocks_from_cache, 0u);
  EXPECT_EQ(fs_.segment(0).valid, 0u);
  // Content preserved at new locations; pages are dirty pending writeback.
  for (PageIdx p = 12; p < 16; ++p) {
    EXPECT_EQ(*fs_.PageContent(ino, p), tokens[p - 12]);
    EXPECT_NE(fs_.SegmentOf(*fs_.Bmap(ino, p)), 0u);
  }
  EXPECT_GT(fs_.cache().DirtyCount(), 0u);
}

TEST_F(LogFsTest, CleanSegmentUsesCachedBlocks) {
  InodeNo ino = MakeFile("/f", 16);
  WriteSync(ino, 0, 12 * kPageSize);
  fs_.cache().RemoveInode(ino);
  // Warm 2 of the 4 remaining valid pages.
  fs_.Read(ino, 12 * kPageSize, 2 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.Run();
  EXPECT_EQ(fs_.CachedValidBlocksOf(0), 2u);
  CleanResult result = CleanSync(0);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.blocks_moved, 4u);
  EXPECT_EQ(result.blocks_from_cache, 2u);
  EXPECT_EQ(result.blocks_read_disk, 2u);
}

TEST_F(LogFsTest, CleanEmptySegmentIsNoop) {
  CleanResult result = CleanSync(5);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.blocks_moved, 0u);
  EXPECT_EQ(result.device_ops, 0u);
}

TEST_F(LogFsTest, DuetCostPrefersCachedSegments) {
  SimTime now = Seconds(100);
  SegmentInfo a;
  a.valid = 8;
  a.written = 16;
  a.mtime = 0;
  SegmentInfo b = a;
  // Equal utilization and age; b has 6 cached blocks.
  double cost_a = GcCostDuet(a, 16, now, 0);
  double cost_b = GcCostDuet(b, 16, now, 6);
  EXPECT_LT(cost_b, cost_a);
  // Baseline ignores caching.
  EXPECT_EQ(GcCostBaseline(a, 16, now), GcCostBaseline(b, 16, now));
}

TEST_F(LogFsTest, CostFavorsOlderSegmentsAndFewerValidBlocks) {
  SimTime now = Seconds(100);
  SegmentInfo young;
  young.valid = 8;
  young.written = 16;
  young.mtime = Seconds(99);
  SegmentInfo old = young;
  old.mtime = 0;
  EXPECT_LT(GcCostBaseline(old, 16, now), GcCostBaseline(young, 16, now));
  SegmentInfo sparse = old;
  sparse.valid = 2;
  EXPECT_LT(GcCostBaseline(sparse, 16, now), GcCostBaseline(old, 16, now));
}

TEST_F(LogFsTest, ScatteredWritesWhenNoFreeSegments) {
  // Fill the whole device, then delete one block's worth to create invalid
  // slots, and keep writing.
  std::vector<InodeNo> files;
  for (int i = 0; i < 99; ++i) {
    files.push_back(MakeFile(StrFormat("/f%d", i).c_str(), 16));
  }
  // Device nearly full; overwrite some blocks of the first file. These
  // overwrites invalidate old slots but consume the last segment, pushing
  // the allocator into scattered mode.
  EXPECT_LE(fs_.free_segments(), 1u);
  InodeNo f0 = files[0];
  WriteSync(f0, 0, 8 * kPageSize);
  WriteSync(f0, 0, 8 * kPageSize);
  WriteSync(f0, 0, 8 * kPageSize);
  EXPECT_GT(fs_.scattered_writes(), 0u);
  // Content still correct.
  EXPECT_TRUE(fs_.Bmap(f0, 0).ok());
}

TEST_F(LogFsTest, CleaningRacesWithForegroundWrites) {
  InodeNo ino = MakeFile("/f", 16);
  WriteSync(ino, 0, 8 * kPageSize);
  fs_.cache().RemoveInode(ino);
  // Start cleaning segment 0 and immediately overwrite some of its blocks.
  CleanResult result;
  bool done = false;
  fs_.CleanSegment(0, IoClass::kIdle, [&](const CleanResult& r) {
    result = r;
    done = true;
  });
  fs_.Write(ino, 8 * kPageSize, 4 * kPageSize, IoClass::kBestEffort, nullptr);
  rig_.loop.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.status.ok());
  // Every page still readable with correct mapping.
  for (PageIdx p = 0; p < 16; ++p) {
    EXPECT_TRUE(fs_.Bmap(ino, p).ok());
    EXPECT_TRUE(fs_.BlockValid(*fs_.Bmap(ino, p)));
  }
}

TEST_F(LogFsTest, ChecksumMismatchDetectedOnRead) {
  InodeNo ino = MakeFile("/f", 4);
  fs_.cache().RemoveInode(ino);
  fs_.CorruptBlock(*fs_.Bmap(ino, 1));
  Status status;
  fs_.Read(ino, 0, 4 * kPageSize, IoClass::kBestEffort,
           [&](const FsIoResult& r) { status = r.status; });
  rig_.loop.Run();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(fs_.checksum_errors_detected(), 1u);
}

// Cleaning doubles as corruption detection: the GC verifies every victim
// block it reads, and refuses to move a corrupt one — re-appending it to the
// log head would mint a fresh valid checksum over rotten content.
TEST_F(LogFsTest, CleanerDetectsCorruptionAndRefusesToMoveIt) {
  InodeNo ino = MakeFile("/f", 16);
  WriteSync(ino, 0, 12 * kPageSize);  // 4 valid blocks left in segment 0
  fs_.cache().RemoveInode(ino);
  BlockNo bad = *fs_.Bmap(ino, 13);
  ASSERT_EQ(fs_.SegmentOf(bad), 0u);
  fs_.CorruptBlock(bad);

  CleanResult result = CleanSync(0);
  EXPECT_EQ(result.checksum_errors, 1u);
  EXPECT_EQ(result.blocks_moved, 3u);  // the other three relocated
  EXPECT_EQ(fs_.checksum_errors_detected(), 1u);
  // The corrupt block stays where it was, still valid (live but rotten), so
  // nothing downstream mistakes the segment for empty.
  EXPECT_EQ(*fs_.Bmap(ino, 13), bad);
  EXPECT_TRUE(fs_.BlockValid(bad));
  EXPECT_EQ(fs_.segment(0).valid, 1u);
  EXPECT_FALSE(fs_.BlockChecksumOk(bad));
}

TEST_F(LogFsTest, ChecksumFollowsBlockThroughCleaning) {
  InodeNo ino = MakeFile("/f", 16);
  WriteSync(ino, 0, 12 * kPageSize);
  fs_.cache().RemoveInode(ino);
  CleanResult result = CleanSync(0);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.blocks_moved, 4u);
  // Flush the relocated pages; the new locations must verify cleanly.
  fs_.writeback().Sync(nullptr);
  rig_.loop.Run();
  for (PageIdx p = 12; p < 16; ++p) {
    BlockNo b = *fs_.Bmap(ino, p);
    EXPECT_NE(fs_.SegmentOf(b), 0u);
    EXPECT_TRUE(fs_.BlockChecksumOk(b));
  }
}

}  // namespace
}  // namespace duet
