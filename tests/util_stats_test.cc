#include "src/util/stats.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace duet {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ConfidenceInterval95(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, ConfidenceIntervalShrinksWithSamples) {
  Rng rng(21);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) {
    small.Add(rng.NextDouble());
  }
  for (int i = 0; i < 10000; ++i) {
    large.Add(rng.NextDouble());
  }
  EXPECT_GT(small.ConfidenceInterval95(), large.ConfidenceInterval95());
  EXPECT_NEAR(large.mean(), 0.5, 0.02);
}

TEST(HistogramTest, PercentilesOfUniformData) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_EQ(h.TotalCount(), 100u);
  EXPECT_NEAR(h.Percentile(50), 50, 2);
  EXPECT_NEAR(h.Percentile(90), 90, 2);
  EXPECT_NEAR(h.Percentile(100), 100, 1);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0, 10, 10);
  h.Add(-5);
  h.Add(100);
  EXPECT_EQ(h.TotalCount(), 2u);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

}  // namespace
}  // namespace duet
